// Workbench: the assembled visual programming environment of Figure 3 —
// graphical editor + checker + microcode generator — joined to the
// simulated NSC backend, so a program can go from diagrams to executed
// vectors in one object.  This is the library's top-level entry point.
//
// The workbench is split request-service style:
//
//   WorkbenchContext — the shared *immutable* half: machine model, the
//     execution pool, and the compiled-program cache.  One context serves
//     any number of concurrent consumers (the service layer's shards all
//     reference one).
//   WorkbenchCore — the cheap *mutable* half: one editor document set, a
//     persistent SessionRunner (keeps the editor's memoized checker
//     session warm across scripts), and one NodeSim.  A core is
//     single-consumer; reset() returns it to the freshly-constructed
//     state so independent requests replay against identical initial
//     conditions.
//   Workbench — context + one core in a single object: the original
//     in-process, one-user-at-a-Sun-3 API, unchanged.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "common/json.h"
#include "common/status.h"
#include "editor/editor.h"
#include "editor/session.h"
#include "exec/thread_pool.h"
#include "microcode/generator.h"
#include "sim/batch.h"
#include "sim/hypercube.h"
#include "sim/node.h"
#include "sim/program_cache.h"

namespace nsc {

struct RunOutcome {
  mc::GenerateResult generation;
  sim::RunStats run;
  // The compiled image the run executed, as returned by the shared program
  // cache — pointer-equal across runs of the same program on the same
  // machine config.  `cache_hit` is true when the image was reused.
  std::shared_ptr<const sim::CompiledProgram> program;
  bool cache_hit = false;
  bool ok() const { return generation.ok && !run.error; }
};

// Generation plus the cached compiled image: the common front half of
// every execution path (single run, ensemble, system load).
struct CompileOutcome {
  mc::GenerateResult generation;
  std::shared_ptr<const sim::CompiledProgram> program;  // null if !ok
  bool cache_hit = false;
  bool ok() const { return generation.ok; }
};

// Knobs for an ensemble run.  `lanes` is the SoA batch width: 0 resolves
// the auto default (the NSC_ENSEMBLE_LANES environment variable, else 8),
// 1 forces the scalar per-replica path, anything larger batches that many
// replicas per ReplicaBatch.  `init` (optional) seeds replica `i`'s memory
// before it runs; it is invoked from pool threads (possibly concurrently
// for different replicas) and must be thread-safe.  Both execution paths
// seed through the same ReplicaStore interface, so results are
// bit-identical whichever path a replica takes.
struct EnsembleOptions {
  int lanes = 0;
  std::function<void(int replica, sim::ReplicaStore&)> init;
};

// Result of an ensemble run: the (single, shared) generation plus one
// RunStats per replica — the microcode image is not duplicated per run.
struct EnsembleOutcome {
  mc::GenerateResult generation;
  std::shared_ptr<const sim::CompiledProgram> program;  // shared by replicas
  bool cache_hit = false;
  std::vector<sim::RunStats> runs;  // runs[i] belongs to replica i
  // How the replicas executed: the resolved SoA lane width, and how many
  // replicas finished inside a ReplicaBatch vs on the scalar engine
  // (lane-width-1 remainders and lanes drained after divergence).
  int lanes_used = 1;
  int replicas_batched = 0;
  int replicas_scalar = 0;
  bool ok() const {
    if (!generation.ok) return false;
    for (const sim::RunStats& r : runs) {
      if (r.error) return false;
    }
    return true;
  }
};

// The shared immutable context every core (and service shard) references:
// the machine model plus the process-level execution resources.  `pool` and
// `cache` are borrowed when given, else the process-wide singletons.  A
// context must outlive every core built on it.
class WorkbenchContext {
 public:
  explicit WorkbenchContext(arch::MachineConfig config = {},
                            exec::ThreadPool* pool = nullptr,
                            sim::CompiledProgramCache* cache = nullptr)
      : machine_(config),
        pool_(pool != nullptr ? pool : &exec::ThreadPool::shared()),
        cache_(cache != nullptr ? cache : &sim::CompiledProgramCache::shared()) {}

  const arch::Machine& machine() const { return machine_; }
  exec::ThreadPool& pool() const { return *pool_; }
  sim::CompiledProgramCache& cache() const { return *cache_; }

 private:
  arch::Machine machine_;
  exec::ThreadPool* pool_;
  sim::CompiledProgramCache* cache_;
};

// The per-consumer mutable state: editor + persistent session runner +
// node simulator.  Cores are cheap; a service shard owns one and resets it
// between requests.
class WorkbenchCore {
 public:
  explicit WorkbenchCore(const WorkbenchContext& context);

  const WorkbenchContext& context() const { return context_; }
  ed::Editor& editor() { return *editor_; }
  const ed::Editor& editor() const { return *editor_; }
  sim::NodeSim& node() { return *node_; }
  const sim::NodeSim& node() const { return *node_; }

  // Replays a session script through the persistent SessionRunner, so
  // consecutive scripts against the same diagram reuse the editor's
  // memoized checker session (see editor/session.h).
  ed::SessionResult runSession(const std::string& script);

  // Generates microcode and resolves the compiled image through the shared
  // cache, without running anything — the front half runProgram /
  // runEnsemble / the service's system requests all share.  The image
  // carries its static-verification report (CompiledProgram::verify,
  // computed once at cache insert and pointer-shared by every holder);
  // error-severity verifier findings are appended to the generation
  // diagnostics so they surface in the editor's message strip.
  CompileOutcome compileProgram(const prog::Program& program);

  // Runs `replicas` independent copies of an already-compiled image on the
  // shared pool — the back half of runEnsemble, exposed so the service
  // layer can verify/gate between compile and run.  Replicas partition into
  // SoA ReplicaBatch groups of `options.lanes` width (see EnsembleOptions),
  // dispatched one pool task per batch; results are index-stable and
  // bit-identical to scalar per-replica execution.
  struct ReplicaRunOutcome {
    std::vector<sim::RunStats> runs;
    int lanes_used = 1;
    int replicas_batched = 0;
    int replicas_scalar = 0;
  };
  ReplicaRunOutcome runReplicas(
      const std::shared_ptr<const sim::CompiledProgram>& program,
      int replicas, const EnsembleOptions& options);
  // Back-compat shorthand: default options, stats only.
  std::vector<sim::RunStats> runReplicas(
      const std::shared_ptr<const sim::CompiledProgram>& program,
      int replicas);

  // Generates microcode from the edited program, loads it, runs to halt.
  RunOutcome generateAndRun();

  // Runs an externally built semantic program instead of the editor's.
  // Compilation goes through the shared program cache, so repeated runs of
  // the same program (from this core or any other) lower it once.
  RunOutcome runProgram(const prog::Program& program);

  // Generates once, then runs `replicas` independent copies of the program
  // (parameter-ensemble style: same microcode, per-replica memory) as
  // submitted pool tasks, one per SoA batch.  runs[i] is replica i's stats,
  // deterministically; concurrent ensembles from different cores interleave
  // batch-by-batch on the shared pool.
  EnsembleOutcome runEnsemble(const prog::Program& program, int replicas,
                              const EnsembleOptions& options = {});

  // A multi-node system bound to this context's machine, pool, and
  // program cache.  The SystemOptions form exposes the SPMD lane width
  // (SystemOptions::node_lanes); the legacy form resolves it from the
  // environment like a default-constructed SystemOptions would.
  sim::HypercubeSystem makeSystem(int dimension, sim::SystemOptions options);
  sim::HypercubeSystem makeSystem(int dimension,
                                  sim::RouterOptions router = {},
                                  sim::NodeSim::Options node_options = {});

  // Returns the core to its freshly-constructed state (empty editor
  // documents, zeroed node memory, cold undo history).  Requests served
  // after a reset are bit-identical to requests served by a new core.
  void reset();

  // A cheap observable snapshot of the core's lifetime: how many times it
  // was reset, how many scripts it replayed, and the editor's cumulative
  // action/checker counters.  The service layer diffs two checkpoints
  // around a request to attribute per-request work — in particular
  // `editor.checker_session_hits`, the witness that a stateful session's
  // second command reused the still-warm memoized checker session instead
  // of re-running the checker.
  struct Checkpoint {
    std::uint64_t resets = 0;        // reset() calls (construction is one)
    std::uint64_t scripts_run = 0;   // runSession() calls since construction
    ed::EditorStats editor;          // cumulative editor counters
  };
  Checkpoint checkpoint() const;

  // ---- Durable session state ----
  //
  // serializeState() captures everything a later restoreState() needs to
  // resume the session on a *fresh* core, bit-identically:
  //
  //   * the session's script log — every runSession() script since the last
  //     reset, in order.  Editor state is restored by *replay* rather than
  //     by serializing editor data structures: PR 5's split-session parity
  //     guarantees replaying the same scripts reproduces the same editor
  //     (documents, undo history, memoized checker sessions) exactly.
  //   * the NodeSim durable snapshot (plane/cache memory, condition
  //     registers, sequencer position), with every double encoded as its
  //     16-hex-digit IEEE-754 bit pattern so the round trip is bit-exact —
  //     JSON decimal text is not.
  //   * the lifetime counters (resets, scripts_run), so checkpoint() diffs
  //     stay meaningful across a restore.
  //
  // The payload is a versioned common::Json document (kStateFormat /
  // kStateVersion); restoreState() rejects unknown formats and versions
  // with a descriptive error and leaves the core reset-but-usable on any
  // failure.  A session checkpointed mid-script-sequence and restored on a
  // fresh core replies to the remaining commands bit-identically to one
  // that never moved.
  static constexpr const char* kStateFormat = "nsc-session-checkpoint";
  static constexpr int kStateVersion = 1;
  common::Json serializeState() const;
  common::Status restoreState(const common::Json& state);

 private:
  const WorkbenchContext& context_;
  // optional<> so reset() can reconstruct in place: Editor, SessionRunner,
  // and NodeSim all hold references fixed at construction.
  std::optional<ed::Editor> editor_;
  std::optional<ed::SessionRunner> runner_;
  std::optional<sim::NodeSim> node_;
  std::uint64_t resets_ = 0;
  std::uint64_t scripts_run_ = 0;
  // Scripts replayed since the last reset, in order — the replay log that
  // serializeState() persists in place of the editor's internal state.
  std::vector<std::string> script_log_;
};

// The classic single-user workbench: owns a context and one core and
// forwards to them.
class Workbench {
 public:
  // `pool` is the execution pool every run this workbench drives shares
  // (ensemble runs, hypercube systems built via makeSystem); nullptr means
  // the process-wide exec::ThreadPool::shared().  Likewise `cache` for the
  // compiled-program cache.
  explicit Workbench(arch::MachineConfig config = {},
                     exec::ThreadPool* pool = nullptr,
                     sim::CompiledProgramCache* cache = nullptr)
      : context_(config, pool, cache), core_(context_) {}

  const arch::Machine& machine() const { return context_.machine(); }
  const WorkbenchContext& context() const { return context_; }
  WorkbenchCore& core() { return core_; }
  ed::Editor& editor() { return core_.editor(); }
  const ed::Editor& editor() const { return core_.editor(); }
  sim::NodeSim& node() { return core_.node(); }
  exec::ThreadPool& pool() const { return context_.pool(); }

  // Replays a session script into the editor (see editor/session.h) via
  // the core's persistent runner, keeping memoized checker sessions warm
  // across scripts.
  ed::SessionResult runSession(const std::string& script) {
    return core_.runSession(script);
  }

  RunOutcome generateAndRun() { return core_.generateAndRun(); }
  RunOutcome runProgram(const prog::Program& program) {
    return core_.runProgram(program);
  }
  EnsembleOutcome runEnsemble(const prog::Program& program, int replicas,
                              const EnsembleOptions& options = {}) {
    return core_.runEnsemble(program, replicas, options);
  }
  sim::HypercubeSystem makeSystem(int dimension, sim::SystemOptions options) {
    return core_.makeSystem(dimension, options);
  }
  sim::HypercubeSystem makeSystem(int dimension,
                                  sim::RouterOptions router = {},
                                  sim::NodeSim::Options node_options = {}) {
    return core_.makeSystem(dimension, router, node_options);
  }

 private:
  WorkbenchContext context_;
  WorkbenchCore core_;
};

// Builds an editor document from an existing semantic program, placing
// icons automatically on a grid (used to display generated or hand-built
// programs — e.g. the Figure 11 diagram — and by the visual debugger).
ed::Editor editorForProgram(const arch::Machine& machine,
                            const prog::Program& program);

}  // namespace nsc
