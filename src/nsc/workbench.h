// Workbench: the assembled visual programming environment of Figure 3 —
// graphical editor + checker + microcode generator — joined to the
// simulated NSC backend, so a program can go from diagrams to executed
// vectors in one object.  This is the library's top-level entry point.
#pragma once

#include <memory>

#include "arch/machine.h"
#include "editor/editor.h"
#include "editor/session.h"
#include "microcode/generator.h"
#include "sim/node.h"

namespace nsc {

struct RunOutcome {
  mc::GenerateResult generation;
  sim::RunStats run;
  bool ok() const { return generation.ok && !run.error; }
};

class Workbench {
 public:
  explicit Workbench(arch::MachineConfig config = {});

  const arch::Machine& machine() const { return machine_; }
  ed::Editor& editor() { return editor_; }
  const ed::Editor& editor() const { return editor_; }
  sim::NodeSim& node() { return node_; }

  // Replays a session script into the editor (see editor/session.h).
  ed::SessionResult runSession(const std::string& script) {
    return ed::runSession(editor_, script);
  }

  // Generates microcode from the edited program, loads it, runs to halt.
  RunOutcome generateAndRun();

  // Runs an externally built semantic program instead of the editor's.
  RunOutcome runProgram(const prog::Program& program);

 private:
  arch::Machine machine_;
  ed::Editor editor_;
  sim::NodeSim node_;
};

// Builds an editor document from an existing semantic program, placing
// icons automatically on a grid (used to display generated or hand-built
// programs — e.g. the Figure 11 diagram — and by the visual debugger).
ed::Editor editorForProgram(const arch::Machine& machine,
                            const prog::Program& program);

}  // namespace nsc
