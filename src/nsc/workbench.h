// Workbench: the assembled visual programming environment of Figure 3 —
// graphical editor + checker + microcode generator — joined to the
// simulated NSC backend, so a program can go from diagrams to executed
// vectors in one object.  This is the library's top-level entry point.
#pragma once

#include <memory>
#include <vector>

#include "arch/machine.h"
#include "editor/editor.h"
#include "editor/session.h"
#include "exec/thread_pool.h"
#include "microcode/generator.h"
#include "sim/hypercube.h"
#include "sim/node.h"

namespace nsc {

struct RunOutcome {
  mc::GenerateResult generation;
  sim::RunStats run;
  bool ok() const { return generation.ok && !run.error; }
};

// Result of an ensemble run: the (single, shared) generation plus one
// RunStats per replica — the microcode image is not duplicated per run.
struct EnsembleOutcome {
  mc::GenerateResult generation;
  std::vector<sim::RunStats> runs;  // runs[i] belongs to replica i
  bool ok() const {
    if (!generation.ok) return false;
    for (const sim::RunStats& r : runs) {
      if (r.error) return false;
    }
    return true;
  }
};

class Workbench {
 public:
  // `pool` is the execution pool every run this workbench drives shares
  // (ensemble runs, hypercube systems built via makeSystem); nullptr means
  // the process-wide exec::ThreadPool::shared().
  explicit Workbench(arch::MachineConfig config = {},
                     exec::ThreadPool* pool = nullptr);

  const arch::Machine& machine() const { return machine_; }
  ed::Editor& editor() { return editor_; }
  const ed::Editor& editor() const { return editor_; }
  sim::NodeSim& node() { return node_; }
  exec::ThreadPool& pool() const { return *pool_; }

  // Replays a session script into the editor (see editor/session.h).
  ed::SessionResult runSession(const std::string& script) {
    return ed::runSession(editor_, script);
  }

  // Generates microcode from the edited program, loads it, runs to halt.
  RunOutcome generateAndRun();

  // Runs an externally built semantic program instead of the editor's.
  RunOutcome runProgram(const prog::Program& program);

  // Generates once, then runs `replicas` independent NodeSim copies of the
  // program on the shared pool (parameter-ensemble style: same microcode,
  // per-replica memory).  runs[i] is replica i's stats, deterministically.
  EnsembleOutcome runEnsemble(const prog::Program& program, int replicas);

  // A multi-node system bound to this workbench's machine and pool, so
  // every phase it runs reuses the same worker threads.
  sim::HypercubeSystem makeSystem(int dimension,
                                  sim::RouterOptions router = {},
                                  sim::NodeSim::Options node_options = {});

 private:
  arch::Machine machine_;
  exec::ThreadPool* pool_;
  ed::Editor editor_;
  sim::NodeSim node_;
};

// Builds an editor document from an existing semantic program, placing
// icons automatically on a grid (used to display generated or hand-built
// programs — e.g. the Figure 11 diagram — and by the visual debugger).
ed::Editor editorForProgram(const arch::Machine& machine,
                            const prog::Program& program);

}  // namespace nsc
