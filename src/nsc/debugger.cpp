#include "nsc/debugger.h"

#include "common/strings.h"
#include "editor/window_render.h"
#include "nsc/workbench.h"

namespace nsc {

using common::strFormat;

VisualDebugger::VisualDebugger(const arch::Machine& machine,
                               prog::Program program, DebuggerOptions options)
    : machine_(machine), program_(std::move(program)), options_(options) {}

void VisualDebugger::attach(sim::NodeSim& node) {
  frames_.clear();
  node.setTraceSink([this](const sim::TraceFrame& frame) {
    if (options_.sample_every > 1 &&
        frame.cycle % options_.sample_every != 0) {
      return;
    }
    if (frames_.size() >= options_.max_frames) {
      frames_.erase(frames_.begin());
    }
    frames_.push_back(frame);
  });
}

std::string VisualDebugger::describeFrame(const sim::TraceFrame& frame) const {
  std::string out = strFormat(
      "instruction %d (%s), cycle %llu:\n", frame.instruction,
      frame.instruction < static_cast<int>(program_.size())
          ? program_[static_cast<std::size_t>(frame.instruction)].name.c_str()
          : "?",
      static_cast<unsigned long long>(frame.cycle));
  for (std::size_t i = 0;
       i < frame.source_tokens.size() && i < machine_.sources().size(); ++i) {
    const sim::Token& tok = frame.source_tokens[i];
    if (!tok.valid) continue;
    out += strFormat("  %-14s = %-12g", machine_.sources()[i].toString().c_str(),
                     tok.value);
    if (tok.index >= 0) out += strFormat(" [el %d]", tok.index);
    if (tok.last) out += " (last)";
    out += '\n';
  }
  return out;
}

std::vector<std::string> VisualDebugger::describeAllFrames(
    exec::ThreadPool* pool) const {
  if (pool == nullptr) pool = &exec::ThreadPool::shared();
  std::vector<std::string> out(frames_.size());
  pool->parallelFor(0, frames_.size(), 8,
                    [this, &out](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        out[i] = describeFrame(frames_[i]);
                      }
                    });
  return out;
}

std::string VisualDebugger::annotatedDiagram(
    const sim::TraceFrame& frame) const {
  if (frame.instruction < 0 ||
      frame.instruction >= static_cast<int>(program_.size())) {
    return "(no such instruction)\n";
  }
  prog::Program single;
  single.pipelines.push_back(
      program_[static_cast<std::size_t>(frame.instruction)]);
  ed::Editor editor = editorForProgram(machine_, single);
  std::string out = renderDiagramAscii(editor);
  out += strFormat("-- cycle %llu values --\n",
                   static_cast<unsigned long long>(frame.cycle));
  out += describeFrame(frame);
  return out;
}

std::string VisualDebugger::endpointHistory(const arch::Endpoint& source) const {
  const int index = machine_.sourceIndex(source);
  if (index < 0) return "(not a source endpoint)\n";
  std::string out = source.toString() + ":\n";
  for (const sim::TraceFrame& frame : frames_) {
    const sim::Token& tok = frame.source_tokens[static_cast<std::size_t>(index)];
    out += strFormat("  i%02d c%-6llu %s", frame.instruction,
                     static_cast<unsigned long long>(frame.cycle),
                     tok.valid ? strFormat("%g", tok.value).c_str() : "-");
    if (tok.valid && tok.index >= 0) out += strFormat(" [el %d]", tok.index);
    out += '\n';
  }
  return out;
}

}  // namespace nsc
