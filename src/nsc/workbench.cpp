#include "nsc/workbench.h"

#include <future>

#include "sim/verify.h"

namespace nsc {

WorkbenchCore::WorkbenchCore(const WorkbenchContext& context)
    : context_(context) {
  reset();
}

void WorkbenchCore::reset() {
  // Order matters: the runner holds a reference to the editor, so it is
  // re-bound after the editor is reconstructed.
  editor_.emplace(context_.machine());
  runner_.emplace(*editor_);
  node_.emplace(context_.machine());
  ++resets_;
}

ed::SessionResult WorkbenchCore::runSession(const std::string& script) {
  ++scripts_run_;
  return runner_->runScript(script);
}

WorkbenchCore::Checkpoint WorkbenchCore::checkpoint() const {
  Checkpoint checkpoint;
  checkpoint.resets = resets_;
  checkpoint.scripts_run = scripts_run_;
  checkpoint.editor = editor_->stats();
  return checkpoint;
}

RunOutcome WorkbenchCore::generateAndRun() {
  return runProgram(editor_->program());
}

CompileOutcome WorkbenchCore::compileProgram(const prog::Program& program) {
  CompileOutcome outcome;
  mc::Generator generator(context_.machine());
  outcome.generation = generator.generate(program);
  if (!outcome.generation.ok) return outcome;
  outcome.program = context_.cache().get(context_.machine(),
                                         outcome.generation.exe,
                                         &outcome.cache_hit);
  // Surface verifier errors next to the generator's own diagnostics (the
  // report itself rides outcome.program->verify).  Warnings stay in the
  // report only; generation.ok is untouched — execution still runs and
  // faults exactly as it always did, the service layer is what gates.
  if (outcome.program != nullptr && outcome.program->verify != nullptr &&
      !outcome.program->verify->clean()) {
    const check::DiagnosticList bridged =
        outcome.program->verify->toDiagnostics();
    for (const check::Diagnostic& d : bridged.all()) {
      if (d.severity == check::Severity::kError) {
        outcome.generation.diagnostics.add(d.rule, d.severity, d.message,
                                           d.pipeline);
      }
    }
  }
  return outcome;
}

RunOutcome WorkbenchCore::runProgram(const prog::Program& program) {
  RunOutcome outcome;
  CompileOutcome compiled = compileProgram(program);
  outcome.generation = std::move(compiled.generation);
  outcome.program = std::move(compiled.program);
  outcome.cache_hit = compiled.cache_hit;
  if (!outcome.generation.ok) return outcome;
  node_->load(outcome.program);
  outcome.run = node_->run();
  return outcome;
}

EnsembleOutcome WorkbenchCore::runEnsemble(const prog::Program& program,
                                           int replicas) {
  EnsembleOutcome outcome;
  CompileOutcome compiled_outcome = compileProgram(program);
  outcome.generation = std::move(compiled_outcome.generation);
  outcome.program = std::move(compiled_outcome.program);
  outcome.cache_hit = compiled_outcome.cache_hit;
  if (!outcome.generation.ok) return outcome;
  outcome.runs = runReplicas(outcome.program, replicas);
  return outcome;
}

std::vector<sim::RunStats> WorkbenchCore::runReplicas(
    const std::shared_ptr<const sim::CompiledProgram>& program,
    int replicas) {
  std::vector<sim::RunStats> runs;
  if (program == nullptr || replicas <= 0) return runs;
  // One compiled image shared by every replica (and, through the cache, by
  // every other consumer of the same program); the pool only simulates.
  runs.resize(static_cast<std::size_t>(replicas));
  // Replicas go in as independent submitted tasks rather than one
  // parallelFor job: concurrent ensembles from different cores (service
  // shards) then interleave replica-by-replica instead of serializing on
  // the pool's one-job-at-a-time range path.  Each result lands in its own
  // slot, so scheduling order cannot affect the outcome.
  std::vector<std::future<void>> pending;
  pending.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    pending.push_back(context_.pool().submit([this, &runs, &program, i] {
      sim::NodeSim replica(context_.machine());
      replica.load(program);
      runs[i] = replica.run();
    }));
  }
  // The caller participates instead of idling: drain queued pool tasks
  // (this ensemble's replicas, or anyone else's work) until the queue is
  // empty, then settle the futures.  Every task references
  // `runs`/`program`, so all futures must settle before this frame can
  // unwind — collect the first failure and rethrow only after the whole
  // ensemble has drained.
  while (context_.pool().tryRunOneTask()) {
  }
  std::exception_ptr error;
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  return runs;
}

sim::HypercubeSystem WorkbenchCore::makeSystem(
    int dimension, sim::RouterOptions router,
    sim::NodeSim::Options node_options) {
  return sim::HypercubeSystem(context_.machine(), dimension, router,
                              node_options, &context_.pool(),
                              &context_.cache());
}

ed::Editor editorForProgram(const arch::Machine& machine,
                            const prog::Program& program) {
  ed::Editor editor(machine);
  bool first = true;
  for (const prog::PipelineDiagram& diagram : program.pipelines) {
    if (first) {
      editor.renamePipeline(diagram.name);
      first = false;
    } else {
      editor.insertPipeline(diagram.name);
    }
    // Grid placement: two columns inside the drawing area.
    const ed::WindowLayout& layout = editor.layout();
    int col = 0, row = 0;
    for (const prog::AlsUse& use : diagram.als_uses) {
      const arch::AlsKind kind = machine.als(use.als).kind;
      ed::IconKind icon = ed::IconKind::kSinglet;
      if (kind == arch::AlsKind::kDoublet) {
        icon = use.bypass ? ed::IconKind::kDoubletBypass : ed::IconKind::kDoublet;
      } else if (kind == arch::AlsKind::kTriplet) {
        icon = ed::IconKind::kTriplet;
      }
      const ed::Point pos{layout.drawing.x + 30 + col * 190,
                          layout.drawing.y + 30 + row * 210};
      editor.placeIcon(icon, use.als, pos);
      if (++col == 4) {
        col = 0;
        ++row;
      }
    }
    // Copy the full semantic state (ops, DMA, connections) and rebuild the
    // wires: re-apply connections through the editor for wire geometry,
    // then overwrite the semantic record wholesale so register-file
    // details match exactly.
    for (const prog::Connection& c : diagram.connections) {
      editor.connect(c.from, c.to);
    }
    editor.overwriteSemantic(diagram);
  }
  editor.jumpTo(0);
  return editor;
}

}  // namespace nsc
