#include "nsc/workbench.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>

#include "common/strings.h"
#include "sim/verify.h"

namespace nsc {

namespace {

// Bit-exact double <-> text: every word is its 16-hex-digit IEEE-754 bit
// pattern.  JSON decimal text does not round-trip doubles exactly; this
// does, which is what makes checkpoint/restore bit-identical.
void appendWordHex(std::string& out, double word) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(word));
  std::memcpy(&bits, &word, sizeof(bits));
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(bits >> static_cast<unsigned>(shift)) & 0xfULL]);
  }
}

std::string encodeWords(const std::vector<double>& words) {
  std::string out;
  out.reserve(words.size() * 16);
  for (const double w : words) appendWordHex(out, w);
  return out;
}

bool decodeWords(const std::string& hex, std::vector<double>& out) {
  if (hex.size() % 16 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 16);
  for (std::size_t i = 0; i < hex.size(); i += 16) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < 16; ++j) {
      const char c = hex[i + j];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(10 + (c - 'a'));
      } else {
        return false;
      }
      bits = (bits << 4) | digit;
    }
    double word = 0.0;
    std::memcpy(&word, &bits, sizeof(word));
    out.push_back(word);
  }
  return true;
}

// True when every word is bit-pattern zero (+0.0; -0.0 and denormals count
// as data).  Freshly-constructed cache buffers are all +0.0, so buffers
// that still look fresh are omitted from the payload.
bool allZeroBits(const std::vector<double>& words) {
  for (const double w : words) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &w, sizeof(bits));
    if (bits != 0) return false;
  }
  return true;
}

}  // namespace

WorkbenchCore::WorkbenchCore(const WorkbenchContext& context)
    : context_(context) {
  reset();
}

void WorkbenchCore::reset() {
  // Order matters: the runner holds a reference to the editor, so it is
  // re-bound after the editor is reconstructed.
  editor_.emplace(context_.machine());
  runner_.emplace(*editor_);
  node_.emplace(context_.machine());
  script_log_.clear();
  ++resets_;
}

ed::SessionResult WorkbenchCore::runSession(const std::string& script) {
  ++scripts_run_;
  script_log_.push_back(script);
  return runner_->runScript(script);
}

common::Json WorkbenchCore::serializeState() const {
  common::JsonObject root;
  root["format"] = common::Json(kStateFormat);
  root["version"] = common::Json(kStateVersion);
  root["resets"] = common::Json(resets_);
  root["scripts_run"] = common::Json(scripts_run_);

  common::JsonArray scripts;
  scripts.reserve(script_log_.size());
  for (const std::string& script : script_log_) {
    scripts.emplace_back(script);
  }
  root["scripts"] = common::Json(std::move(scripts));

  const sim::NodeSim::Snapshot snap = node_->snapshot();
  common::JsonObject node;
  node["pc"] = common::Json(snap.pc);
  node["halted"] = common::Json(snap.halted);
  common::JsonArray cond;
  cond.reserve(snap.cond_regs.size());
  for (const bool b : snap.cond_regs) cond.emplace_back(b);
  node["cond"] = common::Json(std::move(cond));
  // Planes allocate on first touch, so untouched planes are empty vectors
  // and omitted; allocated planes are stored whole (including trailing
  // zeros) so the restored backing-store sizes match exactly.
  common::JsonArray planes;
  for (std::size_t p = 0; p < snap.planes.size(); ++p) {
    if (snap.planes[p].empty()) continue;
    common::JsonObject entry;
    entry["plane"] = common::Json(static_cast<std::uint64_t>(p));
    entry["words"] = common::Json(encodeWords(snap.planes[p]));
    planes.emplace_back(std::move(entry));
  }
  node["planes"] = common::Json(std::move(planes));
  // Cache buffers are fixed-size and zero-filled at construction; only
  // buffers holding data are stored.
  common::JsonArray caches;
  for (std::size_t c = 0; c < snap.caches.size(); ++c) {
    for (std::size_t b = 0; b < snap.caches[c].size(); ++b) {
      if (allZeroBits(snap.caches[c][b])) continue;
      common::JsonObject entry;
      entry["cache"] = common::Json(static_cast<std::uint64_t>(c));
      entry["buffer"] = common::Json(static_cast<std::uint64_t>(b));
      entry["words"] = common::Json(encodeWords(snap.caches[c][b]));
      caches.emplace_back(std::move(entry));
    }
  }
  node["caches"] = common::Json(std::move(caches));
  root["node"] = common::Json(std::move(node));
  return common::Json(std::move(root));
}

common::Status WorkbenchCore::restoreState(const common::Json& state) {
  using common::strFormat;
  // Validate the envelope before touching any state, so a wrong-version
  // payload leaves the core exactly as it was.
  if (!state.isObject()) {
    return common::Status::error("checkpoint: payload is not an object");
  }
  if (state.getString("format") != kStateFormat) {
    return common::Status::error(strFormat(
        "checkpoint: unsupported format '%s' (expected '%s')",
        state.getString("format").c_str(), kStateFormat));
  }
  if (state.getInt("version", -1) != kStateVersion) {
    return common::Status::error(strFormat(
        "checkpoint: unsupported version %lld (this build reads version %d)",
        static_cast<long long>(state.getInt("version", -1)), kStateVersion));
  }
  if (!state.has("scripts") || !state.at("scripts").isArray() ||
      !state.has("node") || !state.at("node").isObject()) {
    return common::Status::error("checkpoint: missing scripts/node sections");
  }
  for (const common::Json& script : state.at("scripts").asArray()) {
    if (!script.isString()) {
      return common::Status::error("checkpoint: script entry is not a string");
    }
  }

  // From here on the core is mutated; any failure resets it back to the
  // freshly-constructed state so it stays usable (just empty).
  reset();
  const auto fail = [this](std::string message) {
    reset();
    return common::Status::error(std::move(message));
  };

  // Editor state restores by replay: PR 5's split-session parity makes the
  // replayed editor (documents, undo history, warm checker sessions)
  // bit-identical to the one that was checkpointed.
  for (const common::Json& script : state.at("scripts").asArray()) {
    runSession(script.asString());
  }

  // Node memory restores by direct image adoption, starting from the fresh
  // node's snapshot so every shape matches this machine config.
  sim::NodeSim::Snapshot snap = node_->snapshot();
  const common::Json& node = state.at("node");
  snap.pc = static_cast<int>(node.getInt("pc", 0));
  snap.halted = node.getBool("halted", false);
  if (node.has("cond")) {
    const common::JsonArray& cond = node.at("cond").asArray();
    if (cond.size() != snap.cond_regs.size()) {
      return fail("checkpoint: condition-register count mismatch");
    }
    for (std::size_t i = 0; i < cond.size(); ++i) {
      if (!cond[i].isBool()) {
        return fail("checkpoint: condition register is not a bool");
      }
      snap.cond_regs[i] = cond[i].asBool();
    }
  }
  if (node.has("planes")) {
    for (const common::Json& entry : node.at("planes").asArray()) {
      const std::int64_t plane = entry.getInt("plane", -1);
      if (plane < 0 || plane >= static_cast<std::int64_t>(snap.planes.size())) {
        return fail(strFormat("checkpoint: plane %lld out of range",
                              static_cast<long long>(plane)));
      }
      if (!decodeWords(entry.getString("words"),
                       snap.planes[static_cast<std::size_t>(plane)])) {
        return fail(strFormat("checkpoint: plane %lld has malformed words",
                              static_cast<long long>(plane)));
      }
    }
  }
  if (node.has("caches")) {
    for (const common::Json& entry : node.at("caches").asArray()) {
      const std::int64_t cache = entry.getInt("cache", -1);
      const std::int64_t buffer = entry.getInt("buffer", -1);
      if (cache < 0 || cache >= static_cast<std::int64_t>(snap.caches.size())) {
        return fail(strFormat("checkpoint: cache %lld out of range",
                              static_cast<long long>(cache)));
      }
      auto& buffers = snap.caches[static_cast<std::size_t>(cache)];
      if (buffer < 0 || buffer >= static_cast<std::int64_t>(buffers.size())) {
        return fail(strFormat("checkpoint: cache buffer %lld out of range",
                              static_cast<long long>(buffer)));
      }
      auto& words = buffers[static_cast<std::size_t>(buffer)];
      const std::size_t expected = words.size();
      if (!decodeWords(entry.getString("words"), words) ||
          words.size() != expected) {
        return fail(strFormat("checkpoint: cache %lld/%lld has malformed words",
                              static_cast<long long>(cache),
                              static_cast<long long>(buffer)));
      }
    }
  }
  node_->restoreSnapshot(std::move(snap));

  // Lifetime counters carry over so checkpoint() diffs stay continuous
  // across the migration (the replay above bumped them; overwrite with the
  // source core's values).
  resets_ = static_cast<std::uint64_t>(state.getInt("resets", 1));
  scripts_run_ =
      static_cast<std::uint64_t>(state.getInt("scripts_run",
                                              static_cast<std::int64_t>(
                                                  script_log_.size())));
  return common::Status::ok();
}

WorkbenchCore::Checkpoint WorkbenchCore::checkpoint() const {
  Checkpoint checkpoint;
  checkpoint.resets = resets_;
  checkpoint.scripts_run = scripts_run_;
  checkpoint.editor = editor_->stats();
  return checkpoint;
}

RunOutcome WorkbenchCore::generateAndRun() {
  return runProgram(editor_->program());
}

CompileOutcome WorkbenchCore::compileProgram(const prog::Program& program) {
  CompileOutcome outcome;
  mc::Generator generator(context_.machine());
  outcome.generation = generator.generate(program);
  if (!outcome.generation.ok) return outcome;
  outcome.program = context_.cache().get(context_.machine(),
                                         outcome.generation.exe,
                                         &outcome.cache_hit);
  // Surface verifier errors next to the generator's own diagnostics (the
  // report itself rides outcome.program->verify).  Warnings stay in the
  // report only; generation.ok is untouched — execution still runs and
  // faults exactly as it always did, the service layer is what gates.
  if (outcome.program != nullptr && outcome.program->verify != nullptr &&
      !outcome.program->verify->clean()) {
    const check::DiagnosticList bridged =
        outcome.program->verify->toDiagnostics();
    for (const check::Diagnostic& d : bridged.all()) {
      if (d.severity == check::Severity::kError) {
        outcome.generation.diagnostics.add(d.rule, d.severity, d.message,
                                           d.pipeline);
      }
    }
  }
  return outcome;
}

RunOutcome WorkbenchCore::runProgram(const prog::Program& program) {
  RunOutcome outcome;
  CompileOutcome compiled = compileProgram(program);
  outcome.generation = std::move(compiled.generation);
  outcome.program = std::move(compiled.program);
  outcome.cache_hit = compiled.cache_hit;
  if (!outcome.generation.ok) return outcome;
  node_->load(outcome.program);
  outcome.run = node_->run();
  return outcome;
}

EnsembleOutcome WorkbenchCore::runEnsemble(const prog::Program& program,
                                           int replicas,
                                           const EnsembleOptions& options) {
  EnsembleOutcome outcome;
  CompileOutcome compiled_outcome = compileProgram(program);
  outcome.generation = std::move(compiled_outcome.generation);
  outcome.program = std::move(compiled_outcome.program);
  outcome.cache_hit = compiled_outcome.cache_hit;
  if (!outcome.generation.ok) return outcome;
  ReplicaRunOutcome replicas_outcome =
      runReplicas(outcome.program, replicas, options);
  outcome.runs = std::move(replicas_outcome.runs);
  outcome.lanes_used = replicas_outcome.lanes_used;
  outcome.replicas_batched = replicas_outcome.replicas_batched;
  outcome.replicas_scalar = replicas_outcome.replicas_scalar;
  return outcome;
}

std::vector<sim::RunStats> WorkbenchCore::runReplicas(
    const std::shared_ptr<const sim::CompiledProgram>& program,
    int replicas) {
  return runReplicas(program, replicas, EnsembleOptions{}).runs;
}

WorkbenchCore::ReplicaRunOutcome WorkbenchCore::runReplicas(
    const std::shared_ptr<const sim::CompiledProgram>& program, int replicas,
    const EnsembleOptions& options) {
  ReplicaRunOutcome outcome;
  if (program == nullptr || replicas <= 0) return outcome;
  const int lanes = sim::resolveEnsembleLanes(options.lanes);
  outcome.lanes_used = lanes;
  // One compiled image shared by every replica (and, through the cache, by
  // every other consumer of the same program); the pool only simulates.
  std::vector<sim::RunStats>& runs = outcome.runs;
  runs.resize(static_cast<std::size_t>(replicas));
  // Replicas partition into contiguous SoA batches of `lanes` width, each
  // an independent submitted task rather than one parallelFor job:
  // concurrent ensembles from different cores (service shards) then
  // interleave batch-by-batch instead of serializing on the pool's
  // one-job-at-a-time range path.  Each result lands in its own slot, so
  // scheduling order cannot affect the outcome.  Width-1 remainders (and
  // the lanes == 1 configuration) run directly on the scalar engine.
  std::atomic<int> scalar_replicas{0};
  std::vector<std::future<void>> pending;
  pending.reserve((runs.size() + static_cast<std::size_t>(lanes) - 1) /
                  static_cast<std::size_t>(lanes));
  for (int base = 0; base < replicas; base += lanes) {
    const int width = std::min(lanes, replicas - base);
    if (width == 1) {
      pending.push_back(context_.pool().submit(
          [this, &runs, &program, &options, base, &scalar_replicas] {
            sim::NodeSim replica(context_.machine());
            replica.load(program);
            if (options.init) {
              sim::NodeReplicaStore store(replica);
              options.init(base, store);
            }
            runs[static_cast<std::size_t>(base)] = replica.run();
            scalar_replicas.fetch_add(1, std::memory_order_relaxed);
          }));
      continue;
    }
    pending.push_back(context_.pool().submit(
        [this, &runs, &program, &options, base, width, &scalar_replicas] {
          sim::ReplicaBatch batch(context_.machine(), width);
          batch.load(program);
          if (options.init) {
            for (int w = 0; w < width; ++w) {
              sim::ReplicaBatch::LaneStore store(batch, w);
              options.init(base + w, store);
            }
          }
          sim::BatchRunResult result = batch.run();
          for (int w = 0; w < width; ++w) {
            runs[static_cast<std::size_t>(base + w)] =
                std::move(result.runs[static_cast<std::size_t>(w)]);
          }
          scalar_replicas.fetch_add(result.drained_scalar,
                                    std::memory_order_relaxed);
        }));
  }
  // The caller participates instead of idling: drain queued pool tasks
  // (this ensemble's batches, or anyone else's work) until the queue is
  // empty, then settle the futures.  Every task references
  // `runs`/`program`, so all futures must settle before this frame can
  // unwind — collect the first failure and rethrow only after the whole
  // ensemble has drained.
  while (context_.pool().tryRunOneTask()) {
  }
  std::exception_ptr error;
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  outcome.replicas_scalar = scalar_replicas.load(std::memory_order_relaxed);
  outcome.replicas_batched = replicas - outcome.replicas_scalar;
  return outcome;
}

sim::HypercubeSystem WorkbenchCore::makeSystem(int dimension,
                                               sim::SystemOptions options) {
  return sim::HypercubeSystem(context_.machine(), dimension, options,
                              &context_.pool(), &context_.cache());
}

sim::HypercubeSystem WorkbenchCore::makeSystem(
    int dimension, sim::RouterOptions router,
    sim::NodeSim::Options node_options) {
  return makeSystem(dimension,
                    sim::SystemOptions{.router = router, .node = node_options});
}

ed::Editor editorForProgram(const arch::Machine& machine,
                            const prog::Program& program) {
  ed::Editor editor(machine);
  bool first = true;
  for (const prog::PipelineDiagram& diagram : program.pipelines) {
    if (first) {
      editor.renamePipeline(diagram.name);
      first = false;
    } else {
      editor.insertPipeline(diagram.name);
    }
    // Grid placement: two columns inside the drawing area.
    const ed::WindowLayout& layout = editor.layout();
    int col = 0, row = 0;
    for (const prog::AlsUse& use : diagram.als_uses) {
      const arch::AlsKind kind = machine.als(use.als).kind;
      ed::IconKind icon = ed::IconKind::kSinglet;
      if (kind == arch::AlsKind::kDoublet) {
        icon = use.bypass ? ed::IconKind::kDoubletBypass : ed::IconKind::kDoublet;
      } else if (kind == arch::AlsKind::kTriplet) {
        icon = ed::IconKind::kTriplet;
      }
      const ed::Point pos{layout.drawing.x + 30 + col * 190,
                          layout.drawing.y + 30 + row * 210};
      editor.placeIcon(icon, use.als, pos);
      if (++col == 4) {
        col = 0;
        ++row;
      }
    }
    // Copy the full semantic state (ops, DMA, connections) and rebuild the
    // wires: re-apply connections through the editor for wire geometry,
    // then overwrite the semantic record wholesale so register-file
    // details match exactly.
    for (const prog::Connection& c : diagram.connections) {
      editor.connect(c.from, c.to);
    }
    editor.overwriteSemantic(diagram);
  }
  editor.jumpTo(0);
  return editor;
}

}  // namespace nsc
