#include "nsc/workbench.h"

namespace nsc {

Workbench::Workbench(arch::MachineConfig config, exec::ThreadPool* pool)
    : machine_(config),
      pool_(pool != nullptr ? pool : &exec::ThreadPool::shared()),
      editor_(machine_),
      node_(machine_) {}

RunOutcome Workbench::generateAndRun() { return runProgram(editor_.program()); }

RunOutcome Workbench::runProgram(const prog::Program& program) {
  RunOutcome outcome;
  mc::Generator generator(machine_);
  outcome.generation = generator.generate(program);
  if (!outcome.generation.ok) return outcome;
  node_.load(outcome.generation.exe);
  outcome.run = node_.run();
  return outcome;
}

EnsembleOutcome Workbench::runEnsemble(const prog::Program& program,
                                       int replicas) {
  EnsembleOutcome outcome;
  mc::Generator generator(machine_);
  outcome.generation = generator.generate(program);
  if (!outcome.generation.ok || replicas <= 0) return outcome;
  // One compiled image shared by every replica: decode/lowering happen once
  // on the calling thread, the pool only simulates.
  const auto compiled =
      sim::CompiledProgram::compile(machine_, outcome.generation.exe);
  outcome.runs.resize(static_cast<std::size_t>(replicas));
  exec::TaskGroup group(*pool_);
  for (std::size_t i = 0; i < outcome.runs.size(); ++i) {
    group.run([this, &outcome, &compiled, i] {
      sim::NodeSim replica(machine_);
      replica.load(compiled);
      outcome.runs[i] = replica.run();
    });
  }
  group.wait();
  return outcome;
}

sim::HypercubeSystem Workbench::makeSystem(int dimension,
                                           sim::RouterOptions router,
                                           sim::NodeSim::Options node_options) {
  return sim::HypercubeSystem(machine_, dimension, router, node_options,
                              pool_);
}

ed::Editor editorForProgram(const arch::Machine& machine,
                            const prog::Program& program) {
  ed::Editor editor(machine);
  bool first = true;
  for (const prog::PipelineDiagram& diagram : program.pipelines) {
    if (first) {
      editor.renamePipeline(diagram.name);
      first = false;
    } else {
      editor.insertPipeline(diagram.name);
    }
    // Grid placement: two columns inside the drawing area.
    const ed::WindowLayout& layout = editor.layout();
    int col = 0, row = 0;
    for (const prog::AlsUse& use : diagram.als_uses) {
      const arch::AlsKind kind = machine.als(use.als).kind;
      ed::IconKind icon = ed::IconKind::kSinglet;
      if (kind == arch::AlsKind::kDoublet) {
        icon = use.bypass ? ed::IconKind::kDoubletBypass : ed::IconKind::kDoublet;
      } else if (kind == arch::AlsKind::kTriplet) {
        icon = ed::IconKind::kTriplet;
      }
      const ed::Point pos{layout.drawing.x + 30 + col * 190,
                          layout.drawing.y + 30 + row * 210};
      editor.placeIcon(icon, use.als, pos);
      if (++col == 4) {
        col = 0;
        ++row;
      }
    }
    // Copy the full semantic state (ops, DMA, connections) and rebuild the
    // wires: re-apply connections through the editor for wire geometry,
    // then overwrite the semantic record wholesale so register-file
    // details match exactly.
    for (const prog::Connection& c : diagram.connections) {
      editor.connect(c.from, c.to);
    }
    editor.overwriteSemantic(diagram);
  }
  editor.jumpTo(0);
  return editor;
}

}  // namespace nsc
