#include "nsc/workbench.h"

#include <algorithm>
#include <atomic>
#include <future>

#include "sim/verify.h"

namespace nsc {

WorkbenchCore::WorkbenchCore(const WorkbenchContext& context)
    : context_(context) {
  reset();
}

void WorkbenchCore::reset() {
  // Order matters: the runner holds a reference to the editor, so it is
  // re-bound after the editor is reconstructed.
  editor_.emplace(context_.machine());
  runner_.emplace(*editor_);
  node_.emplace(context_.machine());
  ++resets_;
}

ed::SessionResult WorkbenchCore::runSession(const std::string& script) {
  ++scripts_run_;
  return runner_->runScript(script);
}

WorkbenchCore::Checkpoint WorkbenchCore::checkpoint() const {
  Checkpoint checkpoint;
  checkpoint.resets = resets_;
  checkpoint.scripts_run = scripts_run_;
  checkpoint.editor = editor_->stats();
  return checkpoint;
}

RunOutcome WorkbenchCore::generateAndRun() {
  return runProgram(editor_->program());
}

CompileOutcome WorkbenchCore::compileProgram(const prog::Program& program) {
  CompileOutcome outcome;
  mc::Generator generator(context_.machine());
  outcome.generation = generator.generate(program);
  if (!outcome.generation.ok) return outcome;
  outcome.program = context_.cache().get(context_.machine(),
                                         outcome.generation.exe,
                                         &outcome.cache_hit);
  // Surface verifier errors next to the generator's own diagnostics (the
  // report itself rides outcome.program->verify).  Warnings stay in the
  // report only; generation.ok is untouched — execution still runs and
  // faults exactly as it always did, the service layer is what gates.
  if (outcome.program != nullptr && outcome.program->verify != nullptr &&
      !outcome.program->verify->clean()) {
    const check::DiagnosticList bridged =
        outcome.program->verify->toDiagnostics();
    for (const check::Diagnostic& d : bridged.all()) {
      if (d.severity == check::Severity::kError) {
        outcome.generation.diagnostics.add(d.rule, d.severity, d.message,
                                           d.pipeline);
      }
    }
  }
  return outcome;
}

RunOutcome WorkbenchCore::runProgram(const prog::Program& program) {
  RunOutcome outcome;
  CompileOutcome compiled = compileProgram(program);
  outcome.generation = std::move(compiled.generation);
  outcome.program = std::move(compiled.program);
  outcome.cache_hit = compiled.cache_hit;
  if (!outcome.generation.ok) return outcome;
  node_->load(outcome.program);
  outcome.run = node_->run();
  return outcome;
}

EnsembleOutcome WorkbenchCore::runEnsemble(const prog::Program& program,
                                           int replicas,
                                           const EnsembleOptions& options) {
  EnsembleOutcome outcome;
  CompileOutcome compiled_outcome = compileProgram(program);
  outcome.generation = std::move(compiled_outcome.generation);
  outcome.program = std::move(compiled_outcome.program);
  outcome.cache_hit = compiled_outcome.cache_hit;
  if (!outcome.generation.ok) return outcome;
  ReplicaRunOutcome replicas_outcome =
      runReplicas(outcome.program, replicas, options);
  outcome.runs = std::move(replicas_outcome.runs);
  outcome.lanes_used = replicas_outcome.lanes_used;
  outcome.replicas_batched = replicas_outcome.replicas_batched;
  outcome.replicas_scalar = replicas_outcome.replicas_scalar;
  return outcome;
}

std::vector<sim::RunStats> WorkbenchCore::runReplicas(
    const std::shared_ptr<const sim::CompiledProgram>& program,
    int replicas) {
  return runReplicas(program, replicas, EnsembleOptions{}).runs;
}

WorkbenchCore::ReplicaRunOutcome WorkbenchCore::runReplicas(
    const std::shared_ptr<const sim::CompiledProgram>& program, int replicas,
    const EnsembleOptions& options) {
  ReplicaRunOutcome outcome;
  if (program == nullptr || replicas <= 0) return outcome;
  const int lanes = sim::resolveEnsembleLanes(options.lanes);
  outcome.lanes_used = lanes;
  // One compiled image shared by every replica (and, through the cache, by
  // every other consumer of the same program); the pool only simulates.
  std::vector<sim::RunStats>& runs = outcome.runs;
  runs.resize(static_cast<std::size_t>(replicas));
  // Replicas partition into contiguous SoA batches of `lanes` width, each
  // an independent submitted task rather than one parallelFor job:
  // concurrent ensembles from different cores (service shards) then
  // interleave batch-by-batch instead of serializing on the pool's
  // one-job-at-a-time range path.  Each result lands in its own slot, so
  // scheduling order cannot affect the outcome.  Width-1 remainders (and
  // the lanes == 1 configuration) run directly on the scalar engine.
  std::atomic<int> scalar_replicas{0};
  std::vector<std::future<void>> pending;
  pending.reserve((runs.size() + static_cast<std::size_t>(lanes) - 1) /
                  static_cast<std::size_t>(lanes));
  for (int base = 0; base < replicas; base += lanes) {
    const int width = std::min(lanes, replicas - base);
    if (width == 1) {
      pending.push_back(context_.pool().submit(
          [this, &runs, &program, &options, base, &scalar_replicas] {
            sim::NodeSim replica(context_.machine());
            replica.load(program);
            if (options.init) {
              sim::NodeReplicaStore store(replica);
              options.init(base, store);
            }
            runs[static_cast<std::size_t>(base)] = replica.run();
            scalar_replicas.fetch_add(1, std::memory_order_relaxed);
          }));
      continue;
    }
    pending.push_back(context_.pool().submit(
        [this, &runs, &program, &options, base, width, &scalar_replicas] {
          sim::ReplicaBatch batch(context_.machine(), width);
          batch.load(program);
          if (options.init) {
            for (int w = 0; w < width; ++w) {
              sim::ReplicaBatch::LaneStore store(batch, w);
              options.init(base + w, store);
            }
          }
          sim::BatchRunResult result = batch.run();
          for (int w = 0; w < width; ++w) {
            runs[static_cast<std::size_t>(base + w)] =
                std::move(result.runs[static_cast<std::size_t>(w)]);
          }
          scalar_replicas.fetch_add(result.drained_scalar,
                                    std::memory_order_relaxed);
        }));
  }
  // The caller participates instead of idling: drain queued pool tasks
  // (this ensemble's batches, or anyone else's work) until the queue is
  // empty, then settle the futures.  Every task references
  // `runs`/`program`, so all futures must settle before this frame can
  // unwind — collect the first failure and rethrow only after the whole
  // ensemble has drained.
  while (context_.pool().tryRunOneTask()) {
  }
  std::exception_ptr error;
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  outcome.replicas_scalar = scalar_replicas.load(std::memory_order_relaxed);
  outcome.replicas_batched = replicas - outcome.replicas_scalar;
  return outcome;
}

sim::HypercubeSystem WorkbenchCore::makeSystem(
    int dimension, sim::RouterOptions router,
    sim::NodeSim::Options node_options) {
  return sim::HypercubeSystem(context_.machine(), dimension, router,
                              node_options, &context_.pool(),
                              &context_.cache());
}

ed::Editor editorForProgram(const arch::Machine& machine,
                            const prog::Program& program) {
  ed::Editor editor(machine);
  bool first = true;
  for (const prog::PipelineDiagram& diagram : program.pipelines) {
    if (first) {
      editor.renamePipeline(diagram.name);
      first = false;
    } else {
      editor.insertPipeline(diagram.name);
    }
    // Grid placement: two columns inside the drawing area.
    const ed::WindowLayout& layout = editor.layout();
    int col = 0, row = 0;
    for (const prog::AlsUse& use : diagram.als_uses) {
      const arch::AlsKind kind = machine.als(use.als).kind;
      ed::IconKind icon = ed::IconKind::kSinglet;
      if (kind == arch::AlsKind::kDoublet) {
        icon = use.bypass ? ed::IconKind::kDoubletBypass : ed::IconKind::kDoublet;
      } else if (kind == arch::AlsKind::kTriplet) {
        icon = ed::IconKind::kTriplet;
      }
      const ed::Point pos{layout.drawing.x + 30 + col * 190,
                          layout.drawing.y + 30 + row * 210};
      editor.placeIcon(icon, use.als, pos);
      if (++col == 4) {
        col = 0;
        ++row;
      }
    }
    // Copy the full semantic state (ops, DMA, connections) and rebuild the
    // wires: re-apply connections through the editor for wire geometry,
    // then overwrite the semantic record wholesale so register-file
    // details match exactly.
    for (const prog::Connection& c : diagram.connections) {
      editor.connect(c.from, c.to);
    }
    editor.overwriteSemantic(diagram);
  }
  editor.jumpTo(0);
  return editor;
}

}  // namespace nsc
