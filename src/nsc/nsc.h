// Umbrella header: the full nsc-vpe public API.
//
// A reproduction of "A Visual Programming Environment for the
// Navier-Stokes Computer" (Tomboulian, Crockett, Middleton; ICASE 88-6 /
// ICPP 1988).  See README.md for a tour and DESIGN.md for the system
// inventory.
#pragma once

#include "arch/machine.h"          // NSC machine model and microword spec
#include "arch/microword_spec.h"
#include "arch/ops.h"
#include "cfd/jacobi_program.h"    // the paper's example problem
#include "cfd/poisson.h"
#include "checker/checker.h"       // architectural rule validation
#include "compiler/stencil_lang.h" // future-work expression front end
#include "editor/editor.h"         // headless graphical editor
#include "editor/session.h"
#include "editor/window_render.h"
#include "microcode/disasm.h"
#include "microcode/generator.h"   // diagrams -> microcode
#include "nsc/debugger.h"          // Section-6 visual debugger extension
#include "nsc/scripts.h"           // canonical example session scripts
#include "nsc/workbench.h"
#include "program/program.h"       // semantic data structures
#include "program/timing.h"
#include "render/datapath.h"
#include "sim/hypercube.h"         // multi-node NSC
#include "sim/node.h"              // the simulated hardware backend
