// Canonical editor-session scripts shared by benches, examples, and tests.
//
// figure11SessionScript() draws the paper's Figure 11 pipeline (one sweep
// of the point-Jacobi update on an 8^3 grid) step by step — the headless
// stand-in for a human at the Sun-3 working through Figures 5-11.  It
// mirrors cfd::JacobiProgram's sweep A->B instruction exactly (same units,
// streams, and DMA programs), which bench/fig11_jacobi_complete.cpp
// verifies wiring-for-wiring.
#pragma once

#include <string>

namespace nsc {

inline std::string figure11SessionScript() {
  // Grid 8x8x8: W=64, lo=73, M=366, pre-roll shift=16, reads=382.
  return R"(
pipeline "sweep A->B"
# step 1 (Fig 6/7): select and position the ALSs
place doublet als 4 at 200,120
place doublet als 6 at 200,320
place triplet als 12 at 420,60
place triplet als 13 at 420,300
place triplet als 14 at 420,540
place triplet als 15 at 700,60
# step 2 (Fig 8/9): wire the streams and program the DMA engines
connect plane0.read sd0.in
sd 0 taps=0,1,2
connect plane1.read sd1.in
sd 1 taps=0,16
dma plane0.read base=146 stride=1 count=382 var=u(x-taps)
dma plane1.read base=153 stride=1 count=382 var=u(y-taps)
dma plane2.read base=209 stride=1 count=382 var=u(+W)
dma plane3.read base=81 stride=1 count=382 var=u(-W)
dma plane8.read base=145 stride=1 count=382 var=f
dma plane10.read base=145 stride=1 count=382 var=mask
# step 3 (Fig 10): program the functional units
setop fu20 add
connect sd0.tap2 fu20.a
connect sd0.tap0 fu20.b
setop fu21 add
connect fu20.out fu21.a
connect sd1.tap0 fu21.b
setop fu22 add
connect fu21.out fu22.a
connect sd1.tap1 fu22.b
setop fu23 add
connect plane2.read fu23.a
connect plane3.read fu23.b
setop fu24 add
connect fu23.out fu24.a
connect fu22.out fu24.b
setop fu4 mul
connect plane8.read fu4.a
const fu4 b 0.020408163265306121
setop fu25 sub
connect fu24.out fu25.a
connect fu4.out fu25.b
setop fu26 mul
connect fu25.out fu26.a
const fu26 b 0.16666666666666666
setop fu27 sub
connect fu26.out fu27.a
connect sd0.tap1 fu27.b
setop fu28 abs
connect fu27.out fu28.a
setop fu30 mul
connect fu28.out fu30.a
connect plane10.read fu30.b
setop fu31 max
connect fu30.out fu31.a
accum fu31 b 0.0
setop fu8 cmplt
const fu8 a 0.000001
connect fu31.out fu8.b
cond fu8 0
# step 4: result streams
connect fu26.out plane4.write
connect fu26.out plane5.write
connect fu26.out plane6.write
connect fu26.out plane7.write
dma plane4.write base=161 stride=1 count=366 var=u_next
dma plane5.write base=161 stride=1 count=366 var=u_next
dma plane6.write base=161 stride=1 count=366 var=u_next
dma plane7.write base=161 stride=1 count=366 var=u_next
connect fu31.out plane9.write
dma plane9.write base=0 stride=1 count=1 var=residual
seq next
)";
}

}  // namespace nsc
