// Visual debugger — the paper's Section 6 extension:
//
// "During execution, each new instruction would display the corresponding
// pipeline diagram, annotated to show data values flowing through the
// pipeline.  This could help to pinpoint timing errors, as well as other
// bugs in the program."
//
// The debugger attaches to a NodeSim trace sink, records sampled frames,
// and renders each as (a) a one-line-per-endpoint value listing and (b)
// the pipeline diagram with live values drawn beside the output pads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "exec/thread_pool.h"
#include "program/program.h"
#include "sim/node.h"

namespace nsc {

struct DebuggerOptions {
  std::uint64_t sample_every = 1;  // keep every k-th cycle
  std::size_t max_frames = 4096;   // ring buffer bound
};

class VisualDebugger {
 public:
  VisualDebugger(const arch::Machine& machine, prog::Program program,
                 DebuggerOptions options = {});

  // Installs this debugger as the node's trace sink.
  void attach(sim::NodeSim& node);

  const std::vector<sim::TraceFrame>& frames() const { return frames_; }

  // "fu20.out = 1.25 [el 3]" listing of valid tokens in one frame.
  std::string describeFrame(const sim::TraceFrame& frame) const;

  // Renders every recorded frame, in frame order, on the given pool
  // (nullptr = the process-wide shared pool).  Frames render independently,
  // so the pool the debugger's runs already warmed is reused here instead
  // of spawning anything per call.
  std::vector<std::string> describeAllFrames(
      exec::ThreadPool* pool = nullptr) const;

  // The instruction's diagram annotated with the frame's values.
  std::string annotatedDiagram(const sim::TraceFrame& frame) const;

  // Per-endpoint history of a whole run: "cycle: value" lines for one
  // source endpoint (pinpointing when a stream went invalid).
  std::string endpointHistory(const arch::Endpoint& source) const;

 private:
  const arch::Machine& machine_;
  prog::Program program_;
  DebuggerOptions options_;
  std::vector<sim::TraceFrame> frames_;
};

}  // namespace nsc
