// 3-D uniform grid indexing for the paper's example problem: a point
// Jacobi update for the 3-D Poisson equation on a uniform grid with a
// residual convergence check (paper, Section 4, Equation 1).
#pragma once

#include <cstdint>
#include <vector>

namespace nsc::cfd {

struct Grid3 {
  int nx = 8;
  int ny = 8;
  int nz = 8;

  int N() const { return nx * ny * nz; }
  int W() const { return nx * ny; }  // linear offset of a +-z neighbor

  int idx(int i, int j, int k) const { return i + nx * (j + ny * k); }
  int iOf(int c) const { return c % nx; }
  int jOf(int c) const { return (c / nx) % ny; }
  int kOf(int c) const { return c / (nx * ny); }

  bool isBoundary(int c) const {
    const int i = iOf(c), j = jOf(c), k = kOf(c);
    return i == 0 || i == nx - 1 || j == 0 || j == ny - 1 || k == 0 ||
           k == nz - 1;
  }
  bool isInterior(int c) const { return !isBoundary(c); }

  // First/last linear index whose six linear-offset neighbors all exist:
  // the sweep window of the NSC pipeline ("linear Jacobi" span).
  int linearLo() const { return W() + nx + 1; }
  int linearHi() const { return N() - 1 - linearLo(); }
  int linearSpan() const { return linearHi() - linearLo() + 1; }

  // 0/1 mask of true interior cells, used to gate the residual reduction.
  std::vector<double> interiorMask() const {
    std::vector<double> mask(static_cast<std::size_t>(N()), 0.0);
    for (int c = 0; c < N(); ++c) {
      if (isInterior(c)) mask[static_cast<std::size_t>(c)] = 1.0;
    }
    return mask;
  }
};

}  // namespace nsc::cfd
