// Host-side Poisson problem and reference solvers.
//
// These are the ground truth for the NSC simulation: `linearJacobiSweep`
// mirrors the NSC pipeline's operation order *exactly* (same association,
// same masked-residual reduction), so simulator output can be compared for
// bit-identical agreement; `jacobiSweep` is the textbook method; the
// multigrid V-cycle reproduces the workload of the paper's reference [6]
// (Nosenchuck, Krist, Zang, "On Multigrid Methods for the Navier-Stokes
// Computer").
#pragma once

#include <vector>

#include "cfd/grid.h"
#include "exec/thread_pool.h"

namespace nsc::cfd {

struct PoissonProblem {
  Grid3 grid;
  double h = 1.0;         // mesh spacing
  std::vector<double> f;  // right-hand side of  laplace(u) = f
  std::vector<double> u0; // initial guess; boundary entries hold g (Dirichlet)

  // Manufactured problem on the unit cube: u* = sin(pi x) sin(pi y)
  // sin(pi z), f = -3 pi^2 u*, homogeneous Dirichlet boundary.
  static PoissonProblem manufactured(int nx, int ny, int nz);

  // Exact (manufactured) solution vector for error norms.
  std::vector<double> exactSolution() const;
};

// One point-Jacobi sweep mirroring the NSC pipeline bit-for-bit:
//   sum   = ((u[c-1]+u[c+1]) + u[c+nx]) + u[c-nx]
//   sum6  = (u[c+W]+u[c-W]) + sum
//   num   = sum6 - h2*f[c]
//   ujac  = num * (1/6)
//   diff  = ujac - u[c]
//   res   = max(res, |diff| * mask[c])        (seeded with 0)
//   out   = omega == 1 ? ujac : (omega*diff) + u[c]
// applied over the linear span [linearLo, linearHi], followed by restoring
// the six boundary faces from `u` (the previous iterate).  Returns the
// masked max-residual exactly as the pipeline's accumulator produces it.
//
// All sweeps below accept an optional exec::ThreadPool: when given, the
// grid is partitioned into independent subgrid slabs processed in
// parallel.  Cells are written disjointly and the residual is a max
// reduction (order-insensitive), so pooled and serial sweeps produce
// bit-identical results for any thread count.  nullptr runs serially.
double linearJacobiSweep(const PoissonProblem& problem,
                         const std::vector<double>& u,
                         std::vector<double>& u_next, double omega = 1.0,
                         exec::ThreadPool* pool = nullptr);

// Textbook damped point Jacobi over the true interior (for math-level
// tests; agrees with linearJacobiSweep on interior cells).
double jacobiSweep(const PoissonProblem& problem, const std::vector<double>& u,
                   std::vector<double>& u_next, double omega = 1.0,
                   exec::ThreadPool* pool = nullptr);

// Max-norm of the true residual  f - laplace_h(u)  over interior cells.
double residualLinf(const PoissonProblem& problem,
                    const std::vector<double>& u,
                    exec::ThreadPool* pool = nullptr);

// Max-norm error against a reference vector over all cells.
double errorLinf(const std::vector<double>& u, const std::vector<double>& ref);

// ---------------------------------------------------------------------------
// Multigrid (reference [6] workload)
// ---------------------------------------------------------------------------

struct MultigridOptions {
  int pre_smooth = 2;    // damped Jacobi sweeps before coarsening
  int post_smooth = 2;   // ... after prolongation
  double omega = 6.0 / 7.0;  // optimal high-frequency damping for 3-D
  int min_size = 3;      // coarsest grid dimension
  // Pool for the smoothing/residual sweeps on each level (fine levels
  // dominate the cost); nullptr runs serially.
  exec::ThreadPool* pool = nullptr;
};

// One V-cycle on `u`; returns the interior residual Linf after the cycle.
// Grids must have nx = ny = nz = 2^k + 1 for vertex-centered coarsening.
double vcycle(const PoissonProblem& problem, std::vector<double>& u,
              const MultigridOptions& options = {});

// Full-weighting restriction and trilinear prolongation (exposed for unit
// tests).
std::vector<double> restrictFullWeighting(const Grid3& fine,
                                          const std::vector<double>& values);
std::vector<double> prolongTrilinear(const Grid3& coarse,
                                     const std::vector<double>& values);

}  // namespace nsc::cfd
