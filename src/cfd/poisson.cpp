#include "cfd/poisson.h"

#include <cmath>
#include <functional>
#include <mutex>
#include <numbers>

namespace nsc::cfd {

PoissonProblem PoissonProblem::manufactured(int nx, int ny, int nz) {
  PoissonProblem p;
  p.grid = {nx, ny, nz};
  p.h = 1.0 / (nx - 1);
  const int n = p.grid.N();
  p.f.assign(static_cast<std::size_t>(n), 0.0);
  p.u0.assign(static_cast<std::size_t>(n), 0.0);
  constexpr double pi = std::numbers::pi;
  for (int c = 0; c < n; ++c) {
    const double x = p.grid.iOf(c) * p.h;
    const double y = p.grid.jOf(c) / static_cast<double>(ny - 1);
    const double z = p.grid.kOf(c) / static_cast<double>(nz - 1);
    const double star =
        std::sin(pi * x) * std::sin(pi * y) * std::sin(pi * z);
    p.f[static_cast<std::size_t>(c)] = -3.0 * pi * pi * star;
    // u0: zero interior guess, exact (zero) Dirichlet boundary.
  }
  return p;
}

std::vector<double> PoissonProblem::exactSolution() const {
  const int n = grid.N();
  std::vector<double> u(static_cast<std::size_t>(n), 0.0);
  constexpr double pi = std::numbers::pi;
  for (int c = 0; c < n; ++c) {
    const double x = grid.iOf(c) * h;
    const double y = grid.jOf(c) / static_cast<double>(grid.ny - 1);
    const double z = grid.kOf(c) / static_cast<double>(grid.nz - 1);
    u[static_cast<std::size_t>(c)] =
        std::sin(pi * x) * std::sin(pi * y) * std::sin(pi * z);
  }
  return u;
}

namespace {

void restoreBoundaryFaces(const Grid3& g, const std::vector<double>& from,
                          std::vector<double>& to) {
  for (int c = 0; c < g.N(); ++c) {
    if (g.isBoundary(c)) {
      to[static_cast<std::size_t>(c)] = from[static_cast<std::size_t>(c)];
    }
  }
}

// Runs fn over [lo, hi) in independent subranges on the pool (serially when
// pool is null) and returns the max over fn's per-subrange partial maxima.
// Max is order-insensitive, so the reduction is bit-identical for any
// partitioning.
double parallelMaxOver(exec::ThreadPool* pool, std::size_t lo, std::size_t hi,
                       std::size_t grain,
                       const std::function<double(std::size_t, std::size_t)>& fn) {
  if (pool == nullptr || hi <= lo) {
    return hi <= lo ? 0.0 : fn(lo, hi);
  }
  std::mutex mu;
  double res = 0.0;
  pool->parallelFor(lo, hi, grain,
                    [&](std::size_t begin, std::size_t end) {
                      const double partial = fn(begin, end);
                      std::lock_guard<std::mutex> lock(mu);
                      res = partial > res ? partial : res;
                    });
  return res;
}

// Chunk size targeting a few chunks per pool thread, never below one
// z-layer's worth of work.
std::size_t sweepGrain(exec::ThreadPool* pool, std::size_t span,
                       std::size_t min_grain) {
  if (pool == nullptr) return span;
  const std::size_t chunks =
      4 * static_cast<std::size_t>(pool->threadCount());
  const std::size_t grain = (span + chunks - 1) / chunks;
  return grain < min_grain ? min_grain : grain;
}

}  // namespace

double linearJacobiSweep(const PoissonProblem& problem,
                         const std::vector<double>& u,
                         std::vector<double>& u_next, double omega,
                         exec::ThreadPool* pool) {
  const Grid3& g = problem.grid;
  const int nx = g.nx;
  const int W = g.W();
  const double h2 = problem.h * problem.h;
  const double sixth = 1.0 / 6.0;
  u_next = u;  // out-of-span cells keep previous (boundary) values
  // Degenerate grids have an empty sweep window (linearHi < linearLo);
  // bail before the size_t casts would wrap the bounds.
  if (g.linearHi() < g.linearLo()) return 0.0;
  const std::vector<double> mask = g.interiorMask();
  const auto lo = static_cast<std::size_t>(g.linearLo());
  const auto hi = static_cast<std::size_t>(g.linearHi()) + 1;
  const double res = parallelMaxOver(
      pool, lo, hi, sweepGrain(pool, hi - lo, static_cast<std::size_t>(W)),
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t uc = begin; uc < end; ++uc) {
          // Exact mirror of the pipeline's association order (see header).
          double sum = (u[uc - 1] + u[uc + 1]);
          sum = sum + u[uc + static_cast<std::size_t>(nx)];
          sum = sum + u[uc - static_cast<std::size_t>(nx)];
          const double t2 = u[uc + static_cast<std::size_t>(W)] +
                            u[uc - static_cast<std::size_t>(W)];
          const double sum6 = t2 + sum;
          const double num = sum6 - h2 * problem.f[uc];
          const double ujac = num * sixth;
          const double diff = ujac - u[uc];
          const double masked = std::fabs(diff) * mask[uc];
          partial = masked > partial ? masked : partial;
          u_next[uc] = omega == 1.0 ? ujac : (omega * diff) + u[uc];
        }
        return partial;
      });
  restoreBoundaryFaces(g, u, u_next);
  return res;
}

double jacobiSweep(const PoissonProblem& problem, const std::vector<double>& u,
                   std::vector<double>& u_next, double omega,
                   exec::ThreadPool* pool) {
  const Grid3& g = problem.grid;
  const double h2 = problem.h * problem.h;
  u_next = u;
  if (g.nz <= 0) return 0.0;  // nz-1 below must not wrap as size_t
  // Parallel over interior z-slabs: each k-layer touches only layers
  // k-1..k+1 of `u` (read-only) and writes its own layer of `u_next`.
  const auto res = parallelMaxOver(
      pool, 1, static_cast<std::size_t>(g.nz - 1),
      sweepGrain(pool, static_cast<std::size_t>(g.nz - 2), 1),
      [&](std::size_t k_begin, std::size_t k_end) {
        double partial = 0.0;
        for (std::size_t k = k_begin; k < k_end; ++k) {
          for (int j = 1; j < g.ny - 1; ++j) {
            for (int i = 1; i < g.nx - 1; ++i) {
              const auto c = static_cast<std::size_t>(
                  g.idx(i, j, static_cast<int>(k)));
              const double sum = u[c - 1] + u[c + 1] +
                                 u[c - static_cast<std::size_t>(g.nx)] +
                                 u[c + static_cast<std::size_t>(g.nx)] +
                                 u[c - static_cast<std::size_t>(g.W())] +
                                 u[c + static_cast<std::size_t>(g.W())];
              const double ujac = (sum - h2 * problem.f[c]) / 6.0;
              const double diff = ujac - u[c];
              partial = std::fabs(diff) > partial ? std::fabs(diff) : partial;
              u_next[c] = u[c] + omega * diff;
            }
          }
        }
        return partial;
      });
  return res;
}

double residualLinf(const PoissonProblem& problem,
                    const std::vector<double>& u, exec::ThreadPool* pool) {
  const Grid3& g = problem.grid;
  if (g.nz <= 0) return 0.0;  // nz-1 below must not wrap as size_t
  const double inv_h2 = 1.0 / (problem.h * problem.h);
  return parallelMaxOver(
      pool, 1, static_cast<std::size_t>(g.nz - 1),
      sweepGrain(pool, static_cast<std::size_t>(g.nz - 2), 1),
      [&](std::size_t k_begin, std::size_t k_end) {
        double partial = 0.0;
        for (std::size_t k = k_begin; k < k_end; ++k) {
          for (int j = 1; j < g.ny - 1; ++j) {
            for (int i = 1; i < g.nx - 1; ++i) {
              const auto c = static_cast<std::size_t>(
                  g.idx(i, j, static_cast<int>(k)));
              const double lap =
                  (u[c - 1] + u[c + 1] +
                   u[c - static_cast<std::size_t>(g.nx)] +
                   u[c + static_cast<std::size_t>(g.nx)] +
                   u[c - static_cast<std::size_t>(g.W())] +
                   u[c + static_cast<std::size_t>(g.W())] - 6.0 * u[c]) *
                  inv_h2;
              const double r = problem.f[c] - lap;
              partial = std::fabs(r) > partial ? std::fabs(r) : partial;
            }
          }
        }
        return partial;
      });
}

double errorLinf(const std::vector<double>& u, const std::vector<double>& ref) {
  double e = 0.0;
  for (std::size_t i = 0; i < u.size() && i < ref.size(); ++i) {
    const double d = std::fabs(u[i] - ref[i]);
    e = d > e ? d : e;
  }
  return e;
}

// ---------------------------------------------------------------------------
// Multigrid
// ---------------------------------------------------------------------------

std::vector<double> restrictFullWeighting(const Grid3& fine,
                                          const std::vector<double>& values) {
  const Grid3 coarse{(fine.nx + 1) / 2, (fine.ny + 1) / 2, (fine.nz + 1) / 2};
  std::vector<double> out(static_cast<std::size_t>(coarse.N()), 0.0);
  for (int k = 0; k < coarse.nz; ++k) {
    for (int j = 0; j < coarse.ny; ++j) {
      for (int i = 0; i < coarse.nx; ++i) {
        const int fi = 2 * i, fj = 2 * j, fk = 2 * k;
        if (i == 0 || j == 0 || k == 0 || i == coarse.nx - 1 ||
            j == coarse.ny - 1 || k == coarse.nz - 1) {
          out[static_cast<std::size_t>(coarse.idx(i, j, k))] =
              values[static_cast<std::size_t>(fine.idx(fi, fj, fk))];
          continue;
        }
        double sum = 0.0;
        for (int dk = -1; dk <= 1; ++dk) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int di = -1; di <= 1; ++di) {
              const double w =
                  (di == 0 ? 2.0 : 1.0) * (dj == 0 ? 2.0 : 1.0) *
                  (dk == 0 ? 2.0 : 1.0) / 64.0;
              sum += w * values[static_cast<std::size_t>(
                             fine.idx(fi + di, fj + dj, fk + dk))];
            }
          }
        }
        out[static_cast<std::size_t>(coarse.idx(i, j, k))] = sum;
      }
    }
  }
  return out;
}

std::vector<double> prolongTrilinear(const Grid3& coarse,
                                     const std::vector<double>& values) {
  const Grid3 fine{coarse.nx * 2 - 1, coarse.ny * 2 - 1, coarse.nz * 2 - 1};
  std::vector<double> out(static_cast<std::size_t>(fine.N()), 0.0);
  for (int k = 0; k < fine.nz; ++k) {
    for (int j = 0; j < fine.ny; ++j) {
      for (int i = 0; i < fine.nx; ++i) {
        // Trilinear interpolation from the enclosing coarse cell corners.
        const int ci = i / 2, cj = j / 2, ck = k / 2;
        const bool oi = (i % 2) != 0, oj = (j % 2) != 0, ok = (k % 2) != 0;
        double sum = 0.0;
        int terms = 0;
        for (int dk = 0; dk <= (ok ? 1 : 0); ++dk) {
          for (int dj = 0; dj <= (oj ? 1 : 0); ++dj) {
            for (int di = 0; di <= (oi ? 1 : 0); ++di) {
              sum += values[static_cast<std::size_t>(
                  coarse.idx(ci + di, cj + dj, ck + dk))];
              ++terms;
            }
          }
        }
        out[static_cast<std::size_t>(fine.idx(i, j, k))] = sum / terms;
      }
    }
  }
  return out;
}

namespace {

void vcycleRecurse(const PoissonProblem& problem, std::vector<double>& u,
                   const MultigridOptions& options) {
  const Grid3& g = problem.grid;
  std::vector<double> next;
  if (g.nx <= options.min_size || g.ny <= options.min_size ||
      g.nz <= options.min_size || g.nx % 2 == 0) {
    // Coarsest level: smooth hard (serial — the grid is tiny down here).
    for (int s = 0; s < 32; ++s) {
      jacobiSweep(problem, u, next, options.omega);
      u.swap(next);
    }
    return;
  }
  for (int s = 0; s < options.pre_smooth; ++s) {
    jacobiSweep(problem, u, next, options.omega, options.pool);
    u.swap(next);
  }

  // Residual on the fine grid (zero on boundary); z-slabs are independent.
  std::vector<double> r(u.size(), 0.0);
  const double inv_h2 = 1.0 / (problem.h * problem.h);
  const auto residual_slab = [&](std::size_t k_begin, std::size_t k_end) {
    for (std::size_t k = k_begin; k < k_end; ++k) {
      for (int j = 1; j < g.ny - 1; ++j) {
        for (int i = 1; i < g.nx - 1; ++i) {
          const auto c =
              static_cast<std::size_t>(g.idx(i, j, static_cast<int>(k)));
          const double lap =
              (u[c - 1] + u[c + 1] + u[c - static_cast<std::size_t>(g.nx)] +
               u[c + static_cast<std::size_t>(g.nx)] +
               u[c - static_cast<std::size_t>(g.W())] +
               u[c + static_cast<std::size_t>(g.W())] - 6.0 * u[c]) *
              inv_h2;
          r[c] = problem.f[c] - lap;
        }
      }
    }
  };
  if (options.pool != nullptr && g.nz > 2) {
    options.pool->parallelFor(
        1, static_cast<std::size_t>(g.nz - 1),
        sweepGrain(options.pool, static_cast<std::size_t>(g.nz - 2), 1),
        residual_slab);
  } else if (g.nz > 2) {
    residual_slab(1, static_cast<std::size_t>(g.nz - 1));
  }

  PoissonProblem coarse;
  coarse.grid = {(g.nx + 1) / 2, (g.ny + 1) / 2, (g.nz + 1) / 2};
  coarse.h = problem.h * 2.0;
  coarse.f = restrictFullWeighting(g, r);
  // Error equation: boundary of the correction is zero.
  for (int c = 0; c < coarse.grid.N(); ++c) {
    if (coarse.grid.isBoundary(c)) coarse.f[static_cast<std::size_t>(c)] = 0.0;
  }
  std::vector<double> e(static_cast<std::size_t>(coarse.grid.N()), 0.0);
  vcycleRecurse(coarse, e, options);

  const std::vector<double> correction = prolongTrilinear(coarse.grid, e);
  for (int c = 0; c < g.N(); ++c) {
    if (g.isInterior(c)) u[static_cast<std::size_t>(c)] += correction[static_cast<std::size_t>(c)];
  }

  for (int s = 0; s < options.post_smooth; ++s) {
    jacobiSweep(problem, u, next, options.omega, options.pool);
    u.swap(next);
  }
}

}  // namespace

double vcycle(const PoissonProblem& problem, std::vector<double>& u,
              const MultigridOptions& options) {
  vcycleRecurse(problem, u, options);
  return residualLinf(problem, u, options.pool);
}

}  // namespace nsc::cfd
