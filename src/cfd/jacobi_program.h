// Builds the paper's example program: the point Jacobi update for the 3-D
// Poisson equation with a residual convergence check (Figures 2 and 11),
// as NSC pipeline diagrams.
//
// Construction follows 1988 NSC practice as the paper describes it:
//   * the update streams the solution array linearly through the pipeline;
//     +-1 and +-nx neighbor taps are formed by the shift/delay units, and
//     the +-nx*ny neighbors come from extra copies of the array in other
//     memory planes ("it may be necessary to maintain multiple copies of
//     arrays", Section 3);
//   * each memory plane carries at most one stream per instruction, so the
//     update ping-pongs between an A and a B set of planes;
//   * cells inside the linear sweep window that are really boundary cells
//     receive wrapped-neighbor values; six face-restore instructions
//     (two-level DMA transfers) repair them from the previous iterate
//     before the next sweep — so interior cells evolve exactly like
//     textbook Jacobi;
//   * the residual max is accumulated by a min/max unit with register-file
//     feedback, gated by an interior mask stream, compared against the
//     tolerance by a cmp unit, latched into a condition register, and
//     tested by the sequencer ("interrupts ... evaluate conditional
//     expressions").
//
// The `restricted` flag builds the same computation for the paper's
// simpler-subset model (Section 6): singlet-only ALSs, no shift/delay
// units — every neighbor offset then needs its own plane copy, which
// nearly exhausts the 16 planes and drops the residual check.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine.h"
#include "cfd/poisson.h"
#include "program/program.h"
#include "sim/batch.h"
#include "sim/node.h"
#include "sim/stats.h"

namespace nsc::cfd {

struct JacobiBuildOptions {
  Grid3 grid{8, 8, 8};
  double h = 1.0 / 7.0;
  double omega = 1.0;           // 1.0 = plain Jacobi; <1 damped (smoother)
  bool convergence_mode = true; // residual check + conditional branch
  double tol = 1e-6;
  int fixed_sweeps = 10;        // when !convergence_mode; rounded up to even
  bool restricted = false;      // simpler-subset machine model (Section 6)
};

struct JacobiLayout {
  Grid3 grid;
  int pad = 0;       // plane word offset of array element 0
  int max_shift = 0; // deepest shift/delay element shift (read pre-roll)
  std::vector<arch::PlaneId> u_a;  // solution copies, A set
  std::vector<arch::PlaneId> u_b;  // solution copies, B set
  arch::PlaneId f_plane = 0;
  arch::PlaneId mask_plane = -1;  // -1 when the model drops the residual
  arch::PlaneId res_plane = -1;

  std::uint64_t wordOf(int cell) const {
    return static_cast<std::uint64_t>(pad + cell);
  }
};

class JacobiProgram {
 public:
  JacobiProgram(const arch::Machine& machine, JacobiBuildOptions options);

  const prog::Program& program() const { return program_; }
  const JacobiLayout& layout() const { return layout_; }
  const JacobiBuildOptions& options() const { return options_; }

  // Deposits u0 / f / mask into the node's memory planes.  The ReplicaStore
  // form seeds any engine exposing the store interface (a scalar NodeSim, a
  // ReplicaBatch lane, or one node of a batched HypercubeSystem).
  void load(sim::ReplicaStore& store, const PoissonProblem& problem) const;
  void load(sim::NodeSim& node, const PoissonProblem& problem) const;

  // Number of sweep instructions executed in a run (trace names).
  static std::uint64_t sweepsDone(const sim::RunStats& stats);

  // Reads back the latest iterate (A or B set chosen by sweep parity).
  std::vector<double> extract(const sim::NodeSim& node,
                              std::uint64_t sweeps_done) const;

  // Last residual the pipeline wrote (full model only).
  double residual(const sim::NodeSim& node) const;

 private:
  prog::PipelineDiagram buildSweep(const std::vector<arch::PlaneId>& from,
                                   const std::vector<arch::PlaneId>& to,
                                   const std::string& name) const;
  prog::PipelineDiagram buildRestore(int face, arch::PlaneId from,
                                     const std::vector<arch::PlaneId>& to,
                                     const std::string& name) const;
  void buildFullSweepPipeline(prog::PipelineDiagram& d,
                              const std::vector<arch::PlaneId>& from,
                              const std::vector<arch::PlaneId>& to) const;
  void buildRestrictedSweepPipeline(prog::PipelineDiagram& d,
                                    const std::vector<arch::PlaneId>& from,
                                    const std::vector<arch::PlaneId>& to) const;

  const arch::Machine& machine_;
  JacobiBuildOptions options_;
  JacobiLayout layout_;
  prog::Program program_;
};

}  // namespace nsc::cfd
