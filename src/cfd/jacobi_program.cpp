#include "cfd/jacobi_program.h"

#include <cassert>
#include <stdexcept>

#include "common/strings.h"

namespace nsc::cfd {

using arch::Endpoint;
using arch::OpCode;
using common::strFormat;

JacobiProgram::JacobiProgram(const arch::Machine& machine,
                             JacobiBuildOptions options)
    : machine_(machine), options_(options) {
  const Grid3& g = options_.grid;
  layout_.grid = g;
  layout_.max_shift = options_.restricted ? 0 : 2 * g.nx;
  layout_.pad = g.W() + 2 * g.nx + 8;

  if (options_.restricted) {
    // Offsets +1,-1,+nx,-nx,+W,-W (and the center when damping needs it)
    // each need their own plane copy.
    const int copies = options_.omega != 1.0 ? 7 : 6;
    for (int i = 0; i < copies; ++i) layout_.u_a.push_back(i);
    for (int i = 0; i < copies; ++i) layout_.u_b.push_back(copies + i);
    layout_.f_plane = 2 * copies;
    layout_.mask_plane = -1;
    layout_.res_plane = -1;
    if (options_.convergence_mode) {
      // The subset model has no plane budget left for the mask and
      // residual streams; it runs fixed sweep counts only (Section 6:
      // performance/programmability tradeoff).
      options_.convergence_mode = false;
    }
  } else {
    layout_.u_a = {0, 1, 2, 3};
    layout_.u_b = {4, 5, 6, 7};
    layout_.f_plane = 8;
    layout_.res_plane = 9;
    layout_.mask_plane = 10;
  }

  if (!options_.restricted && 2 * g.nx > machine_.config().sd_max_delay) {
    throw std::invalid_argument(
        "grid nx too large for the shift/delay units; use more plane copies");
  }

  // --- Instruction sequence ---
  // 0          sweep A->B (latches cond0 in convergence mode)
  // 1..6       restore the six faces of the B copies from A
  // 7          sweep B->A
  // 8..13      restore the six faces of the A copies from B
  // 14         halt
  program_.name = options_.restricted ? "jacobi3d-restricted" : "jacobi3d";
  program_.pipelines.push_back(buildSweep(layout_.u_a, layout_.u_b, "sweep A->B"));
  for (int face = 0; face < 6; ++face) {
    program_.pipelines.push_back(buildRestore(
        face, layout_.u_a[0], layout_.u_b, strFormat("restore B face %d", face)));
  }
  program_.pipelines.push_back(buildSweep(layout_.u_b, layout_.u_a, "sweep B->A"));
  for (int face = 0; face < 6; ++face) {
    program_.pipelines.push_back(buildRestore(
        face, layout_.u_b[0], layout_.u_a, strFormat("restore A face %d", face)));
  }
  prog::PipelineDiagram halt;
  halt.name = "halt";
  halt.seq.op = arch::SeqOp::kHalt;
  program_.pipelines.push_back(halt);

  const int halt_index = static_cast<int>(program_.size()) - 1;
  if (options_.convergence_mode) {
    // After the B restores: stop if converged (cond0 clear).
    program_[6].seq = {arch::SeqOp::kBranchNot, halt_index, 0, 0};
    // After the A restores: keep iterating while cond0 set.
    program_[13].seq = {arch::SeqOp::kBranchIf, 0, 0, 0};
  } else {
    const int rounds = (options_.fixed_sweeps + 1) / 2;
    program_[13].seq = {arch::SeqOp::kLoop, 0, 0, rounds};
  }
}

// ---------------------------------------------------------------------------
// Sweep pipeline
// ---------------------------------------------------------------------------

prog::PipelineDiagram JacobiProgram::buildSweep(
    const std::vector<arch::PlaneId>& from,
    const std::vector<arch::PlaneId>& to, const std::string& name) const {
  prog::PipelineDiagram d;
  d.name = name;
  d.comment = "point Jacobi update, 3-D Poisson (paper Eq. 1, Fig. 11)";
  if (options_.restricted) {
    buildRestrictedSweepPipeline(d, from, to);
  } else {
    buildFullSweepPipeline(d, from, to);
  }
  return d;
}

void JacobiProgram::buildFullSweepPipeline(
    prog::PipelineDiagram& d, const std::vector<arch::PlaneId>& from,
    const std::vector<arch::PlaneId>& to) const {
  const Grid3& g = layout_.grid;
  const int nx = g.nx;
  const int W = g.W();
  const int c0 = g.linearLo();
  const auto M = static_cast<std::uint64_t>(g.linearSpan());
  const int shift = layout_.max_shift;  // = 2*nx
  const auto R = M + static_cast<std::uint64_t>(shift);  // read pre-roll
  const double h2 = options_.h * options_.h;

  // Functional units.  The machine's default layout: singlet ALSs first,
  // then doublets, then triplets; we take the first two doublets and all
  // four triplets.
  const arch::AlsId d0 = machine_.config().num_singlets;      // doublet
  const arch::AlsId d1 = d0 + 1;                              // doublet
  const arch::AlsId t0 = d0 + machine_.config().num_doublets; // triplets
  const auto fuOf = [&](arch::AlsId als, int slot) {
    return machine_.als(als).fus[static_cast<std::size_t>(slot)];
  };
  const arch::FuId h2f = fuOf(d0, 0);
  const arch::FuId dampM = fuOf(d1, 0), dampA = fuOf(d1, 1);
  const arch::FuId a1 = fuOf(t0, 0), a2 = fuOf(t0, 1), a3 = fuOf(t0, 2);
  const arch::FuId zsum = fuOf(t0 + 1, 0), sum6 = fuOf(t0 + 1, 1),
                   num = fuOf(t0 + 1, 2);
  const arch::FuId scale = fuOf(t0 + 2, 0), diff = fuOf(t0 + 2, 1),
                   absd = fuOf(t0 + 2, 2);
  // The running max must sit on a min/max-capable unit — the *last* slot
  // of its ALS (the per-ALS asymmetry of Section 3) — so the mask multiply
  // chains into slot 1 -> slot 2, and the tolerance compare lives on a
  // spare doublet reached through the switch.
  const arch::FuId maskm = fuOf(t0 + 3, 1), resmax = fuOf(t0 + 3, 2);
  const arch::FuId cmp = fuOf(d0 + 2, 0);

  // --- Streams.  Each read starts `shift` elements early (pre-roll) so
  // the deepest shift/delay tap is warm when the first center arrives;
  // a stream feeding a tap with element shift D and intended neighbor
  // offset o reads from base c0 + o + D - shift. ---
  auto readDma = [&](arch::PlaneId plane, int first_cell, const char* var) {
    prog::DmaSpec& dma = d.dmaAt(Endpoint::planeRead(plane));
    dma.variable = var;
    dma.base = layout_.wordOf(first_cell);
    dma.stride = 1;
    dma.count = R;
  };
  // SD0 forms u[c+1], u[c], u[c-1] from one stream (taps 0,1,2).
  readDma(from[0], c0 + 1 - shift, "u(x taps)");
  d.connect(machine_, Endpoint::planeRead(from[0]), Endpoint::sdInput(0));
  d.useSd(0, {0, 1, 2});
  // SD1 forms u[c+nx], u[c-nx] (taps 0 and 2nx).
  readDma(from[1], c0 + nx - shift, "u(y taps)");
  d.connect(machine_, Endpoint::planeRead(from[1]), Endpoint::sdInput(1));
  d.useSd(1, {0, 2 * nx});
  // +-W neighbors stream directly from offset copies.
  readDma(from[2], c0 + W - shift, "u(+W copy)");
  readDma(from[3], c0 - W - shift, "u(-W copy)");
  readDma(layout_.f_plane, c0 - shift, "f");
  readDma(layout_.mask_plane, c0 - shift, "interior mask");

  // --- The update tree (operation order mirrored by linearJacobiSweep) ---
  d.setFuOp(machine_, a1, OpCode::kAdd);  // u[c-1] + u[c+1]
  d.connect(machine_, Endpoint::sdOutput(0, 2), Endpoint::fuInput(a1, 0));
  d.connect(machine_, Endpoint::sdOutput(0, 0), Endpoint::fuInput(a1, 1));
  d.setFuOp(machine_, a2, OpCode::kAdd);  // ... + u[c+nx]
  d.connect(machine_, Endpoint::fuOutput(a1), Endpoint::fuInput(a2, 0));
  d.connect(machine_, Endpoint::sdOutput(1, 0), Endpoint::fuInput(a2, 1));
  d.setFuOp(machine_, a3, OpCode::kAdd);  // ... + u[c-nx]
  d.connect(machine_, Endpoint::fuOutput(a2), Endpoint::fuInput(a3, 0));
  d.connect(machine_, Endpoint::sdOutput(1, 1), Endpoint::fuInput(a3, 1));

  d.setFuOp(machine_, zsum, OpCode::kAdd);  // u[c+W] + u[c-W]
  d.connect(machine_, Endpoint::planeRead(from[2]), Endpoint::fuInput(zsum, 0));
  d.connect(machine_, Endpoint::planeRead(from[3]), Endpoint::fuInput(zsum, 1));
  d.setFuOp(machine_, sum6, OpCode::kAdd);
  d.connect(machine_, Endpoint::fuOutput(zsum), Endpoint::fuInput(sum6, 0));
  d.connect(machine_, Endpoint::fuOutput(a3), Endpoint::fuInput(sum6, 1));

  d.setFuOp(machine_, h2f, OpCode::kMul);  // h^2 * f  (constant from RF)
  d.connect(machine_, Endpoint::planeRead(layout_.f_plane),
            Endpoint::fuInput(h2f, 0));
  d.setConstInput(machine_, h2f, 1, h2);

  d.setFuOp(machine_, num, OpCode::kSub);  // sum6 - h^2 f
  d.connect(machine_, Endpoint::fuOutput(sum6), Endpoint::fuInput(num, 0));
  d.connect(machine_, Endpoint::fuOutput(h2f), Endpoint::fuInput(num, 1));

  d.setFuOp(machine_, scale, OpCode::kMul);  // * 1/6
  d.connect(machine_, Endpoint::fuOutput(num), Endpoint::fuInput(scale, 0));
  d.setConstInput(machine_, scale, 1, 1.0 / 6.0);

  d.setFuOp(machine_, diff, OpCode::kSub);  // ujac - u[c]
  d.connect(machine_, Endpoint::fuOutput(scale), Endpoint::fuInput(diff, 0));
  d.connect(machine_, Endpoint::sdOutput(0, 1), Endpoint::fuInput(diff, 1));
  d.setFuOp(machine_, absd, OpCode::kAbs);
  d.connect(machine_, Endpoint::fuOutput(diff), Endpoint::fuInput(absd, 0));

  d.setFuOp(machine_, maskm, OpCode::kMul);  // |diff| * mask
  d.connect(machine_, Endpoint::fuOutput(absd), Endpoint::fuInput(maskm, 0));
  d.connect(machine_, Endpoint::planeRead(layout_.mask_plane),
            Endpoint::fuInput(maskm, 1));
  d.setFuOp(machine_, resmax, OpCode::kMax);  // running max (feedback)
  d.connect(machine_, Endpoint::fuOutput(maskm), Endpoint::fuInput(resmax, 0));
  d.setAccumInput(machine_, resmax, 1, 0.0);
  d.setFuOp(machine_, cmp, OpCode::kCmpLt);  // tol < res ?
  d.setConstInput(machine_, cmp, 0, options_.tol);
  d.connect(machine_, Endpoint::fuOutput(resmax), Endpoint::fuInput(cmp, 1));
  d.cond = prog::CondLatch{cmp, 0};

  // Damped update (optional): u + omega*(ujac - u).
  arch::FuId unew = scale;
  if (options_.omega != 1.0) {
    d.setFuOp(machine_, dampM, OpCode::kMul);
    d.connect(machine_, Endpoint::fuOutput(diff), Endpoint::fuInput(dampM, 0));
    d.setConstInput(machine_, dampM, 1, options_.omega);
    d.setFuOp(machine_, dampA, OpCode::kAdd);
    d.connect(machine_, Endpoint::fuOutput(dampM), Endpoint::fuInput(dampA, 0));
    d.connect(machine_, Endpoint::sdOutput(0, 1), Endpoint::fuInput(dampA, 1));
    unew = dampA;
  }

  // --- Result streams ---
  for (const arch::PlaneId p : to) {
    d.connect(machine_, Endpoint::fuOutput(unew), Endpoint::planeWrite(p));
    prog::DmaSpec& dma = d.dmaAt(Endpoint::planeWrite(p));
    dma.variable = "u_next";
    dma.base = layout_.wordOf(c0);
    dma.stride = 1;
    dma.count = M;
  }
  d.connect(machine_, Endpoint::fuOutput(resmax),
            Endpoint::planeWrite(layout_.res_plane));
  prog::DmaSpec& res = d.dmaAt(Endpoint::planeWrite(layout_.res_plane));
  res.variable = "residual";
  res.base = 0;
  res.stride = 1;
  res.count = 1;
}

void JacobiProgram::buildRestrictedSweepPipeline(
    prog::PipelineDiagram& d, const std::vector<arch::PlaneId>& from,
    const std::vector<arch::PlaneId>& to) const {
  const Grid3& g = layout_.grid;
  const int c0 = g.linearLo();
  const auto M = static_cast<std::uint64_t>(g.linearSpan());
  const double h2 = options_.h * options_.h;
  // Neighbor offsets per plane copy index; the center copy exists only
  // when the damped update needs it.
  const int offsets[7] = {+1, -1, +g.nx, -g.nx, +g.W(), -g.W(), 0};
  const int copies = static_cast<int>(from.size());

  auto readDma = [&](arch::PlaneId plane, int offset) {
    prog::DmaSpec& dma = d.dmaAt(Endpoint::planeRead(plane));
    dma.variable = strFormat("u%+d", offset);
    dma.base = layout_.wordOf(c0 + offset);
    dma.stride = 1;
    dma.count = M;
  };
  for (int i = 0; i < copies; ++i) {
    readDma(from[static_cast<std::size_t>(i)], offsets[i]);
  }
  readDma(layout_.f_plane, 0);
  d.dmaAt(Endpoint::planeRead(layout_.f_plane)).variable = "f";

  // Singlet ALSs 0..7 in the restricted machine.
  const auto fu = [&](int als) {
    return machine_.als(als).fus[0];
  };
  const arch::FuId s1 = fu(0), s2 = fu(1), s3 = fu(2), zs = fu(3), s5 = fu(4),
                   fh = fu(5), nm = fu(6), sc = fu(7);

  d.setFuOp(machine_, s1, OpCode::kAdd);
  d.connect(machine_, Endpoint::planeRead(from[1]), Endpoint::fuInput(s1, 0));
  d.connect(machine_, Endpoint::planeRead(from[0]), Endpoint::fuInput(s1, 1));
  d.setFuOp(machine_, s2, OpCode::kAdd);
  d.connect(machine_, Endpoint::fuOutput(s1), Endpoint::fuInput(s2, 0));
  d.connect(machine_, Endpoint::planeRead(from[2]), Endpoint::fuInput(s2, 1));
  d.setFuOp(machine_, s3, OpCode::kAdd);
  d.connect(machine_, Endpoint::fuOutput(s2), Endpoint::fuInput(s3, 0));
  d.connect(machine_, Endpoint::planeRead(from[3]), Endpoint::fuInput(s3, 1));
  d.setFuOp(machine_, zs, OpCode::kAdd);
  d.connect(machine_, Endpoint::planeRead(from[4]), Endpoint::fuInput(zs, 0));
  d.connect(machine_, Endpoint::planeRead(from[5]), Endpoint::fuInput(zs, 1));
  d.setFuOp(machine_, s5, OpCode::kAdd);
  d.connect(machine_, Endpoint::fuOutput(zs), Endpoint::fuInput(s5, 0));
  d.connect(machine_, Endpoint::fuOutput(s3), Endpoint::fuInput(s5, 1));
  d.setFuOp(machine_, fh, OpCode::kMul);
  d.connect(machine_, Endpoint::planeRead(layout_.f_plane),
            Endpoint::fuInput(fh, 0));
  d.setConstInput(machine_, fh, 1, h2);
  d.setFuOp(machine_, nm, OpCode::kSub);
  d.connect(machine_, Endpoint::fuOutput(s5), Endpoint::fuInput(nm, 0));
  d.connect(machine_, Endpoint::fuOutput(fh), Endpoint::fuInput(nm, 1));
  d.setFuOp(machine_, sc, OpCode::kMul);
  d.connect(machine_, Endpoint::fuOutput(nm), Endpoint::fuInput(sc, 0));
  d.setConstInput(machine_, sc, 1, 1.0 / 6.0);

  arch::FuId unew = sc;
  if (options_.omega != 1.0) {
    const arch::FuId df = fu(8), dm = fu(9), da = fu(10);
    d.setFuOp(machine_, df, OpCode::kSub);
    d.connect(machine_, Endpoint::fuOutput(sc), Endpoint::fuInput(df, 0));
    d.connect(machine_, Endpoint::planeRead(from[6]), Endpoint::fuInput(df, 1));
    d.setFuOp(machine_, dm, OpCode::kMul);
    d.connect(machine_, Endpoint::fuOutput(df), Endpoint::fuInput(dm, 0));
    d.setConstInput(machine_, dm, 1, options_.omega);
    d.setFuOp(machine_, da, OpCode::kAdd);
    d.connect(machine_, Endpoint::fuOutput(dm), Endpoint::fuInput(da, 0));
    d.connect(machine_, Endpoint::planeRead(from[6]), Endpoint::fuInput(da, 1));
    unew = da;
  }

  for (int i = 0; i < copies; ++i) {
    const arch::PlaneId p = to[static_cast<std::size_t>(i)];
    d.connect(machine_, Endpoint::fuOutput(unew), Endpoint::planeWrite(p));
    prog::DmaSpec& dma = d.dmaAt(Endpoint::planeWrite(p));
    dma.variable = "u_next";
    dma.base = layout_.wordOf(c0);
    dma.stride = 1;
    dma.count = M;
  }
}

// ---------------------------------------------------------------------------
// Face restore
// ---------------------------------------------------------------------------

prog::PipelineDiagram JacobiProgram::buildRestore(
    int face, arch::PlaneId from, const std::vector<arch::PlaneId>& to,
    const std::string& name) const {
  const Grid3& g = layout_.grid;
  prog::PipelineDiagram d;
  d.name = name;
  d.comment = "boundary face refresh (two-level DMA copy)";

  prog::DmaSpec spec;
  spec.variable = strFormat("face%d", face);
  switch (face) {
    case 0:  // i = 0 plane: one column per (j,k)
      spec.base = layout_.wordOf(g.idx(0, 0, 0));
      spec.stride = g.nx;
      spec.count = static_cast<std::uint64_t>(g.ny);
      spec.count2 = static_cast<std::uint64_t>(g.nz);
      spec.stride2 = g.W();
      break;
    case 1:  // i = nx-1
      spec.base = layout_.wordOf(g.idx(g.nx - 1, 0, 0));
      spec.stride = g.nx;
      spec.count = static_cast<std::uint64_t>(g.ny);
      spec.count2 = static_cast<std::uint64_t>(g.nz);
      spec.stride2 = g.W();
      break;
    case 2:  // j = 0: nx contiguous per k
      spec.base = layout_.wordOf(g.idx(0, 0, 0));
      spec.stride = 1;
      spec.count = static_cast<std::uint64_t>(g.nx);
      spec.count2 = static_cast<std::uint64_t>(g.nz);
      spec.stride2 = g.W();
      break;
    case 3:  // j = ny-1
      spec.base = layout_.wordOf(g.idx(0, g.ny - 1, 0));
      spec.stride = 1;
      spec.count = static_cast<std::uint64_t>(g.nx);
      spec.count2 = static_cast<std::uint64_t>(g.nz);
      spec.stride2 = g.W();
      break;
    case 4:  // k = 0: one contiguous plane
      spec.base = layout_.wordOf(g.idx(0, 0, 0));
      spec.stride = 1;
      spec.count = static_cast<std::uint64_t>(g.W());
      break;
    case 5:  // k = nz-1
      spec.base = layout_.wordOf(g.idx(0, 0, g.nz - 1));
      spec.stride = 1;
      spec.count = static_cast<std::uint64_t>(g.W());
      break;
    default:
      assert(false);
  }

  d.dmaAt(Endpoint::planeRead(from)) = spec;
  d.dma[Endpoint::planeRead(from)].variable = "u(old)." + spec.variable;
  for (const arch::PlaneId p : to) {
    d.connect(machine_, Endpoint::planeRead(from), Endpoint::planeWrite(p));
    d.dmaAt(Endpoint::planeWrite(p)) = spec;
  }
  return d;
}

// ---------------------------------------------------------------------------
// Host-side load/extract
// ---------------------------------------------------------------------------

void JacobiProgram::load(sim::ReplicaStore& store,
                         const PoissonProblem& problem) const {
  const Grid3& g = layout_.grid;
  assert(g.nx == problem.grid.nx && g.ny == problem.grid.ny &&
         g.nz == problem.grid.nz);
  const auto pad = static_cast<std::uint64_t>(layout_.pad);
  for (const arch::PlaneId p : layout_.u_a) {
    store.writePlane(p, pad, problem.u0);
  }
  for (const arch::PlaneId p : layout_.u_b) {
    store.writePlane(p, pad, problem.u0);
  }
  store.writePlane(layout_.f_plane, pad, problem.f);
  if (layout_.mask_plane >= 0) {
    store.writePlane(layout_.mask_plane, pad, g.interiorMask());
  }
  if (layout_.res_plane >= 0) {
    const double zero[] = {0.0};
    store.writePlane(layout_.res_plane, 0, zero);
  }
}

void JacobiProgram::load(sim::NodeSim& node,
                         const PoissonProblem& problem) const {
  sim::NodeReplicaStore store(node);
  load(store, problem);
}

std::uint64_t JacobiProgram::sweepsDone(const sim::RunStats& stats) {
  std::uint64_t n = 0;
  for (const sim::InstrStats& instr : stats.trace) {
    if (common::startsWith(instr.name, "sweep")) ++n;
  }
  return n;
}

std::vector<double> JacobiProgram::extract(const sim::NodeSim& node,
                                           std::uint64_t sweeps_done) const {
  // After an odd number of sweeps the freshest iterate is in the B set.
  const arch::PlaneId plane =
      (sweeps_done % 2 == 1) ? layout_.u_b[0] : layout_.u_a[0];
  std::vector<double> out(static_cast<std::size_t>(layout_.grid.N()));
  node.readPlaneInto(plane, static_cast<std::uint64_t>(layout_.pad), out);
  return out;
}

double JacobiProgram::residual(const sim::NodeSim& node) const {
  return layout_.res_plane >= 0 ? node.readPlaneWord(layout_.res_plane, 0)
                                : -1.0;
}

}  // namespace nsc::cfd
