#include "compiler/stencil_lang.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "common/strings.h"

namespace nsc::xc {

using arch::Endpoint;
using arch::OpCode;
using common::Result;
using common::strFormat;

// ---------------------------------------------------------------------------
// DAG representation
// ---------------------------------------------------------------------------

namespace {

enum class NodeKind { kConst, kInput, kOp, kAccum };

struct Node {
  NodeKind kind = NodeKind::kConst;
  double value = 0.0;        // kConst
  std::string array;         // kInput
  int offset = 0;            // kInput
  OpCode op = OpCode::kNop;  // kOp / kAccum
  int a = -1;                // operand node ids
  int b = -1;
};

struct Statement {
  std::string name;
  bool is_reduction = false;
  int root = -1;  // node id
};

}  // namespace

struct StencilProgram::Impl {
  std::vector<Node> nodes;
  std::vector<Statement> statements;
  std::map<std::string, int> named_roots;  // statement name -> node id

  // Hash-consing: structural key -> node id.
  std::map<std::string, int> cse;

  int intern(Node node) {
    std::string key;
    switch (node.kind) {
      case NodeKind::kConst:
        key = strFormat("c:%.17g", node.value);
        break;
      case NodeKind::kInput:
        key = strFormat("i:%s:%d", node.array.c_str(), node.offset);
        break;
      case NodeKind::kOp:
        key = strFormat("o:%d:%d:%d", static_cast<int>(node.op), node.a, node.b);
        break;
      case NodeKind::kAccum:
        key = strFormat("r:%d:%d", static_cast<int>(node.op), node.a);
        break;
    }
    if (const auto it = cse.find(key); it != cse.end()) return it->second;
    nodes.push_back(std::move(node));
    const int id = static_cast<int>(nodes.size()) - 1;
    cse[key] = id;
    return id;
  }

  int constant(double v) {
    Node n;
    n.kind = NodeKind::kConst;
    n.value = v;
    return intern(std::move(n));
  }

  int input(const std::string& array, int offset) {
    Node n;
    n.kind = NodeKind::kInput;
    n.array = array;
    n.offset = offset;
    return intern(std::move(n));
  }

  int op(OpCode code, int a, int b = -1) {
    // Constant folding keeps pure-constant subtrees off the machine.
    const bool a_const = a >= 0 && nodes[static_cast<std::size_t>(a)].kind == NodeKind::kConst;
    const bool b_const = b < 0 || nodes[static_cast<std::size_t>(b)].kind == NodeKind::kConst;
    if (a_const && b_const) {
      const double av = nodes[static_cast<std::size_t>(a)].value;
      const double bv = b >= 0 ? nodes[static_cast<std::size_t>(b)].value : 0.0;
      return constant(arch::evalOp(code, av, bv));
    }
    Node n;
    n.kind = NodeKind::kOp;
    n.op = code;
    n.a = a;
    n.b = b;
    return intern(std::move(n));
  }
};

// ---------------------------------------------------------------------------
// Lexer / parser
// ---------------------------------------------------------------------------

namespace {

struct Token {
  enum Kind { kEnd, kNumber, kIdent, kPunct } kind = kEnd;
  std::string text;
  double number = 0.0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) { advance(); }
  const Token& peek() const { return token_; }
  Token take() {
    Token t = token_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    token_ = Token{};
    token_.line = line_;
    if (pos_ >= src_.size()) return;
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      std::size_t end = pos_;
      while (end < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '.' || src_[end] == 'e' || src_[end] == 'E' ||
              ((src_[end] == '+' || src_[end] == '-') && end > pos_ &&
               (src_[end - 1] == 'e' || src_[end - 1] == 'E')))) {
        ++end;
      }
      token_.kind = Token::kNumber;
      token_.text = src_.substr(pos_, end - pos_);
      token_.number = std::atof(token_.text.c_str());
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '_')) {
        ++end;
      }
      token_.kind = Token::kIdent;
      token_.text = src_.substr(pos_, end - pos_);
      pos_ = end;
      return;
    }
    token_.kind = Token::kPunct;
    token_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token token_;
};

class Parser {
 public:
  Parser(Lexer& lex, StencilProgram::Impl& impl) : lex_(lex), impl_(impl) {}

  common::Status run() {
    while (lex_.peek().kind != Token::kEnd) {
      if (auto s = statement(); !s.isOk()) return s;
    }
    if (impl_.statements.empty()) {
      return common::Status::error("program has no statements");
    }
    return common::Status::ok();
  }

 private:
  common::Status fail(const std::string& what) {
    return failAt(lex_.peek().line, what);
  }
  static common::Status failAt(int line, const std::string& what) {
    return common::Status::error(strFormat("line %d: %s", line, what.c_str()));
  }

  bool eat(const std::string& punct) {
    if (lex_.peek().kind == Token::kPunct && lex_.peek().text == punct) {
      lex_.take();
      return true;
    }
    return false;
  }

  common::Status statement() {
    Token head = lex_.take();
    if (head.kind != Token::kIdent) return fail("expected a statement");
    if (head.text == "param") {
      const Token name = lex_.take();
      if (name.kind != Token::kIdent) return fail("param needs a name");
      if (!eat("=")) return fail("param: expected '='");
      int value = -1;
      if (auto s = expr(value); !s.isOk()) return s;
      if (impl_.nodes[static_cast<std::size_t>(value)].kind != NodeKind::kConst) {
        return fail("param value must be constant");
      }
      params_[name.text] = impl_.nodes[static_cast<std::size_t>(value)].value;
      if (!eat(";")) return fail("expected ';'");
      return common::Status::ok();
    }
    if (head.text == "reduce") {
      const Token name = lex_.take();
      if (name.kind != Token::kIdent) return fail("reduce needs a name");
      if (!eat("=")) return fail("reduce: expected '='");
      const Token fn = lex_.take();
      OpCode op;
      if (fn.text == "max") op = OpCode::kMax;
      else if (fn.text == "min") op = OpCode::kMin;
      else if (fn.text == "sum") op = OpCode::kAdd;
      else return fail("reduce supports max/min/sum");
      if (!eat("(")) return fail("reduce: expected '('");
      int child = -1;
      if (auto s = expr(child); !s.isOk()) return s;
      if (!eat(")")) return fail("reduce: expected ')'");
      if (!eat(";")) return fail("expected ';'");
      Node accum;
      accum.kind = NodeKind::kAccum;
      accum.op = op;
      accum.a = child;
      const int id = impl_.intern(std::move(accum));
      impl_.statements.push_back({name.text, true, id});
      impl_.named_roots[name.text] = id;
      return common::Status::ok();
    }
    // Output statement: NAME = expr ;
    if (!eat("=")) return fail("expected '=' after " + head.text);
    int root = -1;
    if (auto s = expr(root); !s.isOk()) return s;
    if (!eat(";")) return fail("expected ';'");
    // Non-op roots (pure input or constant) go through a pass unit so they
    // occupy an FU output that can be routed to memory.
    const NodeKind kind = impl_.nodes[static_cast<std::size_t>(root)].kind;
    if (kind != NodeKind::kOp) {
      root = impl_.op(OpCode::kPass, root);
      // A folded constant would re-fold; force an op node.
      if (impl_.nodes[static_cast<std::size_t>(root)].kind != NodeKind::kOp) {
        Node n;
        n.kind = NodeKind::kOp;
        n.op = OpCode::kPass;
        n.a = impl_.constant(impl_.nodes[static_cast<std::size_t>(root)].value);
        impl_.nodes.push_back(std::move(n));
        root = static_cast<int>(impl_.nodes.size()) - 1;
      }
    }
    impl_.statements.push_back({head.text, false, root});
    impl_.named_roots[head.text] = root;
    return common::Status::ok();
  }

  // expr := term (('+'|'-') term)*
  common::Status expr(int& out) {
    if (auto s = term(out); !s.isOk()) return s;
    while (lex_.peek().kind == Token::kPunct &&
           (lex_.peek().text == "+" || lex_.peek().text == "-")) {
      const bool add = lex_.take().text == "+";
      int rhs = -1;
      if (auto s = term(rhs); !s.isOk()) return s;
      out = impl_.op(add ? OpCode::kAdd : OpCode::kSub, out, rhs);
    }
    return common::Status::ok();
  }

  common::Status term(int& out) {
    if (auto s = unary(out); !s.isOk()) return s;
    while (lex_.peek().kind == Token::kPunct &&
           (lex_.peek().text == "*" || lex_.peek().text == "/")) {
      const bool mul = lex_.take().text == "*";
      int rhs = -1;
      if (auto s = unary(rhs); !s.isOk()) return s;
      out = impl_.op(mul ? OpCode::kMul : OpCode::kDiv, out, rhs);
    }
    return common::Status::ok();
  }

  common::Status unary(int& out) {
    if (eat("-")) {
      if (auto s = unary(out); !s.isOk()) return s;
      out = impl_.op(OpCode::kNeg, out);
      return common::Status::ok();
    }
    return primary(out);
  }

  common::Status primary(int& out) {
    const Token t = lex_.take();
    if (t.kind == Token::kNumber) {
      out = impl_.constant(t.number);
      return common::Status::ok();
    }
    if (t.kind == Token::kPunct && t.text == "(") {
      if (auto s = expr(out); !s.isOk()) return s;
      if (!eat(")")) return fail("expected ')'");
      return common::Status::ok();
    }
    if (t.kind != Token::kIdent) return failAt(t.line, "expected an operand");

    // Function call?
    static const std::map<std::string, std::pair<OpCode, int>> kFuncs = {
        {"abs", {OpCode::kAbs, 1}},   {"sqrt", {OpCode::kSqrt, 1}},
        {"recip", {OpCode::kRecip, 1}}, {"neg", {OpCode::kNeg, 1}},
        {"min", {OpCode::kMin, 2}},   {"max", {OpCode::kMax, 2}},
    };
    if (lex_.peek().kind == Token::kPunct && lex_.peek().text == "(") {
      const auto fn = kFuncs.find(t.text);
      if (fn == kFuncs.end()) {
        return failAt(t.line, "unknown function " + t.text);
      }
      lex_.take();  // '('
      int a = -1;
      if (auto s = expr(a); !s.isOk()) return s;
      int b = -1;
      if (fn->second.second == 2) {
        if (!eat(",")) return fail(t.text + " takes two arguments");
        if (auto s = expr(b); !s.isOk()) return s;
      }
      if (!eat(")")) return fail("expected ')'");
      out = impl_.op(fn->second.first, a, b);
      return common::Status::ok();
    }

    // Parameter?
    if (const auto p = params_.find(t.text); p != params_.end()) {
      out = impl_.constant(p->second);
      return common::Status::ok();
    }
    // Earlier statement result?
    if (const auto r = impl_.named_roots.find(t.text);
        r != impl_.named_roots.end()) {
      out = r->second;
      return common::Status::ok();
    }
    // Array tap: NAME[OFFSET] or bare NAME == NAME[0].
    int offset = 0;
    if (eat("[")) {
      int sign = 1;
      if (eat("-")) sign = -1;
      else (void)eat("+");
      const Token num = lex_.take();
      if (num.kind != Token::kNumber) return fail("array offset must be a number");
      offset = sign * static_cast<int>(num.number);
      if (!eat("]")) return fail("expected ']'");
    }
    out = impl_.input(t.text, offset);
    return common::Status::ok();
  }

  Lexer& lex_;
  StencilProgram::Impl& impl_;
  std::map<std::string, double> params_;
};

}  // namespace

Result<StencilProgram> StencilProgram::parse(const std::string& source) {
  auto impl = std::make_shared<Impl>();
  Lexer lexer(source);
  Parser parser(lexer, *impl);
  if (const auto status = parser.run(); !status.isOk()) {
    return Result<StencilProgram>::error(status.message());
  }
  StencilProgram program;
  program.impl_ = std::move(impl);
  return program;
}

std::vector<std::string> StencilProgram::inputArrays() const {
  std::set<std::string> names;
  for (const Node& n : impl_->nodes) {
    if (n.kind == NodeKind::kInput) names.insert(n.array);
  }
  return {names.begin(), names.end()};
}

int StencilProgram::statementCount() const {
  return static_cast<int>(impl_->statements.size());
}

// ---------------------------------------------------------------------------
// Host evaluation (association order identical to the pipeline mapping)
// ---------------------------------------------------------------------------

Result<HostEval> StencilProgram::evaluate(
    const std::map<std::string, std::vector<double>>& inputs,
    const CompileOptions& options) const {
  const Impl& impl = *impl_;
  HostEval eval;
  const auto n = static_cast<std::int64_t>(options.vector_length);
  std::vector<double> values(impl.nodes.size(), 0.0);
  std::vector<double> accum(impl.nodes.size(), 0.0);
  for (std::size_t i = 0; i < impl.nodes.size(); ++i) {
    if (impl.nodes[i].kind == NodeKind::kAccum) {
      accum[i] = impl.nodes[i].op == OpCode::kMax  ? -1e300
                 : impl.nodes[i].op == OpCode::kMin ? 1e300
                                                    : 0.0;
    }
  }
  for (const Statement& s : impl.statements) {
    if (!s.is_reduction) {
      eval.outputs[s.name].assign(static_cast<std::size_t>(n), 0.0);
    }
  }

  for (std::int64_t i = 0; i < n; ++i) {
    for (std::size_t id = 0; id < impl.nodes.size(); ++id) {
      const Node& node = impl.nodes[id];
      switch (node.kind) {
        case NodeKind::kConst:
          values[id] = node.value;
          break;
        case NodeKind::kInput: {
          const auto it = inputs.find(node.array);
          if (it == inputs.end()) {
            return Result<HostEval>::error("missing input array " + node.array);
          }
          const auto idx = static_cast<std::int64_t>(options.center_base) + i +
                           node.offset;
          if (idx < 0 || idx >= static_cast<std::int64_t>(it->second.size())) {
            return Result<HostEval>::error(
                strFormat("input %s too short for offset %d", node.array.c_str(),
                          node.offset));
          }
          values[id] = it->second[static_cast<std::size_t>(idx)];
          break;
        }
        case NodeKind::kOp:
          values[id] = arch::evalOp(
              node.op, values[static_cast<std::size_t>(node.a)],
              node.b >= 0 ? values[static_cast<std::size_t>(node.b)] : 0.0);
          break;
        case NodeKind::kAccum:
          accum[id] = arch::evalOp(node.op,
                                   values[static_cast<std::size_t>(node.a)],
                                   accum[id]);
          break;
      }
    }
    for (const Statement& s : impl.statements) {
      if (!s.is_reduction) {
        eval.outputs[s.name][static_cast<std::size_t>(i)] =
            values[static_cast<std::size_t>(s.root)];
      }
    }
  }
  for (const Statement& s : impl.statements) {
    if (s.is_reduction) {
      eval.reductions[s.name] = accum[static_cast<std::size_t>(s.root)];
    }
  }
  return eval;
}

// ---------------------------------------------------------------------------
// Mapping onto the machine
// ---------------------------------------------------------------------------

namespace {

// Tracks FU allocation with chain preference.
class FuAllocator {
 public:
  explicit FuAllocator(const arch::Machine& machine) : machine_(machine) {
    used_.assign(static_cast<std::size_t>(machine.config().numFus()), false);
  }

  // Allocate an FU able to execute `op`, preferring the slot directly
  // after `chain_after` (the hardwired internal ALS path).
  std::optional<arch::FuId> allocate(OpCode op, arch::FuId chain_after) {
    const arch::CapMask need = arch::opInfo(op).required_cap;
    if (chain_after >= 0) {
      const arch::FuInfo& prev = machine_.fu(chain_after);
      const arch::AlsInfo& als = machine_.als(prev.als);
      if (prev.slot + 1 < static_cast<int>(als.fus.size())) {
        const arch::FuId next = als.fus[static_cast<std::size_t>(prev.slot + 1)];
        if (!used_[static_cast<std::size_t>(next)] &&
            machine_.fuHasCap(next, need)) {
          used_[static_cast<std::size_t>(next)] = true;
          return next;
        }
      }
    }
    // Otherwise: first free capable unit, preferring slot-0 positions so
    // later chains stay possible.
    for (int pass = 0; pass < 2; ++pass) {
      for (const arch::FuInfo& fu : machine_.fus()) {
        if (used_[static_cast<std::size_t>(fu.id)]) continue;
        if (!machine_.fuHasCap(fu.id, need)) continue;
        if (pass == 0 && fu.slot != 0) continue;
        used_[static_cast<std::size_t>(fu.id)] = true;
        return fu.id;
      }
    }
    return std::nullopt;
  }

  bool used(arch::FuId fu) const { return used_[static_cast<std::size_t>(fu)]; }

 private:
  const arch::Machine& machine_;
  std::vector<bool> used_;
};

}  // namespace

Result<CompileResult> StencilProgram::compile(
    const arch::Machine& machine, const CompileOptions& options) const {
  const Impl& impl = *impl_;
  const arch::MachineConfig& cfg = machine.config();
  CompileResult result;
  prog::PipelineDiagram& d = result.diagram;
  d.name = "stencil";
  d.comment = "compiled by the stencil front end";

  // --- 1. Group input taps into shift/delay streams. ---
  std::map<std::string, std::vector<int>> taps;  // array -> sorted offsets
  for (const Node& n : impl.nodes) {
    if (n.kind == NodeKind::kInput) taps[n.array].push_back(n.offset);
  }
  for (auto& [name, offsets] : taps) {
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  }

  struct StreamPlan {
    std::string array;
    std::vector<int> offsets;  // served taps
    bool uses_sd = false;
    arch::SdId sd = 0;
    arch::PlaneId plane = 0;
  };
  std::vector<StreamPlan> streams;
  int sd_next = 0;
  for (const auto& [name, offsets] : taps) {
    std::size_t i = 0;
    while (i < offsets.size()) {
      StreamPlan plan;
      plan.array = name;
      if (offsets.size() - i >= 2 && sd_next < cfg.num_shift_delay) {
        // Pack up to sd_taps offsets whose span fits the delay line.
        std::vector<int> group{offsets[i]};
        std::size_t j = i + 1;
        while (j < offsets.size() &&
               static_cast<int>(group.size()) < cfg.sd_taps &&
               offsets[j] - offsets[i] <= cfg.sd_max_delay) {
          group.push_back(offsets[j]);
          ++j;
        }
        if (group.size() >= 2) {
          plan.uses_sd = true;
          plan.sd = sd_next++;
          plan.offsets = group;
          i = j;
          streams.push_back(plan);
          continue;
        }
      }
      plan.offsets = {offsets[i]};
      ++i;
      streams.push_back(plan);
    }
  }

  // Pre-roll: deepest tap delay used by any shift/delay stream.
  int pre_roll = 0;
  for (const StreamPlan& s : streams) {
    if (s.uses_sd) {
      pre_roll = std::max(pre_roll, s.offsets.back() - s.offsets.front());
    }
  }
  result.pre_roll = pre_roll;
  result.read_count = options.vector_length + static_cast<std::uint64_t>(pre_roll);
  result.write_count = options.vector_length;

  // --- 2. Allocate planes: one per input stream, output, and reduction. ---
  int next_plane = 0;
  auto takePlane = [&]() -> std::optional<arch::PlaneId> {
    if (next_plane >= cfg.num_memory_planes) return std::nullopt;
    return next_plane++;
  };

  // Map (array, offset) -> source endpoint available to FU inputs, and
  // the element shift (tap delay) each endpoint carries.
  std::map<std::pair<std::string, int>, Endpoint> tap_source;
  std::map<std::pair<std::string, int>, int> tap_delay;
  for (StreamPlan& s : streams) {
    const auto plane = takePlane();
    if (!plane.has_value()) {
      return Result<CompileResult>::error(
          "out of memory planes for input streams");
    }
    s.plane = *plane;
    const int max_off = s.offsets.back();
    // Element at cycle t from a tap with delay D reads base + t - D; with
    // base = center + max_off - pre_roll and D = max_off - off, the tap
    // sees center + off + (t - pre_roll): offset `off` of window element
    // t - pre_roll.
    const std::uint64_t base =
        options.center_base + static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(max_off) - pre_roll);
    prog::DmaSpec& dma = d.dmaAt(Endpoint::planeRead(s.plane));
    dma.variable = s.array;
    dma.base = base;
    dma.stride = 1;
    dma.count = result.read_count;

    if (s.uses_sd) {
      d.connect(machine, Endpoint::planeRead(s.plane),
                Endpoint::sdInput(s.sd));
      std::vector<int> delays;
      for (std::size_t t = 0; t < s.offsets.size(); ++t) {
        delays.push_back(max_off - s.offsets[t]);
        tap_source[{s.array, s.offsets[t]}] =
            Endpoint::sdOutput(s.sd, static_cast<int>(t));
        tap_delay[{s.array, s.offsets[t]}] = max_off - s.offsets[t];
      }
      d.useSd(s.sd, std::move(delays));
    } else {
      tap_source[{s.array, s.offsets[0]}] = Endpoint::planeRead(s.plane);
      tap_delay[{s.array, s.offsets[0]}] = 0;
    }
    StreamPlacement placement;
    placement.array = s.array;
    placement.plane = s.plane;
    placement.base = base;
    placement.offsets = s.offsets;
    result.streams.push_back(std::move(placement));
  }

  // --- 3. Window synchronization. ---
  // A statement's valid window is the intersection of its taps' windows:
  // a tap with delay D is warm for window elements [D - pre_roll, D + N).
  // For the window to be exactly [0, N) the cone must include a tap with
  // D == pre_roll (start) and one with D == 0 (end).  Statements missing
  // either get a numerically exact gate  x + 0*sync  appended, whose only
  // effect is to intersect validity windows (the NSC way to discard
  // warmup/drain junk; reductions would otherwise fold it in).
  std::vector<Node> nodes = impl.nodes;
  std::vector<Statement> statements = impl.statements;

  // Reductions need an end-of-stream marker to drain their accumulator; a
  // cone with no input stream never produces one.
  {
    std::vector<bool> has_stream(nodes.size(), false);
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      const Node& n = nodes[id];
      if (n.kind == NodeKind::kInput) {
        has_stream[id] = true;
      } else if (n.kind == NodeKind::kOp || n.kind == NodeKind::kAccum) {
        for (const int child : {n.a, n.b}) {
          if (child >= 0) {
            has_stream[id] =
                has_stream[id] || has_stream[static_cast<std::size_t>(child)];
          }
        }
      }
    }
    for (const Statement& s : statements) {
      if (s.is_reduction &&
          !has_stream[static_cast<std::size_t>(
              nodes[static_cast<std::size_t>(s.root)].a)]) {
        return Result<CompileResult>::error(
            "reduction over a constant stream never terminates: " + s.name);
      }
    }
  }

  if (pre_roll > 0) {
    int deep_input = -1, zero_input = -1;
    struct Cone {
      int max_d = -1;
      int min_d = 1 << 30;
      bool stream = false;
    };
    std::vector<Cone> cone(nodes.size());
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      const Node& n = nodes[id];
      if (n.kind == NodeKind::kInput) {
        const int delay = tap_delay.at({n.array, n.offset});
        cone[id] = {delay, delay, true};
        if (delay == pre_roll) deep_input = static_cast<int>(id);
        if (delay == 0) zero_input = static_cast<int>(id);
      } else if (n.kind == NodeKind::kOp || n.kind == NodeKind::kAccum) {
        Cone c;
        for (const int child : {n.a, n.b}) {
          if (child < 0) continue;
          const Cone& cc = cone[static_cast<std::size_t>(child)];
          if (!cc.stream) continue;
          c.stream = true;
          c.max_d = std::max(c.max_d, cc.max_d);
          c.min_d = std::min(c.min_d, cc.min_d);
        }
        cone[id] = c;
      }
    }
    auto gate = [&](int target) -> int {
      const Cone c = cone[static_cast<std::size_t>(target)];
      if (!c.stream) return target;
      int g = target;
      auto addSync = [&](int sync_input) {
        Node zero;
        zero.kind = NodeKind::kConst;
        zero.value = 0.0;
        nodes.push_back(zero);
        cone.push_back(Cone{});
        const int zid = static_cast<int>(nodes.size()) - 1;
        Node mul;
        mul.kind = NodeKind::kOp;
        mul.op = OpCode::kMul;
        mul.a = sync_input;
        mul.b = zid;
        nodes.push_back(mul);
        cone.push_back(cone[static_cast<std::size_t>(sync_input)]);
        const int mid = static_cast<int>(nodes.size()) - 1;
        Node add;
        add.kind = NodeKind::kOp;
        add.op = OpCode::kAdd;
        add.a = g;
        add.b = mid;
        nodes.push_back(add);
        Cone merged = cone[static_cast<std::size_t>(g)];
        const Cone& sc = cone[static_cast<std::size_t>(mid)];
        merged.stream = true;
        merged.max_d = std::max(merged.max_d, sc.max_d);
        merged.min_d = std::min(merged.min_d, sc.min_d);
        cone.push_back(merged);
        g = static_cast<int>(nodes.size()) - 1;
      };
      if (c.max_d < pre_roll && deep_input >= 0) addSync(deep_input);
      if (cone[static_cast<std::size_t>(g)].min_d > 0 && zero_input >= 0) {
        addSync(zero_input);
      }
      return g;
    };
    for (Statement& s : statements) {
      if (s.is_reduction) {
        nodes[static_cast<std::size_t>(s.root)].a =
            gate(nodes[static_cast<std::size_t>(s.root)].a);
      } else {
        s.root = gate(s.root);
      }
    }
  }

  // --- 4. Map DAG nodes onto functional units (topological = id order). ---
  FuAllocator alloc(machine);
  std::vector<arch::FuId> node_fu(nodes.size(), -1);
  // Reference counts to decide chain preference.
  std::vector<int> uses(nodes.size(), 0);
  for (const Node& n : nodes) {
    if (n.kind == NodeKind::kOp || n.kind == NodeKind::kAccum) {
      if (n.a >= 0) ++uses[static_cast<std::size_t>(n.a)];
      if (n.b >= 0) ++uses[static_cast<std::size_t>(n.b)];
    }
  }

  auto operandEndpoint = [&](int id) -> std::optional<Endpoint> {
    const Node& n = nodes[static_cast<std::size_t>(id)];
    switch (n.kind) {
      case NodeKind::kInput:
        return tap_source.at({n.array, n.offset});
      case NodeKind::kOp:
      case NodeKind::kAccum:
        return Endpoint::fuOutput(node_fu[static_cast<std::size_t>(id)]);
      case NodeKind::kConst:
        return std::nullopt;
    }
    return std::nullopt;
  };

  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const Node& node = nodes[id];
    if (node.kind != NodeKind::kOp && node.kind != NodeKind::kAccum) continue;

    // Chain candidate: single-use producing operand mapped to a unit whose
    // next ALS slot is free.
    arch::FuId chain_after = -1;
    for (const int operand : {node.a, node.b}) {
      if (operand < 0) continue;
      const Node& child = nodes[static_cast<std::size_t>(operand)];
      if ((child.kind == NodeKind::kOp || child.kind == NodeKind::kAccum) &&
          uses[static_cast<std::size_t>(operand)] == 1) {
        chain_after = node_fu[static_cast<std::size_t>(operand)];
        break;
      }
    }
    const auto fu = alloc.allocate(node.op, chain_after);
    if (!fu.has_value()) {
      return Result<CompileResult>::error(
          strFormat("out of functional units for '%s'",
                    arch::opInfo(node.op).name));
    }
    node_fu[id] = *fu;
    ++result.fus_used;
    d.setFuOp(machine, *fu, node.op);

    if (node.kind == NodeKind::kAccum) {
      const auto src = operandEndpoint(node.a);
      if (!src.has_value()) {
        return Result<CompileResult>::error("reduction of a constant");
      }
      d.connect(machine, *src, Endpoint::fuInput(*fu, 0));
      const double seed = node.op == OpCode::kMax   ? -1e300
                          : node.op == OpCode::kMin ? 1e300
                                                    : 0.0;
      d.setAccumInput(machine, *fu, 1, seed);
      continue;
    }

    const int arity = arch::opInfo(node.op).arity;
    for (int port = 0; port < arity; ++port) {
      const int operand = port == 0 ? node.a : node.b;
      const Node& child = nodes[static_cast<std::size_t>(operand)];
      if (child.kind == NodeKind::kConst) {
        d.setConstInput(machine, *fu, port, child.value);
      } else {
        d.connect(machine, *operandEndpoint(operand),
                  Endpoint::fuInput(*fu, port));
      }
    }
  }

  // --- 5. Route statement results to memory. ---
  for (const Statement& s : statements) {
    const auto plane = takePlane();
    if (!plane.has_value()) {
      return Result<CompileResult>::error("out of memory planes for outputs");
    }
    const arch::FuId fu = node_fu[static_cast<std::size_t>(s.root)];
    d.connect(machine, Endpoint::fuOutput(fu), Endpoint::planeWrite(*plane));
    prog::DmaSpec& dma = d.dmaAt(Endpoint::planeWrite(*plane));
    dma.variable = s.name;
    dma.stride = 1;
    if (s.is_reduction) {
      dma.base = 0;
      dma.count = 1;
      result.reductions[s.name] = {*plane, 0};
    } else {
      dma.base = options.center_base;
      dma.count = result.write_count;
      result.output_planes[s.name] = *plane;
      StreamPlacement placement;
      placement.array = s.name;
      placement.plane = *plane;
      placement.base = options.center_base;
      placement.is_output = true;
      result.streams.push_back(std::move(placement));
    }
  }

  d.seq.op = arch::SeqOp::kHalt;
  return result;
}

}  // namespace nsc::xc
