// A small stencil-expression language compiled onto NSC pipelines.
//
// The paper (Sections 3 and 6) explains why a full FORTRAN compiler was
// judged a three-year effort — mapping expression graphs onto asymmetric
// function units, allocating memory planes, and balancing pipeline timing
// interact badly — and closes hoping for "a higher-level programming
// environment".  This module is that future-work extension, scoped to the
// machine's natural workload: elementwise/stencil vector statements with
// reductions.  The hard sub-problems the paper names are all here:
// capability-aware FU mapping with ALS chaining, shift/delay inference for
// neighbor taps, memory-plane allocation with one-stream-per-plane, and
// (via the shared generator) automatic delay balancing.
//
// Grammar (statements end with ';', '#' starts a comment):
//   param NAME = NUMBER ;
//   NAME = expr ;                  -- output array, streamed to a plane
//   reduce NAME = max(expr) ;      -- scalar reduction (max | min | sum)
// Expressions: + - * /, unary -, parentheses, numbers, parameters,
// earlier statement names, function calls abs(x) sqrt(x) recip(x)
// min(x,y) max(x,y), and array taps NAME[OFFSET] (NAME alone = NAME[0]).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "common/status.h"
#include "program/pipeline.h"

namespace nsc::xc {

struct CompileOptions {
  std::uint64_t vector_length = 64;  // results per statement (N)
  // Word offset of array element "center 0" inside each input plane; the
  // compiler adds the pre-roll margin itself.
  std::uint64_t center_base = 256;
};

struct StreamPlacement {
  std::string array;
  arch::PlaneId plane = 0;
  std::uint64_t base = 0;   // programmed DMA base
  bool is_output = false;
  std::vector<int> offsets;  // taps served by this stream (inputs only)
};

struct CompileResult {
  prog::PipelineDiagram diagram;
  std::vector<StreamPlacement> streams;
  std::map<std::string, arch::PlaneId> output_planes;
  // reduction name -> (plane, word address) of the scalar result
  std::map<std::string, std::pair<arch::PlaneId, std::uint64_t>> reductions;
  std::uint64_t read_count = 0;   // per input stream (includes pre-roll)
  std::uint64_t write_count = 0;  // per output stream
  int pre_roll = 0;               // elements of warmup before the window
  int fus_used = 0;
};

// Host-side evaluation results for verification.
struct HostEval {
  std::map<std::string, std::vector<double>> outputs;
  std::map<std::string, double> reductions;
};

class StencilProgram {
 public:
  // Parses the source; returns an error with line context on failure.
  static common::Result<StencilProgram> parse(const std::string& source);

  // Maps the program onto the machine: FU allocation, shift/delay
  // inference, plane allocation, DMA programming.
  common::Result<CompileResult> compile(const arch::Machine& machine,
                                        const CompileOptions& options) const;

  // Evaluates on the host with the same operation order the pipeline uses.
  // `inputs[name]` must hold center_base + N + max positive offset values;
  // element i of the window reads inputs[name][center_base + i + offset].
  common::Result<HostEval> evaluate(
      const std::map<std::string, std::vector<double>>& inputs,
      const CompileOptions& options) const;

  // Names of input arrays (appearing with taps but never defined).
  std::vector<std::string> inputArrays() const;
  int statementCount() const;

  struct Impl;  // exposed for the parser implementation; treat as opaque

 private:
  std::shared_ptr<const Impl> impl_;
};

}  // namespace nsc::xc
