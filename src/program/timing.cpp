#include "program/timing.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"

namespace nsc::prog {

namespace {

constexpr int kSwitchHopCycles = 1;

// Memoized production-time solver over the diagram's dataflow graph.
class Solver {
 public:
  Solver(const arch::Machine& machine, const PipelineDiagram& diagram,
         TimingResult& result)
      : machine_(machine), diagram_(diagram), result_(result) {}

  // Production time of element 0 at a source endpoint, or nullopt on error.
  std::optional<int> sourceTime(const arch::Endpoint& src) {
    if (auto it = memo_.find(src); it != memo_.end()) {
      if (it->second == kInProgress) {
        fail("combinational cycle through " + src.toString());
        return std::nullopt;
      }
      return it->second;
    }
    memo_[src] = kInProgress;
    std::optional<int> t;
    switch (src.kind) {
      case arch::EndpointKind::kPlaneRead:
      case arch::EndpointKind::kCacheRead:
        t = 0;
        break;
      case arch::EndpointKind::kSdOutput:
        t = sdTapTime(src);
        break;
      case arch::EndpointKind::kFuOutput:
        t = fuOutputTime(src.unit);
        break;
      default:
        fail("endpoint cannot source a stream: " + src.toString());
        break;
    }
    if (t.has_value()) {
      memo_[src] = *t;
      result_.time[src] = *t;
    }
    return t;
  }

  // Arrival time of element 0 at a destination endpoint.
  std::optional<int> arrivalTime(const arch::Endpoint& dst) {
    const auto conn = diagram_.connectionTo(dst);
    if (!conn.has_value()) {
      fail("no driver for " + dst.toString());
      return std::nullopt;
    }
    const auto t = sourceTime(conn->from);
    if (!t.has_value()) return std::nullopt;
    const bool chain = conn->from.kind == arch::EndpointKind::kFuOutput &&
                       dst.kind == arch::EndpointKind::kFuInput &&
                       machine_.isChainPath(conn->from.unit, dst.unit);
    const int arrival = *t + (chain ? 0 : kSwitchHopCycles);
    result_.time[dst] = arrival;
    return arrival;
  }

 private:
  static constexpr int kInProgress = -1000000;

  void fail(std::string message) {
    result_.errors.push_back(std::move(message));
  }

  std::optional<int> sdTapTime(const arch::Endpoint& src) {
    const ShiftDelayUse* use = nullptr;
    for (const ShiftDelayUse& u : diagram_.sd_uses) {
      if (u.sd == src.unit) use = &u;
    }
    if (use == nullptr ||
        src.port >= static_cast<int>(use->tap_delays.size())) {
      fail("shift/delay tap not configured: " + src.toString());
      return std::nullopt;
    }
    const auto in = arrivalTime(arch::Endpoint::sdInput(src.unit));
    if (!in.has_value()) return std::nullopt;
    // Tap delays are *semantic element shifts* (a tap with delay d pairs a
    // d-elements-older value with its siblings — how stencils form their
    // neighbor streams).  They are deliberately excluded from structural
    // arrival times so the balancer does not "correct" the intended shift;
    // the leading/trailing pipeline bubbles they cause are handled by the
    // simulator's valid-gating.
    return *in;
  }

  std::optional<int> fuOutputTime(arch::FuId fu) {
    const FuUse* use = diagram_.findFu(machine_, fu);
    if (use == nullptr || !use->enabled) {
      fail(common::strFormat("fu%d sources a stream but is not enabled", fu));
      return std::nullopt;
    }
    const arch::OpInfo& info = arch::opInfo(use->op);
    // Arrival per input; register-file constants and accumulator feedback
    // are available every cycle and do not constrain timing.
    auto inputArrival = [&](int port,
                            arch::InputSelect sel) -> std::optional<int> {
      switch (sel) {
        case arch::InputSelect::kSwitch:
        case arch::InputSelect::kChain: {
          auto t = arrivalTime(arch::Endpoint::fuInput(fu, port));
          if (!t.has_value()) return std::nullopt;
          if (use->rf_mode == arch::RfMode::kDelay &&
              use->rf_delay_port == port) {
            *t += use->rf_delay;
          }
          return t;
        }
        case arch::InputSelect::kRegisterFile:
        case arch::InputSelect::kFeedback:
        case arch::InputSelect::kNone:
          return std::nullopt;  // unconstrained
      }
      return std::nullopt;
    };

    std::optional<int> ta, tb;
    if (use->in_a != arch::InputSelect::kNone &&
        use->in_a != arch::InputSelect::kRegisterFile &&
        use->in_a != arch::InputSelect::kFeedback) {
      ta = inputArrival(0, use->in_a);
      if (!ta.has_value()) return std::nullopt;
    }
    if (info.arity >= 2 && use->in_b != arch::InputSelect::kNone &&
        use->in_b != arch::InputSelect::kRegisterFile &&
        use->in_b != arch::InputSelect::kFeedback) {
      tb = inputArrival(1, use->in_b);
      if (!tb.has_value()) return std::nullopt;
    }

    int launch = 0;
    if (ta.has_value() && tb.has_value()) {
      if (*ta != *tb) {
        result_.misaligned.push_back({fu, *ta, *tb});
      }
      launch = std::max(*ta, *tb);
    } else if (ta.has_value()) {
      launch = *ta;
    } else if (tb.has_value()) {
      launch = *tb;
    } else {
      launch = 0;  // purely constant/feedback-fed unit
    }
    return launch + info.latency;
  }

  const arch::Machine& machine_;
  const PipelineDiagram& diagram_;
  TimingResult& result_;
  std::map<arch::Endpoint, int> memo_;
};

}  // namespace

TimingResult analyzeTiming(const arch::Machine& machine,
                           const PipelineDiagram& diagram) {
  TimingResult result;
  Solver solver(machine, diagram, result);

  // Drive the analysis from every stream sink: plane/cache writes and
  // shift/delay inputs; FU outputs are reached transitively.  Also force
  // evaluation of every enabled FU so dangling subgraphs are analyzed.
  for (const Connection& c : diagram.connections) {
    if (c.to.kind == arch::EndpointKind::kPlaneWrite ||
        c.to.kind == arch::EndpointKind::kCacheWrite) {
      if (auto t = solver.arrivalTime(c.to); t.has_value()) {
        result.depth = std::max(result.depth, *t);
      }
    }
  }
  for (const AlsUse& use : diagram.als_uses) {
    const arch::AlsInfo& info = machine.als(use.als);
    for (std::size_t slot = 0; slot < use.fu.size(); ++slot) {
      if (use.fu[slot].enabled && slot < info.fus.size()) {
        solver.sourceTime(arch::Endpoint::fuOutput(info.fus[slot]));
      }
    }
  }
  result.ok = result.errors.empty();
  return result;
}

int balanceDelays(const arch::Machine& machine, PipelineDiagram& diagram) {
  int inserted = 0;
  // Balancing an upstream FU changes downstream arrivals, so iterate until
  // a fixed point; each pass fixes at least one FU or stops.
  for (int pass = 0; pass < 256; ++pass) {
    TimingResult timing = analyzeTiming(machine, diagram);
    if (!timing.ok) return -1;
    if (timing.misaligned.empty()) return inserted;

    // Fix the first misaligned FU whose inputs are themselves aligned
    // upstream — with memoized analysis, simply the first reported.
    const FuSkew& skew = timing.misaligned.front();
    FuUse& use = diagram.fuUse(machine, skew.fu);
    if (use.rf_mode == arch::RfMode::kAccum) return -1;  // queue unavailable
    // Arrivals are post-delay; the early input needs `gap` more cycles.
    const int gap = std::abs(skew.arrival_a - skew.arrival_b);
    const int early_port = skew.arrival_a < skew.arrival_b ? 0 : 1;
    int new_port = early_port;
    int new_delay = gap;
    if (use.rf_mode == arch::RfMode::kDelay) {
      if (use.rf_delay_port == early_port) {
        new_delay = use.rf_delay + gap;
      } else if (use.rf_delay >= gap) {
        // Shrink the existing queue on the late input instead.
        new_port = use.rf_delay_port;
        new_delay = use.rf_delay - gap;
      } else {
        // Zero the late input's queue and move it to the early input.
        new_delay = gap - use.rf_delay;
      }
    }
    if (new_delay > machine.config().rf_max_delay) return -1;
    use.rf_mode = arch::RfMode::kDelay;
    use.rf_delay_port = new_port;
    use.rf_delay = new_delay;
    ++inserted;
  }
  return -1;
}

}  // namespace nsc::prog
