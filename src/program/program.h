// Program: an ordered list of pipeline diagrams (instructions).
//
// "To construct a program, a user defines a series of pipeline diagrams.
// Each pipeline corresponds to a single instruction, or one line of code,
// in a more conventional language."  (paper, Section 5.)
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "program/pipeline.h"

namespace nsc::prog {

class Program {
 public:
  std::string name;
  std::vector<PipelineDiagram> pipelines;

  std::size_t size() const { return pipelines.size(); }
  bool empty() const { return pipelines.empty(); }
  PipelineDiagram& operator[](std::size_t i) { return pipelines[i]; }
  const PipelineDiagram& operator[](std::size_t i) const { return pipelines[i]; }

  PipelineDiagram& append(std::string pipeline_name);

  bool operator==(const Program&) const = default;

  common::Json toJson() const;
  static common::Result<Program> fromJson(const common::Json& json);

  common::Status saveToFile(const std::string& path) const;
  static common::Result<Program> loadFromFile(const std::string& path);
};

}  // namespace nsc::prog
