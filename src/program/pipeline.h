// Semantic data structures for NSC programs.
//
// "Two types of internal data are distinguished.  One type consists of
// information which is needed solely to manage the graphical display ...
// The other type consists of semantic information which is needed in order
// to generate microcode."  (paper, Section 4.)  This module is the second
// kind: everything the microcode generator needs, nothing the display
// needs.  The editor layers graphical state on top (src/editor), and the
// prototype's output — "the semantic data structures ... a pseudo-code
// representation of the instructions" — is exactly a serialized Program.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "arch/microword_spec.h"
#include "arch/ops.h"
#include "arch/types.h"
#include "common/json.h"
#include "common/status.h"

namespace nsc::prog {

// Configuration of one functional unit inside an ALS use.
struct FuUse {
  bool enabled = false;
  arch::OpCode op = arch::OpCode::kNop;
  arch::InputSelect in_a = arch::InputSelect::kNone;
  arch::InputSelect in_b = arch::InputSelect::kNone;
  arch::RfMode rf_mode = arch::RfMode::kOff;
  int rf_delay = 0;          // circular-queue depth when rf_mode == kDelay
  double rf_constant = 0.0;  // preloaded constant (register-file value) when
                             // an input selects kRegisterFile, or the seed
                             // when rf_mode == kAccum
  // Which input the register-file delay queue feeds (0 = A, 1 = B) when
  // rf_mode == kDelay.  The generator fills this in automatically during
  // delay balancing; diagrams may also pin it by hand.
  int rf_delay_port = 0;

  bool operator==(const FuUse&) const = default;
};

// One ALS placed in a pipeline diagram.
struct AlsUse {
  arch::AlsId als = 0;
  std::vector<FuUse> fu;  // sized to the ALS kind's FU count
  // Doublets can be configured to operate as singlets by bypassing one
  // functional unit (paper, Section 5 / Figure 4); bypassed slots must
  // stay disabled.
  bool bypass = false;

  bool operator==(const AlsUse&) const = default;
};

// A switch-routed (or internal chain) stream between two endpoints.
struct Connection {
  arch::Endpoint from;
  arch::Endpoint to;

  auto operator<=>(const Connection&) const = default;
  std::string toString() const {
    return from.toString() + " -> " + to.toString();
  }
};

// DMA programming for a plane or cache endpoint — the contents of the
// paper's Figure 9 popup subwindow (plane number, variable name or starting
// address, stride, etc.).
//
// Plane DMA engines support two-level (rectangular) transfers: `count`
// elements `stride` apart, repeated `count2` times with the row origin
// advancing by `stride2` — the access pattern CFD boundary faces need.
// The paper only says independent DMA controllers "pump data through the
// pipelines"; two-level addressing is the standard capability for such
// engines and is recorded as a modelling choice in DESIGN.md.
struct DmaSpec {
  std::string variable;      // symbolic annotation, optional
  std::uint64_t base = 0;    // word offset within the plane/cache buffer
  std::int64_t stride = 1;   // words between consecutive elements
  std::uint64_t count = 0;   // elements per row
  std::uint64_t count2 = 1;  // rows (planes only; 1 = simple vector)
  std::int64_t stride2 = 0;  // words between row origins
  int read_buffer = 0;       // caches: which half of the double buffer
  bool swap_buffers = false; // caches: swap halves when instruction ends

  std::uint64_t totalElements() const { return count * count2; }

  bool operator==(const DmaSpec&) const = default;
};

// Shift/delay unit use: one input stream fanned out to `tap_delays.size()`
// shifted copies (used to reformat one memory stream into the u[k-1], u[k],
// u[k+1] taps of a stencil).
struct ShiftDelayUse {
  arch::SdId sd = 0;
  std::vector<int> tap_delays;  // delay in cycles for each tap, tap 0 first

  bool operator==(const ShiftDelayUse&) const = default;
};

// Condition latch: when the pipeline drains, the last value produced by
// `src_fu` (interpreted as a boolean, >0.5) is stored into condition
// register `cond_reg` for the sequencer.  Implements "an elaborate
// interrupt scheme is used to ... evaluate conditional expressions".
struct CondLatch {
  arch::FuId src_fu = 0;
  int cond_reg = 0;

  bool operator==(const CondLatch&) const = default;
};

// Sequencer control attached to the instruction.
struct SeqControl {
  arch::SeqOp op = arch::SeqOp::kNext;
  int target = 0;    // instruction index for jumps/branches/loops
  int cond_reg = 0;  // condition register tested by kBranchIf/kBranchNot
  int count = 0;     // iteration count for kLoop

  bool operator==(const SeqControl&) const = default;
};

// One pipeline diagram == one NSC instruction == "one line of code, in a
// more conventional language" (paper, Section 5).
class PipelineDiagram {
 public:
  std::string name;
  std::string comment;

  std::vector<AlsUse> als_uses;
  std::vector<Connection> connections;
  std::map<arch::Endpoint, DmaSpec> dma;  // keyed by plane/cache endpoint
  std::vector<ShiftDelayUse> sd_uses;
  std::optional<CondLatch> cond;
  SeqControl seq;

  // ---- Builder conveniences (used by the editor commands, the CFD
  // program builders, and tests). ----

  // Places ALS `als` in the diagram (no-op if already present) and returns
  // its use record.
  AlsUse& useAls(const arch::Machine& machine, arch::AlsId als);
  AlsUse* findAls(arch::AlsId als);
  const AlsUse* findAls(arch::AlsId als) const;

  // FU-level access; the FU's ALS must already be placed.
  FuUse* findFu(const arch::Machine& machine, arch::FuId fu);
  const FuUse* findFu(const arch::Machine& machine, arch::FuId fu) const;
  FuUse& fuUse(const arch::Machine& machine, arch::FuId fu);

  // Assigns an operation to a functional unit (enables it).
  void setFuOp(const arch::Machine& machine, arch::FuId fu, arch::OpCode op);

  // Adds a connection and, when the destination is an FU input, marks that
  // input as switch- or chain-fed.
  void connect(const arch::Machine& machine, const arch::Endpoint& from,
               const arch::Endpoint& to);

  // Marks an FU input as fed by a register-file constant.
  void setConstInput(const arch::Machine& machine, arch::FuId fu, int port,
                     double value);
  // Marks input `port` as the FU's own accumulated output (reduction loop)
  // seeded with `seed`.
  void setAccumInput(const arch::Machine& machine, arch::FuId fu, int port,
                     double seed);

  DmaSpec& dmaAt(const arch::Endpoint& endpoint) {
    bumpRevision();  // the caller writes through the returned reference
    return dma[endpoint];
  }

  ShiftDelayUse& useSd(arch::SdId sd, std::vector<int> tap_delays);

  // Incoming/outgoing connections of an endpoint.
  std::vector<Connection> connectionsFrom(const arch::Endpoint& from) const;
  std::optional<Connection> connectionTo(const arch::Endpoint& to) const;

  // ---- Edit revision ----
  // Monotonic counter bumped by every mutating builder call above.  Checker
  // caches (the editor's memoized checker sessions) key on it to reuse
  // legalTargets/checkConnection results between mutations.  Code that
  // mutates the public fields directly must call bumpRevision() itself.
  // Not part of semantic equality and not serialized.
  std::uint64_t revision() const { return revision_; }
  void bumpRevision() { ++revision_; }

  // Semantic equality; ignores revision().
  bool operator==(const PipelineDiagram& other) const;

  common::Json toJson() const;
  static common::Result<PipelineDiagram> fromJson(const common::Json& json);

 private:
  std::uint64_t revision_ = 0;
};

// Endpoint (de)serialization shared with the editor's diagram files.
common::Json endpointToJson(const arch::Endpoint& e);
common::Result<arch::Endpoint> endpointFromJson(const common::Json& json);

}  // namespace nsc::prog
