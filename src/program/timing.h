// Pipeline timing analysis and automatic delay balancing.
//
// "Timing delays, needed for proper alignment of vector streams, may be
// introduced by routing input data into a circular queue in a register
// file and then retrieving the value a number of clock cycles later."
// (paper, Section 5.)
//
// The analysis assigns each stream endpoint an element-0 production/arrival
// time, assuming all DMA read engines start at cycle 0.  A functional unit
// combining two streams requires both operands of the same element index to
// arrive in the same cycle; `balanceDelays` inserts register-file delays on
// the earlier input to make that hold.  Both the checker (validation) and
// the microcode generator (automatic insertion) build on this module.
//
// Model (documented in DESIGN.md):
//   - plane/cache reads produce element 0 at cycle 0;
//   - a switch hop costs 1 cycle; the hardwired ALS chain path costs 0;
//   - a functional unit adds opInfo(op).latency cycles;
//   - a register-file delay queue adds fu.rf_delay cycles on one input;
//   - a shift/delay unit tap contributes *no* structural delay: its
//     configured tap delay is a semantic element shift (it changes which
//     element pairs with its siblings, the mechanism stencil programs use
//     to form neighbor streams), not a skew to be corrected;
//   - an accumulator feedback input is available every cycle and does not
//     constrain timing.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "program/pipeline.h"

namespace nsc::prog {

struct FuSkew {
  arch::FuId fu = 0;
  int arrival_a = 0;  // after register-file delay is applied
  int arrival_b = 0;
};

struct TimingResult {
  bool ok = false;  // analysis completed (no cycles / missing drivers)
  std::vector<std::string> errors;

  // Element-0 production time of each source endpoint (FU outputs, SD taps,
  // plane/cache reads) and arrival time at each destination endpoint.
  std::map<arch::Endpoint, int> time;

  // FUs whose two stream inputs arrive misaligned (empty for a balanced
  // diagram).
  std::vector<FuSkew> misaligned;

  // Pipeline fill depth: latest element-0 arrival at any write endpoint.
  int depth = 0;

  bool aligned() const { return ok && misaligned.empty(); }
};

TimingResult analyzeTiming(const arch::Machine& machine,
                           const PipelineDiagram& diagram);

// Inserts register-file delays so every dual-stream FU is aligned.  Returns
// the number of delays inserted, or -1 if the diagram cannot be balanced
// (cycle, missing driver, or required delay exceeds rf_max_delay).
int balanceDelays(const arch::Machine& machine, PipelineDiagram& diagram);

}  // namespace nsc::prog
