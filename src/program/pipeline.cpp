#include "program/pipeline.h"

#include <algorithm>
#include <stdexcept>

namespace nsc::prog {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using common::Result;

AlsUse& PipelineDiagram::useAls(const arch::Machine& machine, arch::AlsId als) {
  bumpRevision();  // the caller may write through the returned reference
  if (AlsUse* existing = findAls(als)) return *existing;
  AlsUse use;
  use.als = als;
  use.fu.resize(static_cast<std::size_t>(alsFuCount(machine.als(als).kind)));
  als_uses.push_back(std::move(use));
  return als_uses.back();
}

AlsUse* PipelineDiagram::findAls(arch::AlsId als) {
  for (AlsUse& use : als_uses) {
    if (use.als == als) return &use;
  }
  return nullptr;
}

const AlsUse* PipelineDiagram::findAls(arch::AlsId als) const {
  for (const AlsUse& use : als_uses) {
    if (use.als == als) return &use;
  }
  return nullptr;
}

FuUse* PipelineDiagram::findFu(const arch::Machine& machine, arch::FuId fu) {
  const arch::FuInfo& info = machine.fu(fu);
  AlsUse* use = findAls(info.als);
  if (use == nullptr) return nullptr;
  return &use->fu[static_cast<std::size_t>(info.slot)];
}

const FuUse* PipelineDiagram::findFu(const arch::Machine& machine,
                                     arch::FuId fu) const {
  const arch::FuInfo& info = machine.fu(fu);
  const AlsUse* use = findAls(info.als);
  if (use == nullptr) return nullptr;
  return &use->fu[static_cast<std::size_t>(info.slot)];
}

FuUse& PipelineDiagram::fuUse(const arch::Machine& machine, arch::FuId fu) {
  FuUse* use = findFu(machine, fu);
  if (use == nullptr) {
    throw std::logic_error("fuUse: ALS not placed in diagram");
  }
  bumpRevision();  // the caller may write through the returned reference
  return *use;
}

void PipelineDiagram::setFuOp(const arch::Machine& machine, arch::FuId fu,
                              arch::OpCode op) {
  useAls(machine, machine.fu(fu).als);
  FuUse& use = fuUse(machine, fu);
  use.op = op;
  use.enabled = op != arch::OpCode::kNop;
}

void PipelineDiagram::connect(const arch::Machine& machine,
                              const arch::Endpoint& from,
                              const arch::Endpoint& to) {
  bumpRevision();
  connections.push_back({from, to});
  if (to.kind == arch::EndpointKind::kFuInput) {
    FuUse& use = fuUse(machine, to.unit);
    const bool chain = from.kind == arch::EndpointKind::kFuOutput &&
                       machine.isChainPath(from.unit, to.unit);
    const arch::InputSelect sel =
        chain ? arch::InputSelect::kChain : arch::InputSelect::kSwitch;
    (to.port == 0 ? use.in_a : use.in_b) = sel;
  }
}

void PipelineDiagram::setConstInput(const arch::Machine& machine,
                                    arch::FuId fu, int port, double value) {
  FuUse& use = fuUse(machine, fu);
  (port == 0 ? use.in_a : use.in_b) = arch::InputSelect::kRegisterFile;
  use.rf_constant = value;
}

void PipelineDiagram::setAccumInput(const arch::Machine& machine,
                                    arch::FuId fu, int port, double seed) {
  FuUse& use = fuUse(machine, fu);
  (port == 0 ? use.in_a : use.in_b) = arch::InputSelect::kFeedback;
  use.rf_mode = arch::RfMode::kAccum;
  use.rf_constant = seed;
}

ShiftDelayUse& PipelineDiagram::useSd(arch::SdId sd,
                                      std::vector<int> tap_delays) {
  bumpRevision();
  for (ShiftDelayUse& use : sd_uses) {
    if (use.sd == sd) {
      use.tap_delays = std::move(tap_delays);
      return use;
    }
  }
  sd_uses.push_back({sd, std::move(tap_delays)});
  return sd_uses.back();
}

std::vector<Connection> PipelineDiagram::connectionsFrom(
    const arch::Endpoint& from) const {
  std::vector<Connection> out;
  for (const Connection& c : connections) {
    if (c.from == from) out.push_back(c);
  }
  return out;
}

std::optional<Connection> PipelineDiagram::connectionTo(
    const arch::Endpoint& to) const {
  for (const Connection& c : connections) {
    if (c.to == to) return c;
  }
  return std::nullopt;
}

bool PipelineDiagram::operator==(const PipelineDiagram& other) const {
  return name == other.name && comment == other.comment &&
         als_uses == other.als_uses && connections == other.connections &&
         dma == other.dma && sd_uses == other.sd_uses && cond == other.cond &&
         seq == other.seq;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

Json endpointToJson(const arch::Endpoint& e) {
  JsonObject o;
  o["kind"] = std::string(endpointKindName(e.kind));
  o["unit"] = e.unit;
  if (e.port != 0) o["port"] = e.port;
  return Json(std::move(o));
}

Result<arch::Endpoint> endpointFromJson(const Json& json) {
  if (!json.isObject()) return Result<arch::Endpoint>::error("endpoint: not an object");
  const std::string kind = json.getString("kind");
  arch::Endpoint e;
  e.unit = static_cast<int>(json.getInt("unit"));
  e.port = static_cast<int>(json.getInt("port"));
  static const std::pair<const char*, arch::EndpointKind> kKinds[] = {
      {"none", arch::EndpointKind::kNone},
      {"fu_out", arch::EndpointKind::kFuOutput},
      {"fu_in", arch::EndpointKind::kFuInput},
      {"plane_read", arch::EndpointKind::kPlaneRead},
      {"plane_write", arch::EndpointKind::kPlaneWrite},
      {"cache_read", arch::EndpointKind::kCacheRead},
      {"cache_write", arch::EndpointKind::kCacheWrite},
      {"sd_out", arch::EndpointKind::kSdOutput},
      {"sd_in", arch::EndpointKind::kSdInput},
  };
  for (const auto& [name, k] : kKinds) {
    if (kind == name) {
      e.kind = k;
      return e;
    }
  }
  return Result<arch::Endpoint>::error("endpoint: unknown kind " + kind);
}

namespace {

Json fuUseToJson(const FuUse& fu) {
  JsonObject o;
  o["enabled"] = fu.enabled;
  o["op"] = std::string(arch::opInfo(fu.op).name);
  o["in_a"] = std::string(inputSelectName(fu.in_a));
  o["in_b"] = std::string(inputSelectName(fu.in_b));
  o["rf_mode"] = std::string(rfModeName(fu.rf_mode));
  o["rf_delay"] = fu.rf_delay;
  o["rf_delay_port"] = fu.rf_delay_port;
  o["rf_constant"] = fu.rf_constant;
  return Json(std::move(o));
}

Result<FuUse> fuUseFromJson(const Json& json) {
  FuUse fu;
  fu.enabled = json.getBool("enabled");
  const auto op = arch::opByName(json.getString("op", "nop"));
  if (!op) return Result<FuUse>::error("fu: unknown op " + json.getString("op"));
  fu.op = *op;
  auto parseSel = [](const std::string& name) -> std::optional<arch::InputSelect> {
    using arch::InputSelect;
    if (name == "none") return InputSelect::kNone;
    if (name == "switch") return InputSelect::kSwitch;
    if (name == "rf") return InputSelect::kRegisterFile;
    if (name == "feedback") return InputSelect::kFeedback;
    if (name == "chain") return InputSelect::kChain;
    return std::nullopt;
  };
  const auto a = parseSel(json.getString("in_a", "none"));
  const auto b = parseSel(json.getString("in_b", "none"));
  if (!a || !b) return Result<FuUse>::error("fu: bad input select");
  fu.in_a = *a;
  fu.in_b = *b;
  const std::string mode = json.getString("rf_mode", "off");
  if (mode == "off") fu.rf_mode = arch::RfMode::kOff;
  else if (mode == "const") fu.rf_mode = arch::RfMode::kConstant;
  else if (mode == "delay") fu.rf_mode = arch::RfMode::kDelay;
  else if (mode == "accum") fu.rf_mode = arch::RfMode::kAccum;
  else return Result<FuUse>::error("fu: bad rf_mode " + mode);
  fu.rf_delay = static_cast<int>(json.getInt("rf_delay"));
  fu.rf_delay_port = static_cast<int>(json.getInt("rf_delay_port"));
  fu.rf_constant = json.getDouble("rf_constant");
  return fu;
}

Json dmaToJson(const DmaSpec& dma) {
  JsonObject o;
  if (!dma.variable.empty()) o["variable"] = dma.variable;
  o["base"] = static_cast<std::int64_t>(dma.base);
  o["stride"] = dma.stride;
  o["count"] = static_cast<std::int64_t>(dma.count);
  if (dma.count2 != 1) o["count2"] = static_cast<std::int64_t>(dma.count2);
  if (dma.stride2 != 0) o["stride2"] = dma.stride2;
  if (dma.read_buffer != 0) o["read_buffer"] = dma.read_buffer;
  if (dma.swap_buffers) o["swap_buffers"] = true;
  return Json(std::move(o));
}

DmaSpec dmaFromJson(const Json& json) {
  DmaSpec dma;
  dma.variable = json.getString("variable");
  dma.base = static_cast<std::uint64_t>(json.getInt("base"));
  dma.stride = json.getInt("stride", 1);
  dma.count = static_cast<std::uint64_t>(json.getInt("count"));
  dma.count2 = static_cast<std::uint64_t>(json.getInt("count2", 1));
  dma.stride2 = json.getInt("stride2", 0);
  dma.read_buffer = static_cast<int>(json.getInt("read_buffer"));
  dma.swap_buffers = json.getBool("swap_buffers");
  return dma;
}

}  // namespace

Json PipelineDiagram::toJson() const {
  JsonObject o;
  o["name"] = name;
  if (!comment.empty()) o["comment"] = comment;

  JsonArray als_arr;
  for (const AlsUse& use : als_uses) {
    JsonObject a;
    a["als"] = use.als;
    if (use.bypass) a["bypass"] = true;
    JsonArray fus;
    for (const FuUse& fu : use.fu) fus.push_back(fuUseToJson(fu));
    a["fu"] = Json(std::move(fus));
    als_arr.push_back(Json(std::move(a)));
  }
  o["als_uses"] = Json(std::move(als_arr));

  JsonArray conns;
  for (const Connection& c : connections) {
    JsonObject ce;
    ce["from"] = endpointToJson(c.from);
    ce["to"] = endpointToJson(c.to);
    conns.push_back(Json(std::move(ce)));
  }
  o["connections"] = Json(std::move(conns));

  JsonArray dmas;
  for (const auto& [endpoint, spec] : dma) {
    JsonObject de;
    de["endpoint"] = endpointToJson(endpoint);
    de["spec"] = dmaToJson(spec);
    dmas.push_back(Json(std::move(de)));
  }
  o["dma"] = Json(std::move(dmas));

  JsonArray sds;
  for (const ShiftDelayUse& use : sd_uses) {
    JsonObject se;
    se["sd"] = use.sd;
    JsonArray taps;
    for (int t : use.tap_delays) taps.push_back(t);
    se["taps"] = Json(std::move(taps));
    sds.push_back(Json(std::move(se)));
  }
  o["sd_uses"] = Json(std::move(sds));

  if (cond.has_value()) {
    JsonObject ce;
    ce["src_fu"] = cond->src_fu;
    ce["cond_reg"] = cond->cond_reg;
    o["cond"] = Json(std::move(ce));
  }

  JsonObject seq_obj;
  seq_obj["op"] = std::string(seqOpName(seq.op));
  seq_obj["target"] = seq.target;
  seq_obj["cond_reg"] = seq.cond_reg;
  seq_obj["count"] = seq.count;
  o["seq"] = Json(std::move(seq_obj));
  return Json(std::move(o));
}

Result<PipelineDiagram> PipelineDiagram::fromJson(const Json& json) {
  if (!json.isObject()) {
    return Result<PipelineDiagram>::error("pipeline: not an object");
  }
  PipelineDiagram d;
  d.name = json.getString("name");
  d.comment = json.getString("comment");

  if (json.has("als_uses")) {
    for (const Json& a : json.at("als_uses").asArray()) {
      AlsUse use;
      use.als = static_cast<arch::AlsId>(a.getInt("als"));
      use.bypass = a.getBool("bypass");
      if (a.has("fu")) {
        for (const Json& f : a.at("fu").asArray()) {
          auto fu = fuUseFromJson(f);
          if (!fu) return Result<PipelineDiagram>::error(fu.message());
          use.fu.push_back(std::move(fu).value());
        }
      }
      d.als_uses.push_back(std::move(use));
    }
  }

  if (json.has("connections")) {
    for (const Json& c : json.at("connections").asArray()) {
      auto from = endpointFromJson(c.at("from"));
      auto to = endpointFromJson(c.at("to"));
      if (!from) return Result<PipelineDiagram>::error(from.message());
      if (!to) return Result<PipelineDiagram>::error(to.message());
      d.connections.push_back({from.value(), to.value()});
    }
  }

  if (json.has("dma")) {
    for (const Json& e : json.at("dma").asArray()) {
      auto endpoint = endpointFromJson(e.at("endpoint"));
      if (!endpoint) return Result<PipelineDiagram>::error(endpoint.message());
      d.dma[endpoint.value()] = dmaFromJson(e.at("spec"));
    }
  }

  if (json.has("sd_uses")) {
    for (const Json& s : json.at("sd_uses").asArray()) {
      ShiftDelayUse use;
      use.sd = static_cast<arch::SdId>(s.getInt("sd"));
      if (s.has("taps")) {
        for (const Json& t : s.at("taps").asArray()) {
          use.tap_delays.push_back(static_cast<int>(t.asInt()));
        }
      }
      d.sd_uses.push_back(std::move(use));
    }
  }

  if (json.has("cond")) {
    CondLatch latch;
    latch.src_fu = static_cast<arch::FuId>(json.at("cond").getInt("src_fu"));
    latch.cond_reg = static_cast<int>(json.at("cond").getInt("cond_reg"));
    d.cond = latch;
  }

  if (json.has("seq")) {
    const Json& s = json.at("seq");
    const std::string op = s.getString("op", "next");
    using arch::SeqOp;
    if (op == "next") d.seq.op = SeqOp::kNext;
    else if (op == "jump") d.seq.op = SeqOp::kJump;
    else if (op == "brif") d.seq.op = SeqOp::kBranchIf;
    else if (op == "brnot") d.seq.op = SeqOp::kBranchNot;
    else if (op == "loop") d.seq.op = SeqOp::kLoop;
    else if (op == "halt") d.seq.op = SeqOp::kHalt;
    else return Result<PipelineDiagram>::error("pipeline: bad seq op " + op);
    d.seq.target = static_cast<int>(s.getInt("target"));
    d.seq.cond_reg = static_cast<int>(s.getInt("cond_reg"));
    d.seq.count = static_cast<int>(s.getInt("count"));
  }
  return d;
}

}  // namespace nsc::prog
