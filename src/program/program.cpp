#include "program/program.h"

#include <fstream>
#include <sstream>

namespace nsc::prog {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using common::Result;
using common::Status;

PipelineDiagram& Program::append(std::string pipeline_name) {
  PipelineDiagram d;
  d.name = std::move(pipeline_name);
  pipelines.push_back(std::move(d));
  return pipelines.back();
}

Json Program::toJson() const {
  JsonObject o;
  o["format"] = "nsc-program";
  o["version"] = 1;
  o["name"] = name;
  JsonArray arr;
  for (const PipelineDiagram& d : pipelines) arr.push_back(d.toJson());
  o["pipelines"] = Json(std::move(arr));
  return Json(std::move(o));
}

Result<Program> Program::fromJson(const Json& json) {
  if (!json.isObject() || json.getString("format") != "nsc-program") {
    return Result<Program>::error("program: missing nsc-program header");
  }
  Program p;
  p.name = json.getString("name");
  if (json.has("pipelines")) {
    for (const Json& d : json.at("pipelines").asArray()) {
      auto diagram = PipelineDiagram::fromJson(d);
      if (!diagram) return Result<Program>::error(diagram.message());
      p.pipelines.push_back(std::move(diagram).value());
    }
  }
  return p;
}

Status Program::saveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::error("cannot open for writing: " + path);
  out << toJson().dumpPretty() << "\n";
  return out ? Status::ok() : Status::error("write failed: " + path);
}

Result<Program> Program::loadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Result<Program>::error("cannot open: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto json = Json::parse(buffer.str());
  if (!json) return Result<Program>::error(json.message());
  return fromJson(json.value());
}

}  // namespace nsc::prog
