#include "render/canvas.h"

#include <algorithm>

namespace nsc::render {

AsciiCanvas::AsciiCanvas(int width, int height, char fill)
    : width_(width), height_(height),
      cells_(static_cast<std::size_t>(width * height), fill) {}

void AsciiCanvas::set(int x, int y, char c) {
  if (x >= 0 && x < width_ && y >= 0 && y < height_) {
    cells_[static_cast<std::size_t>(y * width_ + x)] = c;
  }
}

char AsciiCanvas::at(int x, int y) const {
  if (x >= 0 && x < width_ && y >= 0 && y < height_) {
    return cells_[static_cast<std::size_t>(y * width_ + x)];
  }
  return '\0';
}

void AsciiCanvas::text(int x, int y, const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    set(x + static_cast<int>(i), y, s[i]);
  }
}

void AsciiCanvas::hline(int x0, int x1, int y, char c) {
  if (x0 > x1) std::swap(x0, x1);
  for (int x = x0; x <= x1; ++x) set(x, y, c);
}

void AsciiCanvas::vline(int x, int y0, int y1, char c) {
  if (y0 > y1) std::swap(y0, y1);
  for (int y = y0; y <= y1; ++y) set(x, y, c);
}

void AsciiCanvas::box(int x, int y, int w, int h, const std::string& title) {
  if (w < 2 || h < 2) return;
  hline(x, x + w - 1, y);
  hline(x, x + w - 1, y + h - 1);
  vline(x, y, y + h - 1);
  vline(x + w - 1, y, y + h - 1);
  set(x, y, '+');
  set(x + w - 1, y, '+');
  set(x, y + h - 1, '+');
  set(x + w - 1, y + h - 1, '+');
  if (!title.empty() && static_cast<int>(title.size()) <= w - 2) {
    text(x + 1, y, title);
  }
}

void AsciiCanvas::route(int x0, int y0, int x1, int y1) {
  // Horizontal, then vertical.
  hline(x0, x1, y0);
  vline(x1, y0, y1);
  if (x0 != x1 && y0 != y1) set(x1, y0, '+');
  set(x1, y1, '*');  // destination pad marker
  set(x0, y0, 'o');  // source pad marker
}

std::string AsciiCanvas::toString() const {
  std::string out;
  out.reserve(static_cast<std::size_t>((width_ + 1) * height_));
  for (int y = 0; y < height_; ++y) {
    // Trim trailing spaces per row to keep goldens tidy.
    int last = width_ - 1;
    while (last >= 0 &&
           cells_[static_cast<std::size_t>(y * width_ + last)] == ' ') {
      --last;
    }
    for (int x = 0; x <= last; ++x) {
      out.push_back(cells_[static_cast<std::size_t>(y * width_ + x)]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace nsc::render
