#include "render/svg.h"

#include "common/strings.h"

namespace nsc::render {

using common::strFormat;

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}
}  // namespace

SvgBuilder::SvgBuilder(int width, int height) : width_(width), height_(height) {}

void SvgBuilder::rect(double x, double y, double w, double h,
                      const std::string& stroke, const std::string& fill,
                      double stroke_width) {
  body_ += strFormat(
      "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
      "stroke=\"%s\" fill=\"%s\" stroke-width=\"%.1f\"/>\n",
      x, y, w, h, stroke.c_str(), fill.c_str(), stroke_width);
}

void SvgBuilder::line(double x0, double y0, double x1, double y1,
                      const std::string& stroke, double stroke_width) {
  body_ += strFormat(
      "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
      "stroke=\"%s\" stroke-width=\"%.1f\"/>\n",
      x0, y0, x1, y1, stroke.c_str(), stroke_width);
}

void SvgBuilder::circle(double cx, double cy, double r,
                        const std::string& fill) {
  body_ += strFormat(
      "  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n", cx, cy,
      r, fill.c_str());
}

void SvgBuilder::text(double x, double y, const std::string& content,
                      int font_size, const std::string& anchor) {
  body_ += strFormat(
      "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"%d\" "
      "font-family=\"monospace\" text-anchor=\"%s\">%s</text>\n",
      x, y, font_size, anchor.c_str(), escape(content).c_str());
}

void SvgBuilder::route(double x0, double y0, double x1, double y1) {
  line(x0, y0, x1, y0);
  line(x1, y0, x1, y1);
  circle(x0, y0, 2.5);
  circle(x1, y1, 2.5);
}

std::string SvgBuilder::finish() const {
  return strFormat(
             "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
             "height=\"%d\" viewBox=\"0 0 %d %d\">\n"
             "  <rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n",
             width_, height_, width_, height_, width_, height_) +
         body_ + "</svg>\n";
}

}  // namespace nsc::render
