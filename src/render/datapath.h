// Figure 1 renderer: "Simplified diagram of the datapath architecture of
// the Navier-Stokes Computer", regenerated from the live machine
// description so the drawing always matches the configuration.
#pragma once

#include <string>

#include "arch/machine.h"

namespace nsc::render {

std::string datapathAscii(const arch::Machine& machine);
std::string datapathSvg(const arch::Machine& machine);

}  // namespace nsc::render
