// AsciiCanvas: a character-cell drawing surface.
//
// The prototype ran on a Sun-3 bit-mapped display; in this headless
// reproduction every figure is rendered twice — to a character canvas (for
// terminals, tests, and golden files) and to SVG (render/svg.h).  One
// canvas cell stands for an 8x16 pixel cell of the 1152x900 Sun-3 screen.
#pragma once

#include <string>
#include <vector>

namespace nsc::render {

class AsciiCanvas {
 public:
  AsciiCanvas(int width, int height, char fill = ' ');

  int width() const { return width_; }
  int height() const { return height_; }

  void set(int x, int y, char c);
  char at(int x, int y) const;

  void text(int x, int y, const std::string& s);
  void hline(int x0, int x1, int y, char c = '-');
  void vline(int x, int y0, int y1, char c = '|');
  // Box with '+' corners; optional title drawn into the top edge.
  void box(int x, int y, int w, int h, const std::string& title = "");
  // Axis-aligned L-shaped connector between two points (wire rendering).
  void route(int x0, int y0, int x1, int y1);

  std::string toString() const;

 private:
  int width_;
  int height_;
  std::vector<char> cells_;
};

}  // namespace nsc::render
