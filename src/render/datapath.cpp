#include "render/datapath.h"

#include "common/strings.h"
#include "render/canvas.h"
#include "render/svg.h"

namespace nsc::render {

using common::strFormat;

namespace {

struct Labels {
  std::string router = "Hyperspace Router";
  std::string caches;
  std::string planes;
  std::string als;
  std::string sd;
  std::string sw = "Switch Network (FLONET)";

  explicit Labels(const arch::Machine& m) {
    const arch::MachineConfig& cfg = m.config();
    caches = strFormat("Double-Buffered Data Caches  %s x %d x %d",
                       common::bytesHuman(cfg.cache_bytes).c_str(),
                       cfg.num_caches, cfg.cache_buffers);
    planes = strFormat("Memory Planes  %s x %d",
                       common::bytesHuman(cfg.plane_bytes).c_str(),
                       cfg.num_memory_planes);
    als = strFormat("%d Functional Units: %d singlets / %d doublets / %d "
                    "triplets",
                    cfg.numFus(), cfg.num_singlets, cfg.num_doublets,
                    cfg.num_triplets);
    sd = strFormat("Shift/Delay Units x %d", cfg.num_shift_delay);
  }
};

}  // namespace

std::string datapathAscii(const arch::Machine& machine) {
  const Labels labels(machine);
  AsciiCanvas c(78, 25);

  c.box(24, 0, 30, 3, "");
  c.text(27, 1, labels.router);
  c.vline(39, 3, 4);

  c.box(8, 4, 62, 3);
  c.text(10, 5, labels.caches);
  c.vline(39, 7, 8);

  c.box(2, 8, 74, 5, "");
  c.text(28, 10, labels.sw);
  c.vline(20, 13, 14);
  c.vline(39, 13, 14);
  c.vline(58, 13, 14);

  c.box(4, 14, 34, 3);
  c.text(6, 15, labels.planes);
  c.box(42, 14, 34, 3);
  c.text(44, 15, labels.sd);

  c.box(8, 18, 62, 3);
  c.text(10, 19, labels.als);
  c.vline(39, 17, 18);

  c.text(2, 22, strFormat("clock %.1f MHz   peak %.0f MFLOPS/node   memory %s",
                          machine.config().clock_mhz,
                          machine.config().peakMflopsPerNode(),
                          common::bytesHuman(machine.config().totalMemoryBytes())
                              .c_str()));
  return c.toString();
}

std::string datapathSvg(const arch::Machine& machine) {
  const Labels labels(machine);
  SvgBuilder svg(640, 420);
  auto block = [&](double x, double y, double w, double h,
                   const std::string& label) {
    svg.rect(x, y, w, h);
    svg.text(x + w / 2, y + h / 2 + 4, label, 12, "middle");
  };
  block(220, 10, 200, 40, labels.router);
  svg.line(320, 50, 320, 70);
  block(80, 70, 480, 40, labels.caches);
  svg.line(320, 110, 320, 130);
  block(20, 130, 600, 60, labels.sw);
  svg.line(160, 190, 160, 210);
  svg.line(480, 190, 480, 210);
  block(40, 210, 260, 40, labels.planes);
  block(340, 210, 260, 40, labels.sd);
  svg.line(320, 190, 320, 270);
  block(80, 270, 480, 40, labels.als);
  svg.text(20, 340,
           strFormat("clock %.1f MHz, peak %.0f MFLOPS/node",
                     machine.config().clock_mhz,
                     machine.config().peakMflopsPerNode()),
           12);
  svg.text(20, 360,
           strFormat("total memory %s",
                     common::bytesHuman(machine.config().totalMemoryBytes())
                         .c_str()),
           12);
  return svg.finish();
}

}  // namespace nsc::render
