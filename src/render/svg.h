// Minimal SVG writer for figure regeneration.
#pragma once

#include <string>

namespace nsc::render {

class SvgBuilder {
 public:
  SvgBuilder(int width, int height);

  void rect(double x, double y, double w, double h,
            const std::string& stroke = "black",
            const std::string& fill = "none", double stroke_width = 1.0);
  void line(double x0, double y0, double x1, double y1,
            const std::string& stroke = "black", double stroke_width = 1.0);
  void circle(double cx, double cy, double r,
              const std::string& fill = "black");
  void text(double x, double y, const std::string& content,
            int font_size = 12, const std::string& anchor = "start");
  // Axis-aligned connector (horizontal then vertical), matching the ASCII
  // canvas's wire routing.
  void route(double x0, double y0, double x1, double y1);

  std::string finish() const;

 private:
  int width_;
  int height_;
  std::string body_;
};

}  // namespace nsc::render
