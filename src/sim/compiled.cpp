#include "sim/compiled.h"

#include <algorithm>
#include <mutex>

#include "arch/microword_spec.h"
#include "common/strings.h"
#include "sim/verify.h"

namespace nsc::sim {

using arch::Endpoint;
using arch::MicrowordSpec;
using common::strFormat;

namespace {

// A microword field resolved to its bit range.  decode runs per word (and
// the same program is recompiled per bench iteration), so the name-keyed
// spec lookups — strFormat plus a hash probe per field — are hoisted into
// a table built once per compile.
struct FieldRef {
  std::size_t offset = 0;
  std::size_t width = 0;
  std::uint64_t get(const common::BitVector& w) const {
    return w.field(offset, width);
  }
  std::int64_t getSigned(const common::BitVector& w) const {
    std::uint64_t raw = w.field(offset, width);
    if (width < 64 && (raw & (std::uint64_t{1} << (width - 1)))) {
      raw |= ~((std::uint64_t{1} << width) - 1);  // sign extend
    }
    return static_cast<std::int64_t>(raw);
  }
};

struct DecodeTable {
  struct FuFields {
    FieldRef enable, opcode, in_a_sel, in_b_sel, rf_mode, rf_delay, rf_addr;
  };
  struct PlaneFields {
    FieldRef mode, base, stride, count, count2, stride2;
  };
  struct CacheFields {
    FieldRef mode, base, stride, count, read_buffer, swap;
  };
  struct SdFields {
    FieldRef enable;
    std::vector<FieldRef> taps;
  };
  std::vector<FuFields> fu;
  std::vector<FieldRef> sw;  // per destination
  std::vector<PlaneFields> plane;
  std::vector<CacheFields> cache;
  std::vector<SdFields> sd;
  FieldRef cond_enable, cond_src_fu, cond_reg;
  FieldRef seq_op, seq_target, seq_cond_reg, seq_count;

  DecodeTable(const arch::Machine& machine, const MicrowordSpec& spec) {
    const arch::MachineConfig& cfg = machine.config();
    const auto ref = [&spec](const std::string& name) {
      const arch::MicroField& f = spec.field(name);
      return FieldRef{f.offset, f.width};
    };
    fu.resize(static_cast<std::size_t>(cfg.numFus()));
    for (const arch::FuInfo& info : machine.fus()) {
      FuFields& f = fu[static_cast<std::size_t>(info.id)];
      f.enable = ref(MicrowordSpec::fuField(info.id, "enable"));
      f.opcode = ref(MicrowordSpec::fuField(info.id, "opcode"));
      f.in_a_sel = ref(MicrowordSpec::fuField(info.id, "in_a_sel"));
      f.in_b_sel = ref(MicrowordSpec::fuField(info.id, "in_b_sel"));
      f.rf_mode = ref(MicrowordSpec::fuField(info.id, "rf_mode"));
      f.rf_delay = ref(MicrowordSpec::fuField(info.id, "rf_delay"));
      f.rf_addr = ref(MicrowordSpec::fuField(info.id, "rf_addr"));
    }
    sw.resize(machine.destinations().size());
    for (std::size_t d = 0; d < sw.size(); ++d) {
      sw[d] = ref(MicrowordSpec::switchField(static_cast<int>(d)));
    }
    plane.resize(static_cast<std::size_t>(cfg.num_memory_planes));
    for (arch::PlaneId p = 0; p < cfg.num_memory_planes; ++p) {
      PlaneFields& f = plane[static_cast<std::size_t>(p)];
      f.mode = ref(MicrowordSpec::planeField(p, "mode"));
      f.base = ref(MicrowordSpec::planeField(p, "base"));
      f.stride = ref(MicrowordSpec::planeField(p, "stride"));
      f.count = ref(MicrowordSpec::planeField(p, "count"));
      f.count2 = ref(MicrowordSpec::planeField(p, "count2"));
      f.stride2 = ref(MicrowordSpec::planeField(p, "stride2"));
    }
    cache.resize(static_cast<std::size_t>(cfg.num_caches));
    for (arch::CacheId c = 0; c < cfg.num_caches; ++c) {
      CacheFields& f = cache[static_cast<std::size_t>(c)];
      f.mode = ref(MicrowordSpec::cacheField(c, "mode"));
      f.base = ref(MicrowordSpec::cacheField(c, "base"));
      f.stride = ref(MicrowordSpec::cacheField(c, "stride"));
      f.count = ref(MicrowordSpec::cacheField(c, "count"));
      f.read_buffer = ref(MicrowordSpec::cacheField(c, "read_buffer"));
      f.swap = ref(MicrowordSpec::cacheField(c, "swap"));
    }
    sd.resize(static_cast<std::size_t>(cfg.num_shift_delay));
    for (arch::SdId s = 0; s < cfg.num_shift_delay; ++s) {
      SdFields& f = sd[static_cast<std::size_t>(s)];
      f.enable = ref(MicrowordSpec::sdField(s, "enable"));
      for (int t = 0; t < cfg.sd_taps; ++t) {
        f.taps.push_back(ref(MicrowordSpec::sdField(s, strFormat("tap%d", t))));
      }
    }
    cond_enable = ref("cond.enable");
    cond_src_fu = ref("cond.src_fu");
    cond_reg = ref("cond.reg");
    seq_op = ref("seq.op");
    seq_target = ref("seq.target");
    seq_cond_reg = ref("seq.cond_reg");
    seq_count = ref("seq.count");
  }
};

// Decodes one microword into an InstrPlan.  This is the seed's
// NodeSim::decode moved to the compile phase: the same bit fields, read
// through the pre-resolved table, once per program instead of once per
// node.
InstrPlan decodePlan(const arch::Machine& machine, const DecodeTable& table,
                     const std::vector<std::vector<double>>& rf_images,
                     const common::BitVector& word) {
  const arch::MachineConfig& cfg = machine.config();
  InstrPlan plan;

  plan.fu.resize(static_cast<std::size_t>(cfg.numFus()));
  for (const arch::FuInfo& info : machine.fus()) {
    FuPlan& fu = plan.fu[static_cast<std::size_t>(info.id)];
    const DecodeTable::FuFields& f = table.fu[static_cast<std::size_t>(info.id)];
    fu.enabled = f.enable.get(word) != 0;
    if (!fu.enabled) continue;
    fu.op = static_cast<arch::OpCode>(f.opcode.get(word));
    fu.in_a = static_cast<arch::InputSelect>(f.in_a_sel.get(word));
    fu.in_b = static_cast<arch::InputSelect>(f.in_b_sel.get(word));
    fu.rf_mode = static_cast<arch::RfMode>(f.rf_mode.get(word));
    fu.rf_delay = static_cast<int>(f.rf_delay.get(word));
    const auto rf_addr = static_cast<std::size_t>(f.rf_addr.get(word));
    if (fu.rf_mode == arch::RfMode::kDelay) {
      fu.rf_delay_port = static_cast<int>(rf_addr & 1);
    }
    const bool needs_const = fu.in_a == arch::InputSelect::kRegisterFile ||
                             fu.in_b == arch::InputSelect::kRegisterFile ||
                             fu.rf_mode == arch::RfMode::kAccum;
    if (needs_const) {
      const auto& image = rf_images[static_cast<std::size_t>(info.id)];
      fu.rf_value = rf_addr < image.size() ? image[rf_addr] : 0.0;
    }
    const arch::OpInfo& op = arch::opInfo(fu.op);
    fu.latency = std::max(1, op.latency);
    fu.counts_flop = op.counts_as_flop;
    fu.arity = op.arity;
  }

  plan.route.resize(machine.destinations().size(), 0);
  for (std::size_t d = 0; d < plan.route.size(); ++d) {
    plan.route[d] = static_cast<int>(table.sw[d].get(word));
  }

  plan.plane.resize(static_cast<std::size_t>(cfg.num_memory_planes));
  for (arch::PlaneId p = 0; p < cfg.num_memory_planes; ++p) {
    DmaPlan& dma = plan.plane[static_cast<std::size_t>(p)];
    const DecodeTable::PlaneFields& f = table.plane[static_cast<std::size_t>(p)];
    dma.mode = static_cast<int>(f.mode.get(word));
    if (dma.mode == 0) continue;
    dma.base = f.base.get(word);
    dma.stride = f.stride.getSigned(word);
    dma.count = f.count.get(word);
    dma.count2 = std::max<std::uint64_t>(1, f.count2.get(word));
    dma.stride2 = f.stride2.getSigned(word);
    (dma.mode == 1 ? plan.has_reads : plan.has_writes) = true;
  }

  plan.cache.resize(static_cast<std::size_t>(cfg.num_caches));
  for (arch::CacheId c = 0; c < cfg.num_caches; ++c) {
    DmaPlan& dma = plan.cache[static_cast<std::size_t>(c)];
    const DecodeTable::CacheFields& f = table.cache[static_cast<std::size_t>(c)];
    dma.mode = static_cast<int>(f.mode.get(word));
    if (dma.mode == 0) continue;
    dma.base = f.base.get(word);
    dma.stride = f.stride.getSigned(word);
    dma.count = f.count.get(word);
    dma.read_buffer = static_cast<int>(f.read_buffer.get(word));
    dma.swap = f.swap.get(word) != 0;
    if (dma.mode & 1) plan.has_reads = true;
    if (dma.mode & 2) plan.has_writes = true;
  }

  plan.sd.resize(static_cast<std::size_t>(cfg.num_shift_delay));
  for (arch::SdId s = 0; s < cfg.num_shift_delay; ++s) {
    SdPlan& sd = plan.sd[static_cast<std::size_t>(s)];
    const DecodeTable::SdFields& f = table.sd[static_cast<std::size_t>(s)];
    sd.enabled = f.enable.get(word) != 0;
    if (!sd.enabled) continue;
    for (int t = 0; t < cfg.sd_taps; ++t) {
      sd.taps.push_back(
          static_cast<int>(f.taps[static_cast<std::size_t>(t)].get(word)));
    }
  }

  plan.cond_enable = table.cond_enable.get(word) != 0;
  plan.cond_src_fu = static_cast<int>(table.cond_src_fu.get(word));
  plan.cond_reg = static_cast<int>(table.cond_reg.get(word));
  plan.seq_op = static_cast<arch::SeqOp>(table.seq_op.get(word));
  plan.seq_target = static_cast<int>(table.seq_target.get(word));
  plan.seq_cond_reg = static_cast<int>(table.seq_cond_reg.get(word));
  plan.seq_count = static_cast<int>(table.seq_count.get(word));
  return plan;
}

CompiledOperand lowerOperand(const arch::Machine& machine, arch::FuId f,
                             int port, const FuPlan& fu,
                             arch::InputSelect sel) {
  CompiledOperand out;
  switch (sel) {
    case arch::InputSelect::kSwitch:
      out.kind = OperandKind::kSwitch;
      out.index = machine.destinationIndex(Endpoint::fuInput(f, port));
      break;
    case arch::InputSelect::kChain:
      out.kind = OperandKind::kChain;
      // Hardwired path from the previous slot's output; slot 0 of the node
      // has no predecessor and reads a permanently invalid stream.
      out.index =
          f > 0 ? machine.sourceIndex(Endpoint::fuOutput(f - 1)) : -1;
      break;
    case arch::InputSelect::kRegisterFile:
      out.kind = OperandKind::kConst;
      break;
    case arch::InputSelect::kFeedback:
      out.kind = OperandKind::kFeedback;
      break;
    case arch::InputSelect::kNone:
      out.kind = OperandKind::kNone;
      break;
  }
  // The delay queue sits on the switch/chain path of the configured port
  // only (the interpreter shifts it inside the same operand fetch).
  out.queue = (out.kind == OperandKind::kSwitch ||
               out.kind == OperandKind::kChain) &&
              fu.rf_mode == arch::RfMode::kDelay && fu.rf_delay > 0 &&
              fu.rf_delay_port == port;
  out.wired = sel != arch::InputSelect::kNone;
  out.stream = sel == arch::InputSelect::kSwitch ||
               sel == arch::InputSelect::kChain;
  return out;
}

CompiledInstr lowerPlan(const arch::Machine& machine, const InstrPlan& plan,
                        int instr_index) {
  const arch::MachineConfig& cfg = machine.config();
  CompiledInstr ci;

  // Functional units: enabled only, ALS slot order (chain inputs are
  // produced before their consumers within one cycle).
  std::uint32_t arena = 0;
  for (std::size_t f = 0; f < plan.fu.size(); ++f) {
    const FuPlan& fu = plan.fu[f];
    if (!fu.enabled) continue;
    CompiledFu cf;
    cf.fu = static_cast<arch::FuId>(f);
    cf.op = fu.op;
    cf.a = lowerOperand(machine, cf.fu, 0, fu, fu.in_a);
    cf.b = lowerOperand(machine, cf.fu, 1, fu, fu.in_b);
    // A unary op never samples its B operand for launch validity.
    cf.b.wired = cf.b.wired && fu.arity >= 2;
    cf.is_accum = fu.rf_mode == arch::RfMode::kAccum;
    cf.accum_stream_is_a = fu.in_a != arch::InputSelect::kFeedback;
    cf.rf_value = fu.rf_value;
    cf.counts_flop = fu.counts_flop;
    cf.out_src = machine.sourceIndex(Endpoint::fuOutput(cf.fu));
    cf.pipe_off = arena;
    cf.pipe_len = static_cast<std::uint32_t>(std::max(1, fu.latency));
    arena += cf.pipe_len;
    if (fu.rf_mode == arch::RfMode::kDelay && fu.rf_delay > 0) {
      cf.rfq_off = arena;
      cf.rfq_len = static_cast<std::uint32_t>(fu.rf_delay);
      arena += cf.rfq_len;
    }
    ci.fus.push_back(cf);
  }

  // Plane DMA engines, with the touched range pre-computed so the backing
  // stores grow (or the instruction faults) once at issue, not per cycle.
  for (int p = 0; p < cfg.num_memory_planes; ++p) {
    const DmaPlan& dma = plan.plane[static_cast<std::size_t>(p)];
    if (dma.mode == 0) continue;
    const std::int64_t row_span =
        dma.stride * static_cast<std::int64_t>(dma.count - 1);
    const std::int64_t col_span =
        dma.stride2 * static_cast<std::int64_t>(dma.count2 - 1);
    std::int64_t hi = static_cast<std::int64_t>(dma.base);
    for (const std::int64_t corner :
         {hi + row_span, hi + col_span, hi + row_span + col_span}) {
      hi = std::max(hi, corner);
    }
    if (static_cast<std::uint64_t>(hi) >= cfg.sim_plane_words &&
        ci.fault.kind == FaultKind::kNone) {
      ci.fault.kind = FaultKind::kDmaBounds;
      ci.fault.endpoint = dma.mode == 1 ? Endpoint::planeRead(p)
                                        : Endpoint::planeWrite(p);
      ci.fault.address = hi;
      ci.fault.message = strFormat(
          "plane %d DMA touches word %lld beyond the simulated capacity %llu "
          "(raise MachineConfig::sim_plane_words)",
          p, static_cast<long long>(hi),
          static_cast<unsigned long long>(cfg.sim_plane_words));
    }
    // The interpreter grows backing stores plane-by-plane and bails at the
    // first out-of-range engine; record grows only for planes it reaches.
    if (ci.fault.kind == FaultKind::kNone) {
      ci.plane_grows.push_back({p, static_cast<std::uint64_t>(hi) + 1});
    }
    CompiledDma eng;
    eng.base = dma.base;
    eng.stride = dma.stride;
    eng.count = dma.count;
    eng.count2 = dma.count2;
    eng.stride2 = dma.stride2;
    eng.total = dma.count * dma.count2;
    eng.is_cache = false;
    eng.unit = p;
    eng.buffer = 0;
    if (dma.mode == 1) {
      eng.endpoint = machine.sourceIndex(Endpoint::planeRead(p));
      ci.reads.push_back(eng);
    } else {
      eng.endpoint = machine.destinationIndex(Endpoint::planeWrite(p));
      ci.writes.push_back(eng);
    }
  }

  // Cache engines: single-level addressing; fills target the back buffer.
  for (int c = 0; c < cfg.num_caches; ++c) {
    const DmaPlan& dma = plan.cache[static_cast<std::size_t>(c)];
    if (dma.mode == 0) continue;
    CompiledDma eng;
    eng.base = dma.base;
    eng.stride = dma.stride;
    eng.count = dma.count;
    eng.count2 = 1;
    eng.stride2 = 0;
    eng.total = dma.count;
    eng.is_cache = true;
    eng.unit = c;
    if (dma.mode & 1) {
      eng.buffer = dma.read_buffer;
      eng.endpoint = machine.sourceIndex(Endpoint::cacheRead(c));
      ci.reads.push_back(eng);
    }
    if (dma.mode & 2) {
      eng.buffer = (dma.read_buffer + 1) % cfg.cache_buffers;
      eng.endpoint = machine.destinationIndex(Endpoint::cacheWrite(c));
      ci.writes.push_back(eng);
    }
    if (dma.swap && cfg.cache_buffers == 2) {
      ci.swaps.push_back(c);
    }
  }

  // Shift/delay units: fixed-depth history rings with precomputed tap
  // offsets relative to the write position.
  for (int s = 0; s < cfg.num_shift_delay; ++s) {
    const SdPlan& sd = plan.sd[static_cast<std::size_t>(s)];
    if (!sd.enabled) continue;
    CompiledSd cs;
    cs.in_dst = machine.destinationIndex(Endpoint::sdInput(s));
    cs.hist_off = arena;
    cs.hist_len = static_cast<std::uint32_t>(cfg.sd_max_delay) + 2;
    arena += cs.hist_len;
    for (std::size_t t = 0; t < sd.taps.size(); ++t) {
      CompiledSdTap tap;
      tap.src = machine.sourceIndex(
          Endpoint::sdOutput(s, static_cast<int>(t)));
      const std::uint32_t n = cs.hist_len;
      tap.back = n - 1 - static_cast<std::uint32_t>(sd.taps[t]) % n;
      cs.taps.push_back(tap);
    }
    ci.sds.push_back(std::move(cs));
  }

  // Switch routing table (route value 0 = unrouted).
  for (std::size_t d = 0; d < plan.route.size(); ++d) {
    if (plan.route[d] > 0) {
      ci.routes.push_back({static_cast<std::int32_t>(d),
                           static_cast<std::int32_t>(plan.route[d] - 1)});
    }
  }

  ci.cond_enable = plan.cond_enable;
  if (plan.cond_enable) {
    ci.cond_src = machine.sourceIndex(Endpoint::fuOutput(plan.cond_src_fu));
    ci.cond_reg = plan.cond_reg;
  }
  ci.ring_slots = arena;
  (void)instr_index;
  return ci;
}

}  // namespace

namespace {

// One decode table per (cached) spec: the spec cache already collapses
// machines with equal configs onto one immutable spec, so pointer identity
// is the key.
std::shared_ptr<const DecodeTable> sharedDecodeTable(
    const arch::Machine& machine,
    const std::shared_ptr<const MicrowordSpec>& spec) {
  struct Entry {
    const MicrowordSpec* spec;
    std::shared_ptr<const DecodeTable> table;
  };
  static std::mutex mutex;
  static std::vector<Entry> cache;
  std::lock_guard<std::mutex> lock(mutex);
  for (const Entry& e : cache) {
    if (e.spec == spec.get()) return e.table;
  }
  cache.push_back(
      {spec.get(), std::make_shared<const DecodeTable>(machine, *spec)});
  return cache.back().table;
}

}  // namespace

std::shared_ptr<const CompiledProgram> CompiledProgram::compile(
    const arch::Machine& machine, const mc::Executable& exe) {
  const std::shared_ptr<const MicrowordSpec> spec =
      MicrowordSpec::shared(machine);
  const DecodeTable& table = *sharedDecodeTable(machine, spec);
  auto program = std::make_shared<CompiledProgram>();
  program->names = exe.names;
  program->fingerprint = exe.fingerprint();

  std::vector<std::vector<double>> rf_images(
      static_cast<std::size_t>(machine.config().numFus()));
  for (const auto& [fu, image] : exe.rf_images) {
    rf_images.at(static_cast<std::size_t>(fu)) = image;
  }

  program->plans.reserve(exe.words.size());
  program->instrs.reserve(exe.words.size());
  for (std::size_t i = 0; i < exe.words.size(); ++i) {
    program->plans.push_back(
        decodePlan(machine, table, rf_images, exe.words[i]));
    program->instrs.push_back(
        lowerPlan(machine, program->plans.back(), static_cast<int>(i)));
  }

  // Verify once here so the report (and the proven steady-state windows it
  // justifies) ride the shared program pointer through the cache.
  auto report = std::make_shared<VerifyReport>(
      ProgramVerifier(machine).verify(*program));
  for (std::size_t i = 0; i < program->instrs.size(); ++i) {
    program->instrs[i].steady_window = report->instrs[i].steady_window;
  }
  program->verify = std::move(report);
  return program;
}

}  // namespace nsc::sim
