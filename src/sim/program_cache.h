// CompiledProgramCache: one compiled image per (executable, machine config),
// process-wide.
//
// PR 3 made compilation a once-per-program cost shared across the nodes of
// one HypercubeSystem / the replicas of one ensemble call — but the sharing
// was ad hoc: every loadAll / runEnsemble call site compiled its own image,
// so two workbench shards (or two ensemble calls) running the same SPMD
// executable still lowered it twice.  This cache owns that sharing: lookups
// key on mc::Executable::fingerprint() plus the full MachineConfig (lowered
// indices depend on the machine layout), confirm exact executable content
// after a fingerprint match, hits return the *same*
// shared_ptr<const CompiledProgram> instance, and entries are evicted LRU
// past a bounded capacity.  The service layer's shards and every
// HypercubeSystem::loadAll(exe) go through here, so N concurrent consumers
// of one program observe exactly one immutable image.
//
// Thread-safe.  Compilation runs outside the lock; a lost insertion race
// discards the loser's image and returns the winner's, preserving
// pointer-equality for every caller.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/machine.h"
#include "microcode/generator.h"
#include "sim/compiled.h"

namespace nsc::sim {

class CompiledProgramCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  explicit CompiledProgramCache(std::size_t max_entries = 64);

  // Returns the compiled image for `exe` on `machine`, compiling on miss.
  // Two calls with the same executable content and machine config return
  // the same instance.  `hit` (optional) reports whether this call reused
  // a cached image.
  std::shared_ptr<const CompiledProgram> get(const arch::Machine& machine,
                                             const mc::Executable& exe,
                                             bool* hit = nullptr);

  Stats stats() const;
  void clear();

  // The process-wide cache shards, systems, and workbenches share by
  // default (sized with the default max_entries).
  static CompiledProgramCache& shared();

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    arch::MachineConfig config;
    // The source content, kept to confirm fingerprint matches exactly: a
    // hash collision must compile its own entry, never alias another
    // program's image.
    mc::Executable exe;
    std::shared_ptr<const CompiledProgram> program;
    std::uint64_t last_used = 0;  // LRU tick
  };

  // The entry matching (fingerprint, config, content), or nullptr.
  Entry* find(std::uint64_t fingerprint, const arch::Machine& machine,
              const mc::Executable& exe);

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace nsc::sim
