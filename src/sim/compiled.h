// Compile-once node execution: decoded instruction plans and their lowered,
// execution-ready form.
//
// The NSC node streams vectors through a statically-routed pipeline, so all
// routing, ring sizing, and endpoint resolution for an instruction is known
// the moment its microword is decoded.  The seed interpreter nevertheless
// re-derived all of it every cycle (dense endpoint indices via linear
// Machine::sourceIndex scans, ring allocation per execute call, route tables
// per instruction issue).  CompiledProgram does that work exactly once:
//
//   mc::Executable --decode--> InstrPlan --lower--> CompiledInstr
//
// and the whole program is held behind an immutable shared_ptr, so the 64
// nodes of a HypercubeSystem running the same SPMD executable share one
// compiled image instead of 64 private decoded copies.
//
// Both execution engines consume this program: the legacy cycle interpreter
// (NodeSim::execute, kept as the semantic reference behind
// NodeOptions::use_compiled = false) walks the InstrPlans; the compiled
// engine walks the CompiledInstrs.  The golden tests in test_compiled.cpp
// pin the two to bit-identical InstrStats and memory contents.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/machine.h"
#include "microcode/generator.h"
#include "sim/stats.h"

namespace nsc::sim {

struct VerifyReport;  // sim/verify.h

// Drain budget for read-only pipelines: enough cycles for every FU latency
// in the machine plus the register-file and shift/delay queue depths.  All
// three execution engines (interpreter, compiled, SoA batch) share this so
// the completion rule cannot drift between them.
inline std::uint64_t drainBudget(const arch::MachineConfig& cfg) {
  return 64 + static_cast<std::uint64_t>(cfg.rf_max_delay) +
         static_cast<std::uint64_t>(cfg.sd_max_delay);
}

// ---------------------------------------------------------------------------
// Decoded per-instruction plans (the interpreter's view of one microword).
// ---------------------------------------------------------------------------

struct FuPlan {
  bool enabled = false;
  arch::OpCode op = arch::OpCode::kNop;
  arch::InputSelect in_a = arch::InputSelect::kNone;
  arch::InputSelect in_b = arch::InputSelect::kNone;
  arch::RfMode rf_mode = arch::RfMode::kOff;
  int rf_delay = 0;
  int rf_delay_port = 0;
  double rf_value = 0.0;  // constant or accumulator seed
  int latency = 1;
  bool counts_flop = false;
  int arity = 0;
};

struct DmaPlan {
  int mode = 0;  // 0 idle, 1 read, 2 write (caches: bit0 read, bit1 fill)
  std::uint64_t base = 0;
  std::int64_t stride = 1;
  std::uint64_t count = 0;
  std::uint64_t count2 = 1;
  std::int64_t stride2 = 0;
  int read_buffer = 0;
  bool swap = false;
};

struct SdPlan {
  bool enabled = false;
  std::vector<int> taps;
};

struct InstrPlan {
  std::vector<FuPlan> fu;
  // Switch: dense source index + 1 per destination (0 = unrouted).
  std::vector<int> route;
  std::vector<DmaPlan> plane;
  std::vector<DmaPlan> cache;
  std::vector<SdPlan> sd;
  bool cond_enable = false;
  int cond_src_fu = 0;
  int cond_reg = 0;
  arch::SeqOp seq_op = arch::SeqOp::kNext;
  int seq_target = 0;
  int seq_cond_reg = 0;
  int seq_count = 0;
  bool has_writes = false;
  bool has_reads = false;
};

// ---------------------------------------------------------------------------
// Lowered form: everything pre-resolved to dense indices and flat arrays.
// ---------------------------------------------------------------------------

enum class OperandKind : std::uint8_t {
  kNone = 0,   // port unused: always an invalid token
  kSwitch,     // dst_in[index] (registered crossbar input)
  kChain,      // src_out[index] of the previous ALS slot, same cycle
  kConst,      // register-file constant
  kFeedback,   // the FU's own accumulator
};

struct CompiledOperand {
  OperandKind kind = OperandKind::kNone;
  std::int32_t index = -1;  // dst_in (kSwitch) or src_out (kChain) index
  bool queue = false;       // token passes through the rf delay queue
  bool wired = false;       // participates in launch validity
  bool stream = false;      // counts toward hazard detection
};

struct CompiledFu {
  arch::FuId fu = 0;
  arch::OpCode op = arch::OpCode::kNop;
  CompiledOperand a, b;
  bool is_accum = false;
  bool accum_stream_is_a = true;  // which operand carries the stream
  double rf_value = 0.0;          // constant / accumulator seed
  bool counts_flop = false;
  std::int32_t out_src = 0;  // src_out index of fuOutput(fu)
  // Ring layout inside the per-instruction token arena.
  std::uint32_t pipe_off = 0, pipe_len = 1;
  std::uint32_t rfq_off = 0, rfq_len = 0;  // 0 = no delay queue
};

// One active DMA engine (read or write; planes and caches share the shape).
struct CompiledDma {
  std::uint64_t base = 0;
  std::int64_t stride = 1;
  std::uint64_t count = 1;
  std::uint64_t count2 = 1;
  std::int64_t stride2 = 0;
  std::uint64_t total = 1;   // count * count2 elements
  std::int32_t endpoint = 0; // src_out index (reads) / dst_in index (writes)
  bool is_cache = false;
  std::int32_t unit = 0;
  std::int32_t buffer = 0;
};

struct CompiledSdTap {
  std::int32_t src = 0;     // src_out index of the tap endpoint
  std::uint32_t back = 0;   // ring offset ahead of the write position
};

struct CompiledSd {
  std::int32_t in_dst = 0;  // dst_in index feeding the history ring
  std::uint32_t hist_off = 0, hist_len = 1;
  std::vector<CompiledSdTap> taps;
};

// A fault proven at compile time: the instruction refuses to issue and both
// engines report it as this typed fault instead of executing.
struct InstrFault {
  FaultKind kind = FaultKind::kNone;
  arch::Endpoint endpoint{};   // offending endpoint (e.g. the DMA plane)
  std::int64_t address = 0;    // offending word for bounds faults
  std::string message;
};

struct CompiledInstr {
  std::vector<CompiledFu> fus;  // enabled units only, ALS slot order
  std::vector<std::pair<std::int32_t, std::int32_t>> routes;  // (dst, src)
  std::vector<CompiledDma> reads;
  std::vector<CompiledDma> writes;
  std::vector<CompiledSd> sds;
  // Planes whose simulated backing store must cover the touched range
  // before the engines start (pair: plane id, words needed).
  std::vector<std::pair<arch::PlaneId, std::uint64_t>> plane_grows;
  // Set when a plane DMA provably walks beyond sim_plane_words: the
  // instruction faults at issue with this diagnostic (detected at compile;
  // this replaced the stringly dma_error field).
  InstrFault fault;
  std::vector<arch::CacheId> swaps;  // double-buffer swaps at instruction end
  bool cond_enable = false;
  std::int32_t cond_src = -1;  // src_out index watched by the latch
  std::int32_t cond_reg = 0;
  std::uint32_t ring_slots = 0;  // total token-arena size for this instr
  // Proven-safe steady-state block for executeCompiled, derived by the
  // verifier (sim/verify.h); stays at the conservative 64 when unproven.
  std::uint32_t steady_window = 64;
};

// An immutable, shareable compiled program: decoded plans (sequencer +
// legacy interpreter) and lowered instructions, index-parallel.
class CompiledProgram {
 public:
  // Decodes and lowers every microword of `exe` against `machine`.  The
  // machine must outlive the program (it already outlives every NodeSim).
  static std::shared_ptr<const CompiledProgram> compile(
      const arch::Machine& machine, const mc::Executable& exe);

  std::size_t size() const { return plans.size(); }

  std::vector<InstrPlan> plans;
  std::vector<CompiledInstr> instrs;
  std::vector<std::string> names;
  std::uint64_t fingerprint = 0;  // mc::Executable::fingerprint() of source
  // Static-analysis verdict produced once at compile; rides the shared
  // program pointer, so every cache shard / node / replica holding the image
  // shares one report (never null after compile()).
  std::shared_ptr<const VerifyReport> verify;
};

}  // namespace nsc::sim
