#include "sim/node.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace nsc::sim {

using arch::Endpoint;
using common::strFormat;

NodeSim::NodeSim(const arch::Machine& machine, Options options)
    : machine_(machine), options_(options) {
  const arch::MachineConfig& cfg = machine_.config();
  planes_.resize(static_cast<std::size_t>(cfg.num_memory_planes));
  caches_.resize(static_cast<std::size_t>(cfg.num_caches));
  for (auto& cache : caches_) {
    cache.assign(static_cast<std::size_t>(cfg.cache_buffers),
                 std::vector<double>(cfg.cacheWords(), 0.0));
  }
  cond_regs_.assign(4, false);
  fu_launches_.assign(static_cast<std::size_t>(cfg.numFus()), 0);
}

void NodeSim::load(const mc::Executable& exe) {
  load(CompiledProgram::compile(machine_, exe));
}

void NodeSim::load(std::shared_ptr<const CompiledProgram> program) {
  program_ = std::move(program);
  loop_counters_.assign(program_ ? program_->size() : 0, std::nullopt);
  restart();
}

void NodeSim::restart() {
  pc_ = 0;
  halted_ = false;
  std::fill(cond_regs_.begin(), cond_regs_.end(), false);
  std::fill(loop_counters_.begin(), loop_counters_.end(), std::nullopt);
}

NodeSim::Snapshot NodeSim::snapshot() const {
  Snapshot snap;
  snap.planes = planes_;
  snap.caches = caches_;
  snap.cond_regs = cond_regs_;
  snap.pc = pc_;
  snap.halted = halted_;
  return snap;
}

void NodeSim::restoreSnapshot(Snapshot snapshot) {
  // Shape mismatches (a checkpoint from a different machine config) are the
  // caller's to reject — the serialization layer validates counts against
  // the machine before handing the snapshot over.  Here we adopt the images
  // wholesale so restored memory is bit-identical to the source node's.
  planes_ = std::move(snapshot.planes);
  caches_ = std::move(snapshot.caches);
  cond_regs_ = std::move(snapshot.cond_regs);
  pc_ = snapshot.pc;
  halted_ = snapshot.halted;
  program_.reset();
  loop_counters_.clear();
}

// ---------------------------------------------------------------------------
// Memory access
// ---------------------------------------------------------------------------

void NodeSim::ensurePlaneSize(arch::PlaneId plane, std::uint64_t needed) {
  auto& mem = planes_[static_cast<std::size_t>(plane)];
  const std::uint64_t cap = machine_.config().sim_plane_words;
  if (mem.size() >= needed || needed > cap) return;
  // Geometric growth (capped at the simulated capacity): a program whose
  // instructions extend the touched range step by step reallocates
  // O(log n) times instead of once per instruction.
  const std::uint64_t target =
      std::min<std::uint64_t>(cap, std::max<std::uint64_t>(needed, mem.size() * 2));
  mem.resize(target, 0.0);
}

void NodeSim::writePlane(arch::PlaneId plane, std::uint64_t base,
                         std::span<const double> values) {
  auto& mem = planes_.at(static_cast<std::size_t>(plane));
  ensurePlaneSize(plane, base + values.size());
  // Words beyond the simulated capacity are dropped, mirroring the DMA
  // engines' in-range stores (the backing store never exceeds the cap).
  const std::uint64_t start = std::min<std::uint64_t>(base, mem.size());
  const std::uint64_t fit =
      std::min<std::uint64_t>(values.size(), mem.size() - start);
  std::copy_n(values.begin(), static_cast<std::ptrdiff_t>(fit),
              mem.begin() + static_cast<std::ptrdiff_t>(start));
}

std::vector<double> NodeSim::readPlane(arch::PlaneId plane, std::uint64_t base,
                                       std::uint64_t count) const {
  std::vector<double> out(count, 0.0);
  readPlaneInto(plane, base, out);
  return out;
}

namespace {
// Copies mem[base .. base+out.size()) into `out`, zero-filling words beyond
// the simulated backing store (which may be smaller than the architectural
// capacity, or not cover `base` at all).
void readInto(const std::vector<double>& mem, std::uint64_t base,
              std::span<double> out) {
  const std::uint64_t start = std::min<std::uint64_t>(base, mem.size());
  const std::uint64_t avail =
      std::min<std::uint64_t>(out.size(), mem.size() - start);
  std::copy_n(mem.begin() + static_cast<std::ptrdiff_t>(start),
              static_cast<std::ptrdiff_t>(avail), out.begin());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(avail), out.end(), 0.0);
}
}  // namespace

void NodeSim::readPlaneInto(arch::PlaneId plane, std::uint64_t base,
                            std::span<double> out) const {
  readInto(planes_.at(static_cast<std::size_t>(plane)), base, out);
}

double NodeSim::readPlaneWord(arch::PlaneId plane, std::uint64_t addr) const {
  const auto& mem = planes_.at(static_cast<std::size_t>(plane));
  return addr < mem.size() ? mem[addr] : 0.0;
}

void NodeSim::fillPlane(arch::PlaneId plane, double value) {
  auto& mem = planes_.at(static_cast<std::size_t>(plane));
  std::fill(mem.begin(), mem.end(), value);
}

void NodeSim::writeCache(arch::CacheId cache, int buffer, std::uint64_t base,
                         std::span<const double> values) {
  auto& mem = caches_.at(static_cast<std::size_t>(cache))
                  .at(static_cast<std::size_t>(buffer));
  for (std::size_t i = 0; i < values.size() && base + i < mem.size(); ++i) {
    mem[base + i] = values[i];
  }
}

std::vector<double> NodeSim::readCache(arch::CacheId cache, int buffer,
                                       std::uint64_t base,
                                       std::uint64_t count) const {
  std::vector<double> out(count, 0.0);
  readCacheInto(cache, buffer, base, out);
  return out;
}

void NodeSim::readCacheInto(arch::CacheId cache, int buffer,
                            std::uint64_t base, std::span<double> out) const {
  readInto(caches_.at(static_cast<std::size_t>(cache))
               .at(static_cast<std::size_t>(buffer)),
           base, out);
}

// ---------------------------------------------------------------------------
// Execute (legacy interpreter — the semantic reference the compiled engine
// in compiled_exec.cpp is golden-tested against)
// ---------------------------------------------------------------------------

namespace {

// Streaming address generator over a two-level DMA pattern.
struct DmaCursor {
  std::uint64_t base = 0;
  std::int64_t stride = 1;
  std::uint64_t count = 1;
  std::uint64_t count2 = 1;
  std::int64_t stride2 = 0;
  std::uint64_t element = 0;  // elements issued so far
  std::uint64_t row = 0;
  std::uint64_t in_row = 0;

  std::uint64_t total() const { return count * count2; }
  bool done() const { return element >= total(); }
  std::uint64_t nextAddr() {
    const std::int64_t addr = static_cast<std::int64_t>(base) +
                              static_cast<std::int64_t>(row) * stride2 +
                              static_cast<std::int64_t>(in_row) * stride;
    ++element;
    if (++in_row == count) {
      in_row = 0;
      ++row;
    }
    return static_cast<std::uint64_t>(addr);
  }
};

struct Ring {
  std::vector<Token> slots;
  std::size_t pos = 0;
  void init(std::size_t depth) {
    slots.assign(std::max<std::size_t>(depth, 1), Token::invalid());
    pos = 0;
  }
  // Pushes `in`, returns the token pushed slots.size() cycles ago.
  Token shift(const Token& in) {
    Token out = slots[pos];
    slots[pos] = in;
    pos = (pos + 1) % slots.size();
    return out;
  }
};

}  // namespace

InstrStats NodeSim::execute(const InstrPlan& plan, int instr_index,
                            const std::string& name) {
  const arch::MachineConfig& cfg = machine_.config();
  InstrStats stats;
  stats.instruction = instr_index;
  stats.name = name;

  // --- Per-instruction dataflow state ---
  const std::size_t n_src = machine_.sources().size();
  const std::size_t n_dst = machine_.destinations().size();
  std::vector<Token> src_out(n_src);
  std::vector<Token> dst_in(n_dst);

  struct FuState {
    Ring pipe;
    Ring rf_queue;
    bool has_queue = false;
    double acc = 0.0;
  };
  std::vector<FuState> fu_state(plan.fu.size());
  for (std::size_t f = 0; f < plan.fu.size(); ++f) {
    const FuPlan& fu = plan.fu[f];
    if (!fu.enabled) continue;
    fu_state[f].pipe.init(static_cast<std::size_t>(fu.latency));
    if (fu.rf_mode == arch::RfMode::kDelay && fu.rf_delay > 0) {
      fu_state[f].rf_queue.init(static_cast<std::size_t>(fu.rf_delay));
      fu_state[f].has_queue = true;
    }
    if (fu.rf_mode == arch::RfMode::kAccum) fu_state[f].acc = fu.rf_value;
  }

  // --- Active DMA engines ---
  struct ReadEngine {
    DmaCursor cursor;
    std::size_t src_index;
    bool is_cache = false;
    int unit = 0;
    int buffer = 0;
  };
  struct WriteEngine {
    DmaCursor cursor;
    std::size_t dst_index;
    bool is_cache = false;
    int unit = 0;
    int buffer = 0;
    bool done() const { return cursor.done(); }
  };
  std::vector<ReadEngine> reads;
  std::vector<WriteEngine> writes;

  for (int p = 0; p < cfg.num_memory_planes; ++p) {
    const DmaPlan& dma = plan.plane[static_cast<std::size_t>(p)];
    if (dma.mode == 0) continue;
    DmaCursor cursor{dma.base, dma.stride, dma.count, dma.count2,
                     dma.stride2};
    // Grow the simulated backing store to cover the touched range.
    const std::int64_t row_span = dma.stride * static_cast<std::int64_t>(dma.count - 1);
    const std::int64_t col_span = dma.stride2 * static_cast<std::int64_t>(dma.count2 - 1);
    std::int64_t hi = static_cast<std::int64_t>(dma.base);
    for (const std::int64_t corner :
         {hi + row_span, hi + col_span, hi + row_span + col_span}) {
      hi = std::max(hi, corner);
    }
    if (static_cast<std::uint64_t>(hi) >= cfg.sim_plane_words) {
      stats.error = true;
      stats.fault = FaultKind::kDmaBounds;
      stats.error_message = strFormat(
          "plane %d DMA touches word %lld beyond the simulated capacity %llu "
          "(raise MachineConfig::sim_plane_words)",
          p, static_cast<long long>(hi),
          static_cast<unsigned long long>(cfg.sim_plane_words));
      return stats;
    }
    ensurePlaneSize(p, static_cast<std::uint64_t>(hi) + 1);
    if (dma.mode == 1) {
      reads.push_back({cursor,
                       static_cast<std::size_t>(
                           machine_.sourceIndex(Endpoint::planeRead(p))),
                       false, p, 0});
    } else {
      writes.push_back({cursor,
                        static_cast<std::size_t>(machine_.destinationIndex(
                            Endpoint::planeWrite(p))),
                        false, p, 0});
    }
  }
  for (int c = 0; c < cfg.num_caches; ++c) {
    const DmaPlan& dma = plan.cache[static_cast<std::size_t>(c)];
    if (dma.mode == 0) continue;
    DmaCursor cursor{dma.base, dma.stride, dma.count, 1, 0};
    if (dma.mode & 1) {
      reads.push_back({cursor,
                       static_cast<std::size_t>(
                           machine_.sourceIndex(Endpoint::cacheRead(c))),
                       true, c, dma.read_buffer});
    }
    if (dma.mode & 2) {
      const int fill_buffer = (dma.read_buffer + 1) % cfg.cache_buffers;
      writes.push_back({cursor,
                        static_cast<std::size_t>(machine_.destinationIndex(
                            Endpoint::cacheWrite(c))),
                        true, c, fill_buffer});
    }
  }

  // --- Shift/delay units ---
  struct SdState {
    Ring hist;
    std::vector<std::pair<std::size_t, int>> taps;  // (source index, delay)
    std::size_t in_index = 0;
  };
  std::vector<SdState> sd_state;
  for (int s = 0; s < cfg.num_shift_delay; ++s) {
    const SdPlan& sd = plan.sd[static_cast<std::size_t>(s)];
    if (!sd.enabled) continue;
    SdState state;
    state.hist.init(static_cast<std::size_t>(cfg.sd_max_delay) + 2);
    state.in_index = static_cast<std::size_t>(
        machine_.destinationIndex(Endpoint::sdInput(s)));
    for (std::size_t t = 0; t < sd.taps.size(); ++t) {
      state.taps.push_back(
          {static_cast<std::size_t>(machine_.sourceIndex(
               Endpoint::sdOutput(s, static_cast<int>(t)))),
           sd.taps[t]});
    }
    sd_state.push_back(std::move(state));
  }

  // --- Switch routing table (skip self-managed chain paths) ---
  std::vector<std::pair<std::size_t, std::size_t>> routes;  // (dst, src)
  for (std::size_t d = 0; d < plan.route.size(); ++d) {
    if (plan.route[d] > 0) {
      routes.push_back({d, static_cast<std::size_t>(plan.route[d] - 1)});
    }
  }

  // List of enabled FUs in id order (ALS slot order, so chain inputs are
  // computed before their consumers within one cycle).
  std::vector<int> active_fus;
  for (std::size_t f = 0; f < plan.fu.size(); ++f) {
    if (plan.fu[f].enabled) active_fus.push_back(static_cast<int>(f));
  }

  const int cond_src_index =
      plan.cond_enable
          ? machine_.sourceIndex(Endpoint::fuOutput(plan.cond_src_fu))
          : -1;
  bool cond_fired = false;

  const std::uint64_t drain_budget = drainBudget(cfg);
  std::uint64_t drain = 0;

  std::uint64_t cycle = 0;
  for (;; ++cycle) {
    if (cycle >= options_.max_cycles_per_instruction) {
      stats.error = true;
      stats.fault = FaultKind::kTimeout;
      stats.error_message = strFormat(
          "instruction %d did not complete within %llu cycles", instr_index,
          static_cast<unsigned long long>(options_.max_cycles_per_instruction));
      stats.cycles = cycle;
      return stats;
    }

    // Phase 1a: DMA read engines produce this cycle's tokens.
    for (ReadEngine& rd : reads) {
      Token tok = Token::invalid();
      if (!rd.cursor.done()) {
        const std::uint64_t element = rd.cursor.element;
        const std::uint64_t addr = rd.cursor.nextAddr();
        double value = 0.0;
        if (rd.is_cache) {
          const auto& mem = caches_[static_cast<std::size_t>(rd.unit)]
                                   [static_cast<std::size_t>(rd.buffer)];
          if (addr < mem.size()) value = mem[addr];
        } else {
          const auto& mem = planes_[static_cast<std::size_t>(rd.unit)];
          if (addr < mem.size()) value = mem[addr];
        }
        tok = Token{value, true, rd.cursor.done(),
                    static_cast<std::int32_t>(element)};
      }
      src_out[rd.src_index] = tok;
    }

    // Phase 1b: shift/delay taps produce delayed copies.
    for (SdState& sd : sd_state) {
      for (const auto& [src_index, delay] : sd.taps) {
        const std::size_t n = sd.hist.slots.size();
        const std::size_t at =
            (sd.hist.pos + n - 1 - static_cast<std::size_t>(delay) % n) % n;
        src_out[src_index] = sd.hist.slots[at];
      }
    }

    // Phase 1c: functional units consume and launch.
    for (const int f : active_fus) {
      const FuPlan& fu = plan.fu[static_cast<std::size_t>(f)];
      FuState& state = fu_state[static_cast<std::size_t>(f)];

      auto operand = [&](int port, arch::InputSelect sel) -> Token {
        switch (sel) {
          case arch::InputSelect::kSwitch:
          case arch::InputSelect::kChain: {
            Token tok;
            if (sel == arch::InputSelect::kChain) {
              // Hardwired path from the previous slot's output, same cycle.
              const int prev = f - 1;
              const int src = machine_.sourceIndex(Endpoint::fuOutput(prev));
              tok = src >= 0 ? src_out[static_cast<std::size_t>(src)]
                             : Token::invalid();
            } else {
              const int dst =
                  machine_.destinationIndex(Endpoint::fuInput(f, port));
              tok = dst >= 0 ? dst_in[static_cast<std::size_t>(dst)]
                             : Token::invalid();
            }
            if (state.has_queue && fu.rf_delay_port == port) {
              tok = state.rf_queue.shift(tok);
            }
            return tok;
          }
          case arch::InputSelect::kRegisterFile:
            return Token::constant(fu.rf_value);
          case arch::InputSelect::kFeedback:
            return Token{state.acc, true, false, -1};
          case arch::InputSelect::kNone:
            return Token::invalid();
        }
        return Token::invalid();
      };

      const Token a = operand(0, fu.in_a);
      const Token b = operand(1, fu.in_b);

      Token result = Token::invalid();
      if (fu.rf_mode == arch::RfMode::kAccum) {
        // One stream input plus the feedback accumulator; the unit emits
        // the running value tagged valid only on the final element.
        const bool a_is_stream = fu.in_a != arch::InputSelect::kFeedback;
        const Token& stream = a_is_stream ? a : b;
        if (stream.valid) {
          state.acc = arch::evalOp(fu.op, a.value, b.value);
          if (fu.counts_flop) ++stats.flops;
          ++fu_launches_[static_cast<std::size_t>(f)];
        }
        result = Token{state.acc, stream.valid && stream.last,
                       stream.valid && stream.last, stream.index};
      } else {
        const bool a_wired = fu.in_a != arch::InputSelect::kNone;
        const bool b_wired = fu.arity >= 2 && fu.in_b != arch::InputSelect::kNone;
        bool valid = a_wired ? a.valid : false;
        if (b_wired) valid = valid && b.valid;
        // Hazards: two *stream* operands whose validity disagrees (pipeline
        // fill/drain bubbles or genuine misprogramming).  Register-file
        // constants and feedback are valid every cycle by construction and
        // do not count.
        const bool a_stream = fu.in_a == arch::InputSelect::kSwitch ||
                              fu.in_a == arch::InputSelect::kChain;
        const bool b_stream = fu.in_b == arch::InputSelect::kSwitch ||
                              fu.in_b == arch::InputSelect::kChain;
        if (a_stream && b_stream && a.valid != b.valid) ++stats.hazards;
        if (valid) {
          result.value = arch::evalOp(fu.op, a.value, b.value);
          result.valid = true;
          result.last = (a_wired && a.last) || (b_wired && b.last);
          result.index = a.index >= 0 ? a.index : b.index;
          if (fu.counts_flop) ++stats.flops;
          ++fu_launches_[static_cast<std::size_t>(f)];
        }
      }

      const int src = machine_.sourceIndex(Endpoint::fuOutput(f));
      src_out[static_cast<std::size_t>(src)] = state.pipe.shift(result);
    }

    // Phase 2a: write engines capture arriving tokens.
    bool writes_done = true;
    for (WriteEngine& wr : writes) {
      if (!wr.done()) {
        const Token tok = dst_in[wr.dst_index];
        if (tok.valid) {
          const std::uint64_t addr = wr.cursor.nextAddr();
          if (wr.is_cache) {
            auto& mem = caches_[static_cast<std::size_t>(wr.unit)]
                               [static_cast<std::size_t>(wr.buffer)];
            if (addr < mem.size()) mem[addr] = tok.value;
          } else {
            auto& mem = planes_[static_cast<std::size_t>(wr.unit)];
            if (addr < mem.size()) mem[addr] = tok.value;
          }
        }
      }
      writes_done = writes_done && wr.done();
    }

    // Phase 2b: condition latch watches the source FU's emerging stream.
    if (plan.cond_enable && cond_src_index >= 0) {
      const Token tok = src_out[static_cast<std::size_t>(cond_src_index)];
      if (tok.valid && tok.last) {
        cond_regs_[static_cast<std::size_t>(plan.cond_reg)] = tok.value > 0.5;
        cond_fired = true;
      }
    }

    if (trace_) {
      TraceFrame frame;
      frame.instruction = instr_index;
      frame.cycle = cycle;
      frame.source_tokens = src_out;
      trace_(frame);
    }

    // Phase 3: switch network transfers (registered: consumers see these
    // tokens next cycle).
    for (const auto& [dst, src] : routes) {
      dst_in[dst] = src_out[src];
    }

    // Phase 4: shift/delay history advances on the freshly routed input.
    for (SdState& sd : sd_state) {
      sd.hist.shift(dst_in[sd.in_index]);
    }

    // Completion: "an elaborate interrupt scheme is used to signal pipeline
    // completions".
    bool reads_done = true;
    for (const ReadEngine& rd : reads) {
      reads_done = reads_done && rd.cursor.done();
    }
    const bool cond_ok = !plan.cond_enable || cond_fired;
    if (!writes.empty()) {
      if (writes_done && cond_ok) {
        ++cycle;
        break;
      }
    } else if (!reads.empty()) {
      if (reads_done && cond_ok) {
        if (++drain > drain_budget) {
          ++cycle;
          break;
        }
      }
    } else {
      ++cycle;
      break;  // control-only instruction
    }
  }

  // Double-buffered caches swap at instruction end when requested.
  for (int c = 0; c < cfg.num_caches; ++c) {
    const DmaPlan& dma = plan.cache[static_cast<std::size_t>(c)];
    if (dma.mode != 0 && dma.swap && cfg.cache_buffers == 2) {
      std::swap(caches_[static_cast<std::size_t>(c)][0],
                caches_[static_cast<std::size_t>(c)][1]);
    }
  }

  stats.cycles = cycle;
  return stats;
}

void NodeSim::applySequencer(const InstrPlan& plan) {
  switch (plan.seq_op) {
    case arch::SeqOp::kNext:
      ++pc_;
      break;
    case arch::SeqOp::kJump:
      pc_ = plan.seq_target;
      break;
    case arch::SeqOp::kBranchIf:
      pc_ = cond_regs_.at(static_cast<std::size_t>(plan.seq_cond_reg))
                ? plan.seq_target
                : pc_ + 1;
      break;
    case arch::SeqOp::kBranchNot:
      pc_ = cond_regs_.at(static_cast<std::size_t>(plan.seq_cond_reg))
                ? pc_ + 1
                : plan.seq_target;
      break;
    case arch::SeqOp::kLoop: {
      auto& counter = loop_counters_.at(static_cast<std::size_t>(pc_));
      if (!counter.has_value()) counter = plan.seq_count;
      if (--*counter > 0) {
        pc_ = plan.seq_target;
      } else {
        counter.reset();
        ++pc_;
      }
      break;
    }
    case arch::SeqOp::kHalt:
      halted_ = true;
      break;
  }
  if (!halted_ &&
      (pc_ < 0 || pc_ >= static_cast<int>(program_ ? program_->size() : 0))) {
    halted_ = true;
  }
}

InstrStats NodeSim::stepInstruction() {
  const std::size_t program_size = program_ ? program_->size() : 0;
  if (halted_ || program_size == 0) {
    InstrStats stats;
    stats.error = halted_ && program_size == 0;
    return stats;
  }
  const int index = pc_;
  const auto slot = static_cast<std::size_t>(index);
  static const std::string kUnnamed;
  const std::string& name =
      slot < program_->names.size() ? program_->names[slot] : kUnnamed;
  InstrStats stats =
      options_.use_compiled
          ? executeCompiled(program_->instrs[slot], index, name)
          : execute(program_->plans[slot], index, name);
  if (!stats.error) {
    applySequencer(program_->plans[slot]);
  } else {
    halted_ = true;
  }
  return stats;
}

RunStats NodeSim::run() {
  RunStats stats;
  stats.fu_launches.assign(fu_launches_.size(), 0);
  std::fill(fu_launches_.begin(), fu_launches_.end(), 0);
  while (!halted_) {
    if (stats.instructions_executed >= options_.max_instructions) {
      stats.error = true;
      stats.error_message = "instruction budget exhausted";
      break;
    }
    InstrStats instr = stepInstruction();
    stats.total_cycles += instr.cycles;
    stats.total_flops += instr.flops;
    stats.total_hazards += instr.hazards;
    ++stats.instructions_executed;
    if (instr.error) {
      stats.error = true;
      stats.fault = instr.fault;
      stats.error_message = instr.error_message;
      stats.trace.push_back(std::move(instr));
      break;
    }
    stats.trace.push_back(std::move(instr));
  }
  stats.halted = halted_;
  stats.fu_launches = fu_launches_;
  return stats;
}

}  // namespace nsc::sim
