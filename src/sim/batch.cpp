// The SoA batched execution engine: ReplicaBatch::executeCompiledBatch.
//
// One shape copy of every token stream is stepped exactly like the scalar
// compiled engine (compiled_exec.cpp) — same phases, same steady-block
// bounds, same completion logic — while token *values* live in contiguous
// per-lane columns (`vals[slot * W + w]`) advanced by W-wide inner loops.
// Shape state (validity, last marks, indices, cursors, ring positions,
// launch decisions) is data-independent, so it is identical for every
// lockstep lane; the value loops are the only per-lane work and carry no
// branches on lane data, so they auto-vectorize.
#include "sim/batch.h"

#include <algorithm>
#include <cmath>

#include "common/env.h"
#include "common/strings.h"

namespace nsc::sim {

namespace {

// W-wide evalOp: the opcode switch hoisted out of the lane loop.  Each case
// must compute exactly what arch::evalOp computes per lane; rare opcodes
// fall back to the scalar call (bit-identical, just not vectorized).  KW > 0
// makes the trip count a compile-time constant (see executeCompiledBatchT).
template <int KW>
void evalLanes(arch::OpCode op, const double* a, const double* b, double* out,
               int rw) {
  const int w = KW > 0 ? KW : rw;
  using arch::OpCode;
  switch (op) {
    case OpCode::kPass:
      for (int i = 0; i < w; ++i) out[i] = a[i];
      return;
    case OpCode::kAdd:
      for (int i = 0; i < w; ++i) out[i] = a[i] + b[i];
      return;
    case OpCode::kSub:
      for (int i = 0; i < w; ++i) out[i] = a[i] - b[i];
      return;
    case OpCode::kMul:
      for (int i = 0; i < w; ++i) out[i] = a[i] * b[i];
      return;
    case OpCode::kDiv:
      for (int i = 0; i < w; ++i) out[i] = a[i] / b[i];
      return;
    case OpCode::kNeg:
      for (int i = 0; i < w; ++i) out[i] = -a[i];
      return;
    case OpCode::kAbs:
      for (int i = 0; i < w; ++i) out[i] = std::fabs(a[i]);
      return;
    case OpCode::kCmpLt:
      for (int i = 0; i < w; ++i) out[i] = a[i] < b[i] ? 1.0 : 0.0;
      return;
    case OpCode::kCmpLe:
      for (int i = 0; i < w; ++i) out[i] = a[i] <= b[i] ? 1.0 : 0.0;
      return;
    case OpCode::kCmpEq:
      for (int i = 0; i < w; ++i) out[i] = a[i] == b[i] ? 1.0 : 0.0;
      return;
    case OpCode::kMin:
      for (int i = 0; i < w; ++i) out[i] = a[i] < b[i] ? a[i] : b[i];
      return;
    case OpCode::kMax:
      for (int i = 0; i < w; ++i) out[i] = a[i] > b[i] ? a[i] : b[i];
      return;
    default:
      for (int i = 0; i < w; ++i) out[i] = arch::evalOp(op, a[i], b[i]);
      return;
  }
}

}  // namespace

int resolveEnsembleLanes(int requested) {
  const auto clamped = [](long v) {
    return static_cast<int>(
        std::clamp<long>(v, 1, ReplicaBatch::kMaxLanes));
  };
  if (requested > 0) return clamped(requested);
  // Strict parse (common/env.h): non-numeric, negative, zero, or overflowed
  // NSC_ENSEMBLE_LANES values warn once and fall back to the default
  // instead of silently running a different experiment.
  if (const std::optional<long long> v =
          common::envInt("NSC_ENSEMBLE_LANES", 1, ReplicaBatch::kMaxLanes)) {
    return clamped(static_cast<long>(*v));
  }
  return kDefaultEnsembleLanes;
}

ReplicaBatch::ReplicaBatch(const arch::Machine& machine, int lanes,
                           NodeSim::Options options)
    : machine_(machine),
      options_(options),
      lanes_(std::clamp(lanes, 1, kMaxLanes)) {
  const arch::MachineConfig& cfg = machine_.config();
  const auto n_planes = static_cast<std::size_t>(cfg.num_memory_planes);
  const auto w = static_cast<std::size_t>(lanes_);
  planes_.resize(n_planes);
  plane_words_.assign(n_planes, 0);
  lane_plane_words_.assign(n_planes, std::vector<std::uint64_t>(w, 0));
  // Cache buffers stay empty until first touched: most programs use few (or
  // no) caches, and eagerly zeroing num_caches * cache_buffers * W words
  // would dominate the cost of running a small ensemble.
  caches_.resize(static_cast<std::size_t>(cfg.num_caches));
  for (auto& cache : caches_) {
    cache.resize(static_cast<std::size_t>(cfg.cache_buffers));
  }
  cond_.assign(4 * w, 0);
  fu_launches_.assign(static_cast<std::size_t>(cfg.numFus()), 0);
  retired_.resize(w);
  scratch_.a_vals.resize(w);
  scratch_.b_vals.resize(w);
  scratch_.res_vals.resize(w);
}

void ReplicaBatch::load(std::shared_ptr<const CompiledProgram> program) {
  program_ = std::move(program);
  loop_counters_.assign(program_ ? program_->size() : 0, std::nullopt);
  pc_ = 0;
  halted_ = false;
  std::fill(cond_.begin(), cond_.end(), 0);
  for (auto& node : retired_) {
    if (node == nullptr) continue;
    // A retired lane's continuation node was created with the budget that
    // remained at its retirement; a fresh load grants the full per-run
    // budget again, exactly like any scalar node being (re)loaded.
    node->options_.max_instructions = options_.max_instructions;
    node->load(program_);
  }
}

void ReplicaBatch::restart() {
  // NodeSim::restart across every lockstep lane: the lanes share one
  // sequencer, so one reset covers them all; memory is untouched.
  pc_ = 0;
  halted_ = false;
  std::fill(cond_.begin(), cond_.end(), 0);
  std::fill(loop_counters_.begin(), loop_counters_.end(), std::nullopt);
  for (auto& node : retired_) {
    if (node == nullptr) continue;
    node->options_.max_instructions = options_.max_instructions;
    node->restart();
  }
}

// Mirrors NodeSim::ensurePlaneSize per lane (each lane's logical size grows
// exactly as its scalar replica's backing store would), then extends the
// shared SoA store to the widest lane.  The layout is address-major, so a
// plain resize keeps existing words in place and zero-fills the growth.
void ReplicaBatch::ensurePlaneSize(arch::PlaneId plane, std::uint64_t needed) {
  const std::uint64_t cap = machine_.config().sim_plane_words;
  const auto p = static_cast<std::size_t>(plane);
  std::uint64_t widest = plane_words_[p];
  for (std::uint64_t& words : lane_plane_words_[p]) {
    if (words >= needed || needed > cap) continue;
    words = std::min<std::uint64_t>(
        cap, std::max<std::uint64_t>(needed, words * 2));
    widest = std::max(widest, words);
  }
  if (widest > plane_words_[p]) {
    plane_words_[p] = widest;
    planes_[p].resize(widest * static_cast<std::uint64_t>(lanes_), 0.0);
  }
}

std::vector<double>& ReplicaBatch::cacheStore(std::size_t cache,
                                              std::size_t buffer) {
  std::vector<double>& mem = caches_[cache][buffer];
  if (mem.empty()) {
    mem.assign(machine_.config().cacheWords() *
                   static_cast<std::size_t>(lanes_),
               0.0);
  }
  return mem;
}

void ReplicaBatch::writePlane(int lane, arch::PlaneId plane,
                              std::uint64_t base,
                              std::span<const double> values) {
  if (retired_[static_cast<std::size_t>(lane)] != nullptr) {
    retired_[static_cast<std::size_t>(lane)]->writePlane(plane, base, values);
    return;
  }
  const auto p = static_cast<std::size_t>(plane);
  const auto w = static_cast<std::size_t>(lanes_);
  // Per-lane growth and overflow-drop semantics identical to
  // NodeSim::writePlane against this lane's logical size.
  ensurePlaneSize(plane, base + values.size());
  const std::uint64_t words = lane_plane_words_[p][static_cast<std::size_t>(lane)];
  const std::uint64_t start = std::min<std::uint64_t>(base, words);
  const std::uint64_t fit =
      std::min<std::uint64_t>(values.size(), words - start);
  double* mem = planes_[p].data();
  for (std::uint64_t i = 0; i < fit; ++i) {
    mem[(start + i) * w + static_cast<std::size_t>(lane)] = values[i];
  }
}

void ReplicaBatch::writeCache(int lane, arch::CacheId cache, int buffer,
                              std::uint64_t base,
                              std::span<const double> values) {
  if (retired_[static_cast<std::size_t>(lane)] != nullptr) {
    retired_[static_cast<std::size_t>(lane)]->writeCache(cache, buffer, base,
                                                         values);
    return;
  }
  const std::uint64_t words = machine_.config().cacheWords();
  const auto w = static_cast<std::size_t>(lanes_);
  double* mem = cacheStore(static_cast<std::size_t>(cache),
                           static_cast<std::size_t>(buffer))
                    .data();
  for (std::size_t i = 0; i < values.size() && base + i < words; ++i) {
    mem[(base + i) * w + static_cast<std::size_t>(lane)] = values[i];
  }
}

std::vector<double> ReplicaBatch::readPlane(int lane, arch::PlaneId plane,
                                            std::uint64_t base,
                                            std::uint64_t count) const {
  std::vector<double> out(count, 0.0);
  readPlaneInto(lane, plane, base, out);
  return out;
}

void ReplicaBatch::readPlaneInto(int lane, arch::PlaneId plane,
                                 std::uint64_t base,
                                 std::span<double> out) const {
  if (retired_[static_cast<std::size_t>(lane)] != nullptr) {
    retired_[static_cast<std::size_t>(lane)]->readPlaneInto(plane, base, out);
    return;
  }
  const auto p = static_cast<std::size_t>(plane);
  const auto w = static_cast<std::size_t>(lanes_);
  const std::uint64_t words = lane_plane_words_[p][static_cast<std::size_t>(lane)];
  const double* mem = planes_[p].data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t addr = base + i;
    out[i] = addr < words ? mem[addr * w + static_cast<std::size_t>(lane)] : 0.0;
  }
}

std::vector<double> ReplicaBatch::readCache(int lane, arch::CacheId cache,
                                            int buffer, std::uint64_t base,
                                            std::uint64_t count) const {
  if (retired_[static_cast<std::size_t>(lane)] != nullptr) {
    return retired_[static_cast<std::size_t>(lane)]->readCache(cache, buffer,
                                                               base, count);
  }
  const std::uint64_t words = machine_.config().cacheWords();
  const auto w = static_cast<std::size_t>(lanes_);
  std::vector<double> out(count, 0.0);
  const std::vector<double>& store = caches_.at(static_cast<std::size_t>(cache))
                                         .at(static_cast<std::size_t>(buffer));
  if (store.empty()) return out;  // never touched: all zeros
  const double* mem = store.data();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t addr = base + i;
    if (addr < words) out[i] = mem[addr * w + static_cast<std::size_t>(lane)];
  }
  return out;
}

std::unique_ptr<NodeSim> ReplicaBatch::extractLane(
    int w, int lane_pc, bool lane_halted, std::uint64_t executed) const {
  NodeSim::Options opts = options_;
  opts.max_instructions = options_.max_instructions - executed;
  auto node = std::make_unique<NodeSim>(machine_, opts);
  const auto lane = static_cast<std::size_t>(w);
  const auto lanes = static_cast<std::size_t>(lanes_);
  node->program_ = program_;
  node->loop_counters_ = loop_counters_;
  node->pc_ = lane_pc;
  node->halted_ = lane_halted;
  for (std::size_t r = 0; r < 4; ++r) {
    node->cond_regs_[r] = cond_[r * lanes + lane] != 0;
  }
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    const std::uint64_t words = lane_plane_words_[p][lane];
    auto& mem = node->planes_[p];
    mem.assign(words, 0.0);
    const double* soa = planes_[p].data();
    for (std::uint64_t a = 0; a < words; ++a) mem[a] = soa[a * lanes + lane];
  }
  const std::uint64_t cache_words = machine_.config().cacheWords();
  for (std::size_t c = 0; c < caches_.size(); ++c) {
    for (std::size_t buf = 0; buf < caches_[c].size(); ++buf) {
      if (caches_[c][buf].empty()) continue;  // untouched: node's is zeroed
      auto& mem = node->caches_[c][buf];
      const double* soa = caches_[c][buf].data();
      for (std::uint64_t a = 0; a < cache_words; ++a) {
        mem[a] = soa[a * lanes + lane];
      }
    }
  }
  return node;
}

InstrStats ReplicaBatch::executeCompiledBatch(const CompiledInstr& ci,
                                              int instr_index,
                                              const std::string& name) {
  // The SIMD-friendly widths get bodies with compile-time-constant lane
  // loops; anything else takes the runtime-width fallback (KW = 0).
  switch (lanes_) {
    case 4: return executeCompiledBatchT<4>(ci, instr_index, name);
    case 8: return executeCompiledBatchT<8>(ci, instr_index, name);
    case 16: return executeCompiledBatchT<16>(ci, instr_index, name);
    default: return executeCompiledBatchT<0>(ci, instr_index, name);
  }
}

template <int KW>
InstrStats ReplicaBatch::executeCompiledBatchT(const CompiledInstr& ci,
                                               int instr_index,
                                               const std::string& name) {
  const arch::MachineConfig& cfg = machine_.config();
  const int W = KW > 0 ? KW : lanes_;
  InstrStats stats;
  stats.instruction = instr_index;
  stats.name = name;

  if (ci.fault.kind != FaultKind::kNone) {
    stats.error = true;
    stats.fault = ci.fault.kind;
    stats.error_message = ci.fault.message;
    return stats;
  }
  for (const auto& [plane, needed] : ci.plane_grows) {
    ensurePlaneSize(plane, needed);
  }
  // Cache write targets must exist before the cycle loop dereferences them
  // (reads of untouched buffers fall through to zero, like a pre-zeroed
  // scalar buffer).
  for (const CompiledDma& wr : ci.writes) {
    if (wr.is_cache) {
      cacheStore(static_cast<std::size_t>(wr.unit),
                 static_cast<std::size_t>(wr.buffer));
    }
  }

  // --- Per-instruction state (reused storage, reset content) ---
  Scratch& s = scratch_;
  const std::size_t n_src = machine_.sources().size();
  const std::size_t n_dst = machine_.destinations().size();
  s.src_out.assign(n_src, Token::invalid());
  s.dst_in.assign(n_dst, Token::invalid());
  s.arena.assign(ci.ring_slots, Token::invalid());
  s.src_vals.assign(n_src * static_cast<std::size_t>(W), 0.0);
  s.dst_vals.assign(n_dst * static_cast<std::size_t>(W), 0.0);
  s.arena_vals.assign(ci.ring_slots * static_cast<std::size_t>(W), 0.0);
  s.fu.assign(ci.fus.size(), Scratch::FuRun{});
  s.acc.assign(ci.fus.size() * static_cast<std::size_t>(W), 0.0);
  for (std::size_t k = 0; k < ci.fus.size(); ++k) {
    if (ci.fus[k].is_accum) {
      double* acc = s.acc.data() + k * static_cast<std::size_t>(W);
      for (int i = 0; i < W; ++i) acc[i] = ci.fus[k].rf_value;
    }
  }
  s.reads.assign(ci.reads.size(), Scratch::DmaRun{});
  s.writes.assign(ci.writes.size(), Scratch::DmaRun{});
  s.sd_pos.assign(ci.sds.size(), 0);

  const std::uint64_t drain_budget = drainBudget(cfg);
  std::uint64_t drain = 0;
  bool cond_fired = false;

  // One cycle of dataflow across all lanes; the shape side is a line-by-line
  // mirror of NodeSim::executeCompiled's stepCycle.
  const auto stepCycle = [&]() {
    // Phase 1a: DMA read engines produce this cycle's tokens.
    for (std::size_t i = 0; i < ci.reads.size(); ++i) {
      const CompiledDma& rd = ci.reads[i];
      Scratch::DmaRun& run = s.reads[i];
      Token tok = Token::invalid();
      double* out = s.src_vals.data() +
                    static_cast<std::size_t>(rd.endpoint) *
                        static_cast<std::size_t>(W);
      if (run.element < rd.total) {
        const std::uint64_t element = run.element;
        const auto addr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rd.base) +
            static_cast<std::int64_t>(run.row) * rd.stride2 +
            static_cast<std::int64_t>(run.in_row) * rd.stride);
        ++run.element;
        if (++run.in_row == rd.count) {
          run.in_row = 0;
          ++run.row;
        }
        const std::vector<double>& mem =
            rd.is_cache ? caches_[static_cast<std::size_t>(rd.unit)]
                                 [static_cast<std::size_t>(rd.buffer)]
                        : planes_[static_cast<std::size_t>(rd.unit)];
        // One shared address per cycle: W contiguous lane values.  The
        // in-range check uses the shared SoA extent, which agrees with
        // every lane's scalar check (both stores cover all non-wrapped DMA
        // addresses once plane_grows ran; wrapped addresses exceed both).
        const std::uint64_t addr_base = addr * static_cast<std::uint64_t>(W);
        if (addr_base < mem.size()) {
          const double* col = mem.data() + addr_base;
          for (int l = 0; l < W; ++l) out[l] = col[l];
        } else {
          for (int l = 0; l < W; ++l) out[l] = 0.0;
        }
        tok = Token{0.0, true, run.element == rd.total,
                    static_cast<std::int32_t>(element)};
      } else {
        for (int l = 0; l < W; ++l) out[l] = 0.0;
      }
      s.src_out[static_cast<std::size_t>(rd.endpoint)] = tok;
    }

    // Phase 1b: shift/delay taps produce delayed copies.
    for (std::size_t i = 0; i < ci.sds.size(); ++i) {
      const CompiledSd& sd = ci.sds[i];
      const std::uint32_t pos = s.sd_pos[i];
      for (const CompiledSdTap& tap : sd.taps) {
        std::uint32_t at = pos + tap.back;
        if (at >= sd.hist_len) at -= sd.hist_len;
        s.src_out[static_cast<std::size_t>(tap.src)] =
            s.arena[sd.hist_off + at];
        const double* from = s.arena_vals.data() +
                             static_cast<std::size_t>(sd.hist_off + at) *
                                 static_cast<std::size_t>(W);
        double* to = s.src_vals.data() +
                     static_cast<std::size_t>(tap.src) *
                         static_cast<std::size_t>(W);
        for (int l = 0; l < W; ++l) to[l] = from[l];
      }
    }

    // Phase 1c: functional units consume and launch.
    for (std::size_t k = 0; k < ci.fus.size(); ++k) {
      const CompiledFu& fu = ci.fus[k];
      Scratch::FuRun& st = s.fu[k];
      double* acc = s.acc.data() + k * static_cast<std::size_t>(W);

      // Shape token returned; lane values land in `out[0..W)`.
      const auto operand = [&](const CompiledOperand& op,
                               double* out) -> Token {
        Token tok = Token::invalid();
        switch (op.kind) {
          case OperandKind::kSwitch: {
            tok = s.dst_in[static_cast<std::size_t>(op.index)];
            const double* col = s.dst_vals.data() +
                                static_cast<std::size_t>(op.index) *
                                    static_cast<std::size_t>(W);
            for (int l = 0; l < W; ++l) out[l] = col[l];
            break;
          }
          case OperandKind::kChain:
            if (op.index >= 0) {
              tok = s.src_out[static_cast<std::size_t>(op.index)];
              const double* col = s.src_vals.data() +
                                  static_cast<std::size_t>(op.index) *
                                      static_cast<std::size_t>(W);
              for (int l = 0; l < W; ++l) out[l] = col[l];
            } else {
              for (int l = 0; l < W; ++l) out[l] = 0.0;
            }
            break;
          case OperandKind::kConst:
            for (int l = 0; l < W; ++l) out[l] = fu.rf_value;
            return Token::constant(fu.rf_value);
          case OperandKind::kFeedback:
            for (int l = 0; l < W; ++l) out[l] = acc[l];
            return Token{0.0, true, false, -1};
          case OperandKind::kNone:
            for (int l = 0; l < W; ++l) out[l] = 0.0;
            return tok;
        }
        if (op.queue) {
          Token* queue = s.arena.data() + fu.rfq_off;
          double* qcol = s.arena_vals.data() +
                         static_cast<std::size_t>(fu.rfq_off + st.rfq_pos) *
                             static_cast<std::size_t>(W);
          const Token delayed = queue[st.rfq_pos];
          queue[st.rfq_pos] = tok;
          for (int l = 0; l < W; ++l) {
            const double d = qcol[l];
            qcol[l] = out[l];
            out[l] = d;
          }
          st.rfq_pos = st.rfq_pos + 1 == fu.rfq_len ? 0 : st.rfq_pos + 1;
          tok = delayed;
        }
        return tok;
      };

      const Token a = operand(fu.a, s.a_vals.data());
      const Token b = operand(fu.b, s.b_vals.data());
      double* res = s.res_vals.data();

      Token result = Token::invalid();
      if (fu.is_accum) {
        const Token& stream = fu.accum_stream_is_a ? a : b;
        if (stream.valid) {
          evalLanes<KW>(fu.op, s.a_vals.data(), s.b_vals.data(), acc, W);
          if (fu.counts_flop) ++stats.flops;
          ++fu_launches_[static_cast<std::size_t>(fu.fu)];
        }
        // The unit emits the running value every cycle (valid only on the
        // final element), so the result column is always the accumulator.
        for (int l = 0; l < W; ++l) res[l] = acc[l];
        result = Token{0.0, stream.valid && stream.last,
                       stream.valid && stream.last, stream.index};
      } else {
        bool valid = fu.a.wired ? a.valid : false;
        if (fu.b.wired) valid = valid && b.valid;
        if (fu.a.stream && fu.b.stream && a.valid != b.valid) ++stats.hazards;
        if (valid) {
          evalLanes<KW>(fu.op, s.a_vals.data(), s.b_vals.data(), res, W);
          result.valid = true;
          result.last = (fu.a.wired && a.last) || (fu.b.wired && b.last);
          result.index = a.index >= 0 ? a.index : b.index;
          if (fu.counts_flop) ++stats.flops;
          ++fu_launches_[static_cast<std::size_t>(fu.fu)];
        } else {
          for (int l = 0; l < W; ++l) res[l] = 0.0;
        }
      }

      Token* pipe = s.arena.data() + fu.pipe_off;
      double* pcol = s.arena_vals.data() +
                     static_cast<std::size_t>(fu.pipe_off + st.pipe_pos) *
                         static_cast<std::size_t>(W);
      double* out_col = s.src_vals.data() +
                        static_cast<std::size_t>(fu.out_src) *
                            static_cast<std::size_t>(W);
      s.src_out[static_cast<std::size_t>(fu.out_src)] = pipe[st.pipe_pos];
      pipe[st.pipe_pos] = result;
      for (int l = 0; l < W; ++l) {
        out_col[l] = pcol[l];
        pcol[l] = res[l];
      }
      st.pipe_pos = st.pipe_pos + 1 == fu.pipe_len ? 0 : st.pipe_pos + 1;
    }

    // Phase 2a: write engines capture arriving tokens.
    for (std::size_t i = 0; i < ci.writes.size(); ++i) {
      const CompiledDma& wr = ci.writes[i];
      Scratch::DmaRun& run = s.writes[i];
      if (run.element >= wr.total) continue;
      const Token& tok = s.dst_in[static_cast<std::size_t>(wr.endpoint)];
      if (!tok.valid) continue;
      const auto addr = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(wr.base) +
          static_cast<std::int64_t>(run.row) * wr.stride2 +
          static_cast<std::int64_t>(run.in_row) * wr.stride);
      ++run.element;
      if (++run.in_row == wr.count) {
        run.in_row = 0;
        ++run.row;
      }
      std::vector<double>& mem =
          wr.is_cache ? caches_[static_cast<std::size_t>(wr.unit)]
                               [static_cast<std::size_t>(wr.buffer)]
                      : planes_[static_cast<std::size_t>(wr.unit)];
      const std::uint64_t addr_base = addr * static_cast<std::uint64_t>(W);
      if (addr_base < mem.size()) {
        const double* col = s.dst_vals.data() +
                            static_cast<std::size_t>(wr.endpoint) *
                                static_cast<std::size_t>(W);
        double* dst = mem.data() + addr_base;
        for (int l = 0; l < W; ++l) dst[l] = col[l];
      }
    }

    // Phase 2b: condition latch watches the source FU's emerging stream.
    if (ci.cond_enable && ci.cond_src >= 0) {
      const Token& tok = s.src_out[static_cast<std::size_t>(ci.cond_src)];
      if (tok.valid && tok.last) {
        const double* col = s.src_vals.data() +
                            static_cast<std::size_t>(ci.cond_src) *
                                static_cast<std::size_t>(W);
        std::uint8_t* regs =
            cond_.data() + static_cast<std::size_t>(ci.cond_reg) *
                               static_cast<std::size_t>(W);
        for (int l = 0; l < W; ++l) regs[l] = col[l] > 0.5 ? 1 : 0;
        cond_fired = true;
      }
    }

    // Phase 3: switch network transfers (registered: consumers see these
    // tokens next cycle).
    for (const auto& [dst, src] : ci.routes) {
      s.dst_in[static_cast<std::size_t>(dst)] =
          s.src_out[static_cast<std::size_t>(src)];
      const double* from = s.src_vals.data() +
                           static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(W);
      double* to = s.dst_vals.data() +
                   static_cast<std::size_t>(dst) * static_cast<std::size_t>(W);
      for (int l = 0; l < W; ++l) to[l] = from[l];
    }

    // Phase 4: shift/delay history advances on the freshly routed input.
    for (std::size_t i = 0; i < ci.sds.size(); ++i) {
      const CompiledSd& sd = ci.sds[i];
      s.arena[sd.hist_off + s.sd_pos[i]] =
          s.dst_in[static_cast<std::size_t>(sd.in_dst)];
      const double* from = s.dst_vals.data() +
                           static_cast<std::size_t>(sd.in_dst) *
                               static_cast<std::size_t>(W);
      double* to = s.arena_vals.data() +
                   static_cast<std::size_t>(sd.hist_off + s.sd_pos[i]) *
                       static_cast<std::size_t>(W);
      for (int l = 0; l < W; ++l) to[l] = from[l];
      s.sd_pos[i] = s.sd_pos[i] + 1 == sd.hist_len ? 0 : s.sd_pos[i] + 1;
    }
  };

  // Fill / steady / drain structure, completion logic, and timeout faulting
  // below mirror NodeSim::executeCompiled exactly (block bounds are shape
  // state, identical for every lane).
  std::uint64_t cycle = 0;
  bool completed = false;
  while (!completed) {
    if (cycle >= options_.max_cycles_per_instruction) {
      stats.error = true;
      stats.fault = FaultKind::kTimeout;
      stats.error_message = common::strFormat(
          "instruction %d did not complete within %llu cycles", instr_index,
          static_cast<unsigned long long>(options_.max_cycles_per_instruction));
      stats.cycles = cycle;
      return stats;
    }

    std::uint64_t block = 0;
    std::uint64_t reads_settle = 0;
    if (!ci.cond_enable) {
      if (!ci.writes.empty()) {
        std::uint64_t rem = 0;
        for (std::size_t i = 0; i < ci.writes.size(); ++i) {
          rem = std::max(rem, ci.writes[i].total - s.writes[i].element);
        }
        block = rem > 0 ? rem - 1 : 0;
      } else if (!ci.reads.empty()) {
        std::uint64_t rem = 0;
        for (std::size_t i = 0; i < ci.reads.size(); ++i) {
          rem = std::max(rem, ci.reads[i].total - s.reads[i].element);
        }
        reads_settle = std::max<std::uint64_t>(rem, 1);
        block = reads_settle + drain_budget - drain - 1;
      }
    }
    block = std::min(block, options_.steady_block_override
                                ? options_.steady_block_override
                                : std::uint64_t{ci.steady_window});
    block = std::min(block, options_.max_cycles_per_instruction - cycle - 1);
    if (block > 0) {
      for (std::uint64_t b = 0; b < block; ++b) stepCycle();
      if (ci.writes.empty() && !ci.reads.empty() && block >= reads_settle) {
        drain += block - reads_settle + 1;
      }
      cycle += block;
      continue;
    }

    stepCycle();
    ++cycle;

    const bool cond_ok = !ci.cond_enable || cond_fired;
    if (!ci.writes.empty()) {
      bool writes_done = true;
      for (std::size_t i = 0; i < ci.writes.size(); ++i) {
        writes_done = writes_done && s.writes[i].element >= ci.writes[i].total;
      }
      completed = writes_done && cond_ok;
    } else if (!ci.reads.empty()) {
      bool reads_done = true;
      for (std::size_t i = 0; i < ci.reads.size(); ++i) {
        reads_done = reads_done && s.reads[i].element >= ci.reads[i].total;
      }
      if (reads_done && cond_ok) {
        completed = ++drain > drain_budget;
      }
    } else {
      completed = true;
    }
  }

  for (const arch::CacheId c : ci.swaps) {
    std::swap(caches_[static_cast<std::size_t>(c)][0],
              caches_[static_cast<std::size_t>(c)][1]);
  }

  stats.cycles = cycle;
  return stats;
}

BatchRunResult ReplicaBatch::run() {
  const int W = lanes_;
  const std::size_t n_fus = fu_launches_.size();
  BatchRunResult out;
  runs_.assign(static_cast<std::size_t>(W), RunStats{});
  for (RunStats& r : runs_) r.fu_launches.assign(n_fus, 0);
  std::fill(fu_launches_.begin(), fu_launches_.end(), 0);
  active_.assign(static_cast<std::size_t>(W), 1);
  int active_count = W;
  std::uint64_t executed = 0;

  // Lanes that left the batch in an earlier run stay scalar for good: their
  // continuation nodes already hold the lane's exact state, so each further
  // run (a new SPMD phase after restart()) simply executes on the reference
  // engine and reports that run's stats, like any scalar node would.
  for (int w = 0; w < W; ++w) {
    const auto lane = static_cast<std::size_t>(w);
    if (retired_[lane] == nullptr) continue;
    active_[lane] = 0;
    --active_count;
    RunStats cont = retired_[lane]->run();
    if (cont.instructions_executed > 0) ++out.drained_scalar;
    runs_[lane] = std::move(cont);
  }

  const auto forActive = [&](auto&& fn) {
    for (int w = 0; w < W; ++w) {
      if (active_[static_cast<std::size_t>(w)]) fn(w);
    }
  };
  // Retires lane `w` into a private scalar NodeSim that finishes the run on
  // the reference engine; the node also keeps the lane's final memory for
  // post-run readPlane/readCache.
  const auto retire = [&](int w, int lane_pc, bool lane_halted) {
    RunStats& r = runs_[static_cast<std::size_t>(w)];
    r.fu_launches = fu_launches_;
    auto node = extractLane(w, lane_pc, lane_halted, executed);
    RunStats cont = node->run();
    if (cont.instructions_executed > 0) ++out.drained_scalar;
    r.absorbContinuation(std::move(cont));
    retired_[static_cast<std::size_t>(w)] = std::move(node);
    active_[static_cast<std::size_t>(w)] = 0;
    --active_count;
  };

  const std::size_t program_size = program_ ? program_->size() : 0;
  if (program_size == 0 && !halted_) {
    // Degenerate case the scalar engine spins on deterministically; defer
    // to it wholesale rather than replicating the spin here.
    forActive([&](int w) { retire(w, pc_, halted_); });
    out.runs = std::move(runs_);
    return out;
  }

  while (active_count > 0) {
    if (halted_) {
      forActive([&](int w) {
        RunStats& r = runs_[static_cast<std::size_t>(w)];
        r.halted = true;
        r.fu_launches = fu_launches_;
        active_[static_cast<std::size_t>(w)] = 0;
      });
      break;
    }
    if (executed >= options_.max_instructions) {
      forActive([&](int w) {
        RunStats& r = runs_[static_cast<std::size_t>(w)];
        r.error = true;
        r.error_message = "instruction budget exhausted";
        r.fu_launches = fu_launches_;
        active_[static_cast<std::size_t>(w)] = 0;
      });
      break;
    }

    const int index = pc_;
    const auto slot = static_cast<std::size_t>(index);
    static const std::string kUnnamed;
    const std::string& name =
        slot < program_->names.size() ? program_->names[slot] : kUnnamed;
    InstrStats instr =
        executeCompiledBatch(program_->instrs[slot], index, name);
    ++executed;
    forActive([&](int w) {
      RunStats& r = runs_[static_cast<std::size_t>(w)];
      r.total_cycles += instr.cycles;
      r.total_flops += instr.flops;
      r.total_hazards += instr.hazards;
      ++r.instructions_executed;
      r.trace.push_back(instr);
    });
    if (instr.error) {
      // Shape-level faults hit every lockstep lane identically, exactly as
      // each scalar replica would fault on its own.  The shared sequencer
      // halts like NodeSim::run does on error, so a later restart()+run()
      // (the next SPMD phase) replays identically to scalar nodes restarted
      // after the same fault.
      halted_ = true;
      forActive([&](int w) {
        RunStats& r = runs_[static_cast<std::size_t>(w)];
        r.error = true;
        r.fault = instr.fault;
        r.error_message = instr.error_message;
        r.halted = true;
        r.fu_launches = fu_launches_;
        active_[static_cast<std::size_t>(w)] = 0;
      });
      break;
    }

    // --- Sequencer: per-lane only where a condition register is consulted
    // (mirrors NodeSim::applySequencer). ---
    const InstrPlan& plan = program_->plans[slot];
    // Lane outcome key: next pc, or -1 for halt.
    int uniform_key = -1;
    bool per_lane = false;
    switch (plan.seq_op) {
      case arch::SeqOp::kNext:
        uniform_key = index + 1;
        break;
      case arch::SeqOp::kJump:
        uniform_key = plan.seq_target;
        break;
      case arch::SeqOp::kBranchIf:
      case arch::SeqOp::kBranchNot:
        per_lane = true;
        break;
      case arch::SeqOp::kLoop: {
        // Lockstep lanes share one counter; one decrement covers all.
        auto& counter = loop_counters_[slot];
        if (!counter.has_value()) counter = plan.seq_count;
        if (--*counter > 0) {
          uniform_key = plan.seq_target;
        } else {
          counter.reset();
          uniform_key = index + 1;
        }
        break;
      }
      case arch::SeqOp::kHalt:
        uniform_key = -1;
        break;
    }
    const auto boundsKey = [&](int pc) {
      return pc < 0 || pc >= static_cast<int>(program_size) ? -1 : pc;
    };
    if (!per_lane) {
      if (uniform_key != -1) uniform_key = boundsKey(uniform_key);
      if (uniform_key == -1) {
        halted_ = true;
      } else {
        pc_ = uniform_key;
      }
      continue;
    }

    // Per-lane branch: partition active lanes by outcome.
    const std::uint8_t* regs =
        cond_.data() + static_cast<std::size_t>(plan.seq_cond_reg) *
                           static_cast<std::size_t>(W);
    int keys[2] = {0, 0};
    int counts[2] = {0, 0};
    int n_keys = 0;
    std::vector<int> lane_key(static_cast<std::size_t>(W), -1);
    forActive([&](int w) {
      const bool taken = plan.seq_op == arch::SeqOp::kBranchIf
                             ? regs[w] != 0
                             : regs[w] == 0;
      const int key = boundsKey(taken ? plan.seq_target : index + 1);
      lane_key[static_cast<std::size_t>(w)] = key;
      for (int i = 0; i < n_keys; ++i) {
        if (keys[i] == key) {
          ++counts[i];
          return;
        }
      }
      keys[n_keys] = key;
      counts[n_keys] = 1;
      ++n_keys;
    });
    if (n_keys == 1) {
      if (keys[0] == -1) {
        halted_ = true;
      } else {
        pc_ = keys[0];
      }
      continue;
    }
    // Keep the largest live group in the batch (ties favour the group seen
    // first, i.e. containing the lowest lane index); every other lane
    // leaves for the scalar engine.
    int keep = -1;
    int keep_count = -1;
    for (int i = 0; i < n_keys; ++i) {
      if (keys[i] != -1 && counts[i] > keep_count) {
        keep = keys[i];
        keep_count = counts[i];
      }
    }
    forActive([&](int w) {
      const int key = lane_key[static_cast<std::size_t>(w)];
      if (key == keep) return;
      retire(w, key == -1 ? index : key, key == -1);
    });
    if (keep == -1) break;  // every lane halted or left the batch
    pc_ = keep;
  }

  out.runs = std::move(runs_);
  return out;
}

}  // namespace nsc::sim
