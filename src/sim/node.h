// NodeSim: cycle-level simulator of one Navier-Stokes Computer node.
//
// The NSC was never completed; this simulator is the substitute backend
// (see DESIGN.md, Section 2).  It executes the microcode produced by
// mc::Generator — decoding the same bit fields — and models, per cycle:
//
//   * 32 functional units with per-op pipeline latencies, register-file
//     constant supply, circular-queue delays, and accumulator feedback;
//   * the crossbar switch network (one-cycle hop, registered);
//   * 16 memory-plane DMA engines with two-level strided addressing;
//   * 16 double-buffered caches;
//   * 2 shift/delay units re-forming one stream into delayed copies;
//   * the condition latch, completion detection ("an elaborate interrupt
//     scheme is used to signal pipeline completions"), and the central
//     sequencer (next/jump/branch/loop/halt).
//
// Programs load as an immutable sim::CompiledProgram (decode + lowering run
// once; SPMD systems share one image across all nodes).  Two engines
// execute it: the compiled engine (default) steps pre-resolved instruction
// images in blocked fill/steady/drain form; the legacy interpreter
// (NodeOptions::use_compiled = false) re-walks the decoded plans per cycle
// and is kept as the semantic reference — both produce bit-identical
// InstrStats and memory contents (test_compiled.cpp golden tests).
//
// Determinism: the simulator is single-threaded and fully deterministic;
// all state is reset per instruction except memory planes, caches,
// condition registers, loop counters, and register-file images.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "microcode/generator.h"
#include "sim/compiled.h"
#include "sim/stats.h"
#include "sim/token.h"

namespace nsc::sim {

// One cycle of observable dataflow, for the visual debugger (paper,
// Section 6: "each new instruction would display the corresponding pipeline
// diagram, annotated to show data values flowing through the pipeline").
struct TraceFrame {
  int instruction = 0;
  std::uint64_t cycle = 0;
  // Token per switch source endpoint, indexed like Machine::sources().
  std::vector<Token> source_tokens;
};
using TraceSink = std::function<void(const TraceFrame&)>;

struct NodeOptions {
  std::uint64_t max_cycles_per_instruction = 64ull * 1024 * 1024;
  std::uint64_t max_instructions = 1ull << 20;
  // false selects the legacy per-cycle interpreter (semantic reference for
  // the compiled engine; same results, slower).
  bool use_compiled = true;
  // Nonzero pins the compiled engine's steady-state block length, ignoring
  // the per-instruction verifier-proven window (bench/testing knob; 64
  // reproduces the legacy fixed block exactly).
  std::uint64_t steady_block_override = 0;
};

class NodeSim {
 public:
  using Options = NodeOptions;

  explicit NodeSim(const arch::Machine& machine, Options options = {});

  const arch::Machine& machine() const { return machine_; }

  // Compiles microcode + register-file images, loads the result, and
  // resets the sequencer.  For many nodes running the same executable,
  // compile once and use the shared overload instead.
  void load(const mc::Executable& exe);

  // Loads an already-compiled program (shared, immutable).  All SPMD nodes
  // of a system load the same image; nothing is copied per node.
  void load(std::shared_ptr<const CompiledProgram> program);

  const std::shared_ptr<const CompiledProgram>& program() const {
    return program_;
  }

  // ---- Memory access (host/loader side) ----
  void writePlane(arch::PlaneId plane, std::uint64_t base,
                  std::span<const double> values);
  std::vector<double> readPlane(arch::PlaneId plane, std::uint64_t base,
                                std::uint64_t count) const;
  // Copy-free variant: fills `out` (out.size() words starting at `base`),
  // zero-filling words beyond the simulated backing store.
  void readPlaneInto(arch::PlaneId plane, std::uint64_t base,
                     std::span<double> out) const;
  double readPlaneWord(arch::PlaneId plane, std::uint64_t addr) const;
  void fillPlane(arch::PlaneId plane, double value);

  void writeCache(arch::CacheId cache, int buffer, std::uint64_t base,
                  std::span<const double> values);
  std::vector<double> readCache(arch::CacheId cache, int buffer,
                                std::uint64_t base, std::uint64_t count) const;
  void readCacheInto(arch::CacheId cache, int buffer, std::uint64_t base,
                     std::span<double> out) const;

  bool cond(int reg) const { return cond_regs_.at(static_cast<std::size_t>(reg)); }
  int pc() const { return pc_; }
  bool halted() const { return halted_; }

  // Executes the instruction at pc and advances control flow.  Returns the
  // stats for that instruction (error flag set on timeout/bad microcode).
  InstrStats stepInstruction();

  // Runs from the current pc until halt, error, or the instruction budget.
  RunStats run();

  // Re-arms the sequencer at instruction 0 without touching memory.
  void restart();

  // ---- Durable-state hand-off (service durability layer) ----
  //
  // Everything that survives between instructions and is observable by a
  // later request: plane/cache memory images, condition registers, and the
  // sequencer position.  The loaded program is deliberately absent — it is
  // immutable, shared, and re-resolved through the compiled-program cache
  // by the next load(); loop counters are re-armed by load() as well.
  struct Snapshot {
    std::vector<std::vector<double>> planes;                // [plane][word]
    std::vector<std::vector<std::vector<double>>> caches;   // [cache][buf][w]
    std::vector<bool> cond_regs;
    int pc = 0;
    bool halted = false;
  };
  Snapshot snapshot() const;
  // Restores a snapshot taken from a node on the same machine config.  The
  // node afterwards has no loaded program (callers load before running,
  // exactly as the service request paths always do); memory reads and a
  // subsequent load+run behave bit-identically to the snapshotted node.
  void restoreSnapshot(Snapshot snapshot);

  void setTraceSink(TraceSink sink) { trace_ = std::move(sink); }

 private:
  // The SoA ensemble engine (sim/batch.h) extracts diverged lanes into
  // private NodeSims mid-run — an exact de-interleaved state hand-off.
  friend class ReplicaBatch;

  // Legacy per-cycle interpreter (semantic reference).
  InstrStats execute(const InstrPlan& plan, int instr_index,
                     const std::string& name);
  // Compiled engine: blocked fill/steady/drain over a lowered instruction
  // (defined in compiled_exec.cpp).
  InstrStats executeCompiled(const CompiledInstr& ci, int instr_index,
                             const std::string& name);
  void applySequencer(const InstrPlan& plan);
  // Grows a plane's simulated backing store to cover `needed` words
  // (geometric growth, capped at MachineConfig::sim_plane_words).
  void ensurePlaneSize(arch::PlaneId plane, std::uint64_t needed);

  const arch::Machine& machine_;
  Options options_;

  // Loaded program (shared, immutable; may be aliased by other nodes).
  std::shared_ptr<const CompiledProgram> program_;

  // Persistent machine state.
  std::vector<std::vector<double>> planes_;
  std::vector<std::vector<std::vector<double>>> caches_;  // [cache][buffer]
  std::vector<bool> cond_regs_;
  std::vector<std::optional<int>> loop_counters_;  // per instruction slot
  int pc_ = 0;
  bool halted_ = false;

  // Run accounting.
  std::vector<std::uint64_t> fu_launches_;

  // Reusable per-instruction execution state for the compiled engine; the
  // capacity survives across instructions so steady-state stepping never
  // allocates.
  struct Scratch {
    std::vector<Token> src_out;  // per switch source, this cycle
    std::vector<Token> dst_in;   // per switch destination (registered)
    std::vector<Token> arena;    // all FU pipe/queue + SD history rings
    struct FuRun {
      std::uint32_t pipe_pos = 0;
      std::uint32_t rfq_pos = 0;
      double acc = 0.0;
    };
    std::vector<FuRun> fu;
    struct DmaRun {
      std::uint64_t element = 0;
      std::uint64_t row = 0;
      std::uint64_t in_row = 0;
    };
    std::vector<DmaRun> reads;
    std::vector<DmaRun> writes;
    std::vector<std::uint32_t> sd_pos;
  };
  Scratch scratch_;

  TraceSink trace_;
};

}  // namespace nsc::sim
