// NodeSim: cycle-level simulator of one Navier-Stokes Computer node.
//
// The NSC was never completed; this simulator is the substitute backend
// (see DESIGN.md, Section 2).  It executes the microcode produced by
// mc::Generator — decoding the same bit fields — and models, per cycle:
//
//   * 32 functional units with per-op pipeline latencies, register-file
//     constant supply, circular-queue delays, and accumulator feedback;
//   * the crossbar switch network (one-cycle hop, registered);
//   * 16 memory-plane DMA engines with two-level strided addressing;
//   * 16 double-buffered caches;
//   * 2 shift/delay units re-forming one stream into delayed copies;
//   * the condition latch, completion detection ("an elaborate interrupt
//     scheme is used to signal pipeline completions"), and the central
//     sequencer (next/jump/branch/loop/halt).
//
// Determinism: the simulator is single-threaded and fully deterministic;
// all state is reset per instruction except memory planes, caches,
// condition registers, loop counters, and register-file images.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "arch/microword_spec.h"
#include "microcode/generator.h"
#include "sim/stats.h"
#include "sim/token.h"

namespace nsc::sim {

// One cycle of observable dataflow, for the visual debugger (paper,
// Section 6: "each new instruction would display the corresponding pipeline
// diagram, annotated to show data values flowing through the pipeline").
struct TraceFrame {
  int instruction = 0;
  std::uint64_t cycle = 0;
  // Token per switch source endpoint, indexed like Machine::sources().
  std::vector<Token> source_tokens;
};
using TraceSink = std::function<void(const TraceFrame&)>;

struct NodeOptions {
  std::uint64_t max_cycles_per_instruction = 64ull * 1024 * 1024;
  std::uint64_t max_instructions = 1ull << 20;
};

class NodeSim {
 public:
  using Options = NodeOptions;

  explicit NodeSim(const arch::Machine& machine, Options options = {});

  const arch::Machine& machine() const { return machine_; }

  // Loads microcode + register-file images and resets the sequencer.
  void load(const mc::Executable& exe);

  // ---- Memory access (host/loader side) ----
  void writePlane(arch::PlaneId plane, std::uint64_t base,
                  std::span<const double> values);
  std::vector<double> readPlane(arch::PlaneId plane, std::uint64_t base,
                                std::uint64_t count) const;
  double readPlaneWord(arch::PlaneId plane, std::uint64_t addr) const;
  void fillPlane(arch::PlaneId plane, double value);

  void writeCache(arch::CacheId cache, int buffer, std::uint64_t base,
                  std::span<const double> values);
  std::vector<double> readCache(arch::CacheId cache, int buffer,
                                std::uint64_t base, std::uint64_t count) const;

  bool cond(int reg) const { return cond_regs_.at(static_cast<std::size_t>(reg)); }
  int pc() const { return pc_; }
  bool halted() const { return halted_; }

  // Executes the instruction at pc and advances control flow.  Returns the
  // stats for that instruction (error flag set on timeout/bad microcode).
  InstrStats stepInstruction();

  // Runs from the current pc until halt, error, or the instruction budget.
  RunStats run();

  // Re-arms the sequencer at instruction 0 without touching memory.
  void restart();

  void setTraceSink(TraceSink sink) { trace_ = std::move(sink); }

 private:
  struct FuPlan {
    bool enabled = false;
    arch::OpCode op = arch::OpCode::kNop;
    arch::InputSelect in_a = arch::InputSelect::kNone;
    arch::InputSelect in_b = arch::InputSelect::kNone;
    arch::RfMode rf_mode = arch::RfMode::kOff;
    int rf_delay = 0;
    int rf_delay_port = 0;
    double rf_value = 0.0;  // constant or accumulator seed
    int latency = 1;
    bool counts_flop = false;
    int arity = 0;
  };
  struct DmaPlan {
    int mode = 0;  // 0 idle, 1 read, 2 write (caches: bit0 read, bit1 fill)
    std::uint64_t base = 0;
    std::int64_t stride = 1;
    std::uint64_t count = 0;
    std::uint64_t count2 = 1;
    std::int64_t stride2 = 0;
    int read_buffer = 0;
    bool swap = false;
  };
  struct SdPlan {
    bool enabled = false;
    std::vector<int> taps;
  };
  struct InstrPlan {
    std::vector<FuPlan> fu;
    // Switch: dense source index + 1 per destination (0 = unrouted).
    std::vector<int> route;
    std::vector<DmaPlan> plane;
    std::vector<DmaPlan> cache;
    std::vector<SdPlan> sd;
    bool cond_enable = false;
    int cond_src_fu = 0;
    int cond_reg = 0;
    arch::SeqOp seq_op = arch::SeqOp::kNext;
    int seq_target = 0;
    int seq_cond_reg = 0;
    int seq_count = 0;
    bool has_writes = false;
    bool has_reads = false;
  };

  InstrPlan decode(const common::BitVector& word) const;
  InstrStats execute(const InstrPlan& plan, int instr_index,
                     const std::string& name);
  void applySequencer(const InstrPlan& plan);

  const arch::Machine& machine_;
  arch::MicrowordSpec spec_;
  Options options_;

  // Loaded program.
  std::vector<InstrPlan> plans_;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> rf_images_;  // per FU

  // Persistent machine state.
  std::vector<std::vector<double>> planes_;
  std::vector<std::vector<std::vector<double>>> caches_;  // [cache][buffer]
  std::vector<bool> cond_regs_;
  std::vector<std::optional<int>> loop_counters_;  // per instruction slot
  int pc_ = 0;
  bool halted_ = false;

  // Run accounting.
  std::vector<std::uint64_t> fu_launches_;

  TraceSink trace_;
};

}  // namespace nsc::sim
