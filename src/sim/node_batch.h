// NodeBatch: structure-of-arrays batched execution of one SPMD phase — the
// W lanes of a ReplicaBatch reinterpreted as W hypercube *nodes* sharing
// one CompiledProgram, not W ensemble replicas.
//
// The paper's machine is SPMD: every node of a HypercubeSystem phase runs
// the same instruction stream over its own slab of data, which is exactly
// the execution shape sim/batch.h vectorizes.  A NodeBatch owns one lane
// group of a batched system (nodes [base, base + lanes)): per-node planes,
// caches, and condition registers live address-major in SoA columns, one
// shape copy of every token stream steps once per cycle, and the value
// loops advance all W nodes together — a d-dimensional phase becomes
// ceil(2^d / W) batch steps instead of 2^d scalar node sweeps.
//
// What nodes need that replicas never did is *phase structure*:
//   * restart() re-arms the shared sequencer between compute phases
//     (NodeSim::restart applied to every lane at once);
//   * runPhase() is re-runnable — each call reports exactly that phase's
//     per-node RunStats, bit-identical to 2^d scalar NodeSim::run calls;
//   * per-lane exchange staging — readPlaneInto/writePlane gather and
//     scatter halo vectors lane-major between the SoA columns and the
//     router's staging buffer, so sendVector works unchanged on batched
//     systems (HypercubeSystem routes its per-node facade through here).
//
// The divergence contract is inherited from ReplicaBatch: nodes run in
// lockstep until a branch consults condition registers that disagree, at
// which point the minority lanes retire into exact scalar NodeSim
// continuations and stay scalar for every later phase.  Shape-level faults
// (DMA bounds, timeouts) hit all lockstep lanes identically.  Either way,
// SystemStats / InstrStats / plane contents match scalar execution bit for
// bit (golden + property tested).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/machine.h"
#include "sim/batch.h"
#include "sim/compiled.h"
#include "sim/node.h"
#include "sim/stats.h"

namespace nsc::sim {

class NodeBatch {
 public:
  // `lanes` hypercube nodes stepped as one SoA group (clamped to
  // ReplicaBatch::kMaxLanes).
  NodeBatch(const arch::Machine& machine, int lanes,
            NodeSim::Options options = {})
      : batch_(machine, lanes, options) {}

  int lanes() const { return batch_.lanes(); }

  // Loads the shared SPMD image (immutable, typically aliased by every
  // group of the system) and re-arms the sequencer; node memory is
  // untouched, like NodeSim::load on each member node.
  void load(std::shared_ptr<const CompiledProgram> program) {
    batch_.load(std::move(program));
  }

  // Re-arms the sequencer for the next compute phase without touching node
  // memory; previously retired nodes restart their scalar continuations.
  void restart() { batch_.restart(); }

  // Runs one compute phase: every node from the current pc to halt / error
  // / budget.  runs[w] is node lane w's stats for this phase only,
  // bit-identical to a scalar NodeSim phase; drained_scalar counts lanes
  // that executed on the scalar engine (divergence retirements plus lanes
  // already retired in an earlier phase).
  BatchRunResult runPhase() { return batch_.run(); }

  // ---- Per-node host memory access (scalar-engine semantics per lane;
  // exchange staging + problem seeding) ----
  void writePlane(int lane, arch::PlaneId plane, std::uint64_t base,
                  std::span<const double> values) {
    batch_.writePlane(lane, plane, base, values);
  }
  void writeCache(int lane, arch::CacheId cache, int buffer,
                  std::uint64_t base, std::span<const double> values) {
    batch_.writeCache(lane, cache, buffer, base, values);
  }
  std::vector<double> readPlane(int lane, arch::PlaneId plane,
                                std::uint64_t base, std::uint64_t count) const {
    return batch_.readPlane(lane, plane, base, count);
  }
  std::vector<double> readCache(int lane, arch::CacheId cache, int buffer,
                                std::uint64_t base, std::uint64_t count) const {
    return batch_.readCache(lane, cache, buffer, base, count);
  }
  void readPlaneInto(int lane, arch::PlaneId plane, std::uint64_t base,
                     std::span<double> out) const {
    batch_.readPlaneInto(lane, plane, base, out);
  }

  // The seeding view of one node (EnsembleOptions-style init callbacks and
  // cfd loaders write through the ReplicaStore interface).
  ReplicaBatch::LaneStore laneStore(int lane) {
    return ReplicaBatch::LaneStore(batch_, lane);
  }

 private:
  ReplicaBatch batch_;
};

// Resolves the effective SPMD node-lane width: an explicit request >= 1
// wins (clamped to ReplicaBatch::kMaxLanes), else the NSC_NODE_LANES
// environment variable, else kDefaultNodeLanes.  1 selects the scalar
// per-node path.
inline constexpr int kDefaultNodeLanes = 8;
int resolveNodeLanes(int requested);

}  // namespace nsc::sim
