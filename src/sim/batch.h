// ReplicaBatch: structure-of-arrays batched execution of one CompiledProgram
// over W replica lanes (ensembles as the vector axis).
//
// runEnsemble replicas execute the *same* compiled instruction stream over
// different data.  In this machine the timing of every token — validity,
// last-element marks, DMA cursor positions, ring offsets, launch decisions,
// completion interrupts — is data-independent: only token *values*,
// accumulator contents, and latched condition booleans depend on the data.
// ReplicaBatch exploits that split.  Per-node state is packed as
// structure-of-arrays (a plane word `addr` holds lanes at
// `mem[addr * W + w]`), one *shape* copy of every token stream is stepped
// exactly as the scalar compiled engine does (compiled_exec.cpp), and only
// the value arithmetic runs as contiguous W-wide inner loops — no per-lane
// dispatch, auto-vectorizable, one CompiledInstr stepping all lanes per
// cycle inside the verifier-proven steady blocks.
//
// Lanes therefore run in exact lockstep until the *sequencer* consults a
// condition register (kBranchIf / kBranchNot) whose per-lane values
// disagree.  At that instruction boundary the batch keeps the largest
// agreeing lane group and retires every other lane into a private scalar
// NodeSim — seeded with an exact de-interleaved copy of the lane's memory,
// condition registers, and loop counters — which finishes the run on the
// reference engine.  Faults (compile-time DMA bounds, cycle timeouts) are
// shape-level and hit every lockstep lane identically, exactly as the same
// replicas would fault one by one on the scalar engine.  The golden tests
// in test_compiled.cpp / test_workbench.cpp pin every lane's InstrStats,
// fu_launches, planes, and caches bit-identical to a scalar NodeSim run.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "sim/compiled.h"
#include "sim/node.h"
#include "sim/stats.h"
#include "sim/token.h"

namespace nsc::sim {

// Host-side seeding interface over one replica's memory, implemented by
// both execution paths (a scalar NodeSim and one lane of a ReplicaBatch),
// so a single per-replica init callback seeds either engine identically.
class ReplicaStore {
 public:
  virtual void writePlane(arch::PlaneId plane, std::uint64_t base,
                          std::span<const double> values) = 0;
  virtual void writeCache(arch::CacheId cache, int buffer, std::uint64_t base,
                          std::span<const double> values) = 0;

 protected:
  ~ReplicaStore() = default;
};

// Adapter: a NodeSim as a ReplicaStore (the scalar ensemble path).
class NodeReplicaStore final : public ReplicaStore {
 public:
  explicit NodeReplicaStore(NodeSim& node) : node_(node) {}
  void writePlane(arch::PlaneId plane, std::uint64_t base,
                  std::span<const double> values) override {
    node_.writePlane(plane, base, values);
  }
  void writeCache(arch::CacheId cache, int buffer, std::uint64_t base,
                  std::span<const double> values) override {
    node_.writeCache(cache, buffer, base, values);
  }

 private:
  NodeSim& node_;
};

struct BatchRunResult {
  std::vector<RunStats> runs;  // runs[w] is lane w's full-run stats
  // Lanes that left the batch at a divergence point and executed at least
  // one instruction on the scalar reference engine.
  int drained_scalar = 0;
};

class ReplicaBatch {
 public:
  static constexpr int kMaxLanes = 64;

  ReplicaBatch(const arch::Machine& machine, int lanes,
               NodeSim::Options options = {});

  int lanes() const { return lanes_; }

  // Loads a compiled program (shared, immutable) and re-arms the sequencer;
  // lane memory is untouched, like NodeSim::load.  Lanes already retired to
  // scalar continuation nodes load the same image (with a fresh instruction
  // budget), exactly as per-node load would.
  void load(std::shared_ptr<const CompiledProgram> program);

  // Re-arms the sequencer at instruction 0 for the next phase without
  // touching lane memory — NodeSim::restart applied to every lane at once
  // (pc, halt flag, condition registers, loop counters).  Retired lanes
  // restart their scalar continuation nodes with the full per-run
  // instruction budget restored, exactly like a scalar node re-entering a
  // phase; the SPMD phase driver (sim/node_batch.h) calls this between
  // compute phases.
  void restart();

  // ---- Per-lane host memory access (scalar-engine semantics per lane) ----
  void writePlane(int lane, arch::PlaneId plane, std::uint64_t base,
                  std::span<const double> values);
  void writeCache(int lane, arch::CacheId cache, int buffer,
                  std::uint64_t base, std::span<const double> values);
  std::vector<double> readPlane(int lane, arch::PlaneId plane,
                                std::uint64_t base, std::uint64_t count) const;
  // Copy-free gather of one lane's plane words (scalar readPlaneInto
  // semantics: zero-fill beyond the lane's backing store) — the exchange
  // staging path of batched hypercube systems reads halo vectors this way.
  void readPlaneInto(int lane, arch::PlaneId plane, std::uint64_t base,
                     std::span<double> out) const;
  std::vector<double> readCache(int lane, arch::CacheId cache, int buffer,
                                std::uint64_t base, std::uint64_t count) const;
  // The seeding view of one lane (for EnsembleOptions::init callbacks).
  class LaneStore final : public ReplicaStore {
   public:
    LaneStore(ReplicaBatch& batch, int lane) : batch_(batch), lane_(lane) {}
    void writePlane(arch::PlaneId plane, std::uint64_t base,
                    std::span<const double> values) override {
      batch_.writePlane(lane_, plane, base, values);
    }
    void writeCache(arch::CacheId cache, int buffer, std::uint64_t base,
                    std::span<const double> values) override {
      batch_.writeCache(lane_, cache, buffer, base, values);
    }

   private:
    ReplicaBatch& batch_;
    int lane_;
  };

  // Runs every lane from the current pc to halt / error / budget, batched
  // while lanes agree and scalar-drained after divergence.  Per-lane
  // results are index-stable.  Re-runnable across load()/restart()
  // boundaries: each call reports that run only, and lanes retired in an
  // earlier run continue on their scalar continuation nodes (counted in
  // BatchRunResult::drained_scalar), so a multi-phase SPMD driver can
  // restart() + run() per phase with per-phase stats identical to scalar
  // nodes.
  BatchRunResult run();

 private:
  // The SoA compiled engine: one CompiledInstr across all lanes (shape
  // stepped once, values W-wide); mirrors executeCompiled cycle for cycle.
  // Dispatches to the KW-specialized body so the common widths run with
  // compile-time-constant lane loops (fully unrolled / vectorized); KW = 0
  // is the runtime-width fallback for unusual lane counts.
  InstrStats executeCompiledBatch(const CompiledInstr& ci, int instr_index,
                                  const std::string& name);
  template <int KW>
  InstrStats executeCompiledBatchT(const CompiledInstr& ci, int instr_index,
                                   const std::string& name);
  // Cache buffers allocate lazily on first write (host or DMA); empty means
  // all-zero, exactly what a scalar NodeSim's pre-zeroed buffer reads as.
  std::vector<double>& cacheStore(std::size_t cache, std::size_t buffer);
  // Grows plane SoA backing (and each lane's scalar-equivalent logical
  // size) exactly like NodeSim::ensurePlaneSize does per replica.
  void ensurePlaneSize(arch::PlaneId plane, std::uint64_t needed);
  // De-interleaves lane `w` into a private NodeSim carrying the lane's
  // exact mid-run state; the node finishes the run on the scalar engine.
  std::unique_ptr<NodeSim> extractLane(int w, int lane_pc, bool lane_halted,
                                       std::uint64_t executed) const;

  const arch::Machine& machine_;
  NodeSim::Options options_;
  const int lanes_;

  std::shared_ptr<const CompiledProgram> program_;

  // ---- Persistent per-lane machine state, SoA ----
  // planes_[p] holds plane_words_[p] * W doubles, address-major.
  std::vector<std::vector<double>> planes_;
  std::vector<std::uint64_t> plane_words_;  // shared physical words per plane
  // What a scalar NodeSim's backing store size would be for this lane
  // (lane_plane_words_[p][w]); host reads/writes and lane extraction use it
  // so per-lane growth history stays observably identical to the scalar
  // engine.  DMA in-range checks may use the shared physical size: both
  // sizes cover every non-wrapped DMA address (plane_grows ran), so the
  // comparisons agree.
  std::vector<std::vector<std::uint64_t>> lane_plane_words_;
  // [c][buf]: SoA, lazily allocated (empty buffer == all zeros).
  std::vector<std::vector<std::vector<double>>> caches_;
  std::vector<std::uint8_t> cond_;  // [reg * W + w]
  std::vector<std::optional<int>> loop_counters_;  // shared: lanes in lockstep
  int pc_ = 0;
  bool halted_ = false;

  // Shared run accounting (identical for every lockstep lane).
  std::vector<std::uint64_t> fu_launches_;

  // Lanes retired mid-run (divergence): the NodeSim holds the lane's final
  // memory, so readPlane/readCache route through it after run().
  std::vector<std::unique_ptr<NodeSim>> retired_;
  std::vector<std::uint8_t> active_;
  std::vector<RunStats> runs_;

  // ---- Reusable per-instruction execution state ----
  // Shape arrays mirror NodeSim::Scratch one-for-one; `*_vals` carry the
  // per-lane token values (endpoint- or slot-major, W contiguous lanes).
  struct Scratch {
    std::vector<Token> src_out, dst_in, arena;
    std::vector<double> src_vals, dst_vals, arena_vals;
    struct FuRun {
      std::uint32_t pipe_pos = 0;
      std::uint32_t rfq_pos = 0;
    };
    std::vector<FuRun> fu;
    std::vector<double> acc;  // [fu_slot * W + w]
    struct DmaRun {
      std::uint64_t element = 0;
      std::uint64_t row = 0;
      std::uint64_t in_row = 0;
    };
    std::vector<DmaRun> reads, writes;
    std::vector<std::uint32_t> sd_pos;
    std::vector<double> a_vals, b_vals, res_vals;  // W-wide operand staging
  };
  Scratch scratch_;
};

// Resolves the effective ensemble lane width: an explicit request >= 1 wins
// (clamped to kMaxLanes), else the NSC_ENSEMBLE_LANES environment variable,
// else kDefaultEnsembleLanes.  1 selects the scalar per-replica path.
inline constexpr int kDefaultEnsembleLanes = 8;
int resolveEnsembleLanes(int requested);

}  // namespace nsc::sim
