#include "sim/verify.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/strings.h"
#include "sim/hypercube.h"

namespace nsc::sim {

using arch::Endpoint;
using common::strFormat;

const char* verifyCodeName(VerifyCode code) {
  switch (code) {
    case VerifyCode::kDmaBounds: return "dma-bounds";
    case VerifyCode::kStarvedWrite: return "starved-write";
    case VerifyCode::kUnderfedWrite: return "underfed-write";
    case VerifyCode::kStarvedCond: return "starved-cond";
    case VerifyCode::kRingOverSubscribed: return "ring-over-subscribed";
    case VerifyCode::kDmaClipped: return "dma-clipped";
    case VerifyCode::kFanoutOverSubscribed: return "fanout-over-subscribed";
    case VerifyCode::kUnroutedInput: return "unrouted-input";
    case VerifyCode::kUnconsumedRoute: return "unconsumed-route";
    case VerifyCode::kExchangeContention: return "exchange-contention";
    case VerifyCode::kExchangeDangling: return "exchange-dangling";
  }
  return "?";
}

FaultKind predictedFault(VerifyCode code) {
  switch (code) {
    case VerifyCode::kDmaBounds:
      return FaultKind::kDmaBounds;
    case VerifyCode::kStarvedWrite:
    case VerifyCode::kUnderfedWrite:
    case VerifyCode::kStarvedCond:
      // The instruction provably never completes; the engines hit the cycle
      // budget and report a timeout.
      return FaultKind::kTimeout;
    case VerifyCode::kRingOverSubscribed:
    case VerifyCode::kDmaClipped:
    case VerifyCode::kFanoutOverSubscribed:
    case VerifyCode::kUnroutedInput:
    case VerifyCode::kUnconsumedRoute:
    case VerifyCode::kExchangeContention:
    case VerifyCode::kExchangeDangling:
      return FaultKind::kNone;
  }
  return FaultKind::kNone;
}

namespace {

std::string windowText(const CycleWindow& w) {
  if (!w.any) return "never";
  if (w.unbounded()) return strFormat("cycles [%llu, inf)",
                                      static_cast<unsigned long long>(w.first));
  return strFormat("cycles [%llu, %llu]",
                   static_cast<unsigned long long>(w.first),
                   static_cast<unsigned long long>(w.last));
}

}  // namespace

std::string VerifyDiagnostic::format() const {
  std::string out = strFormat(
      "[%s] %s", severity == check::Severity::kError ? "error" : "warning",
      verifyCodeName(code));
  if (instruction >= 0) out += strFormat(" instr %d", instruction);
  if (endpoint.kind != arch::EndpointKind::kNone) {
    out += " @ " + endpoint.toString();
  }
  out += ": " + message;
  return out;
}

std::size_t VerifyReport::errorCount() const {
  std::size_t n = 0;
  for (const VerifyDiagnostic& d : diagnostics) {
    n += d.severity == check::Severity::kError ? 1 : 0;
  }
  return n;
}

std::size_t VerifyReport::warningCount() const {
  return diagnostics.size() - errorCount();
}

std::string VerifyReport::firstError() const {
  for (const VerifyDiagnostic& d : diagnostics) {
    if (d.severity == check::Severity::kError) return d.format();
  }
  return "";
}

check::DiagnosticList VerifyReport::toDiagnostics() const {
  check::DiagnosticList list;
  for (const VerifyDiagnostic& d : diagnostics) {
    check::Rule rule = check::Rule::kDmaRange;
    switch (d.code) {
      case VerifyCode::kDmaBounds:
      case VerifyCode::kDmaClipped: rule = check::Rule::kDmaRange; break;
      case VerifyCode::kStarvedWrite: rule = check::Rule::kMissingDriver; break;
      case VerifyCode::kUnderfedWrite: rule = check::Rule::kStreamLength; break;
      case VerifyCode::kStarvedCond: rule = check::Rule::kCondSource; break;
      case VerifyCode::kRingOverSubscribed:
        rule = d.endpoint.kind == arch::EndpointKind::kSdOutput
                   ? check::Rule::kSdConfig
                   : check::Rule::kRfDelayRange;
        break;
      case VerifyCode::kFanoutOverSubscribed:
        rule = check::Rule::kFanoutLimit;
        break;
      case VerifyCode::kUnroutedInput: rule = check::Rule::kMissingDriver; break;
      case VerifyCode::kUnconsumedRoute:
        rule = check::Rule::kDanglingOutput;
        break;
      case VerifyCode::kExchangeContention:
        rule = check::Rule::kPlaneContention;
        break;
      case VerifyCode::kExchangeDangling:
        rule = check::Rule::kDanglingOutput;
        break;
    }
    list.add(rule, d.severity, d.format(), d.instruction);
  }
  return list;
}

std::string VerifyReport::format() const {
  std::string out;
  for (const VerifyDiagnostic& d : diagnostics) {
    out += d.format();
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exact valid-window dataflow analysis.
//
// Every stream in the node is contiguous by construction: a DMA read engine
// emits one valid token per cycle from cycle 0 until it runs dry (tagging
// the final token), constants and accumulator feedback never lapse, and the
// combinators — a registered switch hop (+1 cycle), a delay queue or
// shift/delay tap (+depth), an FU pipeline (+latency), a launch gate (the
// intersection of the wired operand windows), an accumulator emit (the
// singleton at the stream's tagged end) — all map contiguous windows to
// contiguous windows.  So a per-endpoint CycleWindow is an *exact* model of
// the interpreter, not an approximation, and the analysis is a least
// fixpoint: start every window empty and re-apply the transfer functions
// until nothing changes.  Shift and intersection are both strict in the
// empty window, so any dependence cycle through the switch stays empty
// (matching the engines: a loop with no external source never carries a
// valid token), and acyclic parts stabilize in at most graph-depth
// iterations.
// ---------------------------------------------------------------------------

namespace {

CycleWindow shiftWindow(CycleWindow w, std::uint64_t by) {
  if (!w.any) return w;
  w.first += by;
  if (w.last != CycleWindow::kForever) w.last += by;
  return w;
}

// The launch gate: an FU fires when every wired operand is valid, and the
// result's stream-end tag is the OR of the wired operands' tags.
CycleWindow intersectWindows(const CycleWindow& a, const CycleWindow& b) {
  CycleWindow out;
  if (!a.any || !b.any) return out;
  out.first = std::max(a.first, b.first);
  out.last = std::min(a.last, b.last);
  if (out.last != CycleWindow::kForever && out.first > out.last) return out;
  out.any = true;
  out.tagged = (a.tagged && a.last == out.last) ||
               (b.tagged && b.last == out.last);
  return out;
}

struct WindowState {
  std::vector<CycleWindow> src;  // index-parallel with machine.sources()
  std::vector<CycleWindow> dst;  // index-parallel with machine.destinations()
  bool changed = false;

  CycleWindow srcAt(std::int32_t i) const {
    return i >= 0 && static_cast<std::size_t>(i) < src.size()
               ? src[static_cast<std::size_t>(i)]
               : CycleWindow{};
  }
  CycleWindow dstAt(std::int32_t i) const {
    return i >= 0 && static_cast<std::size_t>(i) < dst.size()
               ? dst[static_cast<std::size_t>(i)]
               : CycleWindow{};
  }
  void setSrc(std::int32_t i, const CycleWindow& w) {
    if (i < 0 || static_cast<std::size_t>(i) >= src.size()) return;
    if (src[static_cast<std::size_t>(i)] == w) return;
    src[static_cast<std::size_t>(i)] = w;
    changed = true;
  }
  void setDst(std::int32_t i, const CycleWindow& w) {
    if (i < 0 || static_cast<std::size_t>(i) >= dst.size()) return;
    if (dst[static_cast<std::size_t>(i)] == w) return;
    dst[static_cast<std::size_t>(i)] = w;
    changed = true;
  }
};

CycleWindow operandWindow(const WindowState& state, const CompiledFu& fu,
                          const CompiledOperand& op) {
  CycleWindow w;
  switch (op.kind) {
    case OperandKind::kSwitch:
      w = state.dstAt(op.index);
      break;
    case OperandKind::kChain:
      w = state.srcAt(op.index);
      break;
    case OperandKind::kConst:
    case OperandKind::kFeedback:
      w = CycleWindow{0, CycleWindow::kForever, true, false};
      break;
    case OperandKind::kNone:
      break;
  }
  if (op.queue && fu.rfq_len > 0) w = shiftWindow(w, fu.rfq_len);
  return w;
}

// One sweep of every transfer function, in the engines' phase order.
void sweepWindows(const CompiledInstr& ci, WindowState& state) {
  for (const CompiledDma& rd : ci.reads) {
    CycleWindow w;
    if (rd.total > 0) w = CycleWindow{0, rd.total - 1, true, true};
    state.setSrc(rd.endpoint, w);
  }
  for (const CompiledSd& sd : ci.sds) {
    const CycleWindow base = state.dstAt(sd.in_dst);
    for (const CompiledSdTap& tap : sd.taps) {
      // tap.back = hist_len - 1 - (delay % hist_len); the tap observes the
      // routed input stream delayed by (delay % hist_len) cycles.
      const std::uint32_t delay = sd.hist_len - 1 - tap.back % sd.hist_len;
      state.setSrc(tap.src, shiftWindow(base, delay));
    }
  }
  for (const CompiledFu& fu : ci.fus) {
    const CycleWindow a = operandWindow(state, fu, fu.a);
    const CycleWindow b = operandWindow(state, fu, fu.b);
    CycleWindow out;
    if (fu.is_accum) {
      // Emits exactly once: when the stream operand's tagged final element
      // flows through.  An endless or empty stream never emits.
      const CycleWindow& stream = fu.accum_stream_is_a ? a : b;
      if (stream.any && !stream.unbounded() && stream.tagged) {
        const std::uint64_t at = stream.last + fu.pipe_len;
        out = CycleWindow{at, at, true, true};
      }
    } else if (fu.a.wired) {
      // The engines gate launch on operand A's validity first; a unit with
      // A unwired never launches regardless of B.
      CycleWindow launch = a;
      if (fu.b.wired) launch = intersectWindows(launch, b);
      out = shiftWindow(launch, fu.pipe_len);
    }
    state.setSrc(fu.out_src, out);
  }
  for (const auto& [dst, src] : ci.routes) {
    state.setDst(dst, shiftWindow(state.srcAt(src), 1));  // registered hop
  }
}

}  // namespace

void ProgramVerifier::verifyInstr(const CompiledProgram& program,
                                  std::size_t index,
                                  VerifyReport& report) const {
  const arch::MachineConfig& cfg = machine_.config();
  const CompiledInstr& ci = program.instrs[index];
  InstrVerify& verdict = report.instrs[index];
  const int instr = static_cast<int>(index);

  const auto diag = [&](VerifyCode code, check::Severity severity,
                        Endpoint endpoint, CycleWindow window,
                        std::string message) {
    if (severity == check::Severity::kError) verdict.clean = false;
    report.diagnostics.push_back(VerifyDiagnostic{
        code, severity, instr, endpoint, window, std::move(message)});
  };
  const auto srcEndpoint = [&](std::int32_t i) {
    return i >= 0 && static_cast<std::size_t>(i) < machine_.sources().size()
               ? machine_.sources()[static_cast<std::size_t>(i)]
               : Endpoint{};
  };
  const auto dstEndpoint = [&](std::int32_t i) {
    return i >= 0 &&
                   static_cast<std::size_t>(i) < machine_.destinations().size()
               ? machine_.destinations()[static_cast<std::size_t>(i)]
               : Endpoint{};
  };

  // Compile-time faults recorded during lowering (DMA bounds) surface
  // before the instruction issues; nothing downstream of them runs.
  if (ci.fault.kind != FaultKind::kNone) {
    diag(VerifyCode::kDmaBounds, check::Severity::kError, ci.fault.endpoint,
         CycleWindow{}, ci.fault.message);
    return;
  }

  // Ring-capacity over-subscription: lowered queue and tap depths beyond
  // the hardware rings.  The simulator sizes its arenas from the program,
  // so these still execute deterministically — but no NSC node could run
  // them, which makes this an error (hardware-infeasible), not a warning.
  for (const CompiledFu& fu : ci.fus) {
    if (fu.rfq_len > static_cast<std::uint32_t>(cfg.rf_max_delay)) {
      diag(VerifyCode::kRingOverSubscribed, check::Severity::kError,
           Endpoint::fuInput(fu.fu, 0), CycleWindow{},
           strFormat("fu%d delay queue depth %u exceeds the register-file "
                     "ring (rf_max_delay = %d)",
                     fu.fu, fu.rfq_len, cfg.rf_max_delay));
    }
  }
  if (index < program.plans.size()) {
    const InstrPlan& plan = program.plans[index];
    for (std::size_t s = 0; s < plan.sd.size(); ++s) {
      if (!plan.sd[s].enabled) continue;
      for (std::size_t t = 0; t < plan.sd[s].taps.size(); ++t) {
        const int tap = plan.sd[s].taps[t];
        if (tap > cfg.sd_max_delay) {
          diag(VerifyCode::kRingOverSubscribed, check::Severity::kError,
               Endpoint::sdOutput(static_cast<int>(s), static_cast<int>(t)),
               CycleWindow{},
               strFormat("sd%zu tap %zu delay %d exceeds the history ring "
                         "(sd_max_delay = %d)",
                         s, t, tap, cfg.sd_max_delay));
        }
      }
    }
  }

  // DMA clipping (warnings): touched ranges the backing stores silently
  // absorb — reads return 0.0, writes are dropped.  Plane stores grow to
  // the positive high corner (or the instruction faults, handled above),
  // so only negative addresses clip there; caches are fixed-size.
  for (const std::vector<CompiledDma>* engines : {&ci.reads, &ci.writes}) {
    for (const CompiledDma& dma : *engines) {
      if (dma.total == 0) continue;
      const std::int64_t row =
          dma.stride * static_cast<std::int64_t>(dma.count - 1);
      const std::int64_t col =
          dma.stride2 * static_cast<std::int64_t>(dma.count2 - 1);
      const auto base = static_cast<std::int64_t>(dma.base);
      std::int64_t lo = base, hi = base;
      for (const std::int64_t corner : {base + row, base + col,
                                        base + row + col}) {
        lo = std::min(lo, corner);
        hi = std::max(hi, corner);
      }
      const bool is_read = engines == &ci.reads;
      const Endpoint at =
          is_read ? srcEndpoint(dma.endpoint) : dstEndpoint(dma.endpoint);
      if (lo < 0) {
        diag(VerifyCode::kDmaClipped, check::Severity::kWarning, at,
             CycleWindow{0, dma.total - 1, true, true},
             strFormat("%s DMA walks to negative word %lld; %s",
                       at.toString().c_str(), static_cast<long long>(lo),
                       is_read ? "reads return 0.0" : "writes are dropped"));
      }
      if (dma.is_cache &&
          static_cast<std::uint64_t>(hi) >= cfg.cacheWords()) {
        diag(VerifyCode::kDmaClipped, check::Severity::kWarning, at,
             CycleWindow{0, dma.total - 1, true, true},
             strFormat("%s DMA touches word %lld beyond the %llu-word cache "
                       "buffer; %s",
                       at.toString().c_str(), static_cast<long long>(hi),
                       static_cast<unsigned long long>(cfg.cacheWords()),
                       is_read ? "reads return 0.0" : "writes are dropped"));
      }
    }
  }

  // Switch-network shape warnings.
  std::map<std::int32_t, int> fanout;
  std::vector<char> routed(machine_.destinations().size(), 0);
  for (const auto& [dst, src] : ci.routes) {
    ++fanout[src];
    if (dst >= 0 && static_cast<std::size_t>(dst) < routed.size()) {
      routed[static_cast<std::size_t>(dst)] = 1;
    }
  }
  for (const auto& [src, count] : fanout) {
    if (count > cfg.max_switch_fanout) {
      diag(VerifyCode::kFanoutOverSubscribed, check::Severity::kWarning,
           srcEndpoint(src), CycleWindow{},
           strFormat("%s fans out to %d destinations (max_switch_fanout = %d)",
                     srcEndpoint(src).toString().c_str(), count,
                     cfg.max_switch_fanout));
    }
  }
  const auto isRouted = [&](std::int32_t d) {
    return d >= 0 && static_cast<std::size_t>(d) < routed.size() &&
           routed[static_cast<std::size_t>(d)] != 0;
  };
  std::vector<char> consumed(machine_.destinations().size(), 0);
  const auto consume = [&](std::int32_t d) {
    if (d >= 0 && static_cast<std::size_t>(d) < consumed.size()) {
      consumed[static_cast<std::size_t>(d)] = 1;
    }
  };
  for (const CompiledFu& fu : ci.fus) {
    for (const CompiledOperand* op : {&fu.a, &fu.b}) {
      if (op->kind != OperandKind::kSwitch) continue;
      consume(op->index);
      if (op->wired && !isRouted(op->index)) {
        diag(VerifyCode::kUnroutedInput, check::Severity::kWarning,
             dstEndpoint(op->index), CycleWindow{},
             strFormat("%s is wired but no switch route drives it",
                       dstEndpoint(op->index).toString().c_str()));
      }
    }
  }
  for (const CompiledSd& sd : ci.sds) {
    consume(sd.in_dst);
    if (!isRouted(sd.in_dst)) {
      diag(VerifyCode::kUnroutedInput, check::Severity::kWarning,
           dstEndpoint(sd.in_dst), CycleWindow{},
           strFormat("%s is enabled but no switch route drives it",
                     dstEndpoint(sd.in_dst).toString().c_str()));
    }
  }
  for (const CompiledDma& wr : ci.writes) consume(wr.endpoint);
  for (const auto& [dst, src] : ci.routes) {
    if (!consumed[static_cast<std::size_t>(dst)]) {
      diag(VerifyCode::kUnconsumedRoute, check::Severity::kWarning,
           dstEndpoint(dst), CycleWindow{},
           strFormat("route %s -> %s delivers tokens nothing consumes",
                     srcEndpoint(src).toString().c_str(),
                     dstEndpoint(dst).toString().c_str()));
    }
  }

  // Exact valid-window fixpoint over the instruction's dataflow graph.
  WindowState state;
  state.src.resize(machine_.sources().size());
  state.dst.resize(machine_.destinations().size());
  const std::size_t cap = state.src.size() + state.dst.size() + 8;
  bool converged = false;
  for (std::size_t iter = 0; iter < cap; ++iter) {
    state.changed = false;
    sweepWindows(ci, state);
    if (!state.changed) {
      converged = true;
      break;
    }
  }
  if (!converged) return;  // cannot happen (strict combinators); stay at 64

  // Starvation / underfeed proofs against the completion rules: a write
  // instruction completes only when every engine captured its programmed
  // element count, and an armed condition latch must observe a tagged
  // stream end.  Windows are exact, so a shortfall here is a proven
  // never-completes — the engines will burn the full cycle budget and
  // report a timeout.
  for (const CompiledDma& wr : ci.writes) {
    if (wr.total == 0) continue;
    const CycleWindow w = state.dstAt(wr.endpoint);
    if (!w.any) {
      diag(VerifyCode::kStarvedWrite, check::Severity::kError,
           dstEndpoint(wr.endpoint), w,
           strFormat("%s expects %llu elements but no valid token ever "
                     "arrives; the instruction can never complete",
                     dstEndpoint(wr.endpoint).toString().c_str(),
                     static_cast<unsigned long long>(wr.total)));
    } else if (!w.unbounded() && w.length() < wr.total) {
      diag(VerifyCode::kUnderfedWrite, check::Severity::kError,
           dstEndpoint(wr.endpoint), w,
           strFormat("%s expects %llu elements but only %llu arrive (%s); "
                     "the instruction can never complete",
                     dstEndpoint(wr.endpoint).toString().c_str(),
                     static_cast<unsigned long long>(wr.total),
                     static_cast<unsigned long long>(w.length()),
                     windowText(w).c_str()));
    }
  }
  if (ci.cond_enable && (!ci.reads.empty() || !ci.writes.empty())) {
    const CycleWindow w = state.srcAt(ci.cond_src);
    const bool fires = w.any && !w.unbounded() && w.tagged;
    if (!fires) {
      diag(VerifyCode::kStarvedCond, check::Severity::kError,
           srcEndpoint(ci.cond_src), w,
           strFormat("condition latch watches %s but the stream %s; the "
                     "instruction can never complete",
                     srcEndpoint(ci.cond_src).toString().c_str(),
                     !w.any ? "never carries a valid token"
                            : "never signals its end"));
    }
  }

  // Proven-safe steady-state window: the static distance to the earliest
  // cycle the completion rules could possibly fire.  Only derived for
  // clean, latch-free instructions; the engine's own per-block remaining-
  // element bound is still applied on top, so this is a cap, not a
  // schedule — and any cap at least as large as the legacy 64 leaves the
  // executed cycle sequence (hence all stats) bit-identical.
  if (!verdict.clean || ci.cond_enable) return;
  std::uint64_t horizon = 0;
  if (!ci.writes.empty()) {
    for (const CompiledDma& wr : ci.writes) {
      if (wr.total == 0) continue;
      const CycleWindow w = state.dstAt(wr.endpoint);
      if (!w.any) return;  // unreachable when clean; stay conservative
      horizon = std::max(horizon, w.first + wr.total);
    }
  } else if (!ci.reads.empty()) {
    const std::uint64_t drain_budget =
        64 + static_cast<std::uint64_t>(cfg.rf_max_delay) +
        static_cast<std::uint64_t>(cfg.sd_max_delay);
    std::uint64_t total = 0;
    for (const CompiledDma& rd : ci.reads) {
      total = std::max(total, rd.total);
    }
    horizon = total + drain_budget + 1;
  } else {
    return;  // control-only: completes after one cycle; 64 already covers it
  }
  horizon = std::min<std::uint64_t>(horizon, kMaxSteadyBlock);
  verdict.steady_window = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(horizon, kFallbackSteadyBlock));
}

VerifyReport ProgramVerifier::verify(const CompiledProgram& program) const {
  VerifyReport report;
  report.instrs.resize(program.instrs.size());
  for (std::size_t i = 0; i < program.instrs.size(); ++i) {
    verifyInstr(program, i, report);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Hypercube exchange-table analysis.
// ---------------------------------------------------------------------------

std::vector<VerifyDiagnostic> verifyExchangePlan(
    int dimension, const std::vector<ExchangeMessage>& messages) {
  std::vector<VerifyDiagnostic> out;
  const int nodes = 1 << dimension;
  // Directed link (a -> b) claimed by each message's e-cube path.
  std::map<std::pair<int, int>, std::vector<std::size_t>> links;
  for (std::size_t m = 0; m < messages.size(); ++m) {
    const ExchangeMessage& msg = messages[m];
    if (msg.src < 0 || msg.src >= nodes || msg.dst < 0 || msg.dst >= nodes) {
      VerifyDiagnostic d;
      d.code = VerifyCode::kExchangeContention;
      d.severity = check::Severity::kError;
      d.message = strFormat(
          "message %zu routes %d -> %d outside the %d-node hypercube", m,
          msg.src, msg.dst, nodes);
      out.push_back(std::move(d));
      continue;
    }
    const std::vector<int> path = HypercubeSystem::ecubePath(msg.src, msg.dst);
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      links[{path[h], path[h + 1]}].push_back(m);
    }
  }
  for (const auto& [link, users] : links) {
    if (users.size() < 2) continue;
    std::string who;
    for (std::size_t u : users) {
      if (!who.empty()) who += ", ";
      who += strFormat("%d->%d", messages[u].src, messages[u].dst);
    }
    VerifyDiagnostic d;
    d.code = VerifyCode::kExchangeContention;
    d.severity = check::Severity::kWarning;
    d.message = strFormat(
        "link %d -> %d is claimed by %zu concurrent messages (%s); the "
        "router cost model charges them as if the link were private",
        link.first, link.second, users.size(), who.c_str());
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<VerifyDiagnostic> verifyExchangeSchedule(
    int dimension, const std::vector<std::vector<ExchangeMessage>>& phases) {
  std::vector<VerifyDiagnostic> out;
  const int nodes = 1 << dimension;
  // received[n]: node n was the destination of some message in an already
  // verified (strictly earlier) phase.
  std::vector<std::uint8_t> received(static_cast<std::size_t>(nodes), 0);
  for (std::size_t p = 0; p < phases.size(); ++p) {
    // Per-phase routing analysis first; tag every finding with its phase so
    // a schedule-wide report reads like a per-instruction program report.
    std::vector<VerifyDiagnostic> phase_diags =
        verifyExchangePlan(dimension, phases[p]);
    for (VerifyDiagnostic& d : phase_diags) {
      d.instruction = static_cast<int>(p);
      out.push_back(std::move(d));
    }
    // Forward messages relay data delivered by an earlier phase; a forward
    // out of a node nothing has written to yet ships stale or zero halo
    // words at runtime, so the dependency failure is an error.
    for (std::size_t m = 0; m < phases[p].size(); ++m) {
      const ExchangeMessage& msg = phases[p][m];
      if (!msg.forward) continue;
      if (msg.src < 0 || msg.src >= nodes) continue;  // reported above
      if (received[static_cast<std::size_t>(msg.src)]) continue;
      VerifyDiagnostic d;
      d.code = VerifyCode::kExchangeDangling;
      d.severity = check::Severity::kError;
      d.instruction = static_cast<int>(p);
      d.message = strFormat(
          "phase %zu message %zu forwards %d -> %d, but no earlier phase "
          "delivered anything to node %d",
          p, m, msg.src, msg.dst, msg.src);
      out.push_back(std::move(d));
    }
    // This phase's deliveries become available to later phases only after
    // the phase barrier, so mark destinations once the whole phase is
    // checked.
    for (const ExchangeMessage& msg : phases[p]) {
      if (msg.dst < 0 || msg.dst >= nodes) continue;
      received[static_cast<std::size_t>(msg.dst)] = 1;
    }
  }
  return out;
}

}  // namespace nsc::sim
