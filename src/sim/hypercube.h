// Multi-node NSC: nodes "arranged in a hypercube configuration" whose
// "communication between nodes is handled by means of a hyperspace router"
// (paper, Sections 1-2).  The router's internals were never published; we
// model dimension-ordered (e-cube) wormhole routing with a startup cost,
// a per-hop cost, and a per-word streaming cost — the standard model for
// 1980s hypercubes — and document the parameters in DESIGN.md.
//
// Nodes execute their own microcode programs independently (each node has
// its own sequencer); the system tracks a phase-synchronous makespan:
// run-phase cost is the maximum node cycle count, exchange-phase cost is
// the maximum routed-message cost, matching barrier-style SPMD CFD codes.
//
// Execution engine: because the machine is SPMD (loadAll gives every node
// the same compiled image), the nodes of one compute phase are the same
// workload shape the SoA ensemble engine (sim/batch.h) vectorizes.  With
// node_lanes > 1 the system packs nodes into NodeBatch groups of that
// width — per-node planes/caches/condition registers interleaved
// address-major, one shared instruction stream stepped once per cycle for
// W nodes — and runPhase steps groups instead of nodes.  Exchange phases
// stage per-lane: sendVector gathers the source halo out of the SoA
// columns into the router scratch buffer and scatters it into the
// destination lane, so routing code and cost model are unchanged.  Nodes
// that diverge or fault mid-phase retire into exact scalar NodeSim
// continuations; results (SystemStats, planes, caches, faults) are
// bit-identical to scalar execution for every lane width.  node_lanes == 1
// selects the original per-node scalar path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/machine.h"
#include "exec/thread_pool.h"
#include "microcode/generator.h"
#include "sim/node.h"
#include "sim/node_batch.h"
#include "sim/stats.h"

namespace nsc::sim {

class CompiledProgramCache;

struct RouterOptions {
  std::uint64_t message_startup_cycles = 32;
  std::uint64_t hop_latency_cycles = 8;
  double words_per_cycle = 1.0;  // link bandwidth
};

struct SystemOptions {
  RouterOptions router{};
  NodeSim::Options node{};
  // SPMD lane width: how many hypercube nodes one SoA batch steps together
  // during a compute phase.  0 resolves through NSC_NODE_LANES (default
  // kDefaultNodeLanes); 1 forces the scalar per-node engine; any value is
  // clamped to the node count, so 1-node systems always run scalar.
  int node_lanes = 0;
};

struct SystemStats {
  std::vector<RunStats> node_stats;
  std::uint64_t compute_makespan_cycles = 0;  // sum over phases of max node
  std::uint64_t comm_cycles = 0;              // sum over exchange phases
  std::uint64_t total_flops = 0;
  bool error = false;
  std::string error_message;

  std::uint64_t makespanCycles() const {
    return compute_makespan_cycles + comm_cycles;
  }
  double aggregateMflops(double clock_mhz) const {
    const std::uint64_t cycles = makespanCycles();
    return cycles == 0 ? 0.0
                       : static_cast<double>(total_flops) * clock_mhz /
                             static_cast<double>(cycles);
  }
};

class HypercubeSystem {
 public:
  // dimension d gives 2^d nodes (the paper quotes a 64-node NSC, d = 6).
  // `pool` is the execution pool phase stepping runs on; nullptr means the
  // process-wide exec::ThreadPool::shared().  The pool outlives the system
  // and is reused across every phase — runPhase never creates threads.
  // `cache` is the compiled-program cache loadAll(exe) resolves images
  // through; nullptr means CompiledProgramCache::shared().
  HypercubeSystem(const arch::Machine& machine, int dimension,
                  SystemOptions options = {},
                  exec::ThreadPool* pool = nullptr,
                  CompiledProgramCache* cache = nullptr);

  exec::ThreadPool& pool() const { return *pool_; }

  int dimension() const { return dimension_; }
  int numNodes() const { return 1 << dimension_; }
  // Effective SPMD lane width (1 == scalar per-node engine).
  int nodeLanes() const { return node_lanes_; }

  // Direct node access is a scalar-mode facility (node_lanes() == 1):
  // batched nodes live as SoA lanes with no per-node NodeSim to hand out.
  // Throws std::out_of_range in batched mode; phase drivers should use the
  // engine-neutral facade below instead.
  NodeSim& node(int id) { return *nodes_.at(idx(id)); }
  const NodeSim& node(int id) const { return *nodes_.at(idx(id)); }

  // ---- Engine-neutral per-node memory facade ----
  // Scalar-engine semantics per node on either path (batched lanes gather /
  // scatter through the SoA columns; retired lanes route to their scalar
  // continuation nodes).  Used by exchange staging, problem seeding, and
  // result readback.
  void writePlane(int node, arch::PlaneId plane, std::uint64_t base,
                  std::span<const double> values);
  void writeCache(int node, arch::CacheId cache, int buffer,
                  std::uint64_t base, std::span<const double> values);
  std::vector<double> readPlane(int node, arch::PlaneId plane,
                                std::uint64_t base, std::uint64_t count) const;
  void readPlaneInto(int node, arch::PlaneId plane, std::uint64_t base,
                     std::span<double> out) const;
  std::vector<double> readCache(int node, arch::CacheId cache, int buffer,
                                std::uint64_t base, std::uint64_t count) const;
  // The ReplicaStore seeding view of one node, so per-node init code (cfd
  // problem loaders, ensemble-style callbacks) works on either engine.
  class NodeStore final : public ReplicaStore {
   public:
    NodeStore(HypercubeSystem& system, int node)
        : system_(system), node_(node) {}
    void writePlane(arch::PlaneId plane, std::uint64_t base,
                    std::span<const double> values) override {
      system_.writePlane(node_, plane, base, values);
    }
    void writeCache(arch::CacheId cache, int buffer, std::uint64_t base,
                    std::span<const double> values) override {
      system_.writeCache(node_, cache, buffer, base, values);
    }

   private:
    HypercubeSystem& system_;
    int node_;
  };
  NodeStore nodeStore(int node) { return NodeStore(*this, node); }

  // e-cube (dimension-ordered) routing: number of hops and the node path.
  static int hopCount(int a, int b);
  static std::vector<int> ecubePath(int a, int b);

  // Modelled cost (cycles) of routing `words` data between two nodes.
  std::uint64_t transferCycles(int src, int dst, std::uint64_t words) const;

  // Moves a vector between node memory planes through the router, charging
  // the modelled cost to the current exchange phase.  Returns the cost.
  std::uint64_t sendVector(int src_node, arch::PlaneId src_plane,
                           std::uint64_t src_base, std::uint64_t count,
                           int dst_node, arch::PlaneId dst_plane,
                           std::uint64_t dst_base);

  // Loads the same executable on every node (SPMD): resolves one immutable
  // compiled image through `cache` (first form: the cache this system was
  // constructed with) and every node (or node-lane group) shares it.
  void loadAll(const mc::Executable& exe);
  void loadAll(const mc::Executable& exe, CompiledProgramCache& cache);
  void loadAll(std::shared_ptr<const CompiledProgram> program);

  // Re-arms every node's sequencer for the next compute phase without
  // touching node memory (NodeSim::restart system-wide); multi-phase
  // drivers call this between runPhase calls on either engine.
  void restartAll();

  // Runs every node's program to halt (batched lane groups or scalar nodes,
  // in parallel on the shared pool); adds max(node cycles) to the compute
  // makespan and folds stats into `stats`.  Stats are folded on the calling
  // thread in node order, so the result is bit-identical for any pool
  // thread count — and for any lane width.
  void runPhase(SystemStats& stats);

  // Cumulative engine counters: nodes stepped inside SoA lane groups vs on
  // the scalar engine (scalar mode, or batched-mode lanes that diverged /
  // retired and drained scalar), summed over runPhase calls.
  std::uint64_t nodesBatched() const { return nodes_batched_; }
  std::uint64_t nodesScalar() const { return nodes_scalar_; }

  // Marks the start of an exchange phase: subsequent sendVector costs are
  // accumulated as max-over-destination-node, then folded at the next
  // endExchange().
  void beginExchange();
  void endExchange(SystemStats& stats);

 private:
  // Node ids are ints (hypercube addresses); containers want size_t.
  static constexpr std::size_t idx(int i) {
    return static_cast<std::size_t>(i);
  }
  // Batched mode: node id -> owning lane group / lane within it.  Groups
  // are contiguous id ranges of node_lanes_ nodes (the tail group may be
  // narrower if the width doesn't divide the node count).
  NodeBatch& group(int node) { return *groups_.at(idx(node / node_lanes_)); }
  const NodeBatch& group(int node) const {
    return *groups_.at(idx(node / node_lanes_));
  }
  int laneOf(int node) const { return node % node_lanes_; }

  const arch::Machine& machine_;
  int dimension_;
  RouterOptions router_;
  int node_lanes_;
  exec::ThreadPool* pool_;
  CompiledProgramCache* cache_;
  // Exactly one of these is populated: scalar mode owns per-node NodeSims,
  // batched mode owns SoA lane groups.
  std::vector<std::unique_ptr<NodeSim>> nodes_;
  std::vector<std::unique_ptr<NodeBatch>> groups_;
  std::uint64_t nodes_batched_ = 0;
  std::uint64_t nodes_scalar_ = 0;
  // Per-destination-node accumulated exchange cost in the open phase.
  std::vector<std::uint64_t> exchange_cost_;
  bool exchange_open_ = false;
  // Reusable staging buffer for sendVector (exchanges are single-threaded).
  std::vector<double> send_scratch_;
};

}  // namespace nsc::sim
