// Multi-node NSC: nodes "arranged in a hypercube configuration" whose
// "communication between nodes is handled by means of a hyperspace router"
// (paper, Sections 1-2).  The router's internals were never published; we
// model dimension-ordered (e-cube) wormhole routing with a startup cost,
// a per-hop cost, and a per-word streaming cost — the standard model for
// 1980s hypercubes — and document the parameters in DESIGN.md.
//
// Nodes execute their own microcode programs independently (each node has
// its own sequencer); the system tracks a phase-synchronous makespan:
// run-phase cost is the maximum node cycle count, exchange-phase cost is
// the maximum routed-message cost, matching barrier-style SPMD CFD codes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/machine.h"
#include "exec/thread_pool.h"
#include "microcode/generator.h"
#include "sim/node.h"
#include "sim/stats.h"

namespace nsc::sim {

class CompiledProgramCache;

struct RouterOptions {
  std::uint64_t message_startup_cycles = 32;
  std::uint64_t hop_latency_cycles = 8;
  double words_per_cycle = 1.0;  // link bandwidth
};

struct SystemStats {
  std::vector<RunStats> node_stats;
  std::uint64_t compute_makespan_cycles = 0;  // sum over phases of max node
  std::uint64_t comm_cycles = 0;              // sum over exchange phases
  std::uint64_t total_flops = 0;
  bool error = false;
  std::string error_message;

  std::uint64_t makespanCycles() const {
    return compute_makespan_cycles + comm_cycles;
  }
  double aggregateMflops(double clock_mhz) const {
    const std::uint64_t cycles = makespanCycles();
    return cycles == 0 ? 0.0
                       : static_cast<double>(total_flops) * clock_mhz /
                             static_cast<double>(cycles);
  }
};

class HypercubeSystem {
 public:
  // dimension d gives 2^d nodes (the paper quotes a 64-node NSC, d = 6).
  // `pool` is the execution pool node stepping runs on; nullptr means the
  // process-wide exec::ThreadPool::shared().  The pool outlives the system
  // and is reused across every phase — runPhase never creates threads.
  // `cache` is the compiled-program cache loadAll(exe) resolves images
  // through; nullptr means CompiledProgramCache::shared().
  HypercubeSystem(const arch::Machine& machine, int dimension,
                  RouterOptions router = {},
                  NodeSim::Options node_options = {},
                  exec::ThreadPool* pool = nullptr,
                  CompiledProgramCache* cache = nullptr);

  exec::ThreadPool& pool() const { return *pool_; }

  int dimension() const { return dimension_; }
  int numNodes() const { return 1 << dimension_; }
  NodeSim& node(int id) { return *nodes_.at(idx(id)); }
  const NodeSim& node(int id) const { return *nodes_.at(idx(id)); }

  // e-cube (dimension-ordered) routing: number of hops and the node path.
  static int hopCount(int a, int b);
  static std::vector<int> ecubePath(int a, int b);

  // Modelled cost (cycles) of routing `words` data between two nodes.
  std::uint64_t transferCycles(int src, int dst, std::uint64_t words) const;

  // Moves a vector between node memory planes through the router, charging
  // the modelled cost to the current exchange phase.  Returns the cost.
  std::uint64_t sendVector(int src_node, arch::PlaneId src_plane,
                           std::uint64_t src_base, std::uint64_t count,
                           int dst_node, arch::PlaneId dst_plane,
                           std::uint64_t dst_base);

  // Loads the same executable on every node (SPMD): resolves one immutable
  // compiled image through `cache` (first form: the cache this system was
  // constructed with) and every node shares it.
  void loadAll(const mc::Executable& exe);
  void loadAll(const mc::Executable& exe, CompiledProgramCache& cache);
  void loadAll(std::shared_ptr<const CompiledProgram> program);

  // Runs every node's program to halt (in parallel on the shared pool);
  // adds max(node cycles) to the compute makespan and folds stats into
  // `stats`.  Stats are folded on the calling thread in node order, so the
  // result is bit-identical for any pool thread count.
  void runPhase(SystemStats& stats);

  // Marks the start of an exchange phase: subsequent sendVector costs are
  // accumulated as max-over-destination-node, then folded at the next
  // endExchange().
  void beginExchange();
  void endExchange(SystemStats& stats);

 private:
  // Node ids are ints (hypercube addresses); containers want size_t.
  static constexpr std::size_t idx(int i) {
    return static_cast<std::size_t>(i);
  }

  const arch::Machine& machine_;
  int dimension_;
  RouterOptions router_;
  exec::ThreadPool* pool_;
  CompiledProgramCache* cache_;
  std::vector<std::unique_ptr<NodeSim>> nodes_;
  // Per-destination-node accumulated exchange cost in the open phase.
  std::vector<std::uint64_t> exchange_cost_;
  bool exchange_open_ = false;
  // Reusable staging buffer for sendVector (exchanges are single-threaded).
  std::vector<double> send_scratch_;
};

}  // namespace nsc::sim
