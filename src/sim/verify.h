// Static program verification over lowered CompiledPrograms.
//
// The paper's workbench promises a pipeline is *checked before it runs*,
// but until this pass the guarantee stopped at the diagram level: once
// microcode was lowered, the only analysis was a bare DMA-range string and
// a fixed 64-cycle steady-state block in the compiled engine.  The
// ProgramVerifier closes that gap with an exact dataflow analysis run once
// per compile (CompiledProgram::compile embeds the report, so the shared
// program cache pointer-shares one report across every shard, node, and
// replica that runs the image):
//
//   * every stream endpoint's validity is a *contiguous cycle window*
//     (DMA reads emit cycles [0, total); the registered switch adds one
//     cycle; delay queues and shift/delay taps add their depth; an FU
//     launches on the intersection of its wired stream windows), so the
//     analysis computes, per switch endpoint, exactly which cycles carry
//     valid tokens and where the stream-`last` tag lands;
//   * DMA bounds are proven against the instantiated plane configuration
//     (the stringly ci.dma_error became the typed CompiledInstr::fault);
//   * write engines whose windows provably under-deliver, and condition
//     latches armed on streams that never end, are reported as errors —
//     each error *proves* the runtime fault kind (FaultKind) the
//     interpreter would hit, which test_property.cpp enforces;
//   * per instruction, a proven-safe steady-state window: the static
//     distance to the next completion/latch/fault horizon.  Verified
//     instructions let executeCompiled run blocks larger than the legacy
//     fixed 64; anything unproven falls back to 64.  Block length never
//     affects results (blocks are lower bounds on completion distance),
//     so adaptive and fixed execution stay bit-identical.
//
// The service layer (WorkbenchService) gates admission on the report:
// programs with error-severity diagnostics are refused with
// Reject::kInvalidProgram and never reach a node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "checker/diagnostics.h"
#include "sim/compiled.h"
#include "sim/stats.h"

namespace nsc::sim {

// The legacy fixed steady-state block (and the fallback for anything the
// verifier cannot prove), and the cap on proven windows — large enough to
// cover any single pipeline sweep, small enough that a block's scratch
// working set stays cacheable.
inline constexpr std::uint32_t kFallbackSteadyBlock = 64;
inline constexpr std::uint32_t kMaxSteadyBlock = 1u << 16;

// What the verifier can say about one lowered instruction.
enum class VerifyCode : std::uint8_t {
  // Errors that prove a runtime fault (matching InstrStats::fault):
  kDmaBounds = 0,   // plane DMA walks past sim_plane_words -> kDmaBounds
  kStarvedWrite,    // write endpoint never sees a valid token -> kTimeout
  kUnderfedWrite,   // window shorter than the programmed count -> kTimeout
  kStarvedCond,     // latch armed on a stream that never ends -> kTimeout
  // Errors that prove hardware infeasibility (the simulator still runs the
  // program deterministically, but no NSC node could):
  kRingOverSubscribed,  // rf delay queue / sd tap beyond the hardware ring
  // Warnings (observable oddities that do not fault):
  kDmaClipped,           // touches outside the backing store: reads 0, drops
  kFanoutOverSubscribed, // one source fanned wider than max_switch_fanout
  kUnroutedInput,        // wired switch input with no route driving it
  kUnconsumedRoute,      // routed destination no consumer reads
  kExchangeContention,   // hypercube link shared by concurrent messages
  kExchangeDangling,     // forwards data no earlier phase delivered
};

const char* verifyCodeName(VerifyCode code);

// The FaultKind a fault-proving error predicts (kNone for infeasibility
// errors and warnings).
FaultKind predictedFault(VerifyCode code);

// A contiguous range of cycles in which a stream endpoint carries valid
// tokens.  Exactness rests on the machine's streams being contiguous by
// construction: DMA reads never pause, constants never lapse, and every
// combinator (switch hop, delay queue, FU launch, accumulator emit)
// preserves contiguity.
struct CycleWindow {
  static constexpr std::uint64_t kForever = ~std::uint64_t{0};
  std::uint64_t first = 0;
  std::uint64_t last = 0;   // inclusive; kForever = the stream never stops
  bool any = false;         // false: no cycle ever carries a valid token
  bool tagged = false;      // the final element carries the stream-end tag

  bool unbounded() const { return any && last == kForever; }
  std::uint64_t length() const {
    return !any ? 0 : unbounded() ? kForever : last - first + 1;
  }
  bool operator==(const CycleWindow&) const = default;
};

struct VerifyDiagnostic {
  VerifyCode code = VerifyCode::kDmaBounds;
  check::Severity severity = check::Severity::kError;
  int instruction = -1;          // program slot, -1 = program-wide
  arch::Endpoint endpoint{};     // offending endpoint when applicable
  CycleWindow window{};          // offending cycle window when known
  std::string message;

  std::string format() const;
};

// Per-instruction verdict, index-parallel with CompiledProgram::instrs.
struct InstrVerify {
  bool clean = true;  // no error-severity diagnostics on this instruction
  // Proven-safe steady-state block length for executeCompiled (the static
  // distance to the completion/latch/fault horizon, clamped to
  // [kFallbackSteadyBlock, kMaxSteadyBlock]); kFallbackSteadyBlock when
  // nothing stronger is proven.
  std::uint32_t steady_window = kFallbackSteadyBlock;
};

struct VerifyReport {
  std::vector<VerifyDiagnostic> diagnostics;
  std::vector<InstrVerify> instrs;

  bool clean() const { return errorCount() == 0; }
  std::size_t errorCount() const;
  std::size_t warningCount() const;
  // First error-severity message ("" when clean) — what an admission
  // rejection quotes.
  std::string firstError() const;

  // Bridge into the editor's diagnostic stream: each code maps onto the
  // closest checker rule, so verifier findings render in the same message
  // strip (and DiagnosticList plumbing) as edit-time rules.
  check::DiagnosticList toDiagnostics() const;
  std::string format() const;
};

// The static-analysis pass.  Stateless apart from the machine reference;
// verify() is safe to call from any thread.
class ProgramVerifier {
 public:
  explicit ProgramVerifier(const arch::Machine& machine)
      : machine_(machine) {}

  // Verifies every instruction of `program` (plans and lowered instrs are
  // index-parallel).  Does not mutate the program; CompiledProgram::compile
  // runs this and stores both the report and the per-instruction
  // steady_window it derives.
  VerifyReport verify(const CompiledProgram& program) const;

 private:
  void verifyInstr(const CompiledProgram& program, std::size_t index,
                   VerifyReport& report) const;

  const arch::Machine& machine_;
};

// ---------------------------------------------------------------------------
// Hypercube exchange-table analysis.
// ---------------------------------------------------------------------------

// One planned message of an exchange phase (node ids in [0, 2^dimension)).
struct ExchangeMessage {
  int src = 0;
  int dst = 0;
  std::uint64_t words = 0;
  // The payload is halo data the source received from a *previous* exchange
  // phase (multi-hop staging: e.g. a corner value relayed edge-by-edge).
  // Schedule verification proves such a delivery actually happened.
  bool forward = false;
};

// Statically routes every message along its e-cube path and reports each
// directed link claimed by more than one message (kExchangeContention
// warnings: the cost model charges such messages as if the links were
// private, so contention means the modelled makespan is optimistic).
std::vector<VerifyDiagnostic> verifyExchangePlan(
    int dimension, const std::vector<ExchangeMessage>& messages);

// Cross-phase schedule verification for chained exchanges: runs
// verifyExchangePlan on every phase (diagnostics carry the phase index in
// `instruction`), then checks forwarding dependencies across phases — a
// message marked `forward` whose source node was never the destination of
// any earlier phase's message relays data nothing delivered, reported as a
// kExchangeDangling error (the runtime would silently ship stale or zero
// halo words, the distributed analogue of a dangling route).
std::vector<VerifyDiagnostic> verifyExchangeSchedule(
    int dimension, const std::vector<std::vector<ExchangeMessage>>& phases);

}  // namespace nsc::sim
