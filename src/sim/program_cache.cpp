#include "sim/program_cache.h"

#include <algorithm>

namespace nsc::sim {

CompiledProgramCache::CompiledProgramCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(max_entries, 1)) {}

CompiledProgramCache::Entry* CompiledProgramCache::find(
    std::uint64_t fingerprint, const arch::Machine& machine,
    const mc::Executable& exe) {
  for (Entry& entry : entries_) {
    // Fingerprint first (cheap), then config, then exact content: a 64-bit
    // collision between distinct programs compiles its own entry instead of
    // silently running another program's image.
    if (entry.fingerprint == fingerprint && entry.config == machine.config() &&
        entry.exe == exe) {
      return &entry;
    }
  }
  return nullptr;
}

std::shared_ptr<const CompiledProgram> CompiledProgramCache::get(
    const arch::Machine& machine, const mc::Executable& exe, bool* hit) {
  const std::uint64_t fingerprint = exe.fingerprint();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry* entry = find(fingerprint, machine, exe)) {
      entry->last_used = ++tick_;
      ++hits_;
      if (hit != nullptr) *hit = true;
      return entry->program;
    }
  }
  // Compile outside the lock: lowering a big program should not serialize
  // unrelated lookups (or concurrent first loads of different programs).
  std::shared_ptr<const CompiledProgram> compiled =
      CompiledProgram::compile(machine, exe);
  std::lock_guard<std::mutex> lock(mu_);
  // Insertion race: another thread may have compiled the same program while
  // we did.  The first insertion wins so every caller sees one instance.
  if (Entry* entry = find(fingerprint, machine, exe)) {
    entry->last_used = ++tick_;
    ++hits_;
    if (hit != nullptr) *hit = true;
    return entry->program;
  }
  ++misses_;
  if (hit != nullptr) *hit = false;
  if (entries_.size() >= max_entries_) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                });
    entries_.erase(lru);
    ++evictions_;
  }
  entries_.push_back(Entry{fingerprint, machine.config(), exe, compiled,
                           ++tick_});
  return compiled;
}

CompiledProgramCache::Stats CompiledProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, evictions_, entries_.size()};
}

void CompiledProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

CompiledProgramCache& CompiledProgramCache::shared() {
  static CompiledProgramCache cache;
  return cache;
}

}  // namespace nsc::sim
