#include "sim/hypercube.h"

#include <algorithm>
#include <bit>

#include "sim/program_cache.h"

namespace nsc::sim {

HypercubeSystem::HypercubeSystem(const arch::Machine& machine, int dimension,
                                 RouterOptions router,
                                 NodeSim::Options node_options,
                                 exec::ThreadPool* pool,
                                 CompiledProgramCache* cache)
    : machine_(machine),
      dimension_(dimension),
      router_(router),
      pool_(pool != nullptr ? pool : &exec::ThreadPool::shared()),
      cache_(cache != nullptr ? cache : &CompiledProgramCache::shared()) {
  const int n = 1 << dimension_;
  nodes_.reserve(idx(n));
  for (int i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<NodeSim>(machine_, node_options));
  }
  exchange_cost_.assign(idx(n), 0);
}

int HypercubeSystem::hopCount(int a, int b) {
  return std::popcount(static_cast<unsigned>(a ^ b));
}

std::vector<int> HypercubeSystem::ecubePath(int a, int b) {
  std::vector<int> path{a};
  int current = a;
  unsigned diff = static_cast<unsigned>(a ^ b);
  // Correct dimensions lowest-first: classic deadlock-free e-cube order.
  for (int bit = 0; diff != 0; ++bit) {
    const unsigned mask = 1u << bit;
    if (diff & mask) {
      current ^= static_cast<int>(mask);
      path.push_back(current);
      diff &= ~mask;
    }
  }
  return path;
}

std::uint64_t HypercubeSystem::transferCycles(int src, int dst,
                                              std::uint64_t words) const {
  if (src == dst) return 0;
  const int hops = hopCount(src, dst);
  const auto stream_cycles = static_cast<std::uint64_t>(
      static_cast<double>(words) / router_.words_per_cycle);
  // Wormhole: header traverses hops serially; the body streams behind it.
  return router_.message_startup_cycles +
         static_cast<std::uint64_t>(hops) * router_.hop_latency_cycles +
         stream_cycles;
}

std::uint64_t HypercubeSystem::sendVector(int src_node,
                                          arch::PlaneId src_plane,
                                          std::uint64_t src_base,
                                          std::uint64_t count, int dst_node,
                                          arch::PlaneId dst_plane,
                                          std::uint64_t dst_base) {
  // Stage through a reusable buffer instead of a per-message allocation;
  // exchanges run on the calling thread (beginExchange/endExchange are not
  // concurrent), so one scratch vector per system suffices.
  send_scratch_.resize(count);
  node(src_node).readPlaneInto(src_plane, src_base, send_scratch_);
  node(dst_node).writePlane(dst_plane, dst_base, send_scratch_);
  const std::uint64_t cycles = transferCycles(src_node, dst_node, count);
  if (exchange_open_) {
    // dst_node was already bounds-checked by the node() call above; this is
    // the exchange hot path, so skip the checked access.
    exchange_cost_[idx(dst_node)] += cycles;
  }
  return cycles;
}

void HypercubeSystem::loadAll(const mc::Executable& exe) {
  // The program cache owns compiled-image sharing: a second system (or a
  // workbench shard / ensemble call) loading the same SPMD executable
  // reuses this system's image instead of re-lowering it.
  loadAll(exe, *cache_);
}

void HypercubeSystem::loadAll(const mc::Executable& exe,
                              CompiledProgramCache& cache) {
  loadAll(cache.get(machine_, exe));
}

void HypercubeSystem::loadAll(std::shared_ptr<const CompiledProgram> program) {
  // SPMD: every node aliases the same immutable compiled image; nothing is
  // decoded or copied per node.
  for (auto& node : nodes_) node->load(program);
}

void HypercubeSystem::runPhase(SystemStats& stats) {
  const int n = numNodes();
  std::vector<RunStats> results(idx(n));
  // Nodes are fully independent between exchanges; simulate on the shared
  // pool (distributed-memory model, one rank per node).  Each result lands
  // in its own slot, so scheduling order cannot affect the outcome.
  pool_->parallelFor(0, idx(n), 1,
                     [&results, this](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         results[i] = nodes_[i]->run();
                       }
                     });

  std::uint64_t max_cycles = 0;
  if (stats.node_stats.size() != idx(n)) {
    stats.node_stats.assign(idx(n), RunStats{});
  }
  for (int i = 0; i < n; ++i) {
    const RunStats& r = results[idx(i)];
    max_cycles = std::max(max_cycles, r.total_cycles);
    stats.total_flops += r.total_flops;
    RunStats& agg = stats.node_stats[idx(i)];
    agg.total_cycles += r.total_cycles;
    agg.total_flops += r.total_flops;
    agg.total_hazards += r.total_hazards;
    agg.instructions_executed += r.instructions_executed;
    if (r.error && !stats.error) {
      stats.error = true;
      stats.error_message = r.error_message;
    }
  }
  stats.compute_makespan_cycles += max_cycles;
}

void HypercubeSystem::beginExchange() {
  std::fill(exchange_cost_.begin(), exchange_cost_.end(), 0);
  exchange_open_ = true;
}

void HypercubeSystem::endExchange(SystemStats& stats) {
  exchange_open_ = false;
  std::uint64_t max_cost = 0;
  for (const std::uint64_t c : exchange_cost_) max_cost = std::max(max_cost, c);
  stats.comm_cycles += max_cost;
}

}  // namespace nsc::sim
