#include "sim/hypercube.h"

#include <algorithm>
#include <bit>

#include "sim/program_cache.h"

namespace nsc::sim {

HypercubeSystem::HypercubeSystem(const arch::Machine& machine, int dimension,
                                 SystemOptions options,
                                 exec::ThreadPool* pool,
                                 CompiledProgramCache* cache)
    : machine_(machine),
      dimension_(dimension),
      router_(options.router),
      node_lanes_(
          std::min(resolveNodeLanes(options.node_lanes), 1 << dimension)),
      pool_(pool != nullptr ? pool : &exec::ThreadPool::shared()),
      cache_(cache != nullptr ? cache : &CompiledProgramCache::shared()) {
  const int n = 1 << dimension_;
  if (node_lanes_ <= 1) {
    nodes_.reserve(idx(n));
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<NodeSim>(machine_, options.node));
    }
  } else {
    // Contiguous-id lane groups: node (g * W + w) is lane w of group g.
    // The tail group narrows when W doesn't divide 2^d (non-power-of-two
    // widths from NSC_NODE_LANES).
    for (int base = 0; base < n; base += node_lanes_) {
      const int width = std::min(node_lanes_, n - base);
      groups_.push_back(
          std::make_unique<NodeBatch>(machine_, width, options.node));
    }
  }
  exchange_cost_.assign(idx(n), 0);
}

int HypercubeSystem::hopCount(int a, int b) {
  return std::popcount(static_cast<unsigned>(a ^ b));
}

std::vector<int> HypercubeSystem::ecubePath(int a, int b) {
  std::vector<int> path{a};
  int current = a;
  unsigned diff = static_cast<unsigned>(a ^ b);
  // Correct dimensions lowest-first: classic deadlock-free e-cube order.
  for (int bit = 0; diff != 0; ++bit) {
    const unsigned mask = 1u << bit;
    if (diff & mask) {
      current ^= static_cast<int>(mask);
      path.push_back(current);
      diff &= ~mask;
    }
  }
  return path;
}

std::uint64_t HypercubeSystem::transferCycles(int src, int dst,
                                              std::uint64_t words) const {
  if (src == dst) return 0;
  const int hops = hopCount(src, dst);
  const auto stream_cycles = static_cast<std::uint64_t>(
      static_cast<double>(words) / router_.words_per_cycle);
  // Wormhole: header traverses hops serially; the body streams behind it.
  return router_.message_startup_cycles +
         static_cast<std::uint64_t>(hops) * router_.hop_latency_cycles +
         stream_cycles;
}

void HypercubeSystem::writePlane(int node, arch::PlaneId plane,
                                 std::uint64_t base,
                                 std::span<const double> values) {
  if (node_lanes_ <= 1) {
    nodes_.at(idx(node))->writePlane(plane, base, values);
  } else {
    group(node).writePlane(laneOf(node), plane, base, values);
  }
}

void HypercubeSystem::writeCache(int node, arch::CacheId cache, int buffer,
                                 std::uint64_t base,
                                 std::span<const double> values) {
  if (node_lanes_ <= 1) {
    nodes_.at(idx(node))->writeCache(cache, buffer, base, values);
  } else {
    group(node).writeCache(laneOf(node), cache, buffer, base, values);
  }
}

std::vector<double> HypercubeSystem::readPlane(int node, arch::PlaneId plane,
                                               std::uint64_t base,
                                               std::uint64_t count) const {
  if (node_lanes_ <= 1) {
    return nodes_.at(idx(node))->readPlane(plane, base, count);
  }
  return group(node).readPlane(laneOf(node), plane, base, count);
}

void HypercubeSystem::readPlaneInto(int node, arch::PlaneId plane,
                                    std::uint64_t base,
                                    std::span<double> out) const {
  if (node_lanes_ <= 1) {
    nodes_.at(idx(node))->readPlaneInto(plane, base, out);
  } else {
    group(node).readPlaneInto(laneOf(node), plane, base, out);
  }
}

std::vector<double> HypercubeSystem::readCache(int node, arch::CacheId cache,
                                               int buffer, std::uint64_t base,
                                               std::uint64_t count) const {
  if (node_lanes_ <= 1) {
    return nodes_.at(idx(node))->readCache(cache, buffer, base, count);
  }
  return group(node).readCache(laneOf(node), cache, buffer, base, count);
}

std::uint64_t HypercubeSystem::sendVector(int src_node,
                                          arch::PlaneId src_plane,
                                          std::uint64_t src_base,
                                          std::uint64_t count, int dst_node,
                                          arch::PlaneId dst_plane,
                                          std::uint64_t dst_base) {
  // Stage through a reusable buffer instead of a per-message allocation;
  // exchanges run on the calling thread (beginExchange/endExchange are not
  // concurrent), so one scratch vector per system suffices.  On the batched
  // engine this is the per-lane staging step: the facade gathers the source
  // halo lane-major out of its group's SoA columns and scatters it into the
  // destination lane, so the router never sees the interleaved layout.
  send_scratch_.resize(count);
  readPlaneInto(src_node, src_plane, src_base, send_scratch_);
  writePlane(dst_node, dst_plane, dst_base, send_scratch_);
  const std::uint64_t cycles = transferCycles(src_node, dst_node, count);
  if (exchange_open_) {
    // dst_node was already bounds-checked by the facade write above; this
    // is the exchange hot path, so skip the checked access.
    exchange_cost_[idx(dst_node)] += cycles;
  }
  return cycles;
}

void HypercubeSystem::loadAll(const mc::Executable& exe) {
  // The program cache owns compiled-image sharing: a second system (or a
  // workbench shard / ensemble call) loading the same SPMD executable
  // reuses this system's image instead of re-lowering it.
  loadAll(exe, *cache_);
}

void HypercubeSystem::loadAll(const mc::Executable& exe,
                              CompiledProgramCache& cache) {
  loadAll(cache.get(machine_, exe));
}

void HypercubeSystem::loadAll(std::shared_ptr<const CompiledProgram> program) {
  // SPMD: every node (or lane group) aliases the same immutable compiled
  // image; nothing is decoded or copied per node.
  for (auto& node : nodes_) node->load(program);
  for (auto& g : groups_) g->load(program);
}

void HypercubeSystem::restartAll() {
  for (auto& node : nodes_) node->restart();
  for (auto& g : groups_) g->restart();
}

void HypercubeSystem::runPhase(SystemStats& stats) {
  const int n = numNodes();
  std::vector<RunStats> results(idx(n));
  int drained_scalar = 0;
  if (node_lanes_ <= 1) {
    // Nodes are fully independent between exchanges; simulate on the shared
    // pool (distributed-memory model, one rank per node).  Each result
    // lands in its own slot, so scheduling order cannot affect the outcome.
    pool_->parallelFor(0, idx(n), 1,
                       [&results, this](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           results[i] = nodes_[i]->run();
                         }
                       });
  } else {
    // Batched: one task per lane group, each stepping up to node_lanes_
    // nodes through the shared instruction stream.  Lane results scatter
    // into node-id order so the folding loop below is engine-agnostic.
    std::vector<BatchRunResult> group_results(groups_.size());
    pool_->parallelFor(0, groups_.size(), 1,
                       [&group_results, this](std::size_t begin,
                                              std::size_t end) {
                         for (std::size_t g = begin; g < end; ++g) {
                           group_results[g] = groups_[g]->runPhase();
                         }
                       });
    std::size_t node_id = 0;
    for (std::size_t g = 0; g < group_results.size(); ++g) {
      BatchRunResult& gr = group_results[g];
      drained_scalar += gr.drained_scalar;
      for (auto& run : gr.runs) results[node_id++] = std::move(run);
    }
  }
  if (node_lanes_ <= 1) {
    nodes_scalar_ += static_cast<std::uint64_t>(n);
  } else {
    nodes_scalar_ += static_cast<std::uint64_t>(drained_scalar);
    nodes_batched_ += static_cast<std::uint64_t>(n - drained_scalar);
  }

  std::uint64_t max_cycles = 0;
  if (stats.node_stats.size() != idx(n)) {
    stats.node_stats.assign(idx(n), RunStats{});
  }
  for (int i = 0; i < n; ++i) {
    const RunStats& r = results[idx(i)];
    max_cycles = std::max(max_cycles, r.total_cycles);
    stats.total_flops += r.total_flops;
    RunStats& agg = stats.node_stats[idx(i)];
    agg.total_cycles += r.total_cycles;
    agg.total_flops += r.total_flops;
    agg.total_hazards += r.total_hazards;
    agg.instructions_executed += r.instructions_executed;
    if (r.error && !stats.error) {
      stats.error = true;
      stats.error_message = r.error_message;
    }
  }
  stats.compute_makespan_cycles += max_cycles;
}

void HypercubeSystem::beginExchange() {
  std::fill(exchange_cost_.begin(), exchange_cost_.end(), 0);
  exchange_open_ = true;
}

void HypercubeSystem::endExchange(SystemStats& stats) {
  exchange_open_ = false;
  std::uint64_t max_cost = 0;
  for (const std::uint64_t c : exchange_cost_) max_cost = std::max(max_cost, c);
  stats.comm_cycles += max_cost;
}

}  // namespace nsc::sim
