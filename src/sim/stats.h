// Execution statistics reported by the node simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nsc::sim {

// Structured classification of the (few) ways an instruction can fault at
// runtime.  Both execution engines set it alongside the legacy error
// message; the static verifier (sim/verify.h) predicts these kinds, and the
// soundness property in test_property.cpp pins prediction to reality.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDmaBounds,  // plane DMA provably walks past the simulated capacity
  kTimeout,    // instruction did not complete within the cycle budget
};

inline const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDmaBounds: return "dma-bounds";
    case FaultKind::kTimeout: return "timeout";
  }
  return "?";
}

struct InstrStats {
  int instruction = 0;  // program counter value executed
  std::string name;
  std::uint64_t cycles = 0;
  std::uint64_t flops = 0;
  std::uint64_t hazards = 0;  // valid/invalid operand pairings observed
  bool error = false;
  FaultKind fault = FaultKind::kNone;  // typed cause when error is set
  std::string error_message;
};

struct RunStats {
  std::uint64_t total_cycles = 0;
  std::uint64_t total_flops = 0;
  std::uint64_t total_hazards = 0;
  std::uint64_t instructions_executed = 0;
  // Valid result launches per functional unit over the whole run
  // (utilization = launches / (cycles * numFus)).
  std::vector<std::uint64_t> fu_launches;
  std::vector<InstrStats> trace;  // one entry per executed instruction
  bool halted = false;
  bool error = false;
  FaultKind fault = FaultKind::kNone;  // fault kind of the erroring instruction
  std::string error_message;

  // Achieved MFLOPS at the given hardware clock.
  double mflops(double clock_mhz) const {
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(total_flops) * clock_mhz /
                     static_cast<double>(total_cycles);
  }
  double fuUtilization() const {
    if (total_cycles == 0 || fu_launches.empty()) return 0.0;
    std::uint64_t launches = 0;
    for (std::uint64_t l : fu_launches) launches += l;
    return static_cast<double>(launches) /
           (static_cast<double>(total_cycles) *
            static_cast<double>(fu_launches.size()));
  }

  // Folds a continuation of the same run (e.g. a diverged ensemble lane
  // finishing on the scalar engine after leaving its ReplicaBatch) onto the
  // stats accumulated so far: totals and launch counts add, traces append,
  // terminal flags come from the continuation.
  void absorbContinuation(RunStats&& continuation) {
    total_cycles += continuation.total_cycles;
    total_flops += continuation.total_flops;
    total_hazards += continuation.total_hazards;
    instructions_executed += continuation.instructions_executed;
    if (fu_launches.size() < continuation.fu_launches.size()) {
      fu_launches.resize(continuation.fu_launches.size(), 0);
    }
    for (std::size_t i = 0; i < continuation.fu_launches.size(); ++i) {
      fu_launches[i] += continuation.fu_launches[i];
    }
    for (InstrStats& t : continuation.trace) trace.push_back(std::move(t));
    halted = continuation.halted;
    error = continuation.error;
    fault = continuation.fault;
    error_message = std::move(continuation.error_message);
  }
};

}  // namespace nsc::sim
