// Token: one element of a vector stream in flight through the node.
//
// The simulator is cycle-stepped: every stream endpoint carries one token
// per cycle.  `valid` gates computation and writes (a pipeline bubble is an
// invalid token); `last` marks the final element of a DMA stream and drives
// completion interrupts and accumulator drains; `index` is a debug tag (the
// element number at the producing DMA engine) used only by the visual
// debugger's annotated diagrams — hardware would not carry it.
#pragma once

#include <cstdint>

namespace nsc::sim {

struct Token {
  double value = 0.0;
  bool valid = false;
  bool last = false;
  std::int32_t index = -1;

  static Token invalid() { return {}; }
  static Token constant(double v) { return {v, true, false, -1}; }
};

}  // namespace nsc::sim
