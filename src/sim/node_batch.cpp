#include "sim/node_batch.h"

#include <algorithm>

#include "common/env.h"

namespace nsc::sim {

int resolveNodeLanes(int requested) {
  const auto clamped = [](long v) {
    return static_cast<int>(std::clamp<long>(v, 1, ReplicaBatch::kMaxLanes));
  };
  if (requested > 0) return clamped(requested);
  // Strict parse (common/env.h): non-numeric, negative, zero, or overflowed
  // NSC_NODE_LANES values warn once and fall back to the default instead of
  // silently running a different experiment.
  if (const std::optional<long long> v =
          common::envInt("NSC_NODE_LANES", 1, ReplicaBatch::kMaxLanes)) {
    return clamped(static_cast<long>(*v));
  }
  return kDefaultNodeLanes;
}

}  // namespace nsc::sim
