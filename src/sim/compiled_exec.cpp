// The compiled execution engine: NodeSim::executeCompiled.
//
// Executes one lowered CompiledInstr with the cycle structure
//
//   fill -> steady state -> drain
//
// where the steady-state region advances DMA cursors, shift/delay
// histories, and FU pipelines in element-blocked inner loops (up to the
// instruction's verifier-proven steady_window cycles at a time; 64 when
// unproven) with no per-cycle plan interpretation and no per-cycle
// completion polling: every endpoint index, ring size, and route was
// resolved at compile time (sim/compiled.cpp), and the block length is a
// proven lower bound on the cycles remaining before the instruction can
// complete.  Completion, drain accounting, and the condition latch follow
// the legacy interpreter (node.cpp) exactly; the golden tests in
// test_compiled.cpp pin the two engines to bit-identical InstrStats,
// fu_launches, and memory contents.
#include <algorithm>

#include "common/strings.h"
#include "sim/node.h"

namespace nsc::sim {

InstrStats NodeSim::executeCompiled(const CompiledInstr& ci, int instr_index,
                                    const std::string& name) {
  const arch::MachineConfig& cfg = machine_.config();
  InstrStats stats;
  stats.instruction = instr_index;
  stats.name = name;

  // Faults detected at compile time surface at issue, like the interpreter
  // bailing out of engine setup.
  if (ci.fault.kind != FaultKind::kNone) {
    stats.error = true;
    stats.fault = ci.fault.kind;
    stats.error_message = ci.fault.message;
    return stats;
  }
  for (const auto& [plane, needed] : ci.plane_grows) {
    ensurePlaneSize(plane, needed);
  }

  // --- Per-instruction state (reused storage, reset content) ---
  Scratch& s = scratch_;
  s.src_out.assign(machine_.sources().size(), Token::invalid());
  s.dst_in.assign(machine_.destinations().size(), Token::invalid());
  s.arena.assign(ci.ring_slots, Token::invalid());
  s.fu.assign(ci.fus.size(), Scratch::FuRun{});
  for (std::size_t k = 0; k < ci.fus.size(); ++k) {
    if (ci.fus[k].is_accum) s.fu[k].acc = ci.fus[k].rf_value;
  }
  s.reads.assign(ci.reads.size(), Scratch::DmaRun{});
  s.writes.assign(ci.writes.size(), Scratch::DmaRun{});
  s.sd_pos.assign(ci.sds.size(), 0);

  const std::uint64_t drain_budget = drainBudget(cfg);
  std::uint64_t drain = 0;
  bool cond_fired = false;

  // One cycle of dataflow; phase order matches the interpreter.
  const auto stepCycle = [&](std::uint64_t cycle) {
    // Phase 1a: DMA read engines produce this cycle's tokens.
    for (std::size_t i = 0; i < ci.reads.size(); ++i) {
      const CompiledDma& rd = ci.reads[i];
      Scratch::DmaRun& run = s.reads[i];
      Token tok = Token::invalid();
      if (run.element < rd.total) {
        const std::uint64_t element = run.element;
        const auto addr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rd.base) +
            static_cast<std::int64_t>(run.row) * rd.stride2 +
            static_cast<std::int64_t>(run.in_row) * rd.stride);
        ++run.element;
        if (++run.in_row == rd.count) {
          run.in_row = 0;
          ++run.row;
        }
        const std::vector<double>& mem =
            rd.is_cache ? caches_[static_cast<std::size_t>(rd.unit)]
                                 [static_cast<std::size_t>(rd.buffer)]
                        : planes_[static_cast<std::size_t>(rd.unit)];
        const double value = addr < mem.size() ? mem[addr] : 0.0;
        tok = Token{value, true, run.element == rd.total,
                    static_cast<std::int32_t>(element)};
      }
      s.src_out[static_cast<std::size_t>(rd.endpoint)] = tok;
    }

    // Phase 1b: shift/delay taps produce delayed copies.
    for (std::size_t i = 0; i < ci.sds.size(); ++i) {
      const CompiledSd& sd = ci.sds[i];
      const std::uint32_t pos = s.sd_pos[i];
      for (const CompiledSdTap& tap : sd.taps) {
        std::uint32_t at = pos + tap.back;
        if (at >= sd.hist_len) at -= sd.hist_len;
        s.src_out[static_cast<std::size_t>(tap.src)] =
            s.arena[sd.hist_off + at];
      }
    }

    // Phase 1c: functional units consume and launch.
    for (std::size_t k = 0; k < ci.fus.size(); ++k) {
      const CompiledFu& fu = ci.fus[k];
      Scratch::FuRun& st = s.fu[k];

      const auto operand = [&](const CompiledOperand& op) -> Token {
        Token tok = Token::invalid();
        switch (op.kind) {
          case OperandKind::kSwitch:
            tok = s.dst_in[static_cast<std::size_t>(op.index)];
            break;
          case OperandKind::kChain:
            if (op.index >= 0) {
              tok = s.src_out[static_cast<std::size_t>(op.index)];
            }
            break;
          case OperandKind::kConst:
            return Token::constant(fu.rf_value);
          case OperandKind::kFeedback:
            return Token{st.acc, true, false, -1};
          case OperandKind::kNone:
            return tok;
        }
        if (op.queue) {
          Token* queue = s.arena.data() + fu.rfq_off;
          const Token delayed = queue[st.rfq_pos];
          queue[st.rfq_pos] = tok;
          st.rfq_pos = st.rfq_pos + 1 == fu.rfq_len ? 0 : st.rfq_pos + 1;
          tok = delayed;
        }
        return tok;
      };

      const Token a = operand(fu.a);
      const Token b = operand(fu.b);

      Token result = Token::invalid();
      if (fu.is_accum) {
        const Token& stream = fu.accum_stream_is_a ? a : b;
        if (stream.valid) {
          st.acc = arch::evalOp(fu.op, a.value, b.value);
          if (fu.counts_flop) ++stats.flops;
          ++fu_launches_[static_cast<std::size_t>(fu.fu)];
        }
        result = Token{st.acc, stream.valid && stream.last,
                       stream.valid && stream.last, stream.index};
      } else {
        bool valid = fu.a.wired ? a.valid : false;
        if (fu.b.wired) valid = valid && b.valid;
        if (fu.a.stream && fu.b.stream && a.valid != b.valid) ++stats.hazards;
        if (valid) {
          result.value = arch::evalOp(fu.op, a.value, b.value);
          result.valid = true;
          result.last = (fu.a.wired && a.last) || (fu.b.wired && b.last);
          result.index = a.index >= 0 ? a.index : b.index;
          if (fu.counts_flop) ++stats.flops;
          ++fu_launches_[static_cast<std::size_t>(fu.fu)];
        }
      }

      Token* pipe = s.arena.data() + fu.pipe_off;
      s.src_out[static_cast<std::size_t>(fu.out_src)] = pipe[st.pipe_pos];
      pipe[st.pipe_pos] = result;
      st.pipe_pos = st.pipe_pos + 1 == fu.pipe_len ? 0 : st.pipe_pos + 1;
    }

    // Phase 2a: write engines capture arriving tokens.
    for (std::size_t i = 0; i < ci.writes.size(); ++i) {
      const CompiledDma& wr = ci.writes[i];
      Scratch::DmaRun& run = s.writes[i];
      if (run.element >= wr.total) continue;
      const Token& tok = s.dst_in[static_cast<std::size_t>(wr.endpoint)];
      if (!tok.valid) continue;
      const auto addr = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(wr.base) +
          static_cast<std::int64_t>(run.row) * wr.stride2 +
          static_cast<std::int64_t>(run.in_row) * wr.stride);
      ++run.element;
      if (++run.in_row == wr.count) {
        run.in_row = 0;
        ++run.row;
      }
      std::vector<double>& mem =
          wr.is_cache ? caches_[static_cast<std::size_t>(wr.unit)]
                               [static_cast<std::size_t>(wr.buffer)]
                      : planes_[static_cast<std::size_t>(wr.unit)];
      if (addr < mem.size()) mem[addr] = tok.value;
    }

    // Phase 2b: condition latch watches the source FU's emerging stream.
    if (ci.cond_enable && ci.cond_src >= 0) {
      const Token& tok = s.src_out[static_cast<std::size_t>(ci.cond_src)];
      if (tok.valid && tok.last) {
        cond_regs_[static_cast<std::size_t>(ci.cond_reg)] = tok.value > 0.5;
        cond_fired = true;
      }
    }

    if (trace_) {
      TraceFrame frame;
      frame.instruction = instr_index;
      frame.cycle = cycle;
      frame.source_tokens = s.src_out;
      trace_(frame);
    }

    // Phase 3: switch network transfers (registered: consumers see these
    // tokens next cycle).
    for (const auto& [dst, src] : ci.routes) {
      s.dst_in[static_cast<std::size_t>(dst)] =
          s.src_out[static_cast<std::size_t>(src)];
    }

    // Phase 4: shift/delay history advances on the freshly routed input.
    for (std::size_t i = 0; i < ci.sds.size(); ++i) {
      const CompiledSd& sd = ci.sds[i];
      s.arena[sd.hist_off + s.sd_pos[i]] =
          s.dst_in[static_cast<std::size_t>(sd.in_dst)];
      s.sd_pos[i] = s.sd_pos[i] + 1 == sd.hist_len ? 0 : s.sd_pos[i] + 1;
    }
  };

  std::uint64_t cycle = 0;
  bool completed = false;
  while (!completed) {
    if (cycle >= options_.max_cycles_per_instruction) {
      stats.error = true;
      stats.fault = FaultKind::kTimeout;
      stats.error_message = common::strFormat(
          "instruction %d did not complete within %llu cycles", instr_index,
          static_cast<unsigned long long>(options_.max_cycles_per_instruction));
      stats.cycles = cycle;
      return stats;
    }

    // --- Steady state: a lower bound on the cycles left before this
    // instruction can possibly complete; all of them run back to back with
    // no completion polling.  With the condition latch armed, completion
    // can follow the latch within a cycle, so the bound stays at zero and
    // every cycle runs in precise (per-cycle checked) mode instead.
    std::uint64_t block = 0;
    std::uint64_t reads_settle = 0;  // cycle the last read engine finishes
    if (!ci.cond_enable) {
      if (!ci.writes.empty()) {
        // Every engine captures at most one element per cycle.
        std::uint64_t rem = 0;
        for (std::size_t i = 0; i < ci.writes.size(); ++i) {
          rem = std::max(rem, ci.writes[i].total - s.writes[i].element);
        }
        block = rem > 0 ? rem - 1 : 0;
      } else if (!ci.reads.empty()) {
        // Read-only: reads finish 1/cycle unconditionally, then the drain
        // counter must climb from `drain` to drain_budget + 1.
        std::uint64_t rem = 0;
        for (std::size_t i = 0; i < ci.reads.size(); ++i) {
          rem = std::max(rem, ci.reads[i].total - s.reads[i].element);
        }
        reads_settle = std::max<std::uint64_t>(rem, 1);
        block = reads_settle + drain_budget - drain - 1;
      }
    }
    // Cap the block at the verifier-proven safe window for this instruction
    // (64, the legacy fixed block, when nothing stronger was proven).  The
    // remaining-element bound above is already a completion-distance proof,
    // so any cap >= 64 leaves the executed cycle sequence — and therefore
    // every stat and memory cell — bit-identical; the override knob exists
    // for benchmarking the fixed-block behaviour.
    block = std::min(block, options_.steady_block_override
                                ? options_.steady_block_override
                                : std::uint64_t{ci.steady_window});
    block = std::min(block, options_.max_cycles_per_instruction - cycle - 1);
    if (block > 0) {
      for (std::uint64_t b = 0; b < block; ++b) stepCycle(cycle + b);
      if (ci.writes.empty() && !ci.reads.empty() && block >= reads_settle) {
        // The interpreter bumps drain at the end of every cycle from the
        // one where the reads settle; account for the block in one step.
        drain += block - reads_settle + 1;
      }
      cycle += block;
      continue;
    }

    // --- Boundary cycle: run one cycle, then the interpreter's exact
    // completion logic ("an elaborate interrupt scheme is used to signal
    // pipeline completions").
    stepCycle(cycle);
    ++cycle;

    const bool cond_ok = !ci.cond_enable || cond_fired;
    if (!ci.writes.empty()) {
      bool writes_done = true;
      for (std::size_t i = 0; i < ci.writes.size(); ++i) {
        writes_done = writes_done && s.writes[i].element >= ci.writes[i].total;
      }
      completed = writes_done && cond_ok;
    } else if (!ci.reads.empty()) {
      bool reads_done = true;
      for (std::size_t i = 0; i < ci.reads.size(); ++i) {
        reads_done = reads_done && s.reads[i].element >= ci.reads[i].total;
      }
      if (reads_done && cond_ok) {
        completed = ++drain > drain_budget;
      }
    } else {
      completed = true;  // control-only instruction
    }
  }

  // Double-buffered caches swap at instruction end when requested.
  for (const arch::CacheId c : ci.swaps) {
    std::swap(caches_[static_cast<std::size_t>(c)][0],
              caches_[static_cast<std::size_t>(c)][1]);
  }

  stats.cycles = cycle;
  return stats;
}

}  // namespace nsc::sim
