#include "exec/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/env.h"
#include "common/strings.h"

namespace nsc::exec {

namespace {
// Suppression is per-thread and process-global: a recovery retry must not
// see faults from *any* injector while it re-executes.
thread_local int tl_suppress_depth = 0;
}  // namespace

void FaultInjector::configure(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  enabled_.store(plan.enabled(), std::memory_order_release);
  rng_ = common::Rng(plan.seed);
  counters_ = Counters{};
}

FaultPlan FaultInjector::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  static const bool configured = [] {
    if (const char* spec = std::getenv("NSC_FAULTS")) {
      std::string error;
      const FaultPlan plan = parseFaultPlan(spec, &error);
      if (error.empty()) {
        injector.configure(plan);
      } else {
        std::fprintf(stderr, "nsc: ignoring NSC_FAULTS='%s' (%s)\n", spec,
                     error.c_str());
      }
    }
    return true;
  }();
  (void)configured;
  return injector;
}

bool FaultInjector::armed() const {
  return enabled_.load(std::memory_order_acquire) && tl_suppress_depth == 0;
}

bool FaultInjector::fire(double FaultPlan::*probability,
                         std::uint64_t Counters::*counter) {
  std::lock_guard<std::mutex> lock(mu_);
  const double p = plan_.*probability;
  if (p <= 0.0 || !rng_.chance(p)) return false;
  ++(counters_.*counter);
  return true;
}

void FaultInjector::maybeThrow(FaultSite site) {
  if (!armed()) return;
  switch (site) {
    case FaultSite::kDispatch:
      if (fire(&FaultPlan::dispatch_throw, &Counters::throws_injected)) {
        throw InjectedFault("injected dispatch fault");
      }
      return;
    case FaultSite::kSession:
      if (fire(&FaultPlan::session_throw, &Counters::throws_injected)) {
        throw InjectedFault("injected mid-request fault");
      }
      return;
    default:
      return;
  }
}

void FaultInjector::maybeDelay(FaultSite) {
  if (!armed()) return;
  int delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plan_.delay <= 0.0 || !rng_.chance(plan_.delay)) return;
    ++counters_.delays_injected;
    delay_us = plan_.delay_us;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
}

bool FaultInjector::shouldForceEvict() {
  if (!armed()) return false;
  return fire(&FaultPlan::force_evict, &Counters::evictions_forced);
}

std::string FaultInjector::mangleCheckpointBytes(std::string bytes) {
  if (!armed() || bytes.empty()) return bytes;
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.torn_write > 0.0 && rng_.chance(plan_.torn_write)) {
    // Torn write: the tail is lost mid-flush.  Any cut point is fair game —
    // header, checksum line, or payload — restore verification must catch
    // them all.
    ++counters_.writes_torn;
    bytes.resize(static_cast<std::size_t>(rng_.below(bytes.size())));
    return bytes;
  }
  if (plan_.corrupt_write > 0.0 && rng_.chance(plan_.corrupt_write)) {
    ++counters_.writes_corrupted;
    const auto at = static_cast<std::size_t>(rng_.below(bytes.size()));
    bytes[at] = static_cast<char>(bytes[at] ^ 0x20);
  }
  return bytes;
}

FaultInjector::Suppress::Suppress() { ++tl_suppress_depth; }
FaultInjector::Suppress::~Suppress() { --tl_suppress_depth; }

FaultPlan parseFaultPlan(const std::string& spec, std::string* error) {
  FaultPlan plan;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return FaultPlan{};
  };
  for (const std::string& part : common::split(spec, ',')) {
    const std::string entry = common::trim(part);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return fail("expected key=value, got '" + entry + "'");
    }
    const std::string key = common::trim(entry.substr(0, eq));
    const std::string value = common::trim(entry.substr(eq + 1));
    if (key == "seed") {
      const std::optional<long long> v = common::parseInt(value);
      if (!v.has_value() || *v < 0) return fail("bad seed '" + value + "'");
      plan.seed = static_cast<std::uint64_t>(*v);
      continue;
    }
    if (key == "delay_us") {
      const std::optional<long long> v = common::parseInt(value);
      if (!v.has_value() || *v < 0 || *v > 1'000'000) {
        return fail("bad delay_us '" + value + "'");
      }
      plan.delay_us = static_cast<int>(*v);
      continue;
    }
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return fail("bad probability '" + value + "' for " + key);
    }
    if (key == "dispatch") {
      plan.dispatch_throw = p;
    } else if (key == "session") {
      plan.session_throw = p;
    } else if (key == "evict") {
      plan.force_evict = p;
    } else if (key == "torn") {
      plan.torn_write = p;
    } else if (key == "corrupt") {
      plan.corrupt_write = p;
    } else if (key == "delay") {
      plan.delay = p;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (error != nullptr) error->clear();
  return plan;
}

}  // namespace nsc::exec
