// nsc_exec: the shared execution layer.
//
// Every parallel phase in the tree — hypercube node stepping (src/sim),
// workbench ensemble runs (src/nsc), and host-side Jacobi/multigrid sweeps
// (src/cfd) — used to roll its own std::thread harness per call, so thread
// creation dominated exactly the many-phase workloads the NSC model is
// built around.  ThreadPool amortizes the harness: workers are created
// once and woken per job, and `parallelFor` hands them contiguous index
// chunks claimed from a shared cursor (work-stealing-ish dynamic
// scheduling over a deterministic result layout).  `submit` is the
// future-returning task path the service layer uses for independent work
// items (ensemble replicas, request fan-out); tasks queue behind a FIFO
// that workers drain between parallelFor jobs, and queue-depth stats
// expose saturation to callers.
//
// Determinism contract: parallelFor callers write results into
// caller-owned, index-addressed storage and fold them on the calling
// thread afterwards.  Under that discipline results are bit-identical for
// any thread count, which tests/test_hypercube.cpp asserts for the
// simulator.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace nsc::exec {

struct ExecOptions {
  // Worker+caller thread count.  0 = use the NSC_THREADS environment
  // variable if set (and positive), else std::thread::hardware_concurrency.
  int threads = 0;
};

// Resolves a requested thread count through the ExecOptions rules above.
// Always returns >= 1.
int resolveThreadCount(int requested);

class ThreadPool {
 public:
  // fn(begin, end): process the half-open index range [begin, end).
  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  explicit ThreadPool(ExecOptions options = {});
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads applied to a job: workers + the calling thread.
  int threadCount() const { return thread_count_; }

  // Lifetime count of OS threads this pool has created — the test hook for
  // "zero thread creations per phase": construct, note the value, run many
  // phases, assert it did not move.
  std::uint64_t threadsCreated() const { return threads_created_; }

  // Runs fn over [begin, end) in chunks of at least `grain` indices and
  // blocks until the whole range is covered.  The calling thread
  // participates; with threadCount() == 1 (or a nested call from inside a
  // pool task) the range runs inline with no synchronization at all.
  // Exceptions thrown by fn are rethrown here (first one wins).
  void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const RangeFn& fn);

  // Submits one task and returns a future for its result.  Tasks queue
  // behind a FIFO the workers drain between parallelFor jobs (jobs take
  // priority; a published range is always finished first).  With no workers
  // (threadCount() == 1), or when called from inside a pool task — where
  // queueing could deadlock a worker waiting on its own queue position —
  // the task runs inline and the returned future is already ready.
  //
  // The pool must outlive every returned future; destroying the pool runs
  // still-queued tasks on the destructing thread so no future is abandoned.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueueTask([task] { (*task)(); });
    return future;
  }

  // Runs one queued task on the calling thread, if any is pending.
  // Returns false when the queue is empty.  A caller blocked on submitted
  // futures can loop this to contribute instead of idling — the
  // work-helping counterpart to parallelFor's caller participation.
  bool tryRunOneTask();

  // ---- Saturation stats for the service layer ----
  // Tasks currently waiting in the queue (not yet claimed by a thread).
  std::size_t queueDepth() const;
  // High-water mark of queueDepth() over the pool's lifetime.
  std::size_t peakQueueDepth() const;
  // Lifetime count of submit() calls (including inline-executed ones).
  std::uint64_t tasksSubmitted() const { return tasks_submitted_; }
  // Of those, tasks that ran inline on the submitting thread (no workers,
  // nested submission, or pool teardown) instead of through the FIFO.
  std::uint64_t tasksInline() const { return tasks_inline_; }

  // One consistent snapshot of the counters above — what the service layer
  // samples per request and the session example prints.
  struct PoolStats {
    int threads = 0;
    std::size_t queue_depth = 0;
    std::size_t peak_queue_depth = 0;
    std::uint64_t tasks_submitted = 0;
    std::uint64_t tasks_inline = 0;
    std::uint64_t threads_created = 0;
  };
  PoolStats stats() const;

  // The process-wide pool the sim/workbench/cfd layers share by default.
  // Sized once, on first use, from NSC_THREADS / hardware concurrency.
  static ThreadPool& shared();

 private:
  void workerLoop();
  void runChunks();
  void enqueueTask(std::function<void()> task);

  const int thread_count_;
  std::uint64_t threads_created_ = 0;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;

  // Current job, published under mu_; chunks are claimed via job_next_.
  // Workers join a job when they observe it (job_active_workers_), so a
  // worker busy with a long submitted task never stalls parallelFor — the
  // job completes when the range is exhausted and the joined workers have
  // drained their claimed chunks.
  std::uint64_t job_id_ = 0;
  const RangeFn* job_fn_ = nullptr;
  std::size_t job_end_ = 0;
  std::size_t job_grain_ = 1;
  std::atomic<std::size_t> job_next_{0};
  std::atomic<bool> job_failed_{false};
  int job_active_workers_ = 0;
  std::exception_ptr job_error_;

  // Submitted-task FIFO (under mu_) and its stats.
  std::deque<std::function<void()>> tasks_;
  std::size_t peak_queue_depth_ = 0;
  std::atomic<std::uint64_t> tasks_submitted_{0};
  std::atomic<std::uint64_t> tasks_inline_{0};

  // Serializes external parallelFor callers (one job at a time).
  std::mutex run_mu_;
};

// Blocking task group on top of the pool: collect arbitrary thunks, then
// wait() runs them all (in parallel, caller participating) and blocks
// until every one has finished.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  void run(std::function<void()> task) { tasks_.push_back(std::move(task)); }
  std::size_t pending() const { return tasks_.size(); }

  // Executes all submitted tasks and clears the group.
  void wait();

 private:
  ThreadPool& pool_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace nsc::exec
