#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace nsc::exec {

namespace {
// Set while a thread (worker or caller) is executing a pool job; nested
// parallelFor calls from inside a job run inline instead of deadlocking on
// run_mu_.
thread_local bool tl_in_pool_job = false;
}  // namespace

int resolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("NSC_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(ExecOptions options)
    : thread_count_(resolveThreadCount(options.threads)) {
  workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
  for (int i = 1; i < thread_count_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
    ++threads_created_;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::runChunks() {
  const RangeFn& fn = *job_fn_;
  // Stop claiming once any chunk has failed: the first exception is what
  // parallelFor rethrows, so the rest of the range is wasted work against
  // possibly-inconsistent state.
  while (!job_failed_.load(std::memory_order_relaxed)) {
    const std::size_t lo =
        job_next_.fetch_add(job_grain_, std::memory_order_relaxed);
    if (lo >= job_end_) break;
    const std::size_t hi = std::min(lo + job_grain_, job_end_);
    try {
      fn(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_error_) job_error_ = std::current_exception();
      job_failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop() {
  tl_in_pool_job = true;  // nested parallelFor from a task runs inline
  std::uint64_t last_job = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || job_id_ != last_job; });
      if (shutdown_) return;
      last_job = job_id_;
    }
    runChunks();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--job_workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain, const RangeFn& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || tl_in_pool_job || end - begin <= grain) {
    fn(begin, end);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_grain_ = grain;
    job_next_.store(begin, std::memory_order_relaxed);
    job_workers_running_ = static_cast<int>(workers_.size());
    job_error_ = nullptr;
    job_failed_.store(false, std::memory_order_relaxed);
    ++job_id_;
  }
  work_cv_.notify_all();
  tl_in_pool_job = true;
  runChunks();
  tl_in_pool_job = false;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job_workers_running_ == 0; });
    job_fn_ = nullptr;
    error = job_error_;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void TaskGroup::wait() {
  std::vector<std::function<void()>> tasks;
  tasks.swap(tasks_);
  pool_.parallelFor(0, tasks.size(), 1,
                    [&tasks](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) tasks[i]();
                    });
}

}  // namespace nsc::exec
