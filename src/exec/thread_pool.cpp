#include "exec/thread_pool.h"

#include <algorithm>

#include "common/env.h"

namespace nsc::exec {

namespace {
// Set while a thread (worker or caller) is executing a pool job; nested
// parallelFor calls from inside a job run inline instead of deadlocking on
// run_mu_, and nested submit calls run inline instead of queueing behind
// the very worker that issued them.
thread_local bool tl_in_pool_job = false;
}  // namespace

int resolveThreadCount(int requested) {
  if (requested > 0) return requested;
  // Strict parse with a sane ceiling: "8x", "-2", "junk", or an absurd
  // value falls back to hardware concurrency with one stderr warning (see
  // common/env.h) instead of UB or a million-thread pool.
  if (const std::optional<long long> v = common::envInt("NSC_THREADS", 1, 4096)) {
    return static_cast<int>(*v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(ExecOptions options)
    : thread_count_(resolveThreadCount(options.threads)) {
  workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
  for (int i = 1; i < thread_count_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
    ++threads_created_;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Run any tasks still queued so their futures are fulfilled instead of
  // abandoned with broken_promise.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tasks_.empty()) break;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::runChunks() {
  const RangeFn& fn = *job_fn_;
  // Stop claiming once any chunk has failed: the first exception is what
  // parallelFor rethrows, so the rest of the range is wasted work against
  // possibly-inconsistent state.
  while (!job_failed_.load(std::memory_order_relaxed)) {
    const std::size_t lo =
        job_next_.fetch_add(job_grain_, std::memory_order_relaxed);
    if (lo >= job_end_) break;
    const std::size_t hi = std::min(lo + job_grain_, job_end_);
    try {
      fn(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_error_) job_error_ = std::current_exception();
      job_failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop() {
  tl_in_pool_job = true;  // nested parallelFor/submit from a task runs inline
  std::uint64_t last_job = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || job_id_ != last_job || !tasks_.empty();
      });
      if (shutdown_) return;
      if (job_id_ != last_job) {
        // A published range takes priority over queued tasks: phase
        // stepping is latency-sensitive, tasks are throughput work.
        last_job = job_id_;
        if (job_fn_ != nullptr) {
          ++job_active_workers_;
          lock.unlock();
          runChunks();
          lock.lock();
          if (--job_active_workers_ == 0) done_cv_.notify_all();
        }
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain, const RangeFn& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || tl_in_pool_job || end - begin <= grain) {
    fn(begin, end);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_grain_ = grain;
    job_next_.store(begin, std::memory_order_relaxed);
    job_active_workers_ = 0;
    job_error_ = nullptr;
    job_failed_.store(false, std::memory_order_relaxed);
    ++job_id_;
  }
  work_cv_.notify_all();
  tl_in_pool_job = true;
  runChunks();
  tl_in_pool_job = false;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // The range is exhausted (the calling thread only returns from
    // runChunks once job_next_ passed job_end_ or the job failed); wait
    // for workers that joined to finish their claimed chunks.  Workers
    // busy with submitted tasks never joined and are not waited for.
    done_cv_.wait(lock, [&] { return job_active_workers_ == 0; });
    job_fn_ = nullptr;
    error = job_error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::enqueueTask(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  // No workers to hand the task to, or called from inside a pool task
  // (queueing there can deadlock a worker waiting on its own queue): run
  // inline.  The future the caller holds becomes ready on return.
  if (workers_.empty() || tl_in_pool_job) {
    tasks_inline_.fetch_add(1, std::memory_order_relaxed);
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutdown_) {
      tasks_.push_back(std::move(task));
      peak_queue_depth_ = std::max(peak_queue_depth_, tasks_.size());
      lock.unlock();
      work_cv_.notify_one();
      return;
    }
  }
  // Pool is tearing down; run inline rather than losing the task.
  tasks_inline_.fetch_add(1, std::memory_order_relaxed);
  task();
}

ThreadPool::PoolStats ThreadPool::stats() const {
  PoolStats stats;
  stats.threads = thread_count_;
  stats.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  stats.tasks_inline = tasks_inline_.load(std::memory_order_relaxed);
  stats.threads_created = threads_created_;
  std::lock_guard<std::mutex> lock(mu_);
  stats.queue_depth = tasks_.size();
  stats.peak_queue_depth = peak_queue_depth_;
  return stats;
}

bool ThreadPool::tryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
  }
  // Nested parallelFor/submit from inside the task must run inline, same
  // as on a worker; restore the caller's state afterwards (it may itself
  // be outside any pool job).
  const bool was_in_job = tl_in_pool_job;
  tl_in_pool_job = true;
  task();
  tl_in_pool_job = was_in_job;
  return true;
}

std::size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

std::size_t ThreadPool::peakQueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queue_depth_;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void TaskGroup::wait() {
  std::vector<std::function<void()>> tasks;
  tasks.swap(tasks_);
  pool_.parallelFor(0, tasks.size(), 1,
                    [&tasks](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) tasks[i]();
                    });
}

}  // namespace nsc::exec
