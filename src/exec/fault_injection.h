// FaultInjector: deterministic, seeded fault injection for the serving
// layer's robustness harness (tests/test_chaos.cpp).
//
// The durability contract is that injected faults never change what a
// caller observes: a dispatch exception is recovered by rebuilding the
// session core from its last good checkpoint and retrying; a forced
// eviction round-trips the session through a disk checkpoint; a torn
// checkpoint write is caught by read-back verification and the eviction is
// aborted.  The injector is how that contract is *proved* rather than
// asserted: hook points in the admission queue, shard dispatch, session
// table, and checkpoint I/O consult one seeded RNG, and the chaos suite
// sweeps seeds asserting replies stay bit-identical to a fault-free run.
//
// Determinism: the RNG sequence is fixed by the seed, but which request a
// fault lands on depends on thread interleaving — deliberately so.  The
// invariant under test is interleaving-independent (every reply identical,
// every promise settled), which is exactly why it is safe to assert across
// any scheduler behaviour.
//
// Configuration: programmatic (configure()) for tests, or the NSC_FAULTS
// environment variable for whole-process runs (CI chaos lane, examples):
//
//   NSC_FAULTS="seed=7,dispatch=0.2,session=0.2,evict=0.3,torn=0.5,delay=0.1,delay_us=200"
//
// keys: seed (u64), dispatch / session / evict / torn / corrupt / delay
// (probabilities in [0,1]), delay_us (microseconds); `delay` covers every
// delay-capable site with one probability.
// Unknown keys and malformed values disable the plan with one stderr
// warning — a typo must not silently run a different experiment.
//
// Retry suppression: recovery paths re-execute a request that already had
// its fault; FaultInjector::Suppress disables injection on the current
// thread for its scope so an injected fault cannot re-fire forever and
// starve the retry budget (real faults still propagate and exhaust it).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace nsc::exec {

// Where a fault is being considered.  Sites map 1:1 to hook points:
//   kQueuePush / kQueuePop   admission queue (delays only)
//   kDispatch                shard dispatch, before any request work
//   kSession                 mid-request, after a session command's script
//                            replay (exercises partial-mutation rollback)
//   kSessionClaim            session-table claim (delays only)
//   kCheckpointWrite         spill-to-disk (torn / corrupted bytes)
//   kCheckpointRead          restore-from-disk (delays only)
//   kEvictSweep              post-request sweep (forced evictions)
enum class FaultSite {
  kQueuePush,
  kQueuePop,
  kDispatch,
  kSession,
  kSessionClaim,
  kCheckpointWrite,
  kCheckpointRead,
  kEvictSweep,
};

// The exception type every injected throw raises; recovery code treats it
// like any other std::exception (nothing may pattern-match on it — the
// point is surviving *arbitrary* dispatch exceptions).
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Per-site probabilities; 0 everywhere (the default) means the injector is
// completely inert and every hook is a single predicted-false branch.
struct FaultPlan {
  std::uint64_t seed = 1;
  double dispatch_throw = 0.0;   // P(throw InjectedFault) at kDispatch
  double session_throw = 0.0;    // P(throw) at kSession (mid-request)
  double force_evict = 0.0;      // P(force-spill a shard's sessions) at sweep
  double torn_write = 0.0;       // P(truncate checkpoint bytes mid-write)
  double corrupt_write = 0.0;    // P(flip one checkpoint byte mid-write)
  double delay = 0.0;            // P(injected sleep) at delay-capable sites
  int delay_us = 100;            // sleep length when a delay fires
  bool enabled() const {
    return dispatch_throw > 0 || session_throw > 0 || force_evict > 0 ||
           torn_write > 0 || corrupt_write > 0 || delay > 0;
  }
};

class FaultInjector {
 public:
  // Lifetime fault counters (what actually fired), for tests to assert the
  // sweep exercised real faults and for ops visibility.
  struct Counters {
    std::uint64_t throws_injected = 0;
    std::uint64_t delays_injected = 0;
    std::uint64_t evictions_forced = 0;
    std::uint64_t writes_torn = 0;
    std::uint64_t writes_corrupted = 0;
  };

  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan) { configure(plan); }

  // Installs `plan`, reseeding the RNG and zeroing the counters.
  void configure(const FaultPlan& plan);
  FaultPlan plan() const;
  Counters counters() const;

  // The process-wide injector, configured once from NSC_FAULTS (inert when
  // the variable is unset).  Service instances default to this; tests pass
  // their own instance instead so suites cannot contaminate each other.
  static FaultInjector& global();

  // Throws InjectedFault with probability plan().<site>_throw.  Only
  // kDispatch and kSession throw; other sites are no-ops here.
  void maybeThrow(FaultSite site);

  // Sleeps plan().delay_us with probability plan().delay.  Never throws.
  void maybeDelay(FaultSite site);

  // True (with probability force_evict) when the post-request sweep should
  // spill the shard's sessions to disk regardless of idle time.
  bool shouldForceEvict();

  // Checkpoint-write byte mangling: returns `bytes` unchanged, truncated
  // (torn write), or with one byte flipped (bit rot), per the plan.  The
  // checkpoint store writes the mangled bytes and is expected to *catch*
  // the damage via read-back verification before committing the spill.
  std::string mangleCheckpointBytes(std::string bytes);

  // RAII: disables this injector's faults on the current thread (recovery
  // retries run under Suppress so an injected fault fires at most once per
  // request attempt chain).
  class Suppress {
   public:
    Suppress();
    ~Suppress();
    Suppress(const Suppress&) = delete;
    Suppress& operator=(const Suppress&) = delete;
  };

 private:
  // Fast path: false when the plan is inert or this thread is suppressed.
  bool armed() const;
  bool fire(double FaultPlan::*probability, std::uint64_t Counters::*counter);

  mutable std::mutex mu_;
  FaultPlan plan_{};
  std::atomic<bool> enabled_{false};  // plan_.enabled(), cached for armed()
  common::Rng rng_{1};
  Counters counters_{};
};

// Parses an NSC_FAULTS-style spec ("seed=7,dispatch=0.2,...").  Returns an
// inert plan and sets `error` on malformed input.
FaultPlan parseFaultPlan(const std::string& spec, std::string* error);

}  // namespace nsc::exec
