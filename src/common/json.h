// Minimal JSON value, parser, and pretty-printer.
//
// Used for program/diagram file I/O (the editor saves both graphical and
// semantic data, paper Section 4), session checkpoints, and the wire
// protocol (net/wire.h).  Supports the full JSON grammar except \u escapes
// beyond Latin-1; numbers are stored as double with an integer fast path
// preserved on output when exact.
//
// Non-finite dialect: standard JSON has no representation for NaN or the
// infinities, and printf-style "nan"/"inf" text would not parse back — a
// silent round-trip break.  dump() emits explicit NaN / Infinity /
// -Infinity tokens and parse() accepts them, so every double value class
// round-trips.  NaN payload bits are canonicalized to the quiet NaN; where
// bit-exactness matters (checkpoint plane words, wire plane images), values
// travel as 16-hex-digit IEEE-754 bit-pattern strings instead of numbers.
// Note NaN != NaN, so Json::operator== is false for documents holding NaN;
// compare dumps when that matters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace nsc::common {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys sorted: serialized output is deterministic, which
// golden tests rely on.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(unsigned v) : value_(static_cast<double>(v)) {}
  Json(std::int64_t v) : value_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : value_(static_cast<double>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool isBool() const { return std::holds_alternative<bool>(value_); }
  bool isNumber() const { return std::holds_alternative<double>(value_); }
  bool isString() const { return std::holds_alternative<std::string>(value_); }
  bool isArray() const { return std::holds_alternative<JsonArray>(value_); }
  bool isObject() const { return std::holds_alternative<JsonObject>(value_); }

  bool asBool() const { return std::get<bool>(value_); }
  double asDouble() const { return std::get<double>(value_); }
  std::int64_t asInt() const { return static_cast<std::int64_t>(std::get<double>(value_)); }
  const std::string& asString() const { return std::get<std::string>(value_); }
  const JsonArray& asArray() const { return std::get<JsonArray>(value_); }
  JsonArray& asArray() { return std::get<JsonArray>(value_); }
  const JsonObject& asObject() const { return std::get<JsonObject>(value_); }
  JsonObject& asObject() { return std::get<JsonObject>(value_); }

  // Object field access; `at` throws std::out_of_range if missing.
  const Json& at(const std::string& key) const { return asObject().at(key); }
  bool has(const std::string& key) const {
    return isObject() && asObject().count(key) > 0;
  }
  Json& operator[](const std::string& key) {
    return std::get<JsonObject>(value_)[key];
  }

  // Typed getters with defaults for optional fields.
  std::int64_t getInt(const std::string& key, std::int64_t fallback = 0) const;
  double getDouble(const std::string& key, double fallback = 0.0) const;
  std::string getString(const std::string& key, std::string fallback = {}) const;
  bool getBool(const std::string& key, bool fallback = false) const;

  bool operator==(const Json& other) const = default;

  // Compact single-line form.
  std::string dump() const;
  // Indented multi-line form.
  std::string dumpPretty(int indent = 2) const;

  static Result<Json> parse(std::string_view text);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace nsc::common
