// Deterministic RNG for property tests, workload generators, and the
// error-injection studies.  SplitMix64 core: tiny, fast, and reproducible
// across platforms (std::mt19937 distributions are not portable).
#pragma once

#include <cstdint>
#include <vector>

namespace nsc::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  bool chance(double p) { return uniform() < p; }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[below(items.size())];
  }

 private:
  std::uint64_t state_;
};

}  // namespace nsc::common
