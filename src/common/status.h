// Lightweight Status / Result<T> for recoverable errors.
//
// The editor and checker report user-facing problems through
// checker::Diagnostic; Status/Result is for API-level failures (bad file,
// malformed input, unsatisfiable request) where exceptions would be noise.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace nsc::common {

class Status {
 public:
  static Status ok() { return Status(); }
  static Status error(std::string message) { return Status(std::move(message)); }

  bool isOk() const { return !message_.has_value(); }
  explicit operator bool() const { return isOk(); }

  // Message of a failed status; empty string when ok.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  Status() = default;
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {
    if (status_.isOk()) {
      throw std::logic_error("Result constructed from ok Status without value");
    }
  }
  static Result<T> error(std::string message) {
    return Result<T>(Status::error(std::move(message)));
  }

  bool isOk() const { return value_.has_value(); }
  explicit operator bool() const { return isOk(); }

  const std::string& message() const { return status_.message(); }
  const Status& status() const { return status_; }

  // Preconditions: isOk().
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& valueOr(const T& fallback) const {
    return value_ ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::ok();
};

}  // namespace nsc::common
