// Strict environment-variable parsing.
//
// Runtime knobs (NSC_THREADS, NSC_ENSEMBLE_LANES, NSC_FAULTS) are read from
// the environment; a typo there must degrade to the documented default with
// one visible warning, never to UB or a silently misconfigured service.
// std::atoi-style parsing ("8x" -> 8, "junk" -> 0, overflow UB) is exactly
// the failure mode this header replaces: parseEnvInt accepts a value only
// when the whole string is one in-range decimal integer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace nsc::common {

// Parses `text` as a strict base-10 integer: optional sign, digits, nothing
// else (surrounding whitespace rejected).  Returns nullopt on empty input,
// trailing garbage, or overflow of long long.
std::optional<long long> parseInt(const std::string& text);

// Reads environment variable `name` and parses it strictly.  Returns
// nullopt when the variable is unset.  When it is set but malformed or
// outside [min, max], returns nullopt after emitting (once per variable per
// process) a single stderr warning naming the variable, the offending
// value, and the fallback behaviour — misconfiguration is surfaced, not
// silently absorbed.
std::optional<long long> envInt(const char* name, long long min_value,
                                long long max_value);

// Testing hooks: envWarningCount() is the number of warnings emitted since
// process start or the last reset; resetEnvWarnings() forgets both the
// count and which variables have already warned, so a test can assert the
// warning fires (exactly once).
std::uint64_t envWarningCount();
void resetEnvWarnings();

}  // namespace nsc::common
