// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nsc::common {

std::vector<std::string> split(std::string_view text, char sep);

// Split on whitespace runs, dropping empty tokens.
std::vector<std::string> splitWhitespace(std::string_view text);

std::string trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);

std::string toLower(std::string_view text);

// printf-style formatting into std::string.
std::string strFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-readable byte count: "128 MB", "2 GB".
std::string bytesHuman(std::uint64_t bytes);

std::string joinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// FNV-1a over a byte string — the same non-cryptographic content hash
// mc::Executable::fingerprint() mixes with, exposed for checkpoint
// integrity checksums (service/checkpoint.h) and other stable identities.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace nsc::common
