#include "common/bitvector.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace nsc::common {

namespace {
constexpr std::size_t kWordBits = 64;

std::uint64_t maskOf(std::size_t width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}
}  // namespace

BitVector::BitVector(std::size_t width_bits)
    : width_(width_bits), words_((width_bits + kWordBits - 1) / kWordBits, 0) {}

void BitVector::setField(std::size_t offset, std::size_t width,
                         std::uint64_t value) {
  if (width > 64 || offset + width > width_) {
    throw std::out_of_range("BitVector::setField out of range");
  }
  if (width == 0) return;
  value &= maskOf(width);
  const std::size_t w0 = offset / kWordBits;
  const std::size_t b0 = offset % kWordBits;
  const std::size_t in_first = std::min(width, kWordBits - b0);
  words_[w0] &= ~(maskOf(in_first) << b0);
  words_[w0] |= (value & maskOf(in_first)) << b0;
  if (in_first < width) {
    const std::size_t rest = width - in_first;
    words_[w0 + 1] &= ~maskOf(rest);
    words_[w0 + 1] |= value >> in_first;
  }
}

std::uint64_t BitVector::field(std::size_t offset, std::size_t width) const {
  if (width > 64 || offset + width > width_) {
    throw std::out_of_range("BitVector::field out of range");
  }
  if (width == 0) return 0;
  const std::size_t w0 = offset / kWordBits;
  const std::size_t b0 = offset % kWordBits;
  const std::size_t in_first = std::min(width, kWordBits - b0);
  std::uint64_t value = (words_[w0] >> b0) & maskOf(in_first);
  if (in_first < width) {
    const std::size_t rest = width - in_first;
    value |= (words_[w0 + 1] & maskOf(rest)) << in_first;
  }
  return value;
}

void BitVector::setBit(std::size_t index, bool value) {
  setField(index, 1, value ? 1 : 0);
}

bool BitVector::bit(std::size_t index) const { return field(index, 1) != 0; }

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

bool BitVector::allZero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void BitVector::clear() {
  for (auto& w : words_) w = 0;
}

std::string BitVector::toHex() const {
  static const char* digits = "0123456789abcdef";
  std::string out;
  const std::size_t nibbles = (width_ + 3) / 4;
  out.reserve(nibbles);
  for (std::size_t i = nibbles; i-- > 0;) {
    const std::size_t offset = i * 4;
    const std::size_t w = std::min<std::size_t>(4, width_ - offset);
    out.push_back(digits[field(offset, w)]);
  }
  return out;
}

BitVector BitVector::fromHex(std::string_view hex, std::size_t width_bits) {
  BitVector bv(width_bits);
  const std::size_t nibbles = (width_bits + 3) / 4;
  if (hex.size() != nibbles) {
    throw std::invalid_argument("BitVector::fromHex size mismatch");
  }
  for (std::size_t i = 0; i < nibbles; ++i) {
    const char c = hex[nibbles - 1 - i];
    std::uint64_t v = 0;
    if (c >= '0' && c <= '9') {
      v = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("BitVector::fromHex bad digit");
    }
    const std::size_t offset = i * 4;
    const std::size_t w = std::min<std::size_t>(4, width_bits - offset);
    bv.setField(offset, w, v);
  }
  return bv;
}

}  // namespace nsc::common
