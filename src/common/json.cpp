#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/strings.h"

namespace nsc::common {

std::int64_t Json::getInt(const std::string& key, std::int64_t fallback) const {
  if (!has(key) || !at(key).isNumber()) return fallback;
  return at(key).asInt();
}

double Json::getDouble(const std::string& key, double fallback) const {
  if (!has(key) || !at(key).isNumber()) return fallback;
  return at(key).asDouble();
}

std::string Json::getString(const std::string& key, std::string fallback) const {
  if (!has(key) || !at(key).isString()) return fallback;
  return at(key).asString();
}

bool Json::getBool(const std::string& key, bool fallback) const {
  if (!has(key) || !at(key).isBool()) return fallback;
  return at(key).asBool();
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // printf's "nan"/"inf" text is not JSON — a dump containing it would
    // not parse back, which is exactly the silent round-trip break the
    // wire protocol cannot afford.  Emit explicit NaN / Infinity /
    // -Infinity tokens instead (the parser accepts them; NaN payload bits
    // are canonicalized to the quiet NaN — transports that need the exact
    // bit pattern use the 16-hex word encoding, not JSON numbers).
    if (std::isnan(v)) {
      out += "NaN";
    } else {
      out += v < 0 ? "-Infinity" : "Infinity";
    }
    return;
  }
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    out += strFormat("%lld", static_cast<long long>(v));
  } else {
    out += strFormat("%.17g", v);
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    skipWs();
    auto v = parseValue();
    if (!v) return v;
    skipWs();
    if (pos_ != text_.size()) {
      return Result<Json>::error(errAt("trailing characters"));
    }
    return v;
  }

 private:
  std::string errAt(const std::string& what) {
    return strFormat("JSON parse error at offset %zu: %s", pos_, what.c_str());
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> parseValue() {
    if (pos_ >= text_.size()) return Result<Json>::error(errAt("unexpected end"));
    const char c = text_[pos_];
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        auto s = parseString();
        if (!s) return Result<Json>::error(s.message());
        return Json(std::move(s).value());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") { pos_ += 4; return Json(true); }
        return Result<Json>::error(errAt("bad literal"));
      case 'f':
        if (text_.substr(pos_, 5) == "false") { pos_ += 5; return Json(false); }
        return Result<Json>::error(errAt("bad literal"));
      case 'n':
        if (text_.substr(pos_, 4) == "null") { pos_ += 4; return Json(nullptr); }
        return Result<Json>::error(errAt("bad literal"));
      case 'N':
        if (text_.substr(pos_, 3) == "NaN") {
          pos_ += 3;
          return Json(std::numeric_limits<double>::quiet_NaN());
        }
        return Result<Json>::error(errAt("bad literal"));
      default: return parseNumber();
    }
  }

  Result<Json> parseNumber() {
    const std::size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      negative = text_[pos_] == '-';
      ++pos_;
    }
    // The explicit non-finite tokens appendNumber emits ("Infinity",
    // "-Infinity"; bare "NaN" is handled in parseValue).
    if (text_.substr(pos_, 8) == "Infinity") {
      pos_ += 8;
      const double inf = std::numeric_limits<double>::infinity();
      return Json(negative ? -inf : inf);
    }
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') { ++pos_; digits(); }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) return Result<Json>::error(errAt("bad number"));
    const std::string token(text_.substr(start, pos_ - start));
    return Json(std::strtod(token.c_str(), nullptr));
  }

  Result<std::string> parseString() {
    if (!consume('"')) return Result<std::string>::error(errAt("expected string"));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Result<std::string>::error(errAt("bad \\u"));
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else {
              // Latin-1 subset is enough for our files; encode as UTF-8.
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return Result<std::string>::error(errAt("bad escape"));
        }
      } else {
        out.push_back(c);
      }
    }
    return Result<std::string>::error(errAt("unterminated string"));
  }

  Result<Json> parseArray() {
    consume('[');
    JsonArray arr;
    skipWs();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      skipWs();
      auto v = parseValue();
      if (!v) return v;
      arr.push_back(std::move(v).value());
      skipWs();
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) return Result<Json>::error(errAt("expected , or ]"));
    }
  }

  Result<Json> parseObject() {
    consume('{');
    JsonObject obj;
    skipWs();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skipWs();
      auto key = parseString();
      if (!key) return Result<Json>::error(key.message());
      skipWs();
      if (!consume(':')) return Result<Json>::error(errAt("expected :"));
      skipWs();
      auto v = parseValue();
      if (!v) return v;
      obj[std::move(key).value()] = std::move(v).value();
      skipWs();
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) return Result<Json>::error(errAt("expected , or }"));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isNumber()) {
    appendNumber(out, asDouble());
  } else if (isString()) {
    appendEscaped(out, asString());
  } else if (isArray()) {
    const auto& arr = asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      newline(depth + 1);
      arr[i].dumpTo(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const auto& obj = asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      appendEscaped(out, k);
      out.push_back(':');
      if (pretty) out.push_back(' ');
      v.dumpTo(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out, 0, 0);
  return out;
}

std::string Json::dumpPretty(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

Result<Json> Json::parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace nsc::common
