// Arbitrary-width bit vector with bit-field access.
//
// The NSC microword is "a few thousand bits ... encoded in dozens of
// separate fields" (paper, Section 3).  BitVector is the storage type for
// microwords: a fixed width chosen at construction, with get/set of
// arbitrary [offset, offset+width) fields that may straddle 64-bit word
// boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nsc::common {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t width_bits);

  std::size_t width() const { return width_; }

  // Field accessors.  `width` must be in [0, 64]; the field must lie
  // entirely inside the vector.  Values wider than the field are masked.
  void setField(std::size_t offset, std::size_t width, std::uint64_t value);
  std::uint64_t field(std::size_t offset, std::size_t width) const;

  void setBit(std::size_t index, bool value);
  bool bit(std::size_t index) const;

  // Number of set bits in the whole vector.
  std::size_t popcount() const;

  // All bits zero?
  bool allZero() const;

  void clear();

  // Hex string, most-significant word first, for golden tests and dumps.
  std::string toHex() const;
  static BitVector fromHex(std::string_view hex, std::size_t width_bits);

  bool operator==(const BitVector& other) const = default;

  // Raw word access for serialization; words are little-endian (word 0
  // holds bits [0, 64)).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nsc::common
