#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace nsc::common {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string toLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string strFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string bytesHuman(std::uint64_t bytes) {
  constexpr std::uint64_t kKb = 1024;
  constexpr std::uint64_t kMb = kKb * 1024;
  constexpr std::uint64_t kGb = kMb * 1024;
  if (bytes % kGb == 0 && bytes >= kGb) return strFormat("%llu GB", static_cast<unsigned long long>(bytes / kGb));
  if (bytes % kMb == 0 && bytes >= kMb) return strFormat("%llu MB", static_cast<unsigned long long>(bytes / kMb));
  if (bytes % kKb == 0 && bytes >= kKb) return strFormat("%llu KB", static_cast<unsigned long long>(bytes / kKb));
  return strFormat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string joinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace nsc::common
