#include "common/env.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace nsc::common {

std::optional<long long> parseInt(const std::string& text) {
  if (text.empty()) return std::nullopt;
  // strtoll skips leading whitespace; the documented contract does not.
  const char first = text.front();
  if (first != '+' && first != '-' && (first < '0' || first > '9')) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::nullopt;  // garbage
  if (errno == ERANGE) return std::nullopt;                      // overflow
  return value;
}

namespace {
// One warning per variable per process: a bad knob is worth exactly one
// line of stderr, not one per pool construction / ensemble run.
std::mutex warned_mu;
std::set<std::string>& warnedSet() {
  static std::set<std::string> warned;
  return warned;
}
std::atomic<std::uint64_t> warnings_emitted{0};

void warnOnce(const char* name, const char* value, const char* why) {
  std::lock_guard<std::mutex> lock(warned_mu);
  if (!warnedSet().insert(name).second) return;
  warnings_emitted.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "nsc: ignoring %s='%s' (%s); using the default\n",
               name, value, why);
}
}  // namespace

std::optional<long long> envInt(const char* name, long long min_value,
                                long long max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  const std::optional<long long> parsed = parseInt(raw);
  if (!parsed.has_value()) {
    warnOnce(name, raw, "not an integer");
    return std::nullopt;
  }
  if (*parsed < min_value || *parsed > max_value) {
    warnOnce(name, raw, "out of range");
    return std::nullopt;
  }
  return parsed;
}

std::uint64_t envWarningCount() {
  return warnings_emitted.load(std::memory_order_relaxed);
}

void resetEnvWarnings() {
  std::lock_guard<std::mutex> lock(warned_mu);
  warnedSet().clear();
  warnings_emitted.store(0, std::memory_order_relaxed);
}

}  // namespace nsc::common
