// nsc::Client — thin blocking client for the framed wire protocol.
//
// One connection, one outstanding request at a time: call() frames the
// request, writes it, and blocks until the matching kReply (decoded back
// into a svc::ServiceReply bit-identical to the in-process one) or a
// kProtocolError (surfaced as a failed Result; lastProtocolError() keeps
// the typed code).  Socket timeouts bound every blocking step; when
// `reconnect` is set, a connection that proves dead on *send* is re-dialed
// once and the request re-sent — a failure after the request may have
// reached the server is never silently retried (requests are not assumed
// idempotent).
//
// Pipelining (many requests in flight, replies out of order) is the
// server's business; a client that wants it can speak frames directly
// (net/frame.h + net/wire.h are public).  This class is the convenience
// edge: nsc_loadgen drives hundreds of these from plain threads.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/wire.h"
#include "service/service.h"

namespace nsc {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  // Send/receive timeout for each blocking socket operation; 0 = none.
  std::int64_t timeout_ms = 30000;
  // Re-dial + resend once when the connection proves dead on send.
  bool reconnect = true;
  std::size_t max_payload = net::kDefaultMaxPayload;
};

class Client {
 public:
  explicit Client(ClientOptions options) : options_(std::move(options)) {}
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  common::Status connect();
  void close();
  bool connected() const { return fd_ >= 0; }

  // Frames `request`, writes it, blocks for the matching reply.
  common::Result<svc::ServiceReply> call(svc::Request request,
                                         svc::Admission admission = {});

  // Typed conveniences over call().
  common::Result<svc::ServiceReply> openSession(std::string script = {});
  common::Result<svc::ServiceReply> sessionCommand(svc::SessionCommand cmd);
  common::Result<svc::ServiceReply> closeSession(std::uint64_t session);
  common::Result<svc::ServiceReply> submitSession(std::string script);
  common::Result<svc::ServiceReply> generateAndRun(svc::GenerateAndRun req);
  common::Result<svc::ServiceReply> runEnsemble(svc::RunEnsemble req);
  common::Result<svc::ServiceReply> runSystemPhases(svc::RunSystemPhases req);

  // The last kProtocolError the server sent this client (code is one of
  // net::protocolErrorCodes()); empty code when none.
  const net::ProtocolError& lastProtocolError() const {
    return last_protocol_error_;
  }

 private:
  common::Status sendAll(const std::string& bytes);
  // Reads frames until one with `request_id` arrives (a blocking client
  // has exactly one in flight, so in practice the first frame matches).
  common::Result<svc::ServiceReply> readReply(std::uint64_t request_id);

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  net::ProtocolError last_protocol_error_;
};

}  // namespace nsc
