#include "client/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "net/frame.h"

namespace nsc {

using common::Result;
using common::Status;

common::Status Client::connect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::error(common::strFormat("socket: %s", std::strerror(errno)));
  }
  if (options_.timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options_.timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((options_.timeout_ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close();
    return Status::error(
        common::strFormat("bad address: %s", options_.host.c_str()));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    close();
    return Status::error(common::strFormat(
        "connect %s:%u: %s", options_.host.c_str(),
        static_cast<unsigned>(options_.port), std::strerror(err)));
  }
  return Status::ok();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::Status Client::sendAll(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::error(
          common::strFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

common::Result<svc::ServiceReply> Client::readReply(std::uint64_t request_id) {
  net::FrameReader reader(options_.max_payload);
  char buf[64 * 1024];
  net::Frame frame;
  for (;;) {
    const net::FrameReader::Next next = reader.next(frame);
    if (next == net::FrameReader::Next::kError) {
      return Result<svc::ServiceReply>::error(common::strFormat(
          "reply stream error: %s", frameErrorName(reader.error())));
    }
    if (next == net::FrameReader::Next::kNeedMore) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) {
        return Result<svc::ServiceReply>::error(
            "server closed the connection");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return Result<svc::ServiceReply>::error(
            common::strFormat("recv: %s", std::strerror(errno)));
      }
      reader.feed(buf, static_cast<std::size_t>(n));
      continue;
    }

    if (frame.type == static_cast<std::uint16_t>(net::FrameType::kReply) &&
        frame.request_id == request_id) {
      auto parsed = common::Json::parse(frame.payload);
      if (!parsed.isOk()) {
        return Result<svc::ServiceReply>::error(
            common::strFormat("bad reply payload: %s",
                              parsed.message().c_str()));
      }
      return net::replyFromJson(parsed.value());
    }
    if (frame.type ==
        static_cast<std::uint16_t>(net::FrameType::kProtocolError)) {
      auto parsed = common::Json::parse(frame.payload);
      last_protocol_error_ = parsed.isOk()
                                 ? net::protocolErrorFromJson(parsed.value())
                                 : net::ProtocolError{"unknown", ""};
      return Result<svc::ServiceReply>::error(common::strFormat(
          "protocol error %s: %s", last_protocol_error_.code.c_str(),
          last_protocol_error_.message.c_str()));
    }
    // A reply for some other id (a previous call that timed out client-side
    // settled late) — skip it and keep reading.
    frame = net::Frame{};
  }
}

common::Result<svc::ServiceReply> Client::call(svc::Request request,
                                               svc::Admission admission) {
  if (!connected()) {
    const Status status = connect();
    if (!status.isOk()) {
      return Result<svc::ServiceReply>::error(status.message());
    }
  }
  net::Frame frame;
  frame.type = static_cast<std::uint16_t>(net::frameTypeFor(request));
  frame.request_id = next_request_id_++;
  frame.payload = net::requestToJson(request, admission).dump();
  const std::string bytes = net::encodeFrame(frame);

  Status sent = sendAll(bytes);
  if (!sent.isOk() && options_.reconnect) {
    // The connection proved dead before the request could have been
    // served; one re-dial + resend is safe.
    const Status redial = connect();
    if (!redial.isOk()) {
      return Result<svc::ServiceReply>::error(redial.message());
    }
    sent = sendAll(bytes);
  }
  if (!sent.isOk()) {
    close();
    return Result<svc::ServiceReply>::error(sent.message());
  }
  auto reply = readReply(frame.request_id);
  if (!reply.isOk()) {
    // Either the stream is unsynchronized, timed out, or the server is
    // draining this connection; a fresh call() re-dials.
    close();
  }
  return reply;
}

common::Result<svc::ServiceReply> Client::openSession(std::string script) {
  return call(svc::OpenSession{std::move(script)});
}
common::Result<svc::ServiceReply> Client::sessionCommand(
    svc::SessionCommand cmd) {
  return call(std::move(cmd));
}
common::Result<svc::ServiceReply> Client::closeSession(std::uint64_t session) {
  return call(svc::CloseSession{session});
}
common::Result<svc::ServiceReply> Client::submitSession(std::string script) {
  return call(svc::SubmitSession{std::move(script)});
}
common::Result<svc::ServiceReply> Client::generateAndRun(
    svc::GenerateAndRun req) {
  return call(std::move(req));
}
common::Result<svc::ServiceReply> Client::runEnsemble(svc::RunEnsemble req) {
  return call(std::move(req));
}
common::Result<svc::ServiceReply> Client::runSystemPhases(
    svc::RunSystemPhases req) {
  return call(std::move(req));
}

}  // namespace nsc
