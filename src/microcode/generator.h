// Microcode generation: semantic pipeline diagrams -> machine instructions.
//
// "Once a complete program (or consistent program fragment) has been
// defined, the microcode generator uses the semantic data structures
// created by the graphical editor to generate machine code for the NSC.
// The checker is invoked again at this point to perform a thorough check
// of global constraints."  (paper, Section 4.)
//
// The generator also "derive[s] switch settings by interrogating the
// connection tables built by the graphical editor" (Section 5) and inserts
// the register-file timing delays the diagrams need (delay balancing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "arch/microword_spec.h"
#include "checker/checker.h"
#include "common/bitvector.h"
#include "program/program.h"

namespace nsc::mc {

// A loaded NSC program: the microwords plus the register-file images the
// loader deposits before the sequencer starts (constants such as 1/6, h^2,
// and accumulator seeds live in register files, addressed by the rf_addr
// microword fields).
struct Executable {
  std::vector<common::BitVector> words;
  std::vector<std::string> names;  // one per word, for listings/debugging
  // Register-file image per functional unit, sized register_file_words.
  std::map<arch::FuId, std::vector<double>> rf_images;

  std::size_t size() const { return words.size(); }

  // Stable content hash over microwords, names, and register-file images.
  // sim::CompiledProgram records it at the executable -> compiled-program
  // handoff, so callers holding a compiled image can tell whether it still
  // matches a (possibly regenerated) executable without re-lowering.
  std::uint64_t fingerprint() const;

  // Exact content equality — what the program cache confirms after a
  // fingerprint match, so a (however unlikely) 64-bit hash collision can
  // never serve the wrong compiled program.
  bool operator==(const Executable&) const = default;
};

struct GenerateOptions {
  bool auto_balance = true;  // insert register-file delays automatically
  bool run_checker = true;   // thorough global check before encoding
};

struct GenerateResult {
  bool ok = false;
  Executable exe;
  check::DiagnosticList diagnostics;
  // The balanced program actually encoded (diagrams with delays inserted);
  // useful for displaying the final diagram back to the user.
  prog::Program balanced;
};

class Generator {
 public:
  explicit Generator(const arch::Machine& machine)
      : machine_(machine),
        spec_(arch::MicrowordSpec::shared(machine)),
        checker_(machine) {}

  const arch::MicrowordSpec& spec() const { return *spec_; }

  GenerateResult generate(const prog::Program& program,
                          const GenerateOptions& options = {}) const;

 private:
  void encodeDiagram(const prog::PipelineDiagram& diagram,
                     common::BitVector& word,
                     std::map<arch::FuId, std::vector<double>>& rf_images,
                     check::DiagnosticList& diagnostics) const;
  // Returns the register-file address holding `value` in `image`,
  // allocating a slot if needed; -1 when the file is full.
  int allocRfSlot(std::vector<double>& image, double value) const;

  const arch::Machine& machine_;
  std::shared_ptr<const arch::MicrowordSpec> spec_;
  check::Checker checker_;
};

}  // namespace nsc::mc
