#include "microcode/generator.h"

#include <cmath>
#include <cstring>

#include "common/strings.h"
#include "program/timing.h"

namespace nsc::mc {

using arch::Endpoint;
using arch::EndpointKind;
using arch::MicrowordSpec;
using common::strFormat;

std::uint64_t Executable::fingerprint() const {
  // FNV-1a over the serialized program content.  Not cryptographic — just a
  // stable identity for compiled-program reuse checks and bench reports.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(words.size());
  for (const common::BitVector& word : words) {
    mix(word.width());
    for (const std::uint64_t w : word.words()) mix(w);
  }
  for (const std::string& name : names) {
    mix(name.size());
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  }
  for (const auto& [fu, image] : rf_images) {
    mix(static_cast<std::uint64_t>(fu));
    mix(image.size());
    for (const double v : image) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

int Generator::allocRfSlot(std::vector<double>& image, double value) const {
  for (std::size_t i = 0; i < image.size(); ++i) {
    if (image[i] == value || (std::isnan(image[i]) && std::isnan(value))) {
      return static_cast<int>(i);
    }
  }
  if (static_cast<int>(image.size()) >=
      machine_.config().register_file_words) {
    return -1;
  }
  image.push_back(value);
  return static_cast<int>(image.size()) - 1;
}

void Generator::encodeDiagram(
    const prog::PipelineDiagram& diagram, common::BitVector& word,
    std::map<arch::FuId, std::vector<double>>& rf_images,
    check::DiagnosticList& diagnostics) const {
  // --- Functional units and ALS configuration ---
  for (const prog::AlsUse& use : diagram.als_uses) {
    const arch::AlsInfo& info = machine_.als(use.als);
    spec_->set(word, strFormat("als%02d.bypass", use.als), use.bypass ? 1 : 0);
    for (std::size_t slot = 0; slot < use.fu.size() && slot < info.fus.size();
         ++slot) {
      const prog::FuUse& fu = use.fu[slot];
      if (!fu.enabled) continue;
      const arch::FuId id = info.fus[slot];
      spec_->set(word, MicrowordSpec::fuField(id, "enable"), 1);
      spec_->set(word, MicrowordSpec::fuField(id, "opcode"),
                static_cast<std::uint64_t>(fu.op));
      spec_->set(word, MicrowordSpec::fuField(id, "in_a_sel"),
                static_cast<std::uint64_t>(fu.in_a));
      spec_->set(word, MicrowordSpec::fuField(id, "in_b_sel"),
                static_cast<std::uint64_t>(fu.in_b));
      spec_->set(word, MicrowordSpec::fuField(id, "rf_mode"),
                static_cast<std::uint64_t>(fu.rf_mode));
      // The delay field carries (port << shift)?  No: the queue serves one
      // input; encode the port in the low bit of rf_mode's companion by
      // convention: delay value in rf_delay, served port in bit 0 of
      // rf_addr when in delay mode.  Constants and accumulator seeds use
      // rf_addr as a register-file address instead.
      spec_->set(word, MicrowordSpec::fuField(id, "rf_delay"),
                static_cast<std::uint64_t>(fu.rf_delay));
      const bool needs_const =
          fu.in_a == arch::InputSelect::kRegisterFile ||
          fu.in_b == arch::InputSelect::kRegisterFile ||
          fu.rf_mode == arch::RfMode::kAccum;
      if (needs_const) {
        auto& image = rf_images[id];
        const int addr = allocRfSlot(image, fu.rf_constant);
        if (addr < 0) {
          diagnostics.error(check::Rule::kRfDelayRange,
                            strFormat("fu%d register file is full", id));
          continue;
        }
        spec_->set(word, MicrowordSpec::fuField(id, "rf_addr"),
                  static_cast<std::uint64_t>(addr));
      } else if (fu.rf_mode == arch::RfMode::kDelay) {
        spec_->set(word, MicrowordSpec::fuField(id, "rf_addr"),
                  static_cast<std::uint64_t>(fu.rf_delay_port & 1));
      }
    }
  }

  // --- Switch settings, derived from the connection tables ---
  for (const prog::Connection& c : diagram.connections) {
    const bool chain = c.from.kind == EndpointKind::kFuOutput &&
                       c.to.kind == EndpointKind::kFuInput &&
                       machine_.isChainPath(c.from.unit, c.to.unit);
    if (chain) continue;  // hardwired internal ALS path, no switch port
    const int src = machine_.sourceIndex(c.from);
    const int dst = machine_.destinationIndex(c.to);
    if (src < 0 || dst < 0) {
      diagnostics.error(check::Rule::kEndpointRange,
                        "unroutable connection " + c.toString());
      continue;
    }
    spec_->set(word, MicrowordSpec::switchField(dst),
              static_cast<std::uint64_t>(src) + 1);
  }

  // --- DMA engines ---
  std::uint64_t irq_mask = 0;
  for (const auto& [endpoint, dma] : diagram.dma) {
    switch (endpoint.kind) {
      case EndpointKind::kPlaneRead:
      case EndpointKind::kPlaneWrite: {
        const arch::PlaneId p = endpoint.unit;
        spec_->set(word, MicrowordSpec::planeField(p, "mode"),
                  endpoint.kind == EndpointKind::kPlaneRead ? 1 : 2);
        spec_->set(word, MicrowordSpec::planeField(p, "base"), dma.base);
        spec_->setSigned(word, MicrowordSpec::planeField(p, "stride"),
                        dma.stride);
        spec_->set(word, MicrowordSpec::planeField(p, "count"), dma.count);
        spec_->set(word, MicrowordSpec::planeField(p, "count2"), dma.count2);
        spec_->setSigned(word, MicrowordSpec::planeField(p, "stride2"),
                        dma.stride2);
        irq_mask |= std::uint64_t{1} << (p % 16);
        break;
      }
      case EndpointKind::kCacheRead:
      case EndpointKind::kCacheWrite: {
        const arch::CacheId c = endpoint.unit;
        // Read and write sides share mode bits: 1 read, 2 write, 3 both.
        const std::uint64_t prev =
            spec_->get(word, MicrowordSpec::cacheField(c, "mode"));
        const std::uint64_t bit =
            endpoint.kind == EndpointKind::kCacheRead ? 1 : 2;
        spec_->set(word, MicrowordSpec::cacheField(c, "mode"), prev | bit);
        spec_->set(word, MicrowordSpec::cacheField(c, "read_buffer"),
                  static_cast<std::uint64_t>(dma.read_buffer));
        spec_->set(word, MicrowordSpec::cacheField(c, "base"), dma.base);
        spec_->setSigned(word, MicrowordSpec::cacheField(c, "stride"),
                        dma.stride);
        spec_->set(word, MicrowordSpec::cacheField(c, "count"), dma.count);
        if (dma.swap_buffers) {
          spec_->set(word, MicrowordSpec::cacheField(c, "swap"), 1);
        }
        break;
      }
      default:
        diagnostics.error(check::Rule::kDmaMissing,
                          "DMA spec attached to " + endpoint.toString());
    }
  }
  spec_->set(word, "irq.mask", irq_mask);

  // --- Shift/delay units ---
  for (const prog::ShiftDelayUse& use : diagram.sd_uses) {
    spec_->set(word, MicrowordSpec::sdField(use.sd, "enable"), 1);
    for (std::size_t t = 0; t < use.tap_delays.size(); ++t) {
      spec_->set(word,
                MicrowordSpec::sdField(use.sd, strFormat("tap%zu", t)),
                static_cast<std::uint64_t>(use.tap_delays[t]));
    }
  }

  // --- Condition latch and sequencer ---
  if (diagram.cond.has_value()) {
    spec_->set(word, "cond.enable", 1);
    spec_->set(word, "cond.src_fu",
              static_cast<std::uint64_t>(diagram.cond->src_fu));
    spec_->set(word, "cond.reg",
              static_cast<std::uint64_t>(diagram.cond->cond_reg));
  }
  spec_->set(word, "seq.op", static_cast<std::uint64_t>(diagram.seq.op));
  spec_->set(word, "seq.target", static_cast<std::uint64_t>(diagram.seq.target));
  spec_->set(word, "seq.cond_reg",
            static_cast<std::uint64_t>(diagram.seq.cond_reg));
  spec_->set(word, "seq.count", static_cast<std::uint64_t>(diagram.seq.count));
}

GenerateResult Generator::generate(const prog::Program& program,
                                   const GenerateOptions& options) const {
  GenerateResult result;
  result.balanced = program;

  if (options.auto_balance) {
    for (std::size_t i = 0; i < result.balanced.size(); ++i) {
      const int inserted =
          prog::balanceDelays(machine_, result.balanced[i]);
      if (inserted < 0) {
        result.diagnostics.error(
            check::Rule::kTimingAlignment,
            "pipeline cannot be balanced with register-file delays",
            static_cast<int>(i));
      }
    }
  }

  if (options.run_checker) {
    result.diagnostics.append(checker_.checkProgram(result.balanced));
  }
  if (result.diagnostics.hasErrors()) {
    result.ok = false;
    return result;
  }

  for (std::size_t i = 0; i < result.balanced.size(); ++i) {
    common::BitVector word = spec_->makeWord();
    encodeDiagram(result.balanced[i], word, result.exe.rf_images,
                  result.diagnostics);
    result.exe.words.push_back(std::move(word));
    result.exe.names.push_back(result.balanced[i].name);
  }
  result.ok = !result.diagnostics.hasErrors();
  return result;
}

}  // namespace nsc::mc
