#include "microcode/disasm.h"

#include "common/strings.h"

namespace nsc::mc {

using arch::Endpoint;
using arch::MicrowordSpec;
using common::strFormat;

namespace {

const char* inputSelName(std::uint64_t raw) {
  return inputSelectName(static_cast<arch::InputSelect>(raw));
}

}  // namespace

std::string disassemble(const arch::Machine& machine,
                        const arch::MicrowordSpec& spec,
                        const common::BitVector& word) {
  std::string out;

  for (const arch::FuInfo& fu : machine.fus()) {
    if (spec.get(word, MicrowordSpec::fuField(fu.id, "enable")) == 0) continue;
    const auto op = static_cast<arch::OpCode>(
        spec.get(word, MicrowordSpec::fuField(fu.id, "opcode")));
    const std::uint64_t a =
        spec.get(word, MicrowordSpec::fuField(fu.id, "in_a_sel"));
    const std::uint64_t b =
        spec.get(word, MicrowordSpec::fuField(fu.id, "in_b_sel"));
    const auto mode = static_cast<arch::RfMode>(
        spec.get(word, MicrowordSpec::fuField(fu.id, "rf_mode")));
    out += strFormat("  fu%02d (als%02d.%d): %-6s a=%-8s b=%-8s", fu.id,
                     fu.als, fu.slot, arch::opInfo(op).name, inputSelName(a),
                     inputSelName(b));
    if (mode == arch::RfMode::kDelay) {
      out += strFormat(" rf=delay %llu on %c",
                       static_cast<unsigned long long>(spec.get(
                           word, MicrowordSpec::fuField(fu.id, "rf_delay"))),
                       spec.get(word, MicrowordSpec::fuField(fu.id, "rf_addr")) ? 'b' : 'a');
    } else if (mode == arch::RfMode::kAccum) {
      out += strFormat(" rf=accum seed@r%llu",
                       static_cast<unsigned long long>(spec.get(
                           word, MicrowordSpec::fuField(fu.id, "rf_addr"))));
    } else if (a == static_cast<std::uint64_t>(arch::InputSelect::kRegisterFile) ||
               b == static_cast<std::uint64_t>(arch::InputSelect::kRegisterFile)) {
      out += strFormat(" rf=const@r%llu",
                       static_cast<unsigned long long>(spec.get(
                           word, MicrowordSpec::fuField(fu.id, "rf_addr"))));
    }
    out += '\n';
  }

  for (std::size_t d = 0; d < machine.destinations().size(); ++d) {
    const std::uint64_t sel =
        spec.get(word, MicrowordSpec::switchField(static_cast<int>(d)));
    if (sel == 0) continue;
    const Endpoint& src = machine.sources()[sel - 1];
    out += strFormat("  route %-14s -> %s\n", src.toString().c_str(),
                     machine.destinations()[d].toString().c_str());
  }

  for (arch::PlaneId p = 0; p < machine.config().num_memory_planes; ++p) {
    const std::uint64_t mode =
        spec.get(word, MicrowordSpec::planeField(p, "mode"));
    if (mode == 0) continue;
    out += strFormat(
        "  plane%02d %s base=%llu stride=%lld count=%llu", p,
        mode == 1 ? "read " : "write",
        static_cast<unsigned long long>(
            spec.get(word, MicrowordSpec::planeField(p, "base"))),
        static_cast<long long>(
            spec.getSigned(word, MicrowordSpec::planeField(p, "stride"))),
        static_cast<unsigned long long>(
            spec.get(word, MicrowordSpec::planeField(p, "count"))));
    const std::uint64_t count2 =
        spec.get(word, MicrowordSpec::planeField(p, "count2"));
    if (count2 > 1) {
      out += strFormat(" x%llu rows stride2=%lld",
                       static_cast<unsigned long long>(count2),
                       static_cast<long long>(spec.getSigned(
                           word, MicrowordSpec::planeField(p, "stride2"))));
    }
    out += '\n';
  }

  for (arch::CacheId c = 0; c < machine.config().num_caches; ++c) {
    const std::uint64_t mode =
        spec.get(word, MicrowordSpec::cacheField(c, "mode"));
    if (mode == 0) continue;
    out += strFormat(
        "  cache%02d %s%s buf=%llu base=%llu stride=%lld count=%llu%s\n", c,
        (mode & 1) ? "read" : "", (mode & 2) ? ((mode & 1) ? "+fill" : "fill") : "",
        static_cast<unsigned long long>(
            spec.get(word, MicrowordSpec::cacheField(c, "read_buffer"))),
        static_cast<unsigned long long>(
            spec.get(word, MicrowordSpec::cacheField(c, "base"))),
        static_cast<long long>(
            spec.getSigned(word, MicrowordSpec::cacheField(c, "stride"))),
        static_cast<unsigned long long>(
            spec.get(word, MicrowordSpec::cacheField(c, "count"))),
        spec.get(word, MicrowordSpec::cacheField(c, "swap")) ? " swap" : "");
  }

  for (arch::SdId s = 0; s < machine.config().num_shift_delay; ++s) {
    if (spec.get(word, MicrowordSpec::sdField(s, "enable")) == 0) continue;
    out += strFormat("  sd%d taps:", s);
    for (int t = 0; t < machine.config().sd_taps; ++t) {
      out += strFormat(" %llu",
                       static_cast<unsigned long long>(spec.get(
                           word, MicrowordSpec::sdField(s, strFormat("tap%d", t)))));
    }
    out += '\n';
  }

  if (spec.get(word, "cond.enable") != 0) {
    out += strFormat("  cond: latch c%llu from fu%02llu\n",
                     static_cast<unsigned long long>(spec.get(word, "cond.reg")),
                     static_cast<unsigned long long>(spec.get(word, "cond.src_fu")));
  }

  const auto seq_op = static_cast<arch::SeqOp>(spec.get(word, "seq.op"));
  out += strFormat("  seq: %s", seqOpName(seq_op));
  if (seq_op == arch::SeqOp::kJump || seq_op == arch::SeqOp::kBranchIf ||
      seq_op == arch::SeqOp::kBranchNot || seq_op == arch::SeqOp::kLoop) {
    out += strFormat(" -> %llu",
                     static_cast<unsigned long long>(spec.get(word, "seq.target")));
  }
  if (seq_op == arch::SeqOp::kBranchIf || seq_op == arch::SeqOp::kBranchNot) {
    out += strFormat(" on c%llu",
                     static_cast<unsigned long long>(spec.get(word, "seq.cond_reg")));
  }
  if (seq_op == arch::SeqOp::kLoop) {
    out += strFormat(" x%llu",
                     static_cast<unsigned long long>(spec.get(word, "seq.count")));
  }
  out += '\n';
  return out;
}

std::string listing(const arch::Machine& machine,
                    const arch::MicrowordSpec& spec, const Executable& exe) {
  std::string out;
  for (std::size_t i = 0; i < exe.words.size(); ++i) {
    out += strFormat("%03zu: %s\n", i,
                     i < exe.names.size() ? exe.names[i].c_str() : "");
    out += disassemble(machine, spec, exe.words[i]);
  }
  if (!exe.rf_images.empty()) {
    out += "register-file images:\n";
    for (const auto& [fu, image] : exe.rf_images) {
      out += strFormat("  fu%02d:", fu);
      for (double v : image) out += strFormat(" %g", v);
      out += '\n';
    }
  }
  return out;
}

std::string fieldDump(const arch::MicrowordSpec& spec,
                      const common::BitVector& word) {
  std::string out;
  for (const arch::MicroField& f : spec.fields()) {
    const std::uint64_t v = word.field(f.offset, f.width);
    if (v != 0) {
      out += strFormat("%s=%llu\n", f.name.c_str(),
                       static_cast<unsigned long long>(v));
    }
  }
  return out;
}

std::size_t nonZeroFieldCount(const arch::MicrowordSpec& spec,
                              const common::BitVector& word) {
  std::size_t n = 0;
  for (const arch::MicroField& f : spec.fields()) {
    n += word.field(f.offset, f.width) != 0;
  }
  return n;
}

}  // namespace nsc::mc
