// Microcode disassembler: turns microwords back into readable listings —
// the "reams of textual microassembler code" (paper, Section 6) that the
// visual environment replaces.  Used by tests (field-level golden checks),
// by the usability bench (counting what a textual programmer must write),
// and by the quickstart example.
#pragma once

#include <string>

#include "arch/machine.h"
#include "arch/microword_spec.h"
#include "common/bitvector.h"
#include "microcode/generator.h"

namespace nsc::mc {

// Structured one-instruction listing: active FUs, switch routes, DMA
// programs, shift/delay taps, condition latch, sequencer action.
std::string disassemble(const arch::Machine& machine,
                        const arch::MicrowordSpec& spec,
                        const common::BitVector& word);

// Full program listing.
std::string listing(const arch::Machine& machine,
                    const arch::MicrowordSpec& spec, const Executable& exe);

// Raw dump of every non-zero field as "name=value" lines (golden tests).
std::string fieldDump(const arch::MicrowordSpec& spec,
                      const common::BitVector& word);

// Number of non-zero fields in the word — how many microassembler fields a
// textual programmer would have had to write by hand.
std::size_t nonZeroFieldCount(const arch::MicrowordSpec& spec,
                              const common::BitVector& word);

}  // namespace nsc::mc
