// Wire payload codecs: typed svc::Request / svc::ServiceReply <-> the JSON
// documents that travel inside frames (net/frame.h).  docs/PROTOCOL.md is
// the normative schema; tests/test_net.cpp keeps doc and code in lockstep.
//
// Design rules:
//
//   * Plane words (request inputs, reply read-backs) are bit-exact payload:
//     they travel as concatenated 16-hex-digit IEEE-754 bit patterns — the
//     same encoding session checkpoints use — never as JSON decimal text,
//     so a reply read over a socket is bit-identical to the in-process one
//     (the end-to-end golden in tests/test_net.cpp).
//   * Enums travel as their integer codes; docs/PROTOCOL.md tables give the
//     code <-> name mapping and the lockstep test checks each name against
//     the code's own *Name() function.
//   * u64 counters travel as JSON numbers (exact to 2^53 — beyond any
//     counter the simulator produces); the one field that legitimately
//     saturates u64, CycleWindow::last (kForever), travels as a decimal
//     string.
//   * The reply deliberately omits two in-process conveniences: the raw
//     microword image (GenerateResult::exe) and the balanced program — a
//     remote client consumes diagnostics, stats, and planes, not microcode.
//     ServiceReply::program is likewise a process-local cache handle and is
//     represented by its absence; ServiceReply::verify is rebuilt from the
//     serialized diagnostics (per-instruction steady windows are engine
//     internals and do not travel).
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "net/frame.h"
#include "service/service.h"

namespace nsc::net {

// Bit-exact doubles <-> concatenated 16-hex-digit IEEE-754 bit patterns
// (the session-checkpoint scheme, re-exposed for the wire).
std::string encodeWordsHex(const std::vector<double>& words);
bool decodeWordsHex(const std::string& hex, std::vector<double>& out);

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

// The frame type carrying each request alternative.
FrameType frameTypeFor(const svc::Request& request);

// Request payload: the struct's own fields at the top level, plus an
// optional "admission" object ({"priority": 0|1, "deadline_us": N}).
common::Json requestToJson(const svc::Request& request,
                           const svc::Admission& admission = {});

struct DecodedRequest {
  svc::Request request;
  svc::Admission admission;
};
// Decodes a request payload of frame type `type`.  Fails (with a message
// suitable for a kProtocolError reply) on a non-request type, a non-object
// payload, or a field of the wrong JSON type; absent optional fields take
// the struct defaults.
common::Result<DecodedRequest> requestFromJson(std::uint16_t type,
                                               const common::Json& payload);

// ---------------------------------------------------------------------------
// Replies.
// ---------------------------------------------------------------------------

common::Json replyToJson(const svc::ServiceReply& reply);
common::Result<svc::ServiceReply> replyFromJson(const common::Json& payload);

// The reply fields that are nondeterministic by contract (timings, shard
// placement, pool backlog).  The end-to-end golden strips these before
// comparing a wire reply against its in-process reference; PROTOCOL.md
// documents the same list.
const std::vector<std::string>& nondeterministicStatsFields();

// replyToJson with the nondeterministic stats fields removed — two replies
// to the same request are byte-identical under this form regardless of
// transport, shard count, or load.
common::Json deterministicReplyJson(const svc::ServiceReply& reply);

// ---------------------------------------------------------------------------
// Protocol errors (FrameType::kProtocolError payloads).
// ---------------------------------------------------------------------------

struct ProtocolError {
  // One of protocolErrorCodes(): "bad-magic", "oversized", "bad-version",
  // "unknown-type", "bad-json", "bad-request".
  std::string code;
  std::string message;
};

common::Json protocolErrorToJson(const ProtocolError& error);
ProtocolError protocolErrorFromJson(const common::Json& payload);
const std::vector<const char*>& protocolErrorCodes();

}  // namespace nsc::net
