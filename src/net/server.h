// The network edge: a TCP listener that speaks the framed wire protocol
// (net/frame.h, net/wire.h) and maps frames onto WorkbenchService futures.
//
// Threading model: ONE server thread runs a poll() loop over the listening
// socket, a self-pipe (stop wakeup), and every live connection.  The server
// thread never executes a request — it decodes frames, submits them to the
// service (whose shard threads do the work), and each tick scans the
// pending futures with wait_for(0), encoding replies onto the owning
// connection's write buffer *in settlement order*.  Requests pipelined on
// one connection therefore come back out of order when a later one settles
// first; the request id ties each reply to its request.
//
// Error discipline (tests/test_net.cpp drives every branch):
//
//   * kBadMagic / kOversized — the byte stream itself is unsynchronized;
//     the connection gets one final kProtocolError frame (request id 0)
//     and is closed after the write drains.  Other connections are
//     untouched.
//   * bad version / unknown type / unparseable JSON / type-invalid request
//     — framing is intact; the connection gets a kProtocolError frame
//     carrying the offending frame's request id and stays open.
//   * A client that disconnects with requests in flight orphans its
//     pending futures: the server adopts them and keeps polling until they
//     settle (the service promises every admitted job settles), so a torn
//     connection never abandons a shard's work mid-flight.
//     ServerStats::orphans_settled is the witness.
//
// stop() is a graceful drain: admission of new connections and frames
// ends, pending replies are written out, then sockets close.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "service/service.h"

namespace nsc::net {

struct ServerOptions {
  // Bind address.  Port 0 binds an ephemeral port; port() reports it.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_payload = kDefaultMaxPayload;
  // Drain budget for stop(): how long to keep serving in-flight requests
  // and flushing write buffers before closing sockets anyway.
  std::int64_t drain_timeout_ms = 30000;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t protocol_errors = 0;  // kProtocolError frames sent
  std::uint64_t orphans_adopted = 0;  // futures torn connections left behind
  std::uint64_t orphans_settled = 0;  // ... that have since settled
};

class Server {
 public:
  Server(svc::WorkbenchService& service, ServerOptions options = {});
  ~Server();  // stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and launches the server thread.  Idempotent.
  common::Status start();

  // Graceful drain; idempotent.
  void stop();

  // The bound port (resolves ephemeral binds); 0 before start().
  std::uint16_t port() const { return port_.load(); }

  ServerStats stats() const;

 private:
  struct Pending {
    std::uint64_t request_id = 0;
    std::future<svc::ServiceReply> future;
  };
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbox;            // encoded frames awaiting send
    std::vector<Pending> pending;  // submitted, not yet settled
    bool draining = false;         // no more reads; close once flushed
    bool peer_eof = false;

    explicit Connection(std::size_t max_payload) : reader(max_payload) {}
  };

  void run();
  void handleReadable(Connection& conn);
  void handleFrame(Connection& conn, Frame&& frame);
  void sendProtocolError(Connection& conn, std::uint64_t request_id,
                         const char* code, std::string message);
  // Moves settled futures out of pending lists into encoded reply frames.
  void settleReplies(Connection& conn);
  bool flushOutbox(Connection& conn);  // false: connection is dead
  void closeConnection(std::size_t index);

  svc::WorkbenchService& service_;
  const ServerOptions options_;
  std::atomic<std::uint16_t> port_{0};
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<Pending> orphans_;  // futures of disconnected clients

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace nsc::net
