#include "net/frame.h"

#include <algorithm>
#include <cstring>

namespace nsc::net {

namespace {

void appendLe16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void appendLe32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> static_cast<unsigned>(shift)) & 0xff));
  }
}

void appendLe64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> static_cast<unsigned>(shift)) & 0xff));
  }
}

std::uint64_t readLe(const char* data, int bytes) {
  std::uint64_t v = 0;
  for (int i = bytes - 1; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(data[i]);
  }
  return v;
}

}  // namespace

const char* frameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kOpenSession: return "OpenSession";
    case FrameType::kSessionCommand: return "SessionCommand";
    case FrameType::kCloseSession: return "CloseSession";
    case FrameType::kSubmitSession: return "SubmitSession";
    case FrameType::kGenerateAndRun: return "GenerateAndRun";
    case FrameType::kRunEnsemble: return "RunEnsemble";
    case FrameType::kRunSystemPhases: return "RunSystemPhases";
    case FrameType::kReply: return "Reply";
    case FrameType::kProtocolError: return "ProtocolError";
  }
  return "?";
}

bool frameTypeIsRequest(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(FrameType::kOpenSession) &&
         type <= static_cast<std::uint16_t>(FrameType::kRunSystemPhases);
}

bool frameTypeKnown(std::uint16_t type) {
  return frameTypeIsRequest(type) ||
         type == static_cast<std::uint16_t>(FrameType::kReply) ||
         type == static_cast<std::uint16_t>(FrameType::kProtocolError);
}

const std::vector<std::pair<std::uint16_t, const char*>>& allFrameTypes() {
  static const std::vector<std::pair<std::uint16_t, const char*>> kTypes = [] {
    std::vector<std::pair<std::uint16_t, const char*>> types;
    for (std::uint16_t code = 0; code < 256; ++code) {
      if (frameTypeKnown(code)) {
        types.emplace_back(code, frameTypeName(static_cast<FrameType>(code)));
      }
    }
    return types;
  }();
  return kTypes;
}

const char* frameErrorName(FrameError error) {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kOversized: return "oversized";
  }
  return "?";
}

void appendFrame(std::string& out, const Frame& frame) {
  out.reserve(out.size() + kHeaderBytes + frame.payload.size());
  out.append(kMagic, sizeof(kMagic));
  appendLe16(out, frame.version);
  appendLe16(out, frame.type);
  appendLe64(out, frame.request_id);
  appendLe32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
}

std::string encodeFrame(const Frame& frame) {
  std::string out;
  appendFrame(out, frame);
  return out;
}

void FrameReader::feed(const char* data, std::size_t size) {
  if (error_ != FrameError::kNone) return;
  // Compact lazily: drop consumed bytes once they dominate the buffer so a
  // long-lived connection does not grow its read buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameReader::Next FrameReader::next(Frame& out) {
  if (error_ != FrameError::kNone) return Next::kError;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) {
    // Even a partial header can already prove the stream unsynchronized.
    if (std::memcmp(buffer_.data() + consumed_, kMagic,
                    std::min(available, sizeof(kMagic))) != 0) {
      error_ = FrameError::kBadMagic;
      return Next::kError;
    }
    return Next::kNeedMore;
  }
  const char* header = buffer_.data() + consumed_;
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    error_ = FrameError::kBadMagic;
    return Next::kError;
  }
  const std::uint32_t length = static_cast<std::uint32_t>(readLe(header + 16, 4));
  if (length > max_payload_) {
    error_ = FrameError::kOversized;
    return Next::kError;
  }
  if (available < kHeaderBytes + length) return Next::kNeedMore;
  out.version = static_cast<std::uint16_t>(readLe(header + 4, 2));
  out.type = static_cast<std::uint16_t>(readLe(header + 6, 2));
  out.request_id = readLe(header + 8, 8);
  out.payload.assign(header + kHeaderBytes, length);
  consumed_ += kHeaderBytes + length;
  return Next::kFrame;
}

}  // namespace nsc::net
