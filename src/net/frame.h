// Wire framing for the network edge (docs/PROTOCOL.md is the normative
// spec; tests/test_net.cpp keeps the two in lockstep).
//
// Every message in either direction is one frame:
//
//   offset  size  field
//   0       4     magic "NSCW"
//   4       2     protocol version (little-endian u16, currently 1)
//   6       2     frame type       (little-endian u16, see FrameType)
//   8       8     request id       (little-endian u64, chosen by the client)
//   16      4     payload length N (little-endian u32)
//   20      N     payload (UTF-8 JSON, schema per frame type — net/wire.h)
//
// The frame layer is deliberately dumb: it validates the magic and bounds
// the payload length (a hostile or corrupt length prefix must not make the
// server allocate gigabytes), and hands everything else — version checks,
// type dispatch, JSON parsing — to the connection layer, which can still
// answer over the intact framing.  A magic or length violation means the
// byte stream itself is unsynchronized; the only safe response is a final
// kProtocolError frame and a close (net/server.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nsc::net {

inline constexpr char kMagic[4] = {'N', 'S', 'C', 'W'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
// Default payload bound.  Plane images dominate payload size; 64 MiB is
// ~4M doubles in 16-hex encoding, far above any simulated plane.
inline constexpr std::uint32_t kDefaultMaxPayload = 64u << 20;

// One code per svc::Request alternative, plus the two server->client
// types.  Values are wire contract — append, never renumber.
enum class FrameType : std::uint16_t {
  kOpenSession = 1,
  kSessionCommand = 2,
  kCloseSession = 3,
  kSubmitSession = 4,
  kGenerateAndRun = 5,
  kRunEnsemble = 6,
  kRunSystemPhases = 7,
  kReply = 128,          // payload: serialized svc::ServiceReply
  kProtocolError = 129,  // payload: {"code": ..., "message": ...}
};

const char* frameTypeName(FrameType type);
bool frameTypeIsRequest(std::uint16_t type);
bool frameTypeKnown(std::uint16_t type);
// Every (code, name) pair — the table docs/PROTOCOL.md must mirror.
const std::vector<std::pair<std::uint16_t, const char*>>& allFrameTypes();

struct Frame {
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint64_t request_id = 0;
  std::string payload;
};

// Appends the encoded frame (header + payload) to `out`.
void appendFrame(std::string& out, const Frame& frame);
std::string encodeFrame(const Frame& frame);

// How an incoming byte stream can violate the frame layer itself (payload
// problems are the connection layer's business).
enum class FrameError : std::uint8_t {
  kNone = 0,
  kBadMagic,   // header does not start "NSCW" — stream unsynchronized
  kOversized,  // declared payload length above the configured bound
};
const char* frameErrorName(FrameError error);

// Incremental frame decoder: feed() bytes as they arrive, next() yields
// complete frames.  A partial header or payload is simply "need more";
// kBadMagic / kOversized are sticky — once the stream is unsynchronized no
// further frame can be trusted.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t size);

  enum class Next : std::uint8_t { kFrame, kNeedMore, kError };
  Next next(Frame& out);

  FrameError error() const { return error_; }
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  FrameError error_ = FrameError::kNone;
};

}  // namespace nsc::net
