#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "net/wire.h"

namespace nsc::net {

namespace {

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(svc::WorkbenchService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { stop(); }

common::Status Server::start() {
  if (started_) return common::Status::ok();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return common::Status::error(
        common::strFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return common::Status::error(
        common::strFormat("bad bind address: %s", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return common::Status::error(
        common::strFormat("bind %s:%u: %s", options_.host.c_str(),
                          static_cast<unsigned>(options_.port),
                          std::strerror(err)));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return common::Status::error(
        common::strFormat("listen: %s", std::strerror(err)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_.store(ntohs(bound.sin_port));
  }
  setNonBlocking(listen_fd_);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return common::Status::error(
        common::strFormat("pipe: %s", std::strerror(err)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  setNonBlocking(wake_read_fd_);

  stopping_.store(false);
  thread_ = std::thread([this] { run(); });
  started_ = true;
  return common::Status::ok();
}

void Server::stop() {
  if (!started_) return;
  stopping_.store(true);
  const char byte = 0;
  // Best-effort wakeup; the loop also polls on a bounded timeout.
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(wake_write_fd_);
  ::close(wake_read_fd_);
  ::close(listen_fd_);
  wake_write_fd_ = wake_read_fd_ = listen_fd_ = -1;
  started_ = false;
  port_.store(0);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::run() {
  std::int64_t drain_deadline_ms = -1;
  for (;;) {
    const bool stopping = stopping_.load();
    if (stopping && drain_deadline_ms < 0) {
      drain_deadline_ms = nowMs() + options_.drain_timeout_ms;
    }

    // Settle futures first: replies land in outboxes before we choose
    // poll events, so POLLOUT interest reflects them this same tick.
    for (auto& conn : connections_) settleReplies(*conn);
    for (std::size_t i = 0; i < orphans_.size();) {
      if (orphans_[i].future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        orphans_[i].future.get();
        orphans_.erase(orphans_.begin() + static_cast<std::ptrdiff_t>(i));
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.orphans_settled;
      } else {
        ++i;
      }
    }

    // Close finished connections.  EOF from the peer means abandonment —
    // a client that wants its replies holds the socket open until they
    // arrive (nsc::Client does) — so its in-flight futures are adopted as
    // orphans immediately.  A draining connection (protocol error after an
    // unsynchronized stream) closes once its error frame and any earlier
    // replies have flushed.  Under stop(), idle flushed connections go too.
    for (std::size_t i = 0; i < connections_.size();) {
      Connection& conn = *connections_[i];
      const bool flushed = conn.outbox.empty();
      const bool idle = conn.pending.empty();
      const bool done = flushed && idle && conn.draining;
      if (conn.peer_eof || done || (stopping && flushed && idle)) {
        closeConnection(i);
      } else {
        ++i;
      }
    }

    if (stopping && connections_.empty() && orphans_.empty()) break;
    if (stopping && drain_deadline_ms >= 0 && nowMs() >= drain_deadline_ms) {
      // Drain budget exhausted: abandon the remaining sockets (their
      // futures still settle service-side; stop() joins the service later).
      while (!connections_.empty()) closeConnection(0);
      break;
    }

    std::vector<pollfd> fds;
    fds.reserve(connections_.size() + 2);
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (!stopping) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t base = fds.size();
    const std::size_t polled = connections_.size();
    for (auto& conn : connections_) {
      short events = 0;
      if (!conn->draining && !conn->peer_eof && !stopping) events |= POLLIN;
      if (!conn->outbox.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    // Busy-ish tick while work is in flight so settled futures become
    // replies promptly; long tick when idle.
    bool in_flight = !orphans_.empty();
    for (const auto& conn : connections_) {
      in_flight = in_flight || !conn->pending.empty();
    }
    const int timeout_ms = in_flight ? 1 : 50;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      char scratch[64];
      while (::read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {}
    }
    if (!stopping && (fds[base - 1].revents & POLLIN)) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        setNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Connection>(options_.max_payload);
        conn->fd = fd;
        connections_.push_back(std::move(conn));
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.connections_accepted;
      }
    }

    // Only the connections that were polled this tick have fds entries —
    // accept() above may have appended new ones past `polled`.
    for (std::size_t i = 0; i < polled; ++i) {
      const pollfd& pfd = fds[base + i];
      Connection& conn = *connections_[i];
      if (pfd.revents & POLLIN) handleReadable(conn);  // may set peer_eof
      if (pfd.revents & (POLLERR | POLLNVAL)) conn.peer_eof = true;
      if ((pfd.revents & POLLHUP) && !(pfd.revents & POLLIN)) {
        conn.peer_eof = true;
      }
      if ((pfd.revents & POLLOUT) && !flushOutbox(conn)) {
        conn.peer_eof = true;
        conn.outbox.clear();
      }
    }
  }
}

void Server::handleReadable(Connection& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.peer_eof = true;
    break;
  }

  Frame frame;
  for (;;) {
    const FrameReader::Next next = conn.reader.next(frame);
    if (next == FrameReader::Next::kFrame) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frames_received;
      }
      handleFrame(conn, std::move(frame));
      frame = Frame{};
      continue;
    }
    if (next == FrameReader::Next::kError) {
      // Stream unsynchronized: one final error frame, then drain + close.
      sendProtocolError(
          conn, 0, frameErrorName(conn.reader.error()),
          common::strFormat("frame stream error: %s",
                            frameErrorName(conn.reader.error())));
      conn.draining = true;
    }
    break;
  }
}

void Server::handleFrame(Connection& conn, Frame&& frame) {
  if (frame.version != kProtocolVersion) {
    sendProtocolError(conn, frame.request_id, "bad-version",
                      common::strFormat("protocol version %u, server speaks %u",
                                        frame.version, kProtocolVersion));
    return;
  }
  if (!frameTypeKnown(frame.type)) {
    sendProtocolError(conn, frame.request_id, "unknown-type",
                      common::strFormat("unknown frame type %u", frame.type));
    return;
  }
  if (!frameTypeIsRequest(frame.type)) {
    sendProtocolError(
        conn, frame.request_id, "bad-request",
        common::strFormat("frame type %s is not a request",
                          frameTypeName(static_cast<FrameType>(frame.type))));
    return;
  }
  auto parsed = common::Json::parse(frame.payload);
  if (!parsed.isOk()) {
    sendProtocolError(conn, frame.request_id, "bad-json", parsed.message());
    return;
  }
  auto decoded = requestFromJson(frame.type, parsed.value());
  if (!decoded.isOk()) {
    sendProtocolError(conn, frame.request_id, "bad-request",
                      decoded.message());
    return;
  }
  Pending pending;
  pending.request_id = frame.request_id;
  pending.future = service_.submit(std::move(decoded.value().request),
                                   decoded.value().admission);
  conn.pending.push_back(std::move(pending));
}

void Server::sendProtocolError(Connection& conn, std::uint64_t request_id,
                               const char* code, std::string message) {
  Frame frame;
  frame.type = static_cast<std::uint16_t>(FrameType::kProtocolError);
  frame.request_id = request_id;
  frame.payload =
      protocolErrorToJson({code, std::move(message)}).dump();
  appendFrame(conn.outbox, frame);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.protocol_errors;
}

void Server::settleReplies(Connection& conn) {
  for (std::size_t i = 0; i < conn.pending.size();) {
    Pending& pending = conn.pending[i];
    if (pending.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++i;
      continue;
    }
    const svc::ServiceReply reply = pending.future.get();
    Frame frame;
    frame.type = static_cast<std::uint16_t>(FrameType::kReply);
    frame.request_id = pending.request_id;
    frame.payload = replyToJson(reply).dump();
    appendFrame(conn.outbox, frame);
    conn.pending.erase(conn.pending.begin() + static_cast<std::ptrdiff_t>(i));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.replies_sent;
  }
}

bool Server::flushOutbox(Connection& conn) {
  while (!conn.outbox.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data(), conn.outbox.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone mid-write
  }
  return true;
}

void Server::closeConnection(std::size_t index) {
  Connection& conn = *connections_[index];
  ::close(conn.fd);
  const std::size_t adopted = conn.pending.size();
  for (Pending& pending : conn.pending) {
    orphans_.push_back(std::move(pending));
  }
  connections_.erase(connections_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.connections_closed;
  stats_.orphans_adopted += adopted;
}

}  // namespace nsc::net
