#include "net/wire.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "sim/verify.h"

namespace nsc::net {

// Private-member bridge declared as a friend by svc::ServiceReply.
struct ReplyAccess {
  static bool complete(const svc::ServiceReply& reply) {
    return reply.complete_;
  }
  static void setComplete(svc::ServiceReply& reply, bool value) {
    reply.complete_ = value;
  }
};

namespace {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using common::Result;

// ---------------------------------------------------------------------------
// Decode helpers: first error wins, messages name the offending field.
// ---------------------------------------------------------------------------

struct Ctx {
  std::string err;
  bool ok() const { return err.empty(); }
  bool fail(std::string message) {
    if (err.empty()) err = std::move(message);
    return false;
  }
};

bool needObject(Ctx& ctx, const Json& j, const char* what) {
  if (j.isObject()) return true;
  return ctx.fail(common::strFormat("%s: expected object", what));
}

bool getNum(Ctx& ctx, const Json& obj, const char* key, double& out,
            bool required) {
  if (!obj.has(key)) {
    if (required) return ctx.fail(common::strFormat("missing field %s", key));
    return true;
  }
  if (!obj.at(key).isNumber()) {
    return ctx.fail(common::strFormat("field %s: expected number", key));
  }
  out = obj.at(key).asDouble();
  return true;
}

bool getInt(Ctx& ctx, const Json& obj, const char* key, std::int64_t& out,
            bool required = false) {
  double v = static_cast<double>(out);
  if (!getNum(ctx, obj, key, v, required)) return false;
  out = static_cast<std::int64_t>(v);
  return true;
}

bool getU64(Ctx& ctx, const Json& obj, const char* key, std::uint64_t& out,
            bool required = false) {
  double v = static_cast<double>(out);
  if (!getNum(ctx, obj, key, v, required)) return false;
  if (v < 0) return ctx.fail(common::strFormat("field %s: negative", key));
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool getIntField(Ctx& ctx, const Json& obj, const char* key, int& out,
                 bool required = false) {
  std::int64_t v = out;
  if (!getInt(ctx, obj, key, v, required)) return false;
  out = static_cast<int>(v);
  return true;
}

bool getBool(Ctx& ctx, const Json& obj, const char* key, bool& out,
             bool required = false) {
  if (!obj.has(key)) {
    if (required) return ctx.fail(common::strFormat("missing field %s", key));
    return true;
  }
  if (!obj.at(key).isBool()) {
    return ctx.fail(common::strFormat("field %s: expected bool", key));
  }
  out = obj.at(key).asBool();
  return true;
}

bool getString(Ctx& ctx, const Json& obj, const char* key, std::string& out,
               bool required = false) {
  if (!obj.has(key)) {
    if (required) return ctx.fail(common::strFormat("missing field %s", key));
    return true;
  }
  if (!obj.at(key).isString()) {
    return ctx.fail(common::strFormat("field %s: expected string", key));
  }
  out = obj.at(key).asString();
  return true;
}

// u64 carried as a decimal string (for values beyond 2^53 — CycleWindow).
Json u64String(std::uint64_t v) {
  return common::strFormat("%llu", static_cast<unsigned long long>(v));
}

bool getU64String(Ctx& ctx, const Json& obj, const char* key,
                  std::uint64_t& out) {
  std::string text;
  if (!getString(ctx, obj, key, text)) return false;
  if (text.empty()) return true;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return ctx.fail(common::strFormat("field %s: bad u64 string", key));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Leaf codecs.
// ---------------------------------------------------------------------------

Json statusToJson(const common::Status& status) {
  JsonObject obj;
  obj["ok"] = status.isOk();
  if (!status.isOk()) obj["message"] = status.message();
  return Json(std::move(obj));
}

common::Status statusFromJson(Ctx& ctx, const Json& j) {
  if (!needObject(ctx, j, "status")) return common::Status::ok();
  bool ok = true;
  std::string message;
  getBool(ctx, j, "ok", ok, /*required=*/true);
  getString(ctx, j, "message", message);
  if (ok) return common::Status::ok();
  return common::Status::error(std::move(message));
}

Json planeImageToJson(const svc::PlaneImage& image) {
  JsonObject obj;
  obj["plane"] = image.plane;
  obj["base"] = image.base;
  obj["values"] = encodeWordsHex(image.values);
  return Json(std::move(obj));
}

svc::PlaneImage planeImageFromJson(Ctx& ctx, const Json& j) {
  svc::PlaneImage image;
  if (!needObject(ctx, j, "inputs[]")) return image;
  getIntField(ctx, j, "plane", image.plane);
  getU64(ctx, j, "base", image.base);
  std::string hex;
  getString(ctx, j, "values", hex);
  if (ctx.ok() && !decodeWordsHex(hex, image.values)) {
    ctx.fail("field values: bad 16-hex word encoding");
  }
  return image;
}

Json planeRangeToJson(const svc::PlaneRange& range) {
  JsonObject obj;
  obj["plane"] = range.plane;
  obj["base"] = range.base;
  obj["count"] = range.count;
  return Json(std::move(obj));
}

svc::PlaneRange planeRangeFromJson(Ctx& ctx, const Json& j) {
  svc::PlaneRange range;
  if (!needObject(ctx, j, "outputs[]")) return range;
  getIntField(ctx, j, "plane", range.plane);
  getU64(ctx, j, "base", range.base);
  getU64(ctx, j, "count", range.count);
  return range;
}

Json sessionResultToJson(const ed::SessionResult& session) {
  JsonObject obj;
  obj["commands"] = session.commands;
  obj["failures"] = session.failures;
  JsonArray log;
  log.reserve(session.log.size());
  for (const std::string& line : session.log) log.emplace_back(line);
  obj["log"] = std::move(log);
  obj["status"] = statusToJson(session.status);
  return Json(std::move(obj));
}

ed::SessionResult sessionResultFromJson(Ctx& ctx, const Json& j) {
  ed::SessionResult session;
  if (!needObject(ctx, j, "session")) return session;
  getIntField(ctx, j, "commands", session.commands);
  getIntField(ctx, j, "failures", session.failures);
  if (j.has("log")) {
    if (!j.at("log").isArray()) {
      ctx.fail("field log: expected array");
      return session;
    }
    for (const Json& line : j.at("log").asArray()) {
      if (!line.isString()) {
        ctx.fail("field log: expected strings");
        return session;
      }
      session.log.push_back(line.asString());
    }
  }
  if (j.has("status")) session.status = statusFromJson(ctx, j.at("status"));
  return session;
}

Json generationToJson(const mc::GenerateResult& generation) {
  JsonObject obj;
  obj["ok"] = generation.ok;
  JsonArray diagnostics;
  for (const check::Diagnostic& d : generation.diagnostics.all()) {
    JsonObject item;
    item["rule"] = static_cast<int>(d.rule);
    item["severity"] = static_cast<int>(d.severity);
    item["message"] = d.message;
    item["pipeline"] = d.pipeline;
    diagnostics.emplace_back(std::move(item));
  }
  obj["diagnostics"] = std::move(diagnostics);
  return Json(std::move(obj));
}

mc::GenerateResult generationFromJson(Ctx& ctx, const Json& j) {
  mc::GenerateResult generation;
  if (!needObject(ctx, j, "generation")) return generation;
  getBool(ctx, j, "ok", generation.ok);
  if (j.has("diagnostics")) {
    if (!j.at("diagnostics").isArray()) {
      ctx.fail("field diagnostics: expected array");
      return generation;
    }
    for (const Json& item : j.at("diagnostics").asArray()) {
      if (!needObject(ctx, item, "diagnostics[]")) return generation;
      int rule = 0;
      int severity = 0;
      int pipeline = -1;
      std::string message;
      getIntField(ctx, item, "rule", rule);
      getIntField(ctx, item, "severity", severity);
      getIntField(ctx, item, "pipeline", pipeline);
      getString(ctx, item, "message", message);
      if (severity != 0 && severity != 1) {
        ctx.fail("field severity: out of range");
        return generation;
      }
      generation.diagnostics.add(static_cast<check::Rule>(rule),
                                 static_cast<check::Severity>(severity),
                                 std::move(message), pipeline);
    }
  }
  return generation;
}

Json instrStatsToJson(const sim::InstrStats& instr) {
  JsonObject obj;
  obj["instruction"] = instr.instruction;
  obj["name"] = instr.name;
  obj["cycles"] = instr.cycles;
  obj["flops"] = instr.flops;
  obj["hazards"] = instr.hazards;
  obj["error"] = instr.error;
  obj["fault"] = static_cast<int>(instr.fault);
  obj["message"] = instr.error_message;
  return Json(std::move(obj));
}

bool faultFromInt(Ctx& ctx, int value, sim::FaultKind& out) {
  if (value < 0 || value > static_cast<int>(sim::FaultKind::kTimeout)) {
    return ctx.fail("field fault: out of range");
  }
  out = static_cast<sim::FaultKind>(value);
  return true;
}

sim::InstrStats instrStatsFromJson(Ctx& ctx, const Json& j) {
  sim::InstrStats instr;
  if (!needObject(ctx, j, "trace[]")) return instr;
  getIntField(ctx, j, "instruction", instr.instruction);
  getString(ctx, j, "name", instr.name);
  getU64(ctx, j, "cycles", instr.cycles);
  getU64(ctx, j, "flops", instr.flops);
  getU64(ctx, j, "hazards", instr.hazards);
  getBool(ctx, j, "error", instr.error);
  int fault = 0;
  getIntField(ctx, j, "fault", fault);
  if (ctx.ok()) faultFromInt(ctx, fault, instr.fault);
  getString(ctx, j, "message", instr.error_message);
  return instr;
}

Json runStatsToJson(const sim::RunStats& run) {
  JsonObject obj;
  obj["total_cycles"] = run.total_cycles;
  obj["total_flops"] = run.total_flops;
  obj["total_hazards"] = run.total_hazards;
  obj["instructions_executed"] = run.instructions_executed;
  JsonArray launches;
  launches.reserve(run.fu_launches.size());
  for (std::uint64_t l : run.fu_launches) launches.emplace_back(l);
  obj["fu_launches"] = std::move(launches);
  JsonArray trace;
  trace.reserve(run.trace.size());
  for (const sim::InstrStats& instr : run.trace) {
    trace.push_back(instrStatsToJson(instr));
  }
  obj["trace"] = std::move(trace);
  obj["halted"] = run.halted;
  obj["error"] = run.error;
  obj["fault"] = static_cast<int>(run.fault);
  obj["message"] = run.error_message;
  return Json(std::move(obj));
}

sim::RunStats runStatsFromJson(Ctx& ctx, const Json& j) {
  sim::RunStats run;
  if (!needObject(ctx, j, "run")) return run;
  getU64(ctx, j, "total_cycles", run.total_cycles);
  getU64(ctx, j, "total_flops", run.total_flops);
  getU64(ctx, j, "total_hazards", run.total_hazards);
  getU64(ctx, j, "instructions_executed", run.instructions_executed);
  if (j.has("fu_launches")) {
    if (!j.at("fu_launches").isArray()) {
      ctx.fail("field fu_launches: expected array");
      return run;
    }
    for (const Json& l : j.at("fu_launches").asArray()) {
      if (!l.isNumber()) {
        ctx.fail("field fu_launches: expected numbers");
        return run;
      }
      run.fu_launches.push_back(
          static_cast<std::uint64_t>(l.asDouble()));
    }
  }
  if (j.has("trace")) {
    if (!j.at("trace").isArray()) {
      ctx.fail("field trace: expected array");
      return run;
    }
    for (const Json& item : j.at("trace").asArray()) {
      run.trace.push_back(instrStatsFromJson(ctx, item));
      if (!ctx.ok()) return run;
    }
  }
  getBool(ctx, j, "halted", run.halted);
  getBool(ctx, j, "error", run.error);
  int fault = 0;
  getIntField(ctx, j, "fault", fault);
  if (ctx.ok()) faultFromInt(ctx, fault, run.fault);
  getString(ctx, j, "message", run.error_message);
  return run;
}

Json systemStatsToJson(const sim::SystemStats& system) {
  JsonObject obj;
  JsonArray nodes;
  nodes.reserve(system.node_stats.size());
  for (const sim::RunStats& node : system.node_stats) {
    nodes.push_back(runStatsToJson(node));
  }
  obj["node_stats"] = std::move(nodes);
  obj["compute_makespan_cycles"] = system.compute_makespan_cycles;
  obj["comm_cycles"] = system.comm_cycles;
  obj["total_flops"] = system.total_flops;
  obj["error"] = system.error;
  obj["message"] = system.error_message;
  return Json(std::move(obj));
}

sim::SystemStats systemStatsFromJson(Ctx& ctx, const Json& j) {
  sim::SystemStats system;
  if (!needObject(ctx, j, "system")) return system;
  if (j.has("node_stats")) {
    if (!j.at("node_stats").isArray()) {
      ctx.fail("field node_stats: expected array");
      return system;
    }
    for (const Json& node : j.at("node_stats").asArray()) {
      system.node_stats.push_back(runStatsFromJson(ctx, node));
      if (!ctx.ok()) return system;
    }
  }
  getU64(ctx, j, "compute_makespan_cycles", system.compute_makespan_cycles);
  getU64(ctx, j, "comm_cycles", system.comm_cycles);
  getU64(ctx, j, "total_flops", system.total_flops);
  getBool(ctx, j, "error", system.error);
  getString(ctx, j, "message", system.error_message);
  return system;
}

Json verifyToJson(const sim::VerifyReport& verify) {
  JsonObject obj;
  JsonArray diagnostics;
  diagnostics.reserve(verify.diagnostics.size());
  for (const sim::VerifyDiagnostic& d : verify.diagnostics) {
    JsonObject item;
    item["code"] = static_cast<int>(d.code);
    item["severity"] = static_cast<int>(d.severity);
    item["instruction"] = d.instruction;
    JsonObject endpoint;
    endpoint["kind"] = static_cast<int>(d.endpoint.kind);
    endpoint["unit"] = d.endpoint.unit;
    endpoint["port"] = d.endpoint.port;
    item["endpoint"] = std::move(endpoint);
    JsonObject window;
    window["first"] = d.window.first;
    window["last"] = u64String(d.window.last);  // may be kForever > 2^53
    window["any"] = d.window.any;
    window["tagged"] = d.window.tagged;
    item["window"] = std::move(window);
    item["message"] = d.message;
    diagnostics.emplace_back(std::move(item));
  }
  obj["diagnostics"] = std::move(diagnostics);
  return Json(std::move(obj));
}

std::shared_ptr<const sim::VerifyReport> verifyFromJson(Ctx& ctx,
                                                        const Json& j) {
  auto verify = std::make_shared<sim::VerifyReport>();
  if (!needObject(ctx, j, "verify")) return nullptr;
  if (j.has("diagnostics")) {
    if (!j.at("diagnostics").isArray()) {
      ctx.fail("field verify.diagnostics: expected array");
      return nullptr;
    }
    for (const Json& item : j.at("diagnostics").asArray()) {
      if (!needObject(ctx, item, "verify.diagnostics[]")) return nullptr;
      sim::VerifyDiagnostic d;
      int code = 0;
      int severity = 0;
      getIntField(ctx, item, "code", code);
      getIntField(ctx, item, "severity", severity);
      getIntField(ctx, item, "instruction", d.instruction);
      if (severity != 0 && severity != 1) {
        ctx.fail("field verify severity: out of range");
        return nullptr;
      }
      d.code = static_cast<sim::VerifyCode>(code);
      d.severity = static_cast<check::Severity>(severity);
      if (item.has("endpoint")) {
        const Json& endpoint = item.at("endpoint");
        if (!needObject(ctx, endpoint, "verify endpoint")) return nullptr;
        int kind = 0;
        getIntField(ctx, endpoint, "kind", kind);
        d.endpoint.kind = static_cast<arch::EndpointKind>(kind);
        getIntField(ctx, endpoint, "unit", d.endpoint.unit);
        getIntField(ctx, endpoint, "port", d.endpoint.port);
      }
      if (item.has("window")) {
        const Json& window = item.at("window");
        if (!needObject(ctx, window, "verify window")) return nullptr;
        getU64(ctx, window, "first", d.window.first);
        getU64String(ctx, window, "last", d.window.last);
        getBool(ctx, window, "any", d.window.any);
        getBool(ctx, window, "tagged", d.window.tagged);
      }
      getString(ctx, item, "message", d.message);
      if (!ctx.ok()) return nullptr;
      verify->diagnostics.push_back(std::move(d));
    }
  }
  return verify;
}

Json requestStatsToJson(const svc::RequestStats& stats) {
  JsonObject obj;
  obj["shard"] = stats.shard;
  obj["sequence"] = stats.sequence;
  obj["shard_sequence"] = stats.shard_sequence;
  obj["priority"] = static_cast<int>(stats.priority);
  obj["queue_us"] = stats.queue_us;
  obj["run_us"] = stats.run_us;
  obj["program_cache_hit"] = stats.program_cache_hit;
  obj["pool_queue_depth"] = static_cast<std::uint64_t>(stats.pool_queue_depth);
  obj["session"] = stats.session;
  obj["checker_session_hits"] = stats.checker_session_hits;
  obj["ensemble_lanes"] = stats.ensemble_lanes;
  obj["replicas_batched"] = stats.replicas_batched;
  obj["replicas_scalar"] = stats.replicas_scalar;
  obj["node_lanes"] = stats.node_lanes;
  obj["nodes_batched"] = stats.nodes_batched;
  obj["nodes_scalar"] = stats.nodes_scalar;
  obj["retries"] = stats.retries;
  obj["restored_from_disk"] = stats.restored_from_disk;
  obj["rejected"] = static_cast<int>(stats.rejected);
  return Json(std::move(obj));
}

svc::RequestStats requestStatsFromJson(Ctx& ctx, const Json& j) {
  svc::RequestStats stats;
  if (!needObject(ctx, j, "stats")) return stats;
  getIntField(ctx, j, "shard", stats.shard);
  getU64(ctx, j, "sequence", stats.sequence);
  getU64(ctx, j, "shard_sequence", stats.shard_sequence);
  int priority = 0;
  getIntField(ctx, j, "priority", priority);
  if (priority != 0 && priority != 1) {
    ctx.fail("field priority: out of range");
    return stats;
  }
  stats.priority = static_cast<svc::Priority>(priority);
  getInt(ctx, j, "queue_us", stats.queue_us);
  getInt(ctx, j, "run_us", stats.run_us);
  getBool(ctx, j, "program_cache_hit", stats.program_cache_hit);
  std::uint64_t depth = 0;
  getU64(ctx, j, "pool_queue_depth", depth);
  stats.pool_queue_depth = static_cast<std::size_t>(depth);
  getU64(ctx, j, "session", stats.session);
  getU64(ctx, j, "checker_session_hits", stats.checker_session_hits);
  getIntField(ctx, j, "ensemble_lanes", stats.ensemble_lanes);
  getIntField(ctx, j, "replicas_batched", stats.replicas_batched);
  getIntField(ctx, j, "replicas_scalar", stats.replicas_scalar);
  getIntField(ctx, j, "node_lanes", stats.node_lanes);
  getU64(ctx, j, "nodes_batched", stats.nodes_batched);
  getU64(ctx, j, "nodes_scalar", stats.nodes_scalar);
  getIntField(ctx, j, "retries", stats.retries);
  getBool(ctx, j, "restored_from_disk", stats.restored_from_disk);
  int rejected = 0;
  getIntField(ctx, j, "rejected", rejected);
  if (rejected < 0 || rejected > static_cast<int>(svc::Reject::kInternal)) {
    ctx.fail("field rejected: out of range");
    return stats;
  }
  stats.rejected = static_cast<svc::Reject>(rejected);
  return stats;
}

Json admissionToJson(const svc::Admission& admission) {
  JsonObject obj;
  if (admission.priority.has_value()) {
    obj["priority"] = static_cast<int>(*admission.priority);
  }
  if (admission.deadline_us != 0) obj["deadline_us"] = admission.deadline_us;
  return Json(std::move(obj));
}

svc::Admission admissionFromJson(Ctx& ctx, const Json& j) {
  svc::Admission admission;
  if (!needObject(ctx, j, "admission")) return admission;
  if (j.has("priority")) {
    int priority = 0;
    getIntField(ctx, j, "priority", priority);
    if (priority != 0 && priority != 1) {
      ctx.fail("field admission.priority: out of range");
      return admission;
    }
    admission.priority = static_cast<svc::Priority>(priority);
  }
  getInt(ctx, j, "deadline_us", admission.deadline_us);
  return admission;
}

bool getPlaneImages(Ctx& ctx, const Json& j, const char* key,
                    std::vector<svc::PlaneImage>& out) {
  if (!j.has(key)) return true;
  if (!j.at(key).isArray()) {
    return ctx.fail(common::strFormat("field %s: expected array", key));
  }
  for (const Json& item : j.at(key).asArray()) {
    out.push_back(planeImageFromJson(ctx, item));
    if (!ctx.ok()) return false;
  }
  return true;
}

bool getPlaneRanges(Ctx& ctx, const Json& j, const char* key,
                    std::vector<svc::PlaneRange>& out) {
  if (!j.has(key)) return true;
  if (!j.at(key).isArray()) {
    return ctx.fail(common::strFormat("field %s: expected array", key));
  }
  for (const Json& item : j.at(key).asArray()) {
    out.push_back(planeRangeFromJson(ctx, item));
    if (!ctx.ok()) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Hex words.
// ---------------------------------------------------------------------------

std::string encodeWordsHex(const std::vector<double>& words) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(words.size() * 16);
  for (const double word : words) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(word));
    std::memcpy(&bits, &word, sizeof(bits));
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(bits >> static_cast<unsigned>(shift)) & 0xfULL]);
    }
  }
  return out;
}

bool decodeWordsHex(const std::string& hex, std::vector<double>& out) {
  if (hex.size() % 16 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 16);
  for (std::size_t i = 0; i < hex.size(); i += 16) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < 16; ++j) {
      const char c = hex[i + j];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(10 + (c - 'a'));
      } else {
        return false;
      }
      bits = (bits << 4) | digit;
    }
    double word = 0.0;
    std::memcpy(&word, &bits, sizeof(word));
    out.push_back(word);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

FrameType frameTypeFor(const svc::Request& request) {
  if (std::holds_alternative<svc::OpenSession>(request)) {
    return FrameType::kOpenSession;
  }
  if (std::holds_alternative<svc::SessionCommand>(request)) {
    return FrameType::kSessionCommand;
  }
  if (std::holds_alternative<svc::CloseSession>(request)) {
    return FrameType::kCloseSession;
  }
  if (std::holds_alternative<svc::SubmitSession>(request)) {
    return FrameType::kSubmitSession;
  }
  if (std::holds_alternative<svc::GenerateAndRun>(request)) {
    return FrameType::kGenerateAndRun;
  }
  if (std::holds_alternative<svc::RunEnsemble>(request)) {
    return FrameType::kRunEnsemble;
  }
  return FrameType::kRunSystemPhases;
}

common::Json requestToJson(const svc::Request& request,
                           const svc::Admission& admission) {
  JsonObject obj;
  if (const auto* open = std::get_if<svc::OpenSession>(&request)) {
    obj["script"] = open->script;
  } else if (const auto* command = std::get_if<svc::SessionCommand>(&request)) {
    obj["session"] = command->session;
    obj["script"] = command->script;
    obj["run"] = command->run;
    JsonArray inputs;
    for (const svc::PlaneImage& image : command->inputs) {
      inputs.push_back(planeImageToJson(image));
    }
    obj["inputs"] = std::move(inputs);
    JsonArray outputs;
    for (const svc::PlaneRange& range : command->outputs) {
      outputs.push_back(planeRangeToJson(range));
    }
    obj["outputs"] = std::move(outputs);
  } else if (const auto* close = std::get_if<svc::CloseSession>(&request)) {
    obj["session"] = close->session;
  } else if (const auto* submit = std::get_if<svc::SubmitSession>(&request)) {
    obj["script"] = submit->script;
  } else if (const auto* gen = std::get_if<svc::GenerateAndRun>(&request)) {
    obj["script"] = gen->script;
    JsonArray inputs;
    for (const svc::PlaneImage& image : gen->inputs) {
      inputs.push_back(planeImageToJson(image));
    }
    obj["inputs"] = std::move(inputs);
    JsonArray outputs;
    for (const svc::PlaneRange& range : gen->outputs) {
      outputs.push_back(planeRangeToJson(range));
    }
    obj["outputs"] = std::move(outputs);
  } else if (const auto* ensemble = std::get_if<svc::RunEnsemble>(&request)) {
    obj["script"] = ensemble->script;
    obj["replicas"] = ensemble->replicas;
    obj["lanes"] = ensemble->lanes;
  } else if (const auto* system = std::get_if<svc::RunSystemPhases>(&request)) {
    obj["script"] = system->script;
    obj["dimension"] = system->dimension;
    obj["phases"] = system->phases;
    obj["node_lanes"] = system->node_lanes;
    JsonObject router;
    router["message_startup_cycles"] = system->router.message_startup_cycles;
    router["hop_latency_cycles"] = system->router.hop_latency_cycles;
    router["words_per_cycle"] = system->router.words_per_cycle;
    obj["router"] = std::move(router);
  }
  const Json admission_json = admissionToJson(admission);
  if (!admission_json.asObject().empty()) obj["admission"] = admission_json;
  return Json(std::move(obj));
}

common::Result<DecodedRequest> requestFromJson(std::uint16_t type,
                                               const common::Json& payload) {
  if (!frameTypeIsRequest(type)) {
    return Result<DecodedRequest>::error(
        common::strFormat("frame type %u is not a request", type));
  }
  Ctx ctx;
  DecodedRequest decoded;
  if (!needObject(ctx, payload, "request payload")) {
    return Result<DecodedRequest>::error(ctx.err);
  }
  switch (static_cast<FrameType>(type)) {
    case FrameType::kOpenSession: {
      svc::OpenSession request;
      getString(ctx, payload, "script", request.script);
      decoded.request = std::move(request);
      break;
    }
    case FrameType::kSessionCommand: {
      svc::SessionCommand request;
      getU64(ctx, payload, "session", request.session, /*required=*/true);
      getString(ctx, payload, "script", request.script);
      getBool(ctx, payload, "run", request.run);
      getPlaneImages(ctx, payload, "inputs", request.inputs);
      getPlaneRanges(ctx, payload, "outputs", request.outputs);
      decoded.request = std::move(request);
      break;
    }
    case FrameType::kCloseSession: {
      svc::CloseSession request;
      getU64(ctx, payload, "session", request.session, /*required=*/true);
      decoded.request = request;
      break;
    }
    case FrameType::kSubmitSession: {
      svc::SubmitSession request;
      getString(ctx, payload, "script", request.script, /*required=*/true);
      decoded.request = std::move(request);
      break;
    }
    case FrameType::kGenerateAndRun: {
      svc::GenerateAndRun request;
      getString(ctx, payload, "script", request.script, /*required=*/true);
      getPlaneImages(ctx, payload, "inputs", request.inputs);
      getPlaneRanges(ctx, payload, "outputs", request.outputs);
      decoded.request = std::move(request);
      break;
    }
    case FrameType::kRunEnsemble: {
      svc::RunEnsemble request;
      getString(ctx, payload, "script", request.script, /*required=*/true);
      getIntField(ctx, payload, "replicas", request.replicas);
      getIntField(ctx, payload, "lanes", request.lanes);
      decoded.request = std::move(request);
      break;
    }
    case FrameType::kRunSystemPhases: {
      svc::RunSystemPhases request;
      getString(ctx, payload, "script", request.script, /*required=*/true);
      getIntField(ctx, payload, "dimension", request.dimension);
      getIntField(ctx, payload, "phases", request.phases);
      getIntField(ctx, payload, "node_lanes", request.node_lanes);
      if (payload.has("router")) {
        const Json& router = payload.at("router");
        if (needObject(ctx, router, "router")) {
          getU64(ctx, router, "message_startup_cycles",
                 request.router.message_startup_cycles);
          getU64(ctx, router, "hop_latency_cycles",
                 request.router.hop_latency_cycles);
          double words = request.router.words_per_cycle;
          getNum(ctx, router, "words_per_cycle", words, /*required=*/false);
          request.router.words_per_cycle = words;
        }
      }
      decoded.request = std::move(request);
      break;
    }
    default:
      return Result<DecodedRequest>::error("unreachable");
  }
  if (ctx.ok() && payload.has("admission")) {
    decoded.admission = admissionFromJson(ctx, payload.at("admission"));
  }
  if (!ctx.ok()) return Result<DecodedRequest>::error(ctx.err);
  return decoded;
}

// ---------------------------------------------------------------------------
// Replies.
// ---------------------------------------------------------------------------

common::Json replyToJson(const svc::ServiceReply& reply) {
  JsonObject obj;
  obj["status"] = statusToJson(reply.status);
  obj["session"] = sessionResultToJson(reply.session);
  obj["generation"] = generationToJson(reply.generation);
  obj["run"] = runStatsToJson(reply.run);
  JsonArray ensemble;
  ensemble.reserve(reply.ensemble.size());
  for (const sim::RunStats& run : reply.ensemble) {
    ensemble.push_back(runStatsToJson(run));
  }
  obj["ensemble"] = std::move(ensemble);
  obj["system"] = systemStatsToJson(reply.system);
  JsonArray outputs;
  outputs.reserve(reply.outputs.size());
  for (const std::vector<double>& plane : reply.outputs) {
    outputs.emplace_back(encodeWordsHex(plane));
  }
  obj["outputs"] = std::move(outputs);
  if (reply.verify != nullptr) {
    obj["verify"] = verifyToJson(*reply.verify);
  } else {
    obj["verify"] = nullptr;
  }
  obj["stats"] = requestStatsToJson(reply.stats);
  obj["complete"] = ReplyAccess::complete(reply);
  return Json(std::move(obj));
}

common::Result<svc::ServiceReply> replyFromJson(const common::Json& payload) {
  Ctx ctx;
  svc::ServiceReply reply;
  if (!needObject(ctx, payload, "reply payload")) {
    return Result<svc::ServiceReply>::error(ctx.err);
  }
  if (payload.has("status")) {
    reply.status = statusFromJson(ctx, payload.at("status"));
  }
  if (payload.has("session")) {
    reply.session = sessionResultFromJson(ctx, payload.at("session"));
  }
  if (payload.has("generation")) {
    reply.generation = generationFromJson(ctx, payload.at("generation"));
  }
  if (payload.has("run")) {
    reply.run = runStatsFromJson(ctx, payload.at("run"));
  }
  if (payload.has("ensemble")) {
    if (!payload.at("ensemble").isArray()) {
      ctx.fail("field ensemble: expected array");
    } else {
      for (const Json& run : payload.at("ensemble").asArray()) {
        reply.ensemble.push_back(runStatsFromJson(ctx, run));
        if (!ctx.ok()) break;
      }
    }
  }
  if (ctx.ok() && payload.has("system")) {
    reply.system = systemStatsFromJson(ctx, payload.at("system"));
  }
  if (ctx.ok() && payload.has("outputs")) {
    if (!payload.at("outputs").isArray()) {
      ctx.fail("field outputs: expected array");
    } else {
      for (const Json& plane : payload.at("outputs").asArray()) {
        if (!plane.isString()) {
          ctx.fail("field outputs: expected hex strings");
          break;
        }
        std::vector<double> words;
        if (!decodeWordsHex(plane.asString(), words)) {
          ctx.fail("field outputs: bad 16-hex word encoding");
          break;
        }
        reply.outputs.push_back(std::move(words));
      }
    }
  }
  if (ctx.ok() && payload.has("verify") && !payload.at("verify").isNull()) {
    reply.verify = verifyFromJson(ctx, payload.at("verify"));
  }
  if (ctx.ok() && payload.has("stats")) {
    reply.stats = requestStatsFromJson(ctx, payload.at("stats"));
  }
  bool complete = false;
  getBool(ctx, payload, "complete", complete);
  ReplyAccess::setComplete(reply, complete);
  if (!ctx.ok()) return Result<svc::ServiceReply>::error(ctx.err);
  return reply;
}

const std::vector<std::string>& nondeterministicStatsFields() {
  static const std::vector<std::string> kFields = {
      "shard",    "sequence",       "shard_sequence",
      "queue_us", "run_us",         "pool_queue_depth",
  };
  return kFields;
}

common::Json deterministicReplyJson(const svc::ServiceReply& reply) {
  Json json = replyToJson(reply);
  JsonObject& stats = json["stats"].asObject();
  for (const std::string& field : nondeterministicStatsFields()) {
    stats.erase(field);
  }
  return json;
}

// ---------------------------------------------------------------------------
// Protocol errors.
// ---------------------------------------------------------------------------

common::Json protocolErrorToJson(const ProtocolError& error) {
  JsonObject obj;
  obj["code"] = error.code;
  obj["message"] = error.message;
  return Json(std::move(obj));
}

ProtocolError protocolErrorFromJson(const common::Json& payload) {
  ProtocolError error;
  if (payload.isObject()) {
    error.code = payload.getString("code", "unknown");
    error.message = payload.getString("message");
  } else {
    error.code = "unknown";
  }
  return error;
}

const std::vector<const char*>& protocolErrorCodes() {
  static const std::vector<const char*> kCodes = {
      "bad-magic", "oversized",  "bad-version",
      "unknown-type", "bad-json", "bad-request",
  };
  return kCodes;
}

}  // namespace nsc::net
