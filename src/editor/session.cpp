#include "editor/session.h"

#include <cstdlib>

#include "common/strings.h"

namespace nsc::ed {

using common::splitWhitespace;
using common::Status;
using common::strFormat;

namespace {

std::optional<IconKind> parseKind(const std::string& word) {
  if (word == "singlet") return IconKind::kSinglet;
  if (word == "doublet") return IconKind::kDoublet;
  if (word == "doublet-bypass") return IconKind::kDoubletBypass;
  if (word == "triplet") return IconKind::kTriplet;
  return std::nullopt;
}

bool parsePoint(const std::string& word, Point& out) {
  const auto comma = word.find(',');
  if (comma == std::string::npos) return false;
  out.x = std::atoi(word.substr(0, comma).c_str());
  out.y = std::atoi(word.substr(comma + 1).c_str());
  return true;
}

// key=value tokens for dma/seq commands.
bool keyValue(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionRunner: scan the script into a command batch, then replay it.
// ---------------------------------------------------------------------------

std::vector<SessionCommand> SessionRunner::scan(const std::string& script) {
  std::vector<SessionCommand> batch;
  int line_no = 0;
  for (const std::string& raw : common::split(script, '\n')) {
    ++line_no;
    std::string line = common::trim(raw);
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = common::trim(line.substr(0, hash));
    if (line.empty()) continue;
    SessionCommand command;
    command.line = line_no;
    command.words = splitWhitespace(line);
    command.text = std::move(line);
    batch.push_back(std::move(command));
  }
  return batch;
}

SessionResult SessionRunner::run(const std::vector<SessionCommand>& batch) {
  SessionResult result;
  for (const SessionCommand& command : batch) {
    ++result.commands;
    const Status status = dispatch(command, result);
    if (!status.isOk()) {
      result.status = Status::error(
          strFormat("line %d: %s", command.line, status.message().c_str()));
      return result;
    }
  }
  return result;
}

Status SessionRunner::dispatch(const SessionCommand& command,
                               SessionResult& result) {
  const std::vector<std::string>& words = command.words;
  // scan() never emits empty commands, but run() accepts externally built
  // batches too.
  if (words.empty()) return Status::error("empty command");
  const std::string& op = words[0];
  if (op == "pipeline") return pipeline(command.text, result);
  if (op == "place") return place(words, result);
  if (op == "drag") return drag(words, result);
  if (op == "connect") return connectCmd(words, result);
  if (op == "band") return band(words, result);
  if (op == "setop") return setop(words, result);
  if (op == "const") return constant(words, result);
  if (op == "accum") return accum(words, result);
  if (op == "dma") return dma(words, result);
  if (op == "sd") return sd(words, result);
  if (op == "cond") return cond(words, result);
  if (op == "seq") return seq(words, result);
  if (op == "undo") return record(editor_.undo(), result);
  if (op == "redo") return record(editor_.redo(), result);
  if (op == "check") {
    const auto diags = editor_.checkCurrent();
    return record(!diags.hasErrors(), result);
  }
  if (op == "select") {
    if (words.size() < 2) return Status::error("select needs an index");
    return record(editor_.jumpTo(std::atoi(words[1].c_str())), result);
  }
  return Status::error("unknown command: " + op);
}

Status SessionRunner::record(bool ok, SessionResult& result) {
  if (!ok) ++result.failures;
  result.log.push_back(editor_.message());
  return Status::ok();
}

Status SessionRunner::pipeline(const std::string& line,
                               SessionResult& result) {
  // Name is everything after the keyword.
  const auto pos = line.find("pipeline");
  std::string name = common::trim(line.substr(pos + 8));
  if (!name.empty() && name.front() == '"' && name.back() == '"') {
    name = name.substr(1, name.size() - 2);
  }
  if (name.empty()) return Status::error("pipeline needs a name");
  // Select an existing pipeline with this name, else create one.
  for (int i = 0; i < editor_.pipelineCount(); ++i) {
    if (editor_.doc(i).semantic.name == name) {
      return record(editor_.jumpTo(i), result);
    }
  }
  if (editor_.pipelineCount() == 1 &&
      editor_.doc(0).semantic.name == "pipeline 1" &&
      editor_.doc(0).semantic.connections.empty() &&
      editor_.doc(0).semantic.als_uses.empty()) {
    editor_.renamePipeline(name);  // take over the empty initial document
  } else {
    editor_.insertPipeline(name);
  }
  return record(true, result);
}

Status SessionRunner::place(const std::vector<std::string>& words,
                            SessionResult& result) {
  // place KIND [als N] at X,Y
  if (words.size() < 4) return Status::error("place: too few words");
  const auto kind = parseKind(words[1]);
  if (!kind.has_value()) return Status::error("place: bad kind " + words[1]);
  std::size_t i = 2;
  std::optional<arch::AlsId> als;
  if (words[i] == "als") {
    als = std::atoi(words[i + 1].c_str());
    i += 2;
  }
  if (i + 1 >= words.size() || words[i] != "at") {
    return Status::error("place: expected 'at X,Y'");
  }
  Point p;
  if (!parsePoint(words[i + 1], p)) return Status::error("place: bad point");
  const auto id = als.has_value() ? editor_.placeIcon(*kind, *als, p)
                                  : editor_.placeIcon(*kind, p);
  return record(id.has_value(), result);
}

Status SessionRunner::drag(const std::vector<std::string>& words,
                           SessionResult& result) {
  // drag KIND to X,Y — via the mouse-event interface (Figure 6).
  if (words.size() < 4 || words[2] != "to") {
    return Status::error("drag KIND to X,Y");
  }
  const auto kind = parseKind(words[1]);
  if (!kind.has_value()) return Status::error("drag: bad kind");
  Point p;
  if (!parsePoint(words[3], p)) return Status::error("drag: bad point");
  editor_.beginPaletteDrag(*kind);
  // A plausible drag path from the control panel to the target.
  const Point start{editor_.layout().control_panel.x + 20,
                    editor_.layout().control_panel.y + 40};
  for (int step = 1; step <= 4; ++step) {
    editor_.mouseMove(Point{start.x + (p.x - start.x) * step / 4,
                            start.y + (p.y - start.y) * step / 4});
  }
  const int before = static_cast<int>(editor_.doc().scene.icons().size());
  editor_.mouseUp(p);
  const int after = static_cast<int>(editor_.doc().scene.icons().size());
  return record(after > before, result);
}

Status SessionRunner::endpointPair(const std::vector<std::string>& words,
                                   arch::Endpoint& from, arch::Endpoint& to) {
  if (words.size() < 3) return Status::error("need FROM and TO endpoints");
  const auto f = parseEndpoint(words[1]);
  if (!f.isOk()) return Status::error(f.message());
  const auto t = parseEndpoint(words[2]);
  if (!t.isOk()) return Status::error(t.message());
  from = f.value();
  to = t.value();
  return Status::ok();
}

Status SessionRunner::connectCmd(const std::vector<std::string>& words,
                                 SessionResult& result) {
  arch::Endpoint from, to;
  if (Status s = endpointPair(words, from, to); !s.isOk()) return s;
  return record(editor_.connect(from, to), result);
}

Status SessionRunner::band(const std::vector<std::string>& words,
                           SessionResult& result) {
  // Rubber-band wiring via mouse events (Figure 8); only works between
  // on-screen pads.
  arch::Endpoint from, to;
  if (Status s = endpointPair(words, from, to); !s.isOk()) return s;
  const auto p0 = editor_.doc().scene.padPosition(from, editor_.machine());
  const auto p1 = editor_.doc().scene.padPosition(to, editor_.machine());
  if (!p0.has_value() || !p1.has_value()) {
    return Status::error("band: both endpoints need on-screen pads");
  }
  editor_.mouseDown(*p0);
  editor_.mouseMove(Point{(p0->x + p1->x) / 2, (p0->y + p1->y) / 2});
  editor_.mouseMove(*p1);
  const std::size_t before = editor_.doc().scene.wires().size();
  editor_.mouseUp(*p1);
  return record(editor_.doc().scene.wires().size() > before, result);
}

Status SessionRunner::setop(const std::vector<std::string>& words,
                            SessionResult& result) {
  if (words.size() < 3) return Status::error("setop FUID OPNAME");
  const int fu = std::atoi(words[1].c_str() + 2);  // "fu12"
  const auto op = arch::opByName(words[2]);
  if (!op.has_value()) return Status::error("setop: unknown op " + words[2]);
  return record(editor_.setFuOp(fu, *op), result);
}

Status SessionRunner::constant(const std::vector<std::string>& words,
                               SessionResult& result) {
  if (words.size() < 4) return Status::error("const FUID PORT VALUE");
  const int fu = std::atoi(words[1].c_str() + 2);
  const int port = words[2] == "b" ? 1 : 0;
  return record(editor_.setConstInput(fu, port, std::atof(words[3].c_str())), result);
}

Status SessionRunner::accum(const std::vector<std::string>& words,
                            SessionResult& result) {
  if (words.size() < 4) return Status::error("accum FUID PORT SEED");
  const int fu = std::atoi(words[1].c_str() + 2);
  const int port = words[2] == "b" ? 1 : 0;
  return record(editor_.setAccumInput(fu, port, std::atof(words[3].c_str())), result);
}

Status SessionRunner::dma(const std::vector<std::string>& words,
                          SessionResult& result) {
  if (words.size() < 3) return Status::error("dma ENDPOINT key=value...");
  const auto endpoint = parseEndpoint(words[1]);
  if (!endpoint.isOk()) return Status::error(endpoint.message());
  prog::DmaSpec spec;
  spec.count = 1;
  for (std::size_t i = 2; i < words.size(); ++i) {
    if (words[i] == "swap") {
      spec.swap_buffers = true;
      continue;
    }
    std::string key, value;
    if (!keyValue(words[i], key, value)) {
      return Status::error("dma: expected key=value, got " + words[i]);
    }
    if (key == "base") spec.base = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    else if (key == "stride") spec.stride = std::atoll(value.c_str());
    else if (key == "count") spec.count = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    else if (key == "count2") spec.count2 = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    else if (key == "stride2") spec.stride2 = std::atoll(value.c_str());
    else if (key == "buf") spec.read_buffer = std::atoi(value.c_str());
    else if (key == "var") spec.variable = value;
    else return Status::error("dma: unknown key " + key);
  }
  return record(editor_.setDma(endpoint.value(), spec), result);
}

Status SessionRunner::sd(const std::vector<std::string>& words,
                         SessionResult& result) {
  if (words.size() < 3) return Status::error("sd N taps=...");
  const int unit = std::atoi(words[1].c_str());
  std::string key, value;
  if (!keyValue(words[2], key, value) || key != "taps") {
    return Status::error("sd: expected taps=D0,D1,...");
  }
  std::vector<int> taps;
  for (const std::string& t : common::split(value, ',')) {
    taps.push_back(std::atoi(t.c_str()));
  }
  return record(editor_.setShiftDelay(unit, std::move(taps)), result);
}

Status SessionRunner::cond(const std::vector<std::string>& words,
                           SessionResult& result) {
  if (words.size() < 3) return Status::error("cond FUID REG");
  const int fu = std::atoi(words[1].c_str() + 2);
  return record(editor_.setCond(fu, std::atoi(words[2].c_str())), result);
}

Status SessionRunner::seq(const std::vector<std::string>& words,
                          SessionResult& result) {
  if (words.size() < 2) return Status::error("seq OP ...");
  prog::SeqControl control;
  const std::string& op = words[1];
  if (op == "next") control.op = arch::SeqOp::kNext;
  else if (op == "jump") control.op = arch::SeqOp::kJump;
  else if (op == "brif") control.op = arch::SeqOp::kBranchIf;
  else if (op == "brnot") control.op = arch::SeqOp::kBranchNot;
  else if (op == "loop") control.op = arch::SeqOp::kLoop;
  else if (op == "halt") control.op = arch::SeqOp::kHalt;
  else return Status::error("seq: unknown op " + op);
  for (std::size_t i = 2; i < words.size(); ++i) {
    std::string key, value;
    if (!keyValue(words[i], key, value)) {
      return Status::error("seq: expected key=value");
    }
    if (key == "target") control.target = std::atoi(value.c_str());
    else if (key == "reg") control.cond_reg = std::atoi(value.c_str());
    else if (key == "count") control.count = std::atoi(value.c_str());
    else return Status::error("seq: unknown key " + key);
  }
  editor_.setSeq(control);
  return record(true, result);
}

SessionResult runSession(Editor& editor, const std::string& script) {
  return SessionRunner(editor).runScript(script);
}

}  // namespace nsc::ed
