// SessionScript: a textual record of editor interactions, replayable
// against an Editor.  Tests, benches, and the editor_session example use
// scripts to reproduce the paper's Figures 5-11 workflow deterministically
// (the headless stand-in for a human at the Sun-3).
//
// Script grammar (one command per line, '#' comments):
//   pipeline NAME                     select-or-create pipeline by name
//   place KIND [als N] at X,Y         KIND: singlet|doublet|doublet-bypass|triplet
//   drag KIND to X,Y                  palette drag via mouse events
//   connect FROM TO                   endpoints like plane0.read, fu20.a
//   band FROM TO                      rubber-band connect via mouse events
//   setop FUID OPNAME
//   const FUID PORT VALUE             PORT: a|b
//   accum FUID PORT SEED
//   dma ENDPOINT base=N stride=N count=N [count2=N stride2=N buf=N swap] [var=NAME]
//   sd N taps=D0,D1,...
//   cond FUID REG
//   seq OP [target=N] [reg=N] [count=N]    OP: next|jump|brif|brnot|loop|halt
//   undo | redo | check | select N
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "editor/editor.h"

namespace nsc::ed {

struct SessionResult {
  int commands = 0;
  int failures = 0;                  // commands the editor refused
  std::vector<std::string> log;      // message strip after each command
  common::Status status = common::Status::ok();  // parse-level problems

  bool clean() const { return status.isOk() && failures == 0; }
};

// One scanned script line, ready to dispatch: the whole script is scanned
// into a batch up front (comments stripped, lines tokenized once), then the
// batch replays against the editor in one pass.
struct SessionCommand {
  int line = 0;                    // 1-based source line, for diagnostics
  std::string text;                // trimmed source text (name parsing)
  std::vector<std::string> words;  // whitespace tokens, words[0] = op
};

// Replays command batches against one Editor.  A runner outlives the
// scripts it replays: driving many scripts (or one script split into
// batches) through the same runner keeps the editor's memoized checker
// session warm across commands — the batching counterpart to the editor's
// revision-keyed caches.
class SessionRunner {
 public:
  explicit SessionRunner(Editor& editor) : editor_(editor) {}

  // Scans `script` into a command batch.  Scanning never fails: malformed
  // commands surface as parse-level Status errors when the batch runs.
  static std::vector<SessionCommand> scan(const std::string& script);

  // Replays a batch.  Stops at the first parse-level error; refused editor
  // actions are recorded but do not stop the replay — the paper's editor
  // refuses and lets the user continue.
  SessionResult run(const std::vector<SessionCommand>& batch);

  // scan + run in one call.
  SessionResult runScript(const std::string& script) {
    return run(scan(script));
  }

 private:
  common::Status dispatch(const SessionCommand& command,
                          SessionResult& result);
  common::Status record(bool ok, SessionResult& result);
  common::Status pipeline(const std::string& line, SessionResult& result);
  common::Status place(const std::vector<std::string>& words,
                       SessionResult& result);
  common::Status drag(const std::vector<std::string>& words,
                      SessionResult& result);
  common::Status endpointPair(const std::vector<std::string>& words,
                              arch::Endpoint& from, arch::Endpoint& to);
  common::Status connectCmd(const std::vector<std::string>& words,
                            SessionResult& result);
  common::Status band(const std::vector<std::string>& words,
                      SessionResult& result);
  common::Status setop(const std::vector<std::string>& words,
                       SessionResult& result);
  common::Status constant(const std::vector<std::string>& words,
                          SessionResult& result);
  common::Status accum(const std::vector<std::string>& words,
                       SessionResult& result);
  common::Status dma(const std::vector<std::string>& words,
                     SessionResult& result);
  common::Status sd(const std::vector<std::string>& words,
                    SessionResult& result);
  common::Status cond(const std::vector<std::string>& words,
                      SessionResult& result);
  common::Status seq(const std::vector<std::string>& words,
                     SessionResult& result);

  Editor& editor_;
};

// Convenience wrapper: scans and replays `script` against `editor` with a
// throwaway SessionRunner.
SessionResult runSession(Editor& editor, const std::string& script);

}  // namespace nsc::ed
