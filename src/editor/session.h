// SessionScript: a textual record of editor interactions, replayable
// against an Editor.  Tests, benches, and the editor_session example use
// scripts to reproduce the paper's Figures 5-11 workflow deterministically
// (the headless stand-in for a human at the Sun-3).
//
// Script grammar (one command per line, '#' comments):
//   pipeline NAME                     select-or-create pipeline by name
//   place KIND [als N] at X,Y         KIND: singlet|doublet|doublet-bypass|triplet
//   drag KIND to X,Y                  palette drag via mouse events
//   connect FROM TO                   endpoints like plane0.read, fu20.a
//   band FROM TO                      rubber-band connect via mouse events
//   setop FUID OPNAME
//   const FUID PORT VALUE             PORT: a|b
//   accum FUID PORT SEED
//   dma ENDPOINT base=N stride=N count=N [count2=N stride2=N buf=N swap] [var=NAME]
//   sd N taps=D0,D1,...
//   cond FUID REG
//   seq OP [target=N] [reg=N] [count=N]    OP: next|jump|brif|brnot|loop|halt
//   undo | redo | check | select N
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "editor/editor.h"

namespace nsc::ed {

struct SessionResult {
  int commands = 0;
  int failures = 0;                  // commands the editor refused
  std::vector<std::string> log;      // message strip after each command
  common::Status status = common::Status::ok();  // parse-level problems

  bool clean() const { return status.isOk() && failures == 0; }
};

// Parses and replays `script` against `editor`, stopping at parse errors
// (refused editor actions are recorded but do not stop the replay — the
// paper's editor refuses and lets the user continue).
SessionResult runSession(Editor& editor, const std::string& script);

}  // namespace nsc::ed
