// The graphical editor (headless core).
//
// "The graphical editor provides the usual operations found in an editor
// ... the objects being operated on are graphical rather than textual.
// The graphical editor also is responsible for extracting information from
// the pictures and storing it in internal data structures." (paper,
// Section 4.)
//
// Every mutating operation validates through the checker first; a refused
// action leaves the document untouched and places the rule's prose in the
// message strip ("Any errors are flagged as soon as they are detected").
// Popup menus are exposed as *models* (connectionMenu / opMenu / the DMA
// subwindow commit in setDma) — the substance of Figures 8-10 without the
// dead SunView toolkit.  Mouse-level interaction (drag-from-palette,
// rubber-band wiring) is modelled by the event interface at the bottom.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/machine.h"
#include "checker/checker.h"
#include "editor/geometry.h"
#include "editor/scene.h"
#include "microcode/generator.h"
#include "program/program.h"

namespace nsc::ed {

// One pipeline document: the semantic diagram plus its drawing.
struct PipelineDoc {
  prog::PipelineDiagram semantic;
  Scene scene;
};

// Action counters for the usability study (bench claims_usability).
struct EditorStats {
  std::uint64_t actions_attempted = 0;
  std::uint64_t actions_refused = 0;   // caught at edit time by the checker
  // Checker invocations actually performed.  Menu population, hover
  // feedback and validation re-queries that hit the memoized checker
  // session (below) do not count — the counter measures real checker work.
  std::uint64_t checker_queries = 0;
  // Queries answered from the memoized checker session instead — the
  // "warm session" witness the service layer surfaces per request: a
  // repeated legalTargets / checkConnection / checkDiagram against an
  // unchanged diagram lands here, not in checker_queries.
  std::uint64_t checker_session_hits = 0;
};

// Interaction state for the mouse-level interface.
enum class Mode { kIdle, kDraggingNew, kDraggingIcon, kRubberBand };

class Editor {
 public:
  explicit Editor(const arch::Machine& machine);

  const arch::Machine& machine() const { return machine_; }
  const WindowLayout& layout() const { return layout_; }
  const EditorStats& stats() const { return stats_; }
  const std::string& message() const { return message_; }

  // ---- Pipeline list (control-panel operations, paper Section 5) ----
  int pipelineCount() const { return static_cast<int>(docs_.size()); }
  int currentIndex() const { return current_; }
  const PipelineDoc& doc(int index) const {
    return docs_.at(static_cast<std::size_t>(index));
  }
  const PipelineDoc& doc() const { return docs_.at(static_cast<std::size_t>(current_)); }

  void insertPipeline(const std::string& name);  // after current, selects it
  bool deletePipeline();
  void copyPipeline();  // duplicate of current inserted after it
  bool scrollForward();
  bool scrollBackward();
  bool jumpTo(int index);
  void renamePipeline(const std::string& name);
  // The control panel's "renumber" button: moves the current pipeline to
  // position `index`, retargeting sequencer branches to follow the move.
  bool renumberPipeline(int index);

  // Sequencer flow summary for the control-flow region (Figure 5's left
  // panel, "reserved for control flow specifications"): one line per
  // pipeline, e.g. "» 3 sweep B->A  brif c0 -> 0".
  std::vector<std::string> controlFlowSummary() const;

  // ---- Drawing operations (all checker-validated) ----
  // Places an icon; picks the first free ALS of the right kind when `als`
  // is not given.  Returns the icon id.
  std::optional<int> placeIcon(IconKind kind, Point pos);
  std::optional<int> placeIcon(IconKind kind, arch::AlsId als, Point pos);
  bool moveIcon(int icon_id, Point pos);
  bool deleteIcon(int icon_id);

  bool connect(const arch::Endpoint& from, const arch::Endpoint& to);
  bool disconnect(const arch::Endpoint& to);

  // Popup-menu models.
  std::vector<arch::Endpoint> connectionMenu(const arch::Endpoint& from);
  std::vector<arch::OpCode> opMenu(arch::FuId fu);

  bool setFuOp(arch::FuId fu, arch::OpCode op);
  bool setConstInput(arch::FuId fu, int port, double value);
  bool setAccumInput(arch::FuId fu, int port, double seed);
  // Figure-9 subwindow commit.
  bool setDma(const arch::Endpoint& endpoint, const prog::DmaSpec& spec);
  bool setShiftDelay(arch::SdId sd, std::vector<int> taps);
  bool setCond(arch::FuId fu, int reg);
  void setSeq(const prog::SeqControl& seq);

  // Replaces the current pipeline's semantic record wholesale, keeping the
  // scene (used when importing externally built programs for display).
  void overwriteSemantic(const prog::PipelineDiagram& semantic);

  // ---- Undo / redo ----
  bool undo();
  bool redo();

  // ---- Check / generate / extract ----
  check::DiagnosticList checkCurrent();
  check::DiagnosticList checkAll();
  mc::GenerateResult generate() const;
  prog::Program program() const;  // semantic content only

  // ---- File I/O: both graphical and semantic data (paper, Section 4) ----
  common::Status saveToFile(const std::string& path) const;
  common::Status loadFromFile(const std::string& path);

  // ---- Mouse-level interface (Figures 6 and 8) ----
  Mode mode() const { return mode_; }
  // Begin dragging a new icon out of the control-panel palette.
  void beginPaletteDrag(IconKind kind);
  void mouseDown(Point p);
  void mouseMove(Point p);
  void mouseUp(Point p);
  // Rubber-band feedback: is the current hover target a legal destination?
  std::optional<bool> hoverLegal() const { return hover_legal_; }

 private:
  // Memoized checker session: pure checker queries (legalTargets,
  // checkConnection, checkDiagram) against the *current* diagram are cached
  // and reused until the diagram mutates.  The cache is invalidated both by
  // snapshot() — which precedes every editor mutation — and by a mismatch
  // of the diagram's revision counter (bumped by the semantic builder
  // calls), so a stale hit is impossible.  legalOps depends only on the
  // machine and is cached for the editor's lifetime.
  struct CheckerSession {
    int index = -1;                 // pipeline the session is bound to
    std::uint64_t revision = 0;     // PipelineDiagram::revision() at bind
    std::map<arch::Endpoint, std::vector<arch::Endpoint>> legal_targets;
    std::map<std::pair<arch::Endpoint, arch::Endpoint>,
             std::optional<check::Diagnostic>>
        connection_checks;
    std::optional<check::DiagnosticList> diagram_check;
  };
  // Rebinds (clearing) the session if the current diagram moved on.
  CheckerSession& checkerSession();
  void invalidateCheckerSession() { session_ = CheckerSession{}; }
  // checkConnection through the session cache.
  const std::optional<check::Diagnostic>& cachedCheckConnection(
      const arch::Endpoint& from, const arch::Endpoint& to);

  PipelineDoc& docMut() { return docs_.at(static_cast<std::size_t>(current_)); }
  void rebuildWireGeometry();
  void snapshot();
  bool refuse(const check::Diagnostic& diagnostic);
  bool refuse(const std::string& message);
  void note(const std::string& message) { message_ = message; }
  Wire makeWire(const arch::Endpoint& from, const arch::Endpoint& to) const;
  std::optional<arch::AlsId> firstFreeAls(arch::AlsKind kind) const;

  const arch::Machine& machine_;
  check::Checker checker_;
  WindowLayout layout_;
  std::vector<PipelineDoc> docs_;
  int current_ = 0;
  std::string message_;
  EditorStats stats_;

  struct Snapshot {
    std::vector<PipelineDoc> docs;
    int current;
  };
  std::vector<Snapshot> undo_stack_;
  std::vector<Snapshot> redo_stack_;

  CheckerSession session_;
  std::map<arch::FuId, std::vector<arch::OpCode>> op_menu_cache_;
  // Highest diagram revision this editor has handed out; snapshot() pushes
  // the next mutation strictly above it so undo can't alias revisions.
  std::uint64_t revision_floor_ = 0;

  // Mouse interaction state.
  Mode mode_ = Mode::kIdle;
  IconKind drag_kind_ = IconKind::kSinglet;
  int drag_icon_ = 0;
  Point drag_grab_;
  arch::Endpoint band_from_;
  std::optional<bool> hover_legal_;
};

// Endpoint parsing for session scripts and tests: "fu7.a", "fu7.out",
// "plane3.read", "cache0.write", "sd1.tap2", "sd0.in".
common::Result<arch::Endpoint> parseEndpoint(const std::string& text);

}  // namespace nsc::ed
