// Renders the editor's display window (Figure 5) and its contents —
// icons, pads, wires, labels, the control panel, and the message strip —
// to an ASCII canvas or SVG.  This substitutes for the SunView bitmap
// display (see DESIGN.md, Section 2).
#pragma once

#include <string>

#include "editor/editor.h"

namespace nsc::ed {

// The full Figure-5 window: message strip, control-flow region, drawing
// area with the current pipeline, control panel with palette and buttons.
std::string renderWindowAscii(const Editor& editor);
std::string renderWindowSvg(const Editor& editor);

// Just the current pipeline diagram (Figures 7 and 11).
std::string renderDiagramAscii(const Editor& editor);
std::string renderDiagramSvg(const Editor& editor);

// A lone ALS icon (Figure 4).
std::string renderIconAscii(IconKind kind);

}  // namespace nsc::ed
