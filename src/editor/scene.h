// Scene: the graphical half of a pipeline document.
//
// "Two types of internal data are distinguished.  One type consists of
// information which is needed solely to manage the graphical display, such
// as the position of images on the screen." (paper, Section 4.)  The scene
// holds exactly that: icon placements, derived pad geometry, and wire
// polylines.  Everything semantic lives in prog::PipelineDiagram.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "editor/geometry.h"

namespace nsc::ed {

// The four palette icons of Figure 4.  A doublet may be drawn in bypass
// form (operating as a singlet with one unit greyed out).
enum class IconKind { kSinglet, kDoublet, kDoubletBypass, kTriplet };

const char* iconKindName(IconKind kind);
arch::AlsKind alsKindOf(IconKind kind);

// Pixel geometry of the ALS icons.
struct IconMetrics {
  static constexpr int kFuBox = 44;     // functional-unit square side
  static constexpr int kFuGap = 10;
  static constexpr int kPadStub = 10;   // wire stub outside the body
  static constexpr int kPadRadius = 6;  // hit radius of an I/O pad

  static int iconWidth() { return kFuBox + 2 * kPadStub + 8; }
  static int iconHeight(IconKind kind);
};

struct Icon {
  int id = 0;
  IconKind kind = IconKind::kSinglet;
  arch::AlsId als = 0;
  Point pos;  // top-left corner

  Rect bounds() const {
    return {pos.x, pos.y, IconMetrics::iconWidth(),
            IconMetrics::iconHeight(kind)};
  }
  int fuCount() const { return alsFuCount(alsKindOf(kind)); }
  // Rect of the FU square for a slot (for op-menu hit testing and render).
  Rect fuRect(int slot) const;
  // Pad centers: input port 0/1 on the left edge, output on the right.
  Point inputPad(int slot, int port) const;
  Point outputPad(int slot) const;
};

struct Wire {
  arch::Endpoint from;
  arch::Endpoint to;
  // Polyline in pixels; empty for off-icon endpoints rendered as labeled
  // stubs (memory/cache/shift-delay connections, which have no icon in the
  // prototype — paper, Section 5).
  std::vector<Point> points;
};

// What a mouse position hits, most specific first.
struct PadHit {
  arch::Endpoint endpoint;
  Point center;
};
struct FuHit {
  arch::FuId fu = 0;
  int icon_id = 0;
};

class Scene {
 public:
  const std::vector<Icon>& icons() const { return icons_; }
  const std::vector<Wire>& wires() const { return wires_; }
  std::vector<Wire>& wires() { return wires_; }

  // Returns the new icon's id.
  int addIcon(IconKind kind, arch::AlsId als, Point pos);
  bool removeIcon(int id);
  Icon* findIcon(int id);
  const Icon* findIcon(int id) const;
  const Icon* iconForAls(arch::AlsId als) const;
  bool moveIcon(int id, Point pos);

  void addWire(Wire wire) { wires_.push_back(std::move(wire)); }
  void removeWiresTouching(arch::AlsId als, const arch::Machine& machine);
  bool removeWireTo(const arch::Endpoint& to);
  void clearWires() { wires_.clear(); }

  // Hit testing (drawing-area coordinates).
  std::optional<PadHit> padAt(Point p, const arch::Machine& machine) const;
  std::optional<FuHit> fuAt(Point p, const arch::Machine& machine) const;
  const Icon* iconAt(Point p) const;

  // Pad center for an endpoint, if its ALS icon is present.
  std::optional<Point> padPosition(const arch::Endpoint& e,
                                   const arch::Machine& machine) const;

  bool operator==(const Scene&) const;

 private:
  std::vector<Icon> icons_;
  std::vector<Wire> wires_;
  int next_id_ = 1;
};

bool operator==(const Wire& a, const Wire& b);

}  // namespace nsc::ed
