#include "editor/scene.h"

#include <algorithm>

namespace nsc::ed {

const char* iconKindName(IconKind kind) {
  switch (kind) {
    case IconKind::kSinglet: return "singlet";
    case IconKind::kDoublet: return "doublet";
    case IconKind::kDoubletBypass: return "doublet-bypass";
    case IconKind::kTriplet: return "triplet";
  }
  return "?";
}

arch::AlsKind alsKindOf(IconKind kind) {
  switch (kind) {
    case IconKind::kSinglet: return arch::AlsKind::kSinglet;
    case IconKind::kDoublet:
    case IconKind::kDoubletBypass:
      return arch::AlsKind::kDoublet;
    case IconKind::kTriplet: return arch::AlsKind::kTriplet;
  }
  return arch::AlsKind::kSinglet;
}

int IconMetrics::iconHeight(IconKind kind) {
  const int n = alsFuCount(alsKindOf(kind));
  return n * kFuBox + (n - 1) * kFuGap + 8;
}

Rect Icon::fuRect(int slot) const {
  return {pos.x + IconMetrics::kPadStub + 4,
          pos.y + 4 + slot * (IconMetrics::kFuBox + IconMetrics::kFuGap),
          IconMetrics::kFuBox, IconMetrics::kFuBox};
}

Point Icon::inputPad(int slot, int port) const {
  const Rect r = fuRect(slot);
  const int y = r.y + (port == 0 ? r.h / 3 : 2 * r.h / 3);
  return {r.x - IconMetrics::kPadStub, y};
}

Point Icon::outputPad(int slot) const {
  const Rect r = fuRect(slot);
  return {r.x + r.w + IconMetrics::kPadStub, r.y + r.h / 2};
}

int Scene::addIcon(IconKind kind, arch::AlsId als, Point pos) {
  Icon icon;
  icon.id = next_id_++;
  icon.kind = kind;
  icon.als = als;
  icon.pos = pos;
  icons_.push_back(icon);
  return icon.id;
}

bool Scene::removeIcon(int id) {
  const auto it = std::find_if(icons_.begin(), icons_.end(),
                               [id](const Icon& i) { return i.id == id; });
  if (it == icons_.end()) return false;
  icons_.erase(it);
  return true;
}

Icon* Scene::findIcon(int id) {
  for (Icon& i : icons_) {
    if (i.id == id) return &i;
  }
  return nullptr;
}

const Icon* Scene::findIcon(int id) const {
  for (const Icon& i : icons_) {
    if (i.id == id) return &i;
  }
  return nullptr;
}

const Icon* Scene::iconForAls(arch::AlsId als) const {
  for (const Icon& i : icons_) {
    if (i.als == als) return &i;
  }
  return nullptr;
}

bool Scene::moveIcon(int id, Point pos) {
  Icon* icon = findIcon(id);
  if (icon == nullptr) return false;
  icon->pos = pos;
  return true;
}

void Scene::removeWiresTouching(arch::AlsId als, const arch::Machine& machine) {
  const auto touches = [&](const arch::Endpoint& e) {
    return (e.kind == arch::EndpointKind::kFuInput ||
            e.kind == arch::EndpointKind::kFuOutput) &&
           machine.fu(e.unit).als == als;
  };
  wires_.erase(std::remove_if(wires_.begin(), wires_.end(),
                              [&](const Wire& w) {
                                return touches(w.from) || touches(w.to);
                              }),
               wires_.end());
}

bool Scene::removeWireTo(const arch::Endpoint& to) {
  const auto it = std::find_if(wires_.begin(), wires_.end(),
                               [&](const Wire& w) { return w.to == to; });
  if (it == wires_.end()) return false;
  wires_.erase(it);
  return true;
}

namespace {
int dist2(Point a, Point b) {
  const int dx = a.x - b.x;
  const int dy = a.y - b.y;
  return dx * dx + dy * dy;
}
}  // namespace

std::optional<PadHit> Scene::padAt(Point p, const arch::Machine& machine) const {
  constexpr int r2 = IconMetrics::kPadRadius * IconMetrics::kPadRadius;
  for (const Icon& icon : icons_) {
    const arch::AlsInfo& als = machine.als(icon.als);
    for (int slot = 0; slot < icon.fuCount(); ++slot) {
      const arch::FuId fu = als.fus[static_cast<std::size_t>(slot)];
      for (int port = 0; port < 2; ++port) {
        const Point pad = icon.inputPad(slot, port);
        if (dist2(p, pad) <= r2) {
          return PadHit{arch::Endpoint::fuInput(fu, port), pad};
        }
      }
      const Point out = icon.outputPad(slot);
      if (dist2(p, out) <= r2) {
        return PadHit{arch::Endpoint::fuOutput(fu), out};
      }
    }
  }
  return std::nullopt;
}

std::optional<FuHit> Scene::fuAt(Point p, const arch::Machine& machine) const {
  for (const Icon& icon : icons_) {
    for (int slot = 0; slot < icon.fuCount(); ++slot) {
      if (icon.fuRect(slot).contains(p)) {
        const arch::FuId fu =
            machine.als(icon.als).fus[static_cast<std::size_t>(slot)];
        return FuHit{fu, icon.id};
      }
    }
  }
  return std::nullopt;
}

const Icon* Scene::iconAt(Point p) const {
  for (const Icon& icon : icons_) {
    if (icon.bounds().contains(p)) return &icon;
  }
  return nullptr;
}

std::optional<Point> Scene::padPosition(const arch::Endpoint& e,
                                        const arch::Machine& machine) const {
  if (e.kind != arch::EndpointKind::kFuInput &&
      e.kind != arch::EndpointKind::kFuOutput) {
    return std::nullopt;
  }
  const arch::FuInfo& fu = machine.fu(e.unit);
  const Icon* icon = iconForAls(fu.als);
  if (icon == nullptr) return std::nullopt;
  if (e.kind == arch::EndpointKind::kFuInput) {
    return icon->inputPad(fu.slot, e.port);
  }
  return icon->outputPad(fu.slot);
}

bool operator==(const Wire& a, const Wire& b) {
  return a.from == b.from && a.to == b.to && a.points == b.points;
}

bool Scene::operator==(const Scene& other) const {
  if (icons_.size() != other.icons_.size() ||
      wires_.size() != other.wires_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < icons_.size(); ++i) {
    const Icon& a = icons_[i];
    const Icon& b = other.icons_[i];
    if (a.id != b.id || a.kind != b.kind || a.als != b.als || !(a.pos == b.pos)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    if (!(wires_[i] == other.wires_[i])) return false;
  }
  return true;
}

}  // namespace nsc::ed
