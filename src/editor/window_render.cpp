#include "editor/window_render.h"

#include "common/strings.h"
#include "render/canvas.h"
#include "render/svg.h"

namespace nsc::ed {

using common::strFormat;
using render::AsciiCanvas;
using render::SvgBuilder;

namespace {

// Pixel -> character cell scaling (1152x900 -> 144x60 canvas).
constexpr int kSx = 8;
constexpr int kSy = 15;
int cx(int px) { return px / kSx; }
int cy(int py) { return py / kSy; }

struct DiagramPainter {
  const Editor& editor;
  AsciiCanvas& canvas;
  int ox = 0;  // pixel offset subtracted before scaling
  int oy = 0;

  int X(int px) const { return cx(px - ox); }
  int Y(int py) const { return cy(py - oy); }

  void icon(const Icon& icon) {
    const arch::Machine& m = editor.machine();
    const arch::AlsInfo& als = m.als(icon.als);
    const prog::AlsUse* use = editor.doc().semantic.findAls(icon.als);
    const Rect b = icon.bounds();
    canvas.box(X(b.x), Y(b.y), std::max(8, cx(b.w)), std::max(3, cy(b.h) + 1));
    for (int slot = 0; slot < icon.fuCount(); ++slot) {
      const Rect fr = icon.fuRect(slot);
      const arch::FuId fu = als.fus[static_cast<std::size_t>(slot)];
      const bool double_box = (m.fu(fu).caps & arch::kCapIntLogic) != 0;
      const int bx = X(fr.x), by = Y(fr.y);
      const int bw = std::max(8, cx(fr.w)), bh = std::max(3, cy(fr.h));
      canvas.box(bx, by, bw, bh);
      if (double_box) {  // "double box" units have integer/logical circuitry
        canvas.box(bx + 1, by, bw - 2, bh);
      }
      std::string label = strFormat("%d", fu);
      if (use != nullptr && use->fu[static_cast<std::size_t>(slot)].enabled) {
        label = arch::opInfo(use->fu[static_cast<std::size_t>(slot)].op).name;
      } else if (use != nullptr && use->bypass && slot == 1) {
        label = "byp";
      }
      canvas.text(bx + 1, by + 1, label.substr(0, static_cast<std::size_t>(bw - 2)));
      // I/O pads.
      const Point ia = icon.inputPad(slot, 0);
      const Point ib = icon.inputPad(slot, 1);
      const Point out = icon.outputPad(slot);
      canvas.set(X(ia.x), Y(ia.y), 'o');
      canvas.set(X(ib.x), Y(ib.y), 'o');
      canvas.set(X(out.x), Y(out.y), 'o');
    }
    canvas.text(X(b.x), Y(b.y), strFormat("ALS%d", icon.als));
  }

  void wire(const Wire& w) {
    const arch::Machine& m = editor.machine();
    const auto p0 = editor.doc().scene.padPosition(w.from, m);
    const auto p1 = editor.doc().scene.padPosition(w.to, m);
    if (p0.has_value() && p1.has_value()) {
      canvas.route(X(p0->x), Y(p0->y), X(p1->x), Y(p1->y));
    } else if (p1.has_value()) {
      // Off-icon source (memory/cache/shift-delay): labeled stub.
      const std::string label = w.from.toString() + ">";
      canvas.text(X(p1->x) - static_cast<int>(label.size()) - 1, Y(p1->y),
                  label);
      canvas.set(X(p1->x), Y(p1->y), '*');
    } else if (p0.has_value()) {
      const std::string label = ">" + w.to.toString();
      canvas.text(X(p0->x) + 1, Y(p0->y), label);
    }
  }

  void all() {
    for (const Icon& i : editor.doc().scene.icons()) icon(i);
    for (const Wire& w : editor.doc().scene.wires()) wire(w);
  }
};

}  // namespace

std::string renderDiagramAscii(const Editor& editor) {
  const WindowLayout& layout = editor.layout();
  AsciiCanvas canvas(cx(layout.drawing.w) + 2, cy(layout.drawing.h) + 2);
  DiagramPainter painter{editor, canvas, layout.drawing.x, layout.drawing.y};
  painter.all();
  return canvas.toString();
}

std::string renderWindowAscii(const Editor& editor) {
  const WindowLayout& layout = editor.layout();
  AsciiCanvas canvas(WindowLayout::kScreenW / kSx + 1,
                     WindowLayout::kScreenH / kSy + 1);

  // Frames for the four regions of Figure 5.
  auto frame = [&](const Rect& r, const std::string& title) {
    canvas.box(cx(r.x), cy(r.y), cx(r.w), cy(r.h), title);
  };
  frame(layout.message_strip, "");
  frame(layout.control_flow, "control flow");
  frame(layout.drawing, "");
  frame(layout.control_panel, "control panel");

  // Message strip content.
  canvas.text(cx(layout.message_strip.x) + 1, cy(layout.message_strip.y) + 1,
              editor.message().substr(0, 130));

  // Control-flow region: the sequencer flow of every pipeline (name line,
  // then an indented flow line when control does not just fall through).
  {
    int fy = cy(layout.control_flow.y) + 2;
    const int fx = cx(layout.control_flow.x) + 1;
    const int fy_max = cy(layout.control_flow.y + layout.control_flow.h) - 1;
    for (const std::string& line : editor.controlFlowSummary()) {
      if (fy >= fy_max) break;
      const auto split = line.find("  ", 4);
      canvas.text(fx, fy++, line.substr(0, std::min(split, std::size_t{16})));
      if (split != std::string::npos && fy < fy_max) {
        canvas.text(fx + 1, fy++, line.substr(split + 2, 15));
      }
    }
  }

  // Control panel: palette and buttons.
  const int px = cx(layout.control_panel.x) + 2;
  int py = cy(layout.control_panel.y) + 2;
  canvas.text(px, py++, "[singlet]");
  canvas.text(px, py++, "[doublet]");
  canvas.text(px, py++, "[doublet/1]");
  canvas.text(px, py++, "[triplet]");
  ++py;
  for (const char* button :
       {"insert", "delete", "copy", "renumber", "<< back", "fwd >>", "jump",
        "save", "check", "generate"}) {
    canvas.text(px, py++, strFormat("(%s)", button));
  }
  canvas.text(px, py + 1,
              strFormat("pipe %d/%d", editor.currentIndex() + 1,
                        editor.pipelineCount()));

  // Pipeline name in the drawing area corner.
  canvas.text(cx(layout.drawing.x) + 2, cy(layout.drawing.y) + 1,
              editor.doc().semantic.name);

  // The diagram itself.
  DiagramPainter painter{editor, canvas, 0, 0};
  painter.all();
  return canvas.toString();
}

std::string renderIconAscii(IconKind kind) {
  arch::Machine machine;  // default machine for capability flags
  Editor editor(machine);
  // Place a lone icon near the drawing-area origin and render just it.
  const Point origin{editor.layout().drawing.x + 16,
                     editor.layout().drawing.y + 16};
  editor.placeIcon(kind, origin);
  return renderDiagramAscii(editor);
}

namespace {

void svgDiagram(const Editor& editor, SvgBuilder& svg) {
  const arch::Machine& m = editor.machine();
  const prog::PipelineDiagram& semantic = editor.doc().semantic;
  for (const Icon& icon : editor.doc().scene.icons()) {
    const Rect b = icon.bounds();
    svg.rect(b.x, b.y, b.w, b.h);
    svg.text(b.x, b.y - 3, strFormat("ALS%d", icon.als), 10);
    const arch::AlsInfo& als = m.als(icon.als);
    const prog::AlsUse* use = semantic.findAls(icon.als);
    for (int slot = 0; slot < icon.fuCount(); ++slot) {
      const Rect fr = icon.fuRect(slot);
      svg.rect(fr.x, fr.y, fr.w, fr.h);
      const arch::FuId fu = als.fus[static_cast<std::size_t>(slot)];
      if (m.fu(fu).caps & arch::kCapIntLogic) {
        svg.rect(fr.x + 3, fr.y + 3, fr.w - 6, fr.h - 6);
      }
      std::string label = strFormat("fu%d", fu);
      if (use != nullptr && use->fu[static_cast<std::size_t>(slot)].enabled) {
        label = arch::opInfo(use->fu[static_cast<std::size_t>(slot)].op).name;
      }
      svg.text(fr.center().x, fr.center().y + 4, label, 10, "middle");
      for (int port = 0; port < 2; ++port) {
        const Point p = icon.inputPad(slot, port);
        svg.circle(p.x, p.y, 3);
        svg.line(p.x, p.y, fr.x, p.y);
      }
      const Point out = icon.outputPad(slot);
      svg.circle(out.x, out.y, 3);
      svg.line(fr.x + fr.w, out.y, out.x, out.y);
    }
  }
  for (const Wire& w : editor.doc().scene.wires()) {
    const auto p0 = editor.doc().scene.padPosition(w.from, m);
    const auto p1 = editor.doc().scene.padPosition(w.to, m);
    if (p0.has_value() && p1.has_value()) {
      svg.route(p0->x, p0->y, p1->x, p1->y);
    } else if (p1.has_value()) {
      svg.text(p1->x - 6, p1->y + 3, w.from.toString(), 9, "end");
    } else if (p0.has_value()) {
      svg.text(p0->x + 6, p0->y + 3, w.to.toString(), 9);
    }
  }
}

}  // namespace

std::string renderDiagramSvg(const Editor& editor) {
  SvgBuilder svg(WindowLayout::kScreenW, WindowLayout::kScreenH);
  svgDiagram(editor, svg);
  return svg.finish();
}

std::string renderWindowSvg(const Editor& editor) {
  const WindowLayout& layout = editor.layout();
  SvgBuilder svg(WindowLayout::kScreenW, WindowLayout::kScreenH);
  auto frame = [&](const Rect& r) { svg.rect(r.x, r.y, r.w, r.h); };
  frame(layout.message_strip);
  frame(layout.control_flow);
  frame(layout.drawing);
  frame(layout.control_panel);
  svg.text(layout.message_strip.x + 6, layout.message_strip.y + 19,
           editor.message(), 12);
  svg.text(layout.control_flow.x + 6, layout.control_flow.y + 20,
           "control flow", 11);
  int y = layout.control_panel.y + 24;
  for (const char* entry :
       {"singlet", "doublet", "doublet/1", "triplet", "", "insert", "delete",
        "copy", "renumber", "back", "fwd", "jump", "save", "check",
        "generate"}) {
    if (entry[0] != '\0') {
      svg.rect(layout.control_panel.x + 10, y - 14, 180, 20);
      svg.text(layout.control_panel.x + 100, y, entry, 11, "middle");
    }
    y += 26;
  }
  svgDiagram(editor, svg);
  return svg.finish();
}

}  // namespace nsc::ed
