// Integer pixel geometry for the editor's drawing surface.  Coordinates
// live in the prototype's native space: a Sun-3 bit-mapped display of
// 1152 x 900 pixels (paper, Section 5).
#pragma once

namespace nsc::ed {

struct Point {
  int x = 0;
  int y = 0;
  bool operator==(const Point&) const = default;
};

struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  bool contains(Point p) const {
    return p.x >= x && p.x < x + w && p.y >= y && p.y < y + h;
  }
  Point center() const { return {x + w / 2, y + h / 2}; }
  bool intersects(const Rect& o) const {
    return x < o.x + o.w && o.x < x + w && y < o.y + o.h && o.y < y + h;
  }
  bool operator==(const Rect&) const = default;
};

// Sun-3 display and Figure-5 window layout.
struct WindowLayout {
  static constexpr int kScreenW = 1152;
  static constexpr int kScreenH = 900;

  Rect message_strip{0, 0, kScreenW, 28};             // errors/info, top
  Rect control_flow{0, 28, 140, kScreenH - 28};       // left region
  Rect drawing{140, 28, 812, kScreenH - 28};          // pipeline diagrams
  Rect control_panel{952, 28, 200, kScreenH - 28};    // icons + buttons
};

}  // namespace nsc::ed
