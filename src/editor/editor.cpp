#include "editor/editor.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "program/pipeline.h"

namespace nsc::ed {

using common::strFormat;

namespace {
constexpr std::size_t kUndoLimit = 256;
}

Editor::Editor(const arch::Machine& machine)
    : machine_(machine), checker_(machine) {
  docs_.push_back(PipelineDoc{});
  docs_.back().semantic.name = "pipeline 1";
}

// ---------------------------------------------------------------------------
// Undo / messages
// ---------------------------------------------------------------------------

Editor::CheckerSession& Editor::checkerSession() {
  const std::uint64_t revision = doc().semantic.revision();
  revision_floor_ = std::max(revision_floor_, revision);
  if (session_.index != current_ || session_.revision != revision) {
    session_ = CheckerSession{};
    session_.index = current_;
    session_.revision = revision;
  }
  return session_;
}

const std::optional<check::Diagnostic>& Editor::cachedCheckConnection(
    const arch::Endpoint& from, const arch::Endpoint& to) {
  CheckerSession& session = checkerSession();
  const auto key = std::make_pair(from, to);
  const auto it = session.connection_checks.find(key);
  if (it != session.connection_checks.end()) {
    ++stats_.checker_session_hits;
    return it->second;
  }
  ++stats_.checker_queries;
  return session.connection_checks
      .emplace(key, checker_.checkConnection(doc().semantic, from, to))
      .first->second;
}

void Editor::snapshot() {
  invalidateCheckerSession();
  undo_stack_.push_back({docs_, current_});
  if (undo_stack_.size() > kUndoLimit) {
    undo_stack_.erase(undo_stack_.begin());
  }
  // The mutation that follows may touch fields directly rather than going
  // through the diagram's builder calls, and undo may have rewound the
  // counter onto values an abandoned edit branch already used.  Push the
  // revision strictly above every value this editor has handed out so
  // revision-keyed caches outside this editor can't confuse two states.
  prog::PipelineDiagram& semantic = docMut().semantic;
  do {
    semantic.bumpRevision();
  } while (semantic.revision() <= revision_floor_);
  revision_floor_ = semantic.revision();
  redo_stack_.clear();
}

bool Editor::undo() {
  if (undo_stack_.empty()) {
    note("nothing to undo");
    return false;
  }
  invalidateCheckerSession();
  redo_stack_.push_back({docs_, current_});
  docs_ = std::move(undo_stack_.back().docs);
  current_ = undo_stack_.back().current;
  undo_stack_.pop_back();
  note("undone");
  return true;
}

bool Editor::redo() {
  if (redo_stack_.empty()) {
    note("nothing to redo");
    return false;
  }
  invalidateCheckerSession();
  undo_stack_.push_back({docs_, current_});
  docs_ = std::move(redo_stack_.back().docs);
  current_ = redo_stack_.back().current;
  redo_stack_.pop_back();
  note("redone");
  return true;
}

bool Editor::refuse(const check::Diagnostic& diagnostic) {
  ++stats_.actions_refused;
  message_ = std::string(check::ruleProse(diagnostic.rule)) + "  (" +
             diagnostic.message + ")";
  return false;
}

bool Editor::refuse(const std::string& message) {
  ++stats_.actions_refused;
  message_ = message;
  return false;
}

// ---------------------------------------------------------------------------
// Pipeline list operations
// ---------------------------------------------------------------------------

void Editor::insertPipeline(const std::string& name) {
  snapshot();
  ++stats_.actions_attempted;
  PipelineDoc doc;
  doc.semantic.name = name;
  docs_.insert(docs_.begin() + current_ + 1, std::move(doc));
  ++current_;
  note(strFormat("pipeline %d inserted", current_ + 1));
}

bool Editor::deletePipeline() {
  ++stats_.actions_attempted;
  if (docs_.size() == 1) {
    return refuse("the program must keep at least one pipeline");
  }
  snapshot();
  docs_.erase(docs_.begin() + current_);
  current_ = std::min(current_, static_cast<int>(docs_.size()) - 1);
  note("pipeline deleted");
  return true;
}

void Editor::copyPipeline() {
  snapshot();
  ++stats_.actions_attempted;
  PipelineDoc copy = doc();
  copy.semantic.name += " (copy)";
  docs_.insert(docs_.begin() + current_ + 1, std::move(copy));
  ++current_;
  note("pipeline copied");
}

bool Editor::scrollForward() {
  ++stats_.actions_attempted;
  if (current_ + 1 >= static_cast<int>(docs_.size())) return false;
  ++current_;
  return true;
}

bool Editor::scrollBackward() {
  ++stats_.actions_attempted;
  if (current_ == 0) return false;
  --current_;
  return true;
}

bool Editor::jumpTo(int index) {
  ++stats_.actions_attempted;
  if (index < 0 || index >= static_cast<int>(docs_.size())) {
    return refuse(strFormat("no pipeline %d", index));
  }
  current_ = index;
  return true;
}

void Editor::renamePipeline(const std::string& name) {
  snapshot();
  docMut().semantic.name = name;
}

bool Editor::renumberPipeline(int index) {
  ++stats_.actions_attempted;
  if (index < 0 || index >= static_cast<int>(docs_.size())) {
    return refuse(strFormat("cannot renumber to position %d", index));
  }
  if (index == current_) return true;
  snapshot();
  // Retarget sequencer branches so control flow follows the move: build
  // the old-index -> new-index map of the rotation.
  const int from = current_;
  std::vector<int> new_index(docs_.size());
  for (int i = 0; i < static_cast<int>(docs_.size()); ++i) {
    if (i == from) {
      new_index[static_cast<std::size_t>(i)] = index;
    } else if (from < index && i > from && i <= index) {
      new_index[static_cast<std::size_t>(i)] = i - 1;
    } else if (index < from && i >= index && i < from) {
      new_index[static_cast<std::size_t>(i)] = i + 1;
    } else {
      new_index[static_cast<std::size_t>(i)] = i;
    }
  }
  PipelineDoc moved = std::move(docs_[static_cast<std::size_t>(from)]);
  docs_.erase(docs_.begin() + from);
  docs_.insert(docs_.begin() + index, std::move(moved));
  for (PipelineDoc& doc : docs_) {
    prog::SeqControl& seq = doc.semantic.seq;
    if (seq.op == arch::SeqOp::kJump || seq.op == arch::SeqOp::kBranchIf ||
        seq.op == arch::SeqOp::kBranchNot || seq.op == arch::SeqOp::kLoop) {
      if (seq.target >= 0 && seq.target < static_cast<int>(new_index.size())) {
        const int retargeted = new_index[static_cast<std::size_t>(seq.target)];
        if (retargeted != seq.target) {
          seq.target = retargeted;
          doc.semantic.bumpRevision();  // direct field mutation
        }
      }
    }
  }
  current_ = index;
  note(strFormat("pipeline moved to position %d", index));
  return true;
}

std::vector<std::string> Editor::controlFlowSummary() const {
  std::vector<std::string> lines;
  for (int i = 0; i < static_cast<int>(docs_.size()); ++i) {
    const prog::PipelineDiagram& d = docs_[static_cast<std::size_t>(i)].semantic;
    std::string line = strFormat("%c%2d %s", i == current_ ? '>' : ' ', i,
                                 d.name.substr(0, 12).c_str());
    switch (d.seq.op) {
      case arch::SeqOp::kNext:
        break;
      case arch::SeqOp::kJump:
        line += strFormat("  jump %d", d.seq.target);
        break;
      case arch::SeqOp::kBranchIf:
        line += strFormat("  brif c%d>%d", d.seq.cond_reg, d.seq.target);
        break;
      case arch::SeqOp::kBranchNot:
        line += strFormat("  brnot c%d>%d", d.seq.cond_reg, d.seq.target);
        break;
      case arch::SeqOp::kLoop:
        line += strFormat("  loop %d x%d", d.seq.target, d.seq.count);
        break;
      case arch::SeqOp::kHalt:
        line += "  halt";
        break;
    }
    if (d.cond.has_value()) {
      line += strFormat(" [c%d<-fu%d]", d.cond->cond_reg, d.cond->src_fu);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Drawing operations
// ---------------------------------------------------------------------------

std::optional<arch::AlsId> Editor::firstFreeAls(arch::AlsKind kind) const {
  for (const arch::AlsInfo& als : machine_.als()) {
    if (als.kind != kind) continue;
    if (doc().semantic.findAls(als.id) == nullptr) return als.id;
  }
  return std::nullopt;
}

std::optional<int> Editor::placeIcon(IconKind kind, Point pos) {
  const auto als = firstFreeAls(alsKindOf(kind));
  ++stats_.checker_queries;
  if (!als.has_value()) {
    refuse(strFormat("all %ss are already placed in this pipeline",
                     iconKindName(kind)));
    return std::nullopt;
  }
  return placeIcon(kind, *als, pos);
}

std::optional<int> Editor::placeIcon(IconKind kind, arch::AlsId als, Point pos) {
  ++stats_.actions_attempted;
  ++stats_.checker_queries;
  if (als < 0 || als >= machine_.config().numAls()) {
    refuse(strFormat("no such ALS: %d", als));
    return std::nullopt;
  }
  if (machine_.als(als).kind != alsKindOf(kind)) {
    refuse(strFormat("ALS %d is a %s, not a %s", als,
                     alsKindName(machine_.als(als).kind), iconKindName(kind)));
    return std::nullopt;
  }
  if (doc().semantic.findAls(als) != nullptr) {
    refuse(std::string(check::ruleProse(check::Rule::kAlsDuplicate)));
    return std::nullopt;
  }
  if (!layout_.drawing.contains(pos)) {
    refuse("icons must be placed in the drawing area");
    return std::nullopt;
  }
  snapshot();
  PipelineDoc& d = docMut();
  prog::AlsUse& use = d.semantic.useAls(machine_, als);
  use.bypass = kind == IconKind::kDoubletBypass;
  const int id = d.scene.addIcon(kind, als, pos);
  note(strFormat("%s placed as ALS %d", iconKindName(kind), als));
  return id;
}

bool Editor::moveIcon(int icon_id, Point pos) {
  ++stats_.actions_attempted;
  if (!layout_.drawing.contains(pos)) {
    return refuse("icons must stay in the drawing area");
  }
  snapshot();
  if (!docMut().scene.moveIcon(icon_id, pos)) {
    undo_stack_.pop_back();
    return refuse(strFormat("no icon %d", icon_id));
  }
  rebuildWireGeometry();
  return true;
}

void Editor::rebuildWireGeometry() {
  PipelineDoc& d = docMut();
  for (Wire& w : d.scene.wires()) {
    w.points = makeWire(w.from, w.to).points;
  }
}

bool Editor::deleteIcon(int icon_id) {
  ++stats_.actions_attempted;
  const Icon* icon = doc().scene.findIcon(icon_id);
  if (icon == nullptr) return refuse(strFormat("no icon %d", icon_id));
  snapshot();
  PipelineDoc& d = docMut();
  const arch::AlsId als = icon->als;
  d.scene.removeIcon(icon_id);
  d.scene.removeWiresTouching(als, machine_);
  // Remove the semantic ALS use and all connections touching its FUs.
  auto& uses = d.semantic.als_uses;
  uses.erase(std::remove_if(uses.begin(), uses.end(),
                            [als](const prog::AlsUse& u) { return u.als == als; }),
             uses.end());
  auto& conns = d.semantic.connections;
  const auto touches = [&](const arch::Endpoint& e) {
    return (e.kind == arch::EndpointKind::kFuInput ||
            e.kind == arch::EndpointKind::kFuOutput) &&
           machine_.fu(e.unit).als == als;
  };
  // Inputs fed by the deleted ALS must be unmarked on the surviving FUs.
  for (const prog::Connection& c : conns) {
    if (touches(c.from) && c.to.kind == arch::EndpointKind::kFuInput &&
        !touches(c.to)) {
      if (prog::FuUse* use = d.semantic.findFu(machine_, c.to.unit)) {
        (c.to.port == 0 ? use->in_a : use->in_b) = arch::InputSelect::kNone;
      }
    }
  }
  conns.erase(std::remove_if(conns.begin(), conns.end(),
                             [&](const prog::Connection& c) {
                               return touches(c.from) || touches(c.to);
                             }),
              conns.end());
  note(strFormat("ALS %d removed", als));
  return true;
}

Wire Editor::makeWire(const arch::Endpoint& from,
                      const arch::Endpoint& to) const {
  Wire wire;
  wire.from = from;
  wire.to = to;
  const auto p0 = doc().scene.padPosition(from, machine_);
  const auto p1 = doc().scene.padPosition(to, machine_);
  if (p0.has_value() && p1.has_value()) {
    wire.points = {*p0, Point{p1->x, p0->y}, *p1};
  } else if (p0.has_value()) {
    wire.points = {*p0, Point{p0->x + 30, p0->y}};
  } else if (p1.has_value()) {
    wire.points = {Point{p1->x - 30, p1->y}, *p1};
  }
  return wire;
}

bool Editor::connect(const arch::Endpoint& from, const arch::Endpoint& to) {
  ++stats_.actions_attempted;
  if (const auto& diag = cachedCheckConnection(from, to)) {
    return refuse(*diag);
  }
  // FU endpoints must belong to placed icons.
  for (const arch::Endpoint* e : {&from, &to}) {
    if ((e->kind == arch::EndpointKind::kFuInput ||
         e->kind == arch::EndpointKind::kFuOutput) &&
        doc().semantic.findAls(machine_.fu(e->unit).als) == nullptr) {
      return refuse(strFormat("fu%d's ALS is not placed in this pipeline",
                              e->unit));
    }
  }
  snapshot();
  PipelineDoc& d = docMut();
  d.semantic.connect(machine_, from, to);
  d.scene.addWire(makeWire(from, to));
  note(from.toString() + " wired to " + to.toString());
  return true;
}

bool Editor::disconnect(const arch::Endpoint& to) {
  ++stats_.actions_attempted;
  auto& conns = docMut().semantic.connections;
  const auto it = std::find_if(conns.begin(), conns.end(),
                               [&](const prog::Connection& c) { return c.to == to; });
  if (it == conns.end()) return refuse("nothing wired to " + to.toString());
  snapshot();
  PipelineDoc& d = docMut();
  auto& list = d.semantic.connections;
  const auto again = std::find_if(list.begin(), list.end(),
                                  [&](const prog::Connection& c) { return c.to == to; });
  if (to.kind == arch::EndpointKind::kFuInput) {
    if (prog::FuUse* use = d.semantic.findFu(machine_, to.unit)) {
      (to.port == 0 ? use->in_a : use->in_b) = arch::InputSelect::kNone;
    }
  }
  list.erase(again);
  d.scene.removeWireTo(to);
  note("disconnected " + to.toString());
  return true;
}

std::vector<arch::Endpoint> Editor::connectionMenu(const arch::Endpoint& from) {
  CheckerSession& session = checkerSession();
  const auto it = session.legal_targets.find(from);
  if (it != session.legal_targets.end()) {
    ++stats_.checker_session_hits;
    return it->second;
  }
  ++stats_.checker_queries;
  std::vector<arch::Endpoint> targets =
      checker_.legalTargets(doc().semantic, from);
  // The menu only offers FU pads whose ALS is on screen (memory, cache and
  // shift/delay entries always appear; they have no icons).
  targets.erase(
      std::remove_if(targets.begin(), targets.end(),
                     [&](const arch::Endpoint& e) {
                       return e.kind == arch::EndpointKind::kFuInput &&
                              doc().semantic.findAls(machine_.fu(e.unit).als) ==
                                  nullptr;
                     }),
      targets.end());
  return session.legal_targets.emplace(from, std::move(targets))
      .first->second;
}

std::vector<arch::OpCode> Editor::opMenu(arch::FuId fu) {
  // legalOps depends only on the machine's wiring, never on the diagram:
  // memoized for the editor's lifetime.
  const auto it = op_menu_cache_.find(fu);
  if (it != op_menu_cache_.end()) return it->second;
  ++stats_.checker_queries;
  return op_menu_cache_.emplace(fu, checker_.legalOps(fu)).first->second;
}

bool Editor::setFuOp(arch::FuId fu, arch::OpCode op) {
  ++stats_.actions_attempted;
  ++stats_.checker_queries;
  if (doc().semantic.findAls(machine_.fu(fu).als) == nullptr) {
    return refuse(strFormat("fu%d's ALS is not placed in this pipeline", fu));
  }
  if (!machine_.fuCanExecute(fu, op)) {
    return refuse(check::Diagnostic{
        check::Rule::kCapability, check::Severity::kError,
        strFormat("fu%d cannot execute '%s'", fu, arch::opInfo(op).name), -1});
  }
  const prog::FuUse* use = doc().semantic.findFu(machine_, fu);
  if (use != nullptr && doc().semantic.findAls(machine_.fu(fu).als)->bypass &&
      machine_.fu(fu).slot == 1) {
    return refuse(std::string(check::ruleProse(check::Rule::kBypass)));
  }
  snapshot();
  docMut().semantic.setFuOp(machine_, fu, op);
  note(strFormat("fu%d programmed: %s", fu, arch::opInfo(op).name));
  return true;
}

bool Editor::setConstInput(arch::FuId fu, int port, double value) {
  ++stats_.actions_attempted;
  if (doc().semantic.findAls(machine_.fu(fu).als) == nullptr) {
    return refuse(strFormat("fu%d's ALS is not placed in this pipeline", fu));
  }
  snapshot();
  docMut().semantic.setConstInput(machine_, fu, port, value);
  note(strFormat("fu%d %c <- constant %g", fu, port == 0 ? 'a' : 'b', value));
  return true;
}

bool Editor::setAccumInput(arch::FuId fu, int port, double seed) {
  ++stats_.actions_attempted;
  if (doc().semantic.findAls(machine_.fu(fu).als) == nullptr) {
    return refuse(strFormat("fu%d's ALS is not placed in this pipeline", fu));
  }
  snapshot();
  docMut().semantic.setAccumInput(machine_, fu, port, seed);
  note(strFormat("fu%d %c <- accumulator (seed %g)", fu,
                 port == 0 ? 'a' : 'b', seed));
  return true;
}

bool Editor::setDma(const arch::Endpoint& endpoint, const prog::DmaSpec& spec) {
  ++stats_.actions_attempted;
  ++stats_.checker_queries;
  if (const auto diag = checker_.checkDma(doc().semantic, endpoint, spec)) {
    return refuse(*diag);
  }
  snapshot();
  docMut().semantic.dmaAt(endpoint) = spec;
  note(strFormat("%s: base=%llu stride=%lld count=%llu",
                 endpoint.toString().c_str(),
                 static_cast<unsigned long long>(spec.base),
                 static_cast<long long>(spec.stride),
                 static_cast<unsigned long long>(spec.count)));
  return true;
}

bool Editor::setShiftDelay(arch::SdId sd, std::vector<int> taps) {
  ++stats_.actions_attempted;
  ++stats_.checker_queries;
  const arch::MachineConfig& cfg = machine_.config();
  if (sd < 0 || sd >= cfg.num_shift_delay) {
    return refuse(strFormat("no shift/delay unit %d", sd));
  }
  if (static_cast<int>(taps.size()) > cfg.sd_taps) {
    return refuse(std::string(check::ruleProse(check::Rule::kSdConfig)));
  }
  for (int t : taps) {
    if (t < 0 || t > cfg.sd_max_delay) {
      return refuse(std::string(check::ruleProse(check::Rule::kSdConfig)));
    }
  }
  snapshot();
  docMut().semantic.useSd(sd, std::move(taps));
  note(strFormat("sd%d configured", sd));
  return true;
}

bool Editor::setCond(arch::FuId fu, int reg) {
  ++stats_.actions_attempted;
  const prog::FuUse* use = doc().semantic.findFu(machine_, fu);
  if (use == nullptr || !use->enabled) {
    return refuse(std::string(check::ruleProse(check::Rule::kCondSource)));
  }
  if (reg < 0 || reg > 3) {
    return refuse(strFormat("no condition register %d", reg));
  }
  snapshot();
  docMut().semantic.cond = prog::CondLatch{fu, reg};
  note(strFormat("condition c%d latched from fu%d", reg, fu));
  return true;
}

void Editor::setSeq(const prog::SeqControl& seq) {
  snapshot();
  ++stats_.actions_attempted;
  docMut().semantic.seq = seq;
  note(strFormat("sequencer: %s", seqOpName(seq.op)));
}

void Editor::overwriteSemantic(const prog::PipelineDiagram& semantic) {
  snapshot();
  const std::uint64_t prior = docMut().semantic.revision();
  docMut().semantic = semantic;
  // The copy brought the source's revision along; keep this document's
  // counter monotonic so the new content can never alias a revision an
  // earlier state of the document already used.
  while (docMut().semantic.revision() <= prior) {
    docMut().semantic.bumpRevision();
  }
  revision_floor_ = std::max(revision_floor_, docMut().semantic.revision());
  rebuildWireGeometry();
}

// ---------------------------------------------------------------------------
// Check / generate / program extraction
// ---------------------------------------------------------------------------

check::DiagnosticList Editor::checkCurrent() {
  CheckerSession& session = checkerSession();
  if (session.diagram_check.has_value()) {
    ++stats_.checker_session_hits;
    return *session.diagram_check;
  }
  ++stats_.checker_queries;
  session.diagram_check = checker_.checkDiagram(doc().semantic, current_);
  return *session.diagram_check;
}

check::DiagnosticList Editor::checkAll() {
  ++stats_.checker_queries;
  return checker_.checkProgram(program());
}

prog::Program Editor::program() const {
  prog::Program p;
  p.name = "edited program";
  for (const PipelineDoc& d : docs_) p.pipelines.push_back(d.semantic);
  return p;
}

mc::GenerateResult Editor::generate() const {
  mc::Generator generator(machine_);
  return generator.generate(program());
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

common::Status Editor::saveToFile(const std::string& path) const {
  common::JsonObject root;
  root["format"] = "nsc-diagram-file";
  root["version"] = 1;
  root["current"] = current_;
  root["program"] = program().toJson();
  common::JsonArray scenes;
  for (const PipelineDoc& d : docs_) {
    common::JsonArray icons;
    for (const Icon& icon : d.scene.icons()) {
      common::JsonObject io;
      io["id"] = icon.id;
      io["kind"] = std::string(iconKindName(icon.kind));
      io["als"] = icon.als;
      io["x"] = icon.pos.x;
      io["y"] = icon.pos.y;
      icons.push_back(common::Json(std::move(io)));
    }
    common::JsonObject so;
    so["icons"] = common::Json(std::move(icons));
    scenes.push_back(common::Json(std::move(so)));
  }
  root["scenes"] = common::Json(std::move(scenes));

  std::ofstream out(path);
  if (!out) return common::Status::error("cannot open for writing: " + path);
  out << common::Json(std::move(root)).dumpPretty() << "\n";
  return out ? common::Status::ok()
             : common::Status::error("write failed: " + path);
}

common::Status Editor::loadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return common::Status::error("cannot open: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = common::Json::parse(buffer.str());
  if (!parsed.isOk()) return common::Status::error(parsed.message());
  const common::Json& root = parsed.value();
  if (root.getString("format") != "nsc-diagram-file") {
    return common::Status::error("not an nsc-diagram-file");
  }
  const auto program = prog::Program::fromJson(root.at("program"));
  if (!program.isOk()) return common::Status::error(program.message());

  std::vector<PipelineDoc> docs;
  const auto& scenes = root.at("scenes").asArray();
  for (std::size_t i = 0; i < program.value().size(); ++i) {
    PipelineDoc d;
    d.semantic = program.value()[i];
    if (i < scenes.size() && scenes[i].has("icons")) {
      for (const common::Json& io : scenes[i].at("icons").asArray()) {
        IconKind kind = IconKind::kSinglet;
        const std::string kname = io.getString("kind");
        if (kname == "doublet") kind = IconKind::kDoublet;
        else if (kname == "doublet-bypass") kind = IconKind::kDoubletBypass;
        else if (kname == "triplet") kind = IconKind::kTriplet;
        d.scene.addIcon(kind, static_cast<arch::AlsId>(io.getInt("als")),
                        Point{static_cast<int>(io.getInt("x")),
                              static_cast<int>(io.getInt("y"))});
      }
    }
    docs.push_back(std::move(d));
  }
  if (docs.empty()) docs.push_back(PipelineDoc{});

  snapshot();
  docs_ = std::move(docs);
  // Loaded diagrams carry low from-JSON revisions; raise them above every
  // revision this editor has handed out (same invariant overwriteSemantic
  // enforces) so pre-load cache keys can't alias post-load content.
  for (PipelineDoc& d : docs_) {
    while (d.semantic.revision() <= revision_floor_) {
      d.semantic.bumpRevision();
    }
    revision_floor_ = std::max(revision_floor_, d.semantic.revision());
  }
  current_ = std::clamp(static_cast<int>(root.getInt("current")), 0,
                        static_cast<int>(docs_.size()) - 1);
  // Re-derive wire polylines from the semantic connections.
  for (PipelineDoc& d : docs_) {
    const int saved = current_;
    (void)saved;
    for (const prog::Connection& c : d.semantic.connections) {
      Wire wire;
      wire.from = c.from;
      wire.to = c.to;
      d.scene.addWire(std::move(wire));
    }
  }
  note("loaded " + path);
  return common::Status::ok();
}

// ---------------------------------------------------------------------------
// Mouse-level interface
// ---------------------------------------------------------------------------

void Editor::beginPaletteDrag(IconKind kind) {
  mode_ = Mode::kDraggingNew;
  drag_kind_ = kind;
  note(strFormat("dragging a %s from the palette", iconKindName(kind)));
}

void Editor::mouseDown(Point p) {
  if (mode_ != Mode::kIdle) return;
  if (const auto pad = doc().scene.padAt(p, machine_)) {
    if (pad->endpoint.kind == arch::EndpointKind::kFuOutput) {
      mode_ = Mode::kRubberBand;
      band_from_ = pad->endpoint;
      hover_legal_.reset();
      note("rubber-band from " + pad->endpoint.toString());
      return;
    }
  }
  if (const Icon* icon = doc().scene.iconAt(p)) {
    mode_ = Mode::kDraggingIcon;
    drag_icon_ = icon->id;
    drag_grab_ = {p.x - icon->pos.x, p.y - icon->pos.y};
  }
}

void Editor::mouseMove(Point p) {
  switch (mode_) {
    case Mode::kRubberBand: {
      // Live legality feedback while the wire is stretched (the editor
      // "uses the checker's knowledge ... to reduce the possibilities for
      // making errors").
      const auto pad = doc().scene.padAt(p, machine_);
      if (pad.has_value()) {
        hover_legal_ =
            !cachedCheckConnection(band_from_, pad->endpoint).has_value();
      } else {
        hover_legal_.reset();
      }
      break;
    }
    case Mode::kDraggingIcon: {
      if (Icon* icon = docMut().scene.findIcon(drag_icon_)) {
        icon->pos = {p.x - drag_grab_.x, p.y - drag_grab_.y};
      }
      break;
    }
    default:
      break;
  }
}

void Editor::mouseUp(Point p) {
  switch (mode_) {
    case Mode::kDraggingNew:
      mode_ = Mode::kIdle;
      placeIcon(drag_kind_, p);
      break;
    case Mode::kDraggingIcon:
      mode_ = Mode::kIdle;
      if (!layout_.drawing.contains(p)) {
        note("icon dropped outside the drawing area; keeping last position");
      }
      rebuildWireGeometry();
      break;
    case Mode::kRubberBand: {
      mode_ = Mode::kIdle;
      const auto pad = doc().scene.padAt(p, machine_);
      if (!pad.has_value()) {
        note("rubber-band released over empty space");
        break;
      }
      connect(band_from_, pad->endpoint);
      break;
    }
    case Mode::kIdle:
      break;
  }
  hover_legal_.reset();
}

// ---------------------------------------------------------------------------
// Endpoint parsing
// ---------------------------------------------------------------------------

common::Result<arch::Endpoint> parseEndpoint(const std::string& text) {
  using common::Result;
  const auto dot = text.find('.');
  if (dot == std::string::npos) {
    return Result<arch::Endpoint>::error("endpoint needs unit.port: " + text);
  }
  const std::string head = text.substr(0, dot);
  const std::string tail = text.substr(dot + 1);
  auto number = [](const std::string& s, std::size_t prefix) {
    return std::atoi(s.c_str() + prefix);
  };
  if (common::startsWith(head, "fu")) {
    const int fu = number(head, 2);
    if (tail == "a") return arch::Endpoint::fuInput(fu, 0);
    if (tail == "b") return arch::Endpoint::fuInput(fu, 1);
    if (tail == "out") return arch::Endpoint::fuOutput(fu);
  } else if (common::startsWith(head, "plane")) {
    const int p = number(head, 5);
    if (tail == "read") return arch::Endpoint::planeRead(p);
    if (tail == "write") return arch::Endpoint::planeWrite(p);
  } else if (common::startsWith(head, "cache")) {
    const int c = number(head, 5);
    if (tail == "read") return arch::Endpoint::cacheRead(c);
    if (tail == "write") return arch::Endpoint::cacheWrite(c);
  } else if (common::startsWith(head, "sd")) {
    const int s = number(head, 2);
    if (tail == "in") return arch::Endpoint::sdInput(s);
    if (common::startsWith(tail, "tap")) {
      return arch::Endpoint::sdOutput(s, number(tail, 3));
    }
  }
  return Result<arch::Endpoint>::error("cannot parse endpoint: " + text);
}

}  // namespace nsc::ed
