// MachineConfig: every architectural parameter of one NSC node, with
// defaults taken from the paper (Section 2).  Machine: the concrete
// instance — ALS/FU layout with capabilities and the switch-network
// endpoint catalogue — that the checker, microcode generator, simulator,
// and editor all consult.
//
// The paper's quoted numbers: 32 functional units per node grouped into
// singlets/doublets/triplets; 16 memory planes x 128 MB = 2 GB; 16
// double-buffered data caches (8 KB x 16 x 2 in Figure 1); 2 shift/delay
// units; peak 640 MFLOPS per node (=> 20 MHz with one FP result per FU per
// cycle); 64 nodes => 128 GB and ~40 GFLOPS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/ops.h"
#include "arch/types.h"

namespace nsc::arch {

struct MachineConfig {
  // ALS composition.  4*1 + 8*2 + 4*3 = 32 FUs.  The paper gives the total
  // (32) but not the split; this default is configurable and recorded in
  // DESIGN.md.
  int num_singlets = 4;
  int num_doublets = 8;
  int num_triplets = 4;

  // Memory system.
  int num_memory_planes = 16;
  std::uint64_t plane_bytes = 128ull * 1024 * 1024;
  int word_bytes = 8;  // 64-bit floating point words

  int num_caches = 16;
  std::uint64_t cache_bytes = 8ull * 1024;  // per buffer
  int cache_buffers = 2;                    // double buffered

  int num_shift_delay = 2;
  int sd_taps = 3;        // simultaneous delayed copies of one stream
  int sd_max_delay = 255; // cycles

  int register_file_words = 64;  // per FU
  int rf_max_delay = 63;         // usable circular-queue depth

  double clock_mhz = 20.0;

  // Constraint parameters enforced by the checker.
  int plane_streams_per_instruction = 1;  // one DMA stream per plane
  int max_switch_fanout = 8;              // copies of one source stream

  // In the simulator, only elements actually clocked through memory exist;
  // this caps per-plane simulated backing storage (words), far below the
  // architectural 16M words, so tests stay small.
  std::uint64_t sim_plane_words = 1ull << 22;

  int numFus() const {
    return num_singlets + 2 * num_doublets + 3 * num_triplets;
  }
  int numAls() const { return num_singlets + num_doublets + num_triplets; }
  std::uint64_t planeWords() const { return plane_bytes / word_bytes; }
  std::uint64_t cacheWords() const { return cache_bytes / word_bytes; }
  std::uint64_t totalMemoryBytes() const {
    return plane_bytes * static_cast<std::uint64_t>(num_memory_planes);
  }
  // One FP result per functional unit per cycle at peak.
  double peakMflopsPerNode() const { return numFus() * clock_mhz; }

  // The paper's restricted-subset study (Section 6): a simpler model that
  // trades performance for programmability.  Singlet-only ALS mix, no
  // caches, no shift/delay units.
  static MachineConfig restrictedSubset();

  // Two configs are interchangeable iff every parameter matches; the
  // microword-spec cache keys on this.
  bool operator==(const MachineConfig&) const = default;
};

struct FuInfo {
  FuId id = 0;
  AlsId als = 0;
  int slot = 0;  // position within the ALS (0 = first)
  CapMask caps = kCapFp;
};

struct AlsInfo {
  AlsId id = 0;
  AlsKind kind = AlsKind::kSinglet;
  std::vector<FuId> fus;  // in slot order
};

// Immutable machine instance built from a config.  Also provides the dense
// numbering of switch sources/destinations used by the microword and the
// simulator's crossbar.
class Machine {
 public:
  explicit Machine(MachineConfig config = {});

  const MachineConfig& config() const { return config_; }
  const std::vector<AlsInfo>& als() const { return als_; }
  const std::vector<FuInfo>& fus() const { return fus_; }
  const AlsInfo& als(AlsId id) const { return als_.at(static_cast<std::size_t>(id)); }
  const FuInfo& fu(FuId id) const { return fus_.at(static_cast<std::size_t>(id)); }

  // All endpoints that can source a switch stream, in dense index order.
  const std::vector<Endpoint>& sources() const { return sources_; }
  // All endpoints that can terminate a switch stream, in dense index order.
  const std::vector<Endpoint>& destinations() const { return destinations_; }

  // Dense indices (-1 if the endpoint is not of the right class).
  int sourceIndex(const Endpoint& e) const;
  int destinationIndex(const Endpoint& e) const;

  bool fuHasCap(FuId fu, CapMask cap) const {
    return (this->fu(fu).caps & cap) == cap;
  }
  bool fuCanExecute(FuId fu, OpCode op) const {
    return fuHasCap(fu, opInfo(op).required_cap);
  }

  // True if `from` FU feeds `to` FU over the hardwired internal ALS chain
  // path (same ALS, consecutive slots).
  bool isChainPath(FuId from, FuId to) const;

  std::string describe() const;  // human-readable inventory

 private:
  MachineConfig config_;
  std::vector<AlsInfo> als_;
  std::vector<FuInfo> fus_;
  std::vector<Endpoint> sources_;
  std::vector<Endpoint> destinations_;
};

}  // namespace nsc::arch
