// Functional-unit operation catalogue.
//
// The paper states every FU performs floating-point operations and some
// additionally perform integer/logical or max/min computations.  The exact
// NSC op list was never published; this catalogue covers the operations the
// paper's example and the CFD workloads need, partitioned into the three
// capability classes so the checker can enforce the per-ALS asymmetries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/types.h"

namespace nsc::arch {

enum class OpCode : std::uint8_t {
  kNop = 0,
  kPass,  // identity on operand A (used for staging/fanout)
  // Floating point (kCapFp).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kAbs,
  kSqrt,
  kRecip,
  // Comparisons produce 0.0 / 1.0 (kCapFp); used for condition latching.
  kCmpLt,
  kCmpLe,
  kCmpEq,
  // Integer / logical (kCapIntLogic); operands truncated to int64.
  kIAdd,
  kISub,
  kIMul,
  kAnd,
  kOr,
  kXor,
  kNot,
  kShl,
  kShr,
  // Min / max (kCapMinMax).
  kMin,
  kMax,

  kNumOps,
};

struct OpInfo {
  OpCode op;
  const char* name;
  int arity;             // 1 or 2 (kNop has arity 0)
  CapMask required_cap;  // capability an FU needs to execute this op
  int latency;           // pipeline stages at the machine clock
  bool counts_as_flop;   // contributes to MFLOPS accounting
};

// Table lookup; every OpCode below kNumOps has an entry.
const OpInfo& opInfo(OpCode op);

// Name lookup for parsers/menus; returns nullopt for unknown names.
std::optional<OpCode> opByName(std::string_view name);

// All ops an FU with capability mask `caps` may execute, in menu order.
std::vector<OpCode> opsForCaps(CapMask caps);

// Scalar semantics used by both the simulator and the host-side reference
// evaluation in tests.  For unary ops `b` is ignored.
double evalOp(OpCode op, double a, double b);

}  // namespace nsc::arch
