#include "arch/machine.h"

#include <algorithm>

#include "common/strings.h"

namespace nsc::arch {

MachineConfig MachineConfig::restrictedSubset() {
  MachineConfig c;
  // Same FU budget exposed as 32 independent singlets; no caches or
  // shift/delay units; programmer sees a flat, symmetric machine.
  c.num_singlets = 32;
  c.num_doublets = 0;
  c.num_triplets = 0;
  c.num_caches = 0;
  c.num_shift_delay = 0;
  return c;
}

namespace {

// Capability layout within one ALS (paper, Section 3 and Figure 4):
// slot 0 carries the integer/logical circuitry (the "double box" icon);
// the last slot of a multi-unit ALS carries min/max.  A singlet's lone FU
// gets both, so the restricted subset remains universal.
CapMask slotCaps(AlsKind kind, int slot) {
  CapMask caps = kCapFp;
  const int count = alsFuCount(kind);
  if (slot == 0) caps |= kCapIntLogic;
  if (count == 1 || slot == count - 1) {
    if (count == 1) {
      caps |= kCapMinMax;
    } else if (slot == count - 1) {
      caps |= kCapMinMax;
    }
  }
  return caps;
}

}  // namespace

Machine::Machine(MachineConfig config) : config_(config) {
  // ALS layout order: singlets, then doublets, then triplets.
  auto addAls = [this](AlsKind kind) {
    AlsInfo info;
    info.id = static_cast<AlsId>(als_.size());
    info.kind = kind;
    for (int slot = 0; slot < alsFuCount(kind); ++slot) {
      FuInfo fu;
      fu.id = static_cast<FuId>(fus_.size());
      fu.als = info.id;
      fu.slot = slot;
      fu.caps = slotCaps(kind, slot);
      info.fus.push_back(fu.id);
      fus_.push_back(fu);
    }
    als_.push_back(std::move(info));
  };
  for (int i = 0; i < config_.num_singlets; ++i) addAls(AlsKind::kSinglet);
  for (int i = 0; i < config_.num_doublets; ++i) addAls(AlsKind::kDoublet);
  for (int i = 0; i < config_.num_triplets; ++i) addAls(AlsKind::kTriplet);

  // Dense source ordering: FU outputs, plane reads, cache reads, SD taps.
  for (const FuInfo& fu : fus_) sources_.push_back(Endpoint::fuOutput(fu.id));
  for (int p = 0; p < config_.num_memory_planes; ++p) {
    sources_.push_back(Endpoint::planeRead(p));
  }
  for (int c = 0; c < config_.num_caches; ++c) {
    sources_.push_back(Endpoint::cacheRead(c));
  }
  for (int s = 0; s < config_.num_shift_delay; ++s) {
    for (int t = 0; t < config_.sd_taps; ++t) {
      sources_.push_back(Endpoint::sdOutput(s, t));
    }
  }

  // Dense destination ordering: FU inputs (A then B per FU), plane writes,
  // cache writes, SD inputs.
  for (const FuInfo& fu : fus_) {
    destinations_.push_back(Endpoint::fuInput(fu.id, 0));
    destinations_.push_back(Endpoint::fuInput(fu.id, 1));
  }
  for (int p = 0; p < config_.num_memory_planes; ++p) {
    destinations_.push_back(Endpoint::planeWrite(p));
  }
  for (int c = 0; c < config_.num_caches; ++c) {
    destinations_.push_back(Endpoint::cacheWrite(c));
  }
  for (int s = 0; s < config_.num_shift_delay; ++s) {
    destinations_.push_back(Endpoint::sdInput(s));
  }
}

int Machine::sourceIndex(const Endpoint& e) const {
  const auto it = std::find(sources_.begin(), sources_.end(), e);
  return it == sources_.end() ? -1 : static_cast<int>(it - sources_.begin());
}

int Machine::destinationIndex(const Endpoint& e) const {
  const auto it = std::find(destinations_.begin(), destinations_.end(), e);
  return it == destinations_.end() ? -1
                                   : static_cast<int>(it - destinations_.begin());
}

bool Machine::isChainPath(FuId from, FuId to) const {
  const FuInfo& a = fu(from);
  const FuInfo& b = fu(to);
  return a.als == b.als && b.slot == a.slot + 1;
}

std::string Machine::describe() const {
  using common::strFormat;
  std::string out;
  out += strFormat("NSC node: %d functional units in %d ALSs (%d singlets, %d doublets, %d triplets)\n",
                   config_.numFus(), config_.numAls(), config_.num_singlets,
                   config_.num_doublets, config_.num_triplets);
  out += strFormat("memory: %d planes x %s = %s\n", config_.num_memory_planes,
                   common::bytesHuman(config_.plane_bytes).c_str(),
                   common::bytesHuman(config_.totalMemoryBytes()).c_str());
  out += strFormat("caches: %d x %s x %d buffers\n", config_.num_caches,
                   common::bytesHuman(config_.cache_bytes).c_str(),
                   config_.cache_buffers);
  out += strFormat("shift/delay units: %d (%d taps, max delay %d)\n",
                   config_.num_shift_delay, config_.sd_taps, config_.sd_max_delay);
  out += strFormat("clock: %.1f MHz, peak %.0f MFLOPS/node\n", config_.clock_mhz,
                   config_.peakMflopsPerNode());
  out += strFormat("switch network: %zu sources -> %zu destinations\n",
                   sources_.size(), destinations_.size());
  return out;
}

}  // namespace nsc::arch
