#include "arch/ops.h"

#include <array>
#include <cmath>
#include <cstring>

namespace nsc::arch {

namespace {

// Latencies are plausible 1980s pipelined-ECL figures; they matter only
// relative to each other (the checker's alignment rule and the generator's
// delay balancing are exercised by any non-uniform assignment).
constexpr std::array<OpInfo, static_cast<std::size_t>(OpCode::kNumOps)> kOps = {{
    {OpCode::kNop, "nop", 0, 0, 1, false},
    {OpCode::kPass, "pass", 1, kCapFp, 1, false},
    {OpCode::kAdd, "add", 2, kCapFp, 6, true},
    {OpCode::kSub, "sub", 2, kCapFp, 6, true},
    {OpCode::kMul, "mul", 2, kCapFp, 7, true},
    {OpCode::kDiv, "div", 2, kCapFp, 20, true},
    {OpCode::kNeg, "neg", 1, kCapFp, 2, true},
    {OpCode::kAbs, "abs", 1, kCapFp, 2, true},
    {OpCode::kSqrt, "sqrt", 1, kCapFp, 22, true},
    {OpCode::kRecip, "recip", 1, kCapFp, 20, true},
    {OpCode::kCmpLt, "cmplt", 2, kCapFp, 3, true},
    {OpCode::kCmpLe, "cmple", 2, kCapFp, 3, true},
    {OpCode::kCmpEq, "cmpeq", 2, kCapFp, 3, true},
    {OpCode::kIAdd, "iadd", 2, kCapIntLogic, 3, false},
    {OpCode::kISub, "isub", 2, kCapIntLogic, 3, false},
    {OpCode::kIMul, "imul", 2, kCapIntLogic, 5, false},
    {OpCode::kAnd, "and", 2, kCapIntLogic, 2, false},
    {OpCode::kOr, "or", 2, kCapIntLogic, 2, false},
    {OpCode::kXor, "xor", 2, kCapIntLogic, 2, false},
    {OpCode::kNot, "not", 1, kCapIntLogic, 2, false},
    {OpCode::kShl, "shl", 2, kCapIntLogic, 2, false},
    {OpCode::kShr, "shr", 2, kCapIntLogic, 2, false},
    {OpCode::kMin, "min", 2, kCapMinMax, 4, true},
    {OpCode::kMax, "max", 2, kCapMinMax, 4, true},
}};

std::int64_t toInt(double v) { return static_cast<std::int64_t>(v); }

}  // namespace

const OpInfo& opInfo(OpCode op) {
  return kOps[static_cast<std::size_t>(op)];
}

std::optional<OpCode> opByName(std::string_view name) {
  for (const OpInfo& info : kOps) {
    if (name == info.name) return info.op;
  }
  return std::nullopt;
}

std::vector<OpCode> opsForCaps(CapMask caps) {
  std::vector<OpCode> out;
  for (const OpInfo& info : kOps) {
    if (info.op == OpCode::kNop) continue;
    if ((info.required_cap & caps) == info.required_cap) out.push_back(info.op);
  }
  return out;
}

double evalOp(OpCode op, double a, double b) {
  switch (op) {
    case OpCode::kNop: return 0.0;
    case OpCode::kPass: return a;
    case OpCode::kAdd: return a + b;
    case OpCode::kSub: return a - b;
    case OpCode::kMul: return a * b;
    case OpCode::kDiv: return a / b;
    case OpCode::kNeg: return -a;
    case OpCode::kAbs: return std::fabs(a);
    case OpCode::kSqrt: return std::sqrt(a);
    case OpCode::kRecip: return 1.0 / a;
    case OpCode::kCmpLt: return a < b ? 1.0 : 0.0;
    case OpCode::kCmpLe: return a <= b ? 1.0 : 0.0;
    case OpCode::kCmpEq: return a == b ? 1.0 : 0.0;
    case OpCode::kIAdd: return static_cast<double>(toInt(a) + toInt(b));
    case OpCode::kISub: return static_cast<double>(toInt(a) - toInt(b));
    case OpCode::kIMul: return static_cast<double>(toInt(a) * toInt(b));
    case OpCode::kAnd: return static_cast<double>(toInt(a) & toInt(b));
    case OpCode::kOr: return static_cast<double>(toInt(a) | toInt(b));
    case OpCode::kXor: return static_cast<double>(toInt(a) ^ toInt(b));
    case OpCode::kNot: return static_cast<double>(~toInt(a));
    case OpCode::kShl: return static_cast<double>(toInt(a) << (toInt(b) & 63));
    case OpCode::kShr: return static_cast<double>(toInt(a) >> (toInt(b) & 63));
    case OpCode::kMin: return a < b ? a : b;
    case OpCode::kMax: return a > b ? a : b;
    case OpCode::kNumOps: break;
  }
  return 0.0;
}

}  // namespace nsc::arch
