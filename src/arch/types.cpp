#include "arch/types.h"

#include "common/strings.h"

namespace nsc::arch {

int alsFuCount(AlsKind kind) {
  switch (kind) {
    case AlsKind::kSinglet: return 1;
    case AlsKind::kDoublet: return 2;
    case AlsKind::kTriplet: return 3;
  }
  return 0;
}

const char* alsKindName(AlsKind kind) {
  switch (kind) {
    case AlsKind::kSinglet: return "singlet";
    case AlsKind::kDoublet: return "doublet";
    case AlsKind::kTriplet: return "triplet";
  }
  return "?";
}

std::string capMaskName(CapMask caps) {
  std::string out;
  if (caps & kCapFp) out += "fp";
  if (caps & kCapIntLogic) out += out.empty() ? "int" : "+int";
  if (caps & kCapMinMax) out += out.empty() ? "minmax" : "+minmax";
  return out.empty() ? "none" : out;
}

const char* inputSelectName(InputSelect sel) {
  switch (sel) {
    case InputSelect::kNone: return "none";
    case InputSelect::kSwitch: return "switch";
    case InputSelect::kRegisterFile: return "rf";
    case InputSelect::kFeedback: return "feedback";
    case InputSelect::kChain: return "chain";
  }
  return "?";
}

const char* rfModeName(RfMode mode) {
  switch (mode) {
    case RfMode::kOff: return "off";
    case RfMode::kConstant: return "const";
    case RfMode::kDelay: return "delay";
    case RfMode::kAccum: return "accum";
  }
  return "?";
}

const char* endpointKindName(EndpointKind kind) {
  switch (kind) {
    case EndpointKind::kNone: return "none";
    case EndpointKind::kFuOutput: return "fu_out";
    case EndpointKind::kFuInput: return "fu_in";
    case EndpointKind::kPlaneRead: return "plane_read";
    case EndpointKind::kPlaneWrite: return "plane_write";
    case EndpointKind::kCacheRead: return "cache_read";
    case EndpointKind::kCacheWrite: return "cache_write";
    case EndpointKind::kSdOutput: return "sd_out";
    case EndpointKind::kSdInput: return "sd_in";
  }
  return "?";
}

bool endpointIsSource(EndpointKind kind) {
  switch (kind) {
    case EndpointKind::kFuOutput:
    case EndpointKind::kPlaneRead:
    case EndpointKind::kCacheRead:
    case EndpointKind::kSdOutput:
      return true;
    default:
      return false;
  }
}

bool endpointIsDestination(EndpointKind kind) {
  switch (kind) {
    case EndpointKind::kFuInput:
    case EndpointKind::kPlaneWrite:
    case EndpointKind::kCacheWrite:
    case EndpointKind::kSdInput:
      return true;
    default:
      return false;
  }
}

std::string Endpoint::toString() const {
  switch (kind) {
    case EndpointKind::kNone: return "none";
    case EndpointKind::kFuInput:
      return common::strFormat("fu%d.%s", unit, port == 0 ? "a" : "b");
    case EndpointKind::kFuOutput: return common::strFormat("fu%d.out", unit);
    case EndpointKind::kPlaneRead: return common::strFormat("plane%d.read", unit);
    case EndpointKind::kPlaneWrite: return common::strFormat("plane%d.write", unit);
    case EndpointKind::kCacheRead: return common::strFormat("cache%d.read", unit);
    case EndpointKind::kCacheWrite: return common::strFormat("cache%d.write", unit);
    case EndpointKind::kSdOutput: return common::strFormat("sd%d.tap%d", unit, port);
    case EndpointKind::kSdInput: return common::strFormat("sd%d.in", unit);
  }
  return "?";
}

}  // namespace nsc::arch
