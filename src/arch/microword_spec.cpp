#include "arch/microword_spec.h"

#include <bit>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/strings.h"

namespace nsc::arch {

namespace {

std::size_t bitsFor(std::uint64_t max_value) {
  std::size_t bits = 0;
  while (max_value > 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

}  // namespace

const char* seqOpName(SeqOp op) {
  switch (op) {
    case SeqOp::kNext: return "next";
    case SeqOp::kJump: return "jump";
    case SeqOp::kBranchIf: return "brif";
    case SeqOp::kBranchNot: return "brnot";
    case SeqOp::kLoop: return "loop";
    case SeqOp::kHalt: return "halt";
  }
  return "?";
}

MicrowordSpec::MicrowordSpec(const Machine& machine) {
  const MachineConfig& cfg = machine.config();

  // Per-functional-unit control.
  const std::size_t rf_delay_bits = bitsFor(static_cast<std::uint64_t>(cfg.rf_max_delay));
  const std::size_t rf_addr_bits =
      bitsFor(static_cast<std::uint64_t>(cfg.register_file_words - 1));
  for (const FuInfo& fu : machine.fus()) {
    add("fu", fuField(fu.id, "enable"), 1);
    add("fu", fuField(fu.id, "opcode"), 6);
    add("fu", fuField(fu.id, "in_a_sel"), 3);
    add("fu", fuField(fu.id, "in_b_sel"), 3);
    add("fu", fuField(fu.id, "rf_mode"), 2);
    add("fu", fuField(fu.id, "rf_delay"), rf_delay_bits);
    add("fu", fuField(fu.id, "rf_addr"), rf_addr_bits);
  }

  // Per-ALS control: bypass pattern (doublet-as-singlet etc.).
  for (const AlsInfo& als : machine.als()) {
    add("als", common::strFormat("als%02d.bypass", als.id), 2);
  }

  // Switch network: one source-select per destination port.
  switch_select_width_ = bitsFor(machine.sources().size());  // +1 for "none"
  for (std::size_t d = 0; d < machine.destinations().size(); ++d) {
    add("switch", switchField(static_cast<int>(d)), switch_select_width_);
  }

  // Per-memory-plane DMA engine.
  const std::size_t plane_addr_bits = bitsFor(cfg.planeWords() - 1);
  for (PlaneId p = 0; p < cfg.num_memory_planes; ++p) {
    add("plane", planeField(p, "mode"), 2);  // 0 idle, 1 read, 2 write
    add("plane", planeField(p, "base"), plane_addr_bits);
    add("plane", planeField(p, "stride"), 16);
    add("plane", planeField(p, "count"), 24);
    add("plane", planeField(p, "count2"), 16);   // two-level transfers
    add("plane", planeField(p, "stride2"), 24);
  }

  // Per-cache DMA engine.
  const std::size_t cache_addr_bits = bitsFor(cfg.cacheWords() - 1);
  for (CacheId c = 0; c < cfg.num_caches; ++c) {
    add("cache", cacheField(c, "mode"), 2);
    add("cache", cacheField(c, "read_buffer"), 1);
    add("cache", cacheField(c, "base"), cache_addr_bits);
    add("cache", cacheField(c, "stride"), 8);
    add("cache", cacheField(c, "count"), cache_addr_bits + 1);
    add("cache", cacheField(c, "swap"), 1);
  }

  // Shift/delay units: tap delays for reformatting one stream into several
  // shifted copies.
  const std::size_t sd_delay_bits = bitsFor(static_cast<std::uint64_t>(cfg.sd_max_delay));
  for (SdId s = 0; s < cfg.num_shift_delay; ++s) {
    add("sd", sdField(s, "enable"), 1);
    for (int t = 0; t < cfg.sd_taps; ++t) {
      add("sd", sdField(s, common::strFormat("tap%d", t)), sd_delay_bits);
    }
  }

  // Condition latch: after the pipeline drains, the last value produced by
  // fu `cond.src_fu` is compared against 0.5 and stored in condition
  // register `cond.reg` (the FU computes the boolean itself with a cmp op).
  add("cond", "cond.enable", 1);
  add("cond", "cond.src_fu", bitsFor(static_cast<std::uint64_t>(machine.config().numFus() - 1)));
  add("cond", "cond.reg", 2);

  // Sequencer control.
  add("seq", "seq.op", 3);
  add("seq", "seq.target", 12);
  add("seq", "seq.cond_reg", 2);
  add("seq", "seq.count", 16);

  // Interrupt-enable mask (completion interrupts per DMA group).
  add("irq", "irq.mask", 16);
}

std::shared_ptr<const MicrowordSpec> MicrowordSpec::shared(
    const Machine& machine) {
  struct Entry {
    MachineConfig config;
    std::shared_ptr<const MicrowordSpec> spec;
  };
  static std::mutex mutex;
  static std::vector<Entry> cache;  // a handful of configs per process
  std::lock_guard<std::mutex> lock(mutex);
  for (const Entry& e : cache) {
    if (e.config == machine.config()) return e.spec;
  }
  cache.push_back(
      {machine.config(), std::make_shared<const MicrowordSpec>(machine)});
  return cache.back().spec;
}

void MicrowordSpec::add(const std::string& section, const std::string& name,
                        std::size_t width) {
  MicroField f;
  f.name = name;
  f.section = section;
  f.offset = width_;
  f.width = width;
  index_[name] = fields_.size();
  fields_.push_back(std::move(f));
  width_ += width;
}

const MicroField& MicrowordSpec::field(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("unknown microword field: " + name);
  }
  return fields_[it->second];
}

void MicrowordSpec::set(common::BitVector& word, const std::string& name,
                        std::uint64_t value) const {
  const MicroField& f = field(name);
  word.setField(f.offset, f.width, value);
}

std::uint64_t MicrowordSpec::get(const common::BitVector& word,
                                 const std::string& name) const {
  const MicroField& f = field(name);
  return word.field(f.offset, f.width);
}

void MicrowordSpec::setSigned(common::BitVector& word, const std::string& name,
                              std::int64_t value) const {
  const MicroField& f = field(name);
  const std::uint64_t mask =
      f.width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << f.width) - 1);
  word.setField(f.offset, f.width, static_cast<std::uint64_t>(value) & mask);
}

std::int64_t MicrowordSpec::getSigned(const common::BitVector& word,
                                      const std::string& name) const {
  const MicroField& f = field(name);
  std::uint64_t raw = word.field(f.offset, f.width);
  if (f.width < 64 && (raw & (std::uint64_t{1} << (f.width - 1)))) {
    raw |= ~((std::uint64_t{1} << f.width) - 1);  // sign extend
  }
  return static_cast<std::int64_t>(raw);
}

std::string MicrowordSpec::fuField(FuId fu, const std::string& leaf) {
  return common::strFormat("fu%02d.%s", fu, leaf.c_str());
}

std::string MicrowordSpec::switchField(int dest_index) {
  return common::strFormat("sw.dst%03d", dest_index);
}

std::string MicrowordSpec::planeField(PlaneId p, const std::string& leaf) {
  return common::strFormat("plane%02d.%s", p, leaf.c_str());
}

std::string MicrowordSpec::cacheField(CacheId c, const std::string& leaf) {
  return common::strFormat("cache%02d.%s", c, leaf.c_str());
}

std::string MicrowordSpec::sdField(SdId s, const std::string& leaf) {
  return common::strFormat("sd%d.%s", s, leaf.c_str());
}

std::vector<std::pair<std::string, std::size_t>>
MicrowordSpec::sectionBitCounts() const {
  std::map<std::string, std::size_t> counts;
  for (const MicroField& f : fields_) counts[f.section] += f.width;
  return {counts.begin(), counts.end()};
}

}  // namespace nsc::arch
