// MicrowordSpec: the bit-level layout of one NSC instruction.
//
// "Each instruction must be specified in a complex hierarchical microcode
// which contains specific control for every function unit, register file,
// switch setting, DMA unit, etc. ... This requires a few thousand bits of
// information per instruction, encoded in dozens of separate fields."
// (paper, Section 3.)
//
// The real format was never published; this spec is *generated* from the
// machine description so that every modelled component has its control
// bits, and so the width/field-count claims can be measured (bench
// claims_microword).  Field names are stable strings ("fu07.opcode",
// "plane03.stride", "sw.dst042", ...), grouped into sections.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/machine.h"
#include "common/bitvector.h"

namespace nsc::arch {

struct MicroField {
  std::string name;
  std::string section;  // "fu", "als", "switch", "plane", "cache", "sd",
                        // "seq", "cond", "irq"
  std::size_t offset = 0;
  std::size_t width = 0;
};

// Sequencer opcodes stored in the "seq.op" field of each microword.  The
// central sequencer provides high-level control flow (paper, Section 2).
enum class SeqOp : std::uint8_t {
  kNext = 0,    // fall through to the next instruction
  kJump,        // unconditional branch to seq.target
  kBranchIf,    // branch to seq.target if condition register is set
  kBranchNot,   // branch to seq.target if condition register is clear
  kLoop,        // decrement loop counter; branch to seq.target while > 0
  kHalt,        // stop the sequencer
};

const char* seqOpName(SeqOp op);

class MicrowordSpec {
 public:
  explicit MicrowordSpec(const Machine& machine);

  // The spec is a pure function of MachineConfig, and building it (field
  // table + name index) costs more than decoding a whole instruction.
  // shared() memoizes one immutable spec per distinct config, so hot paths
  // that regenerate/recompile programs (microcode generator, compiled
  // simulator programs) never rebuild it.  Thread-safe.
  static std::shared_ptr<const MicrowordSpec> shared(const Machine& machine);

  std::size_t widthBits() const { return width_; }
  const std::vector<MicroField>& fields() const { return fields_; }

  bool hasField(const std::string& name) const {
    return index_.count(name) > 0;
  }
  const MicroField& field(const std::string& name) const;

  // Accessors on a microword (a BitVector of widthBits()).
  void set(common::BitVector& word, const std::string& name,
           std::uint64_t value) const;
  std::uint64_t get(const common::BitVector& word,
                    const std::string& name) const;

  // Signed fields (e.g. DMA strides) stored as two's complement.
  void setSigned(common::BitVector& word, const std::string& name,
                 std::int64_t value) const;
  std::int64_t getSigned(const common::BitVector& word,
                         const std::string& name) const;

  common::BitVector makeWord() const { return common::BitVector(width_); }

  // Field name builders.
  static std::string fuField(FuId fu, const std::string& leaf);
  static std::string switchField(int dest_index);
  static std::string planeField(PlaneId p, const std::string& leaf);
  static std::string cacheField(CacheId c, const std::string& leaf);
  static std::string sdField(SdId s, const std::string& leaf);

  // Width of the switch source-select value; value 0 means "no source",
  // value i+1 selects machine.sources()[i].
  std::size_t switchSelectWidth() const { return switch_select_width_; }

  // Section statistics for the claims bench.
  std::vector<std::pair<std::string, std::size_t>> sectionBitCounts() const;

 private:
  void add(const std::string& section, const std::string& name,
           std::size_t width);

  std::vector<MicroField> fields_;
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t width_ = 0;
  std::size_t switch_select_width_ = 0;
};

}  // namespace nsc::arch
