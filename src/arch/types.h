// Core identifier and enum types for the NSC machine model.
//
// Terminology follows the paper (Section 2): a node holds 32 functional
// units (FUs) hardwired into arithmetic-logic structures (ALSs) of three
// kinds (singlet/doublet/triplet); 16 memory planes; 16 double-buffered
// caches; 2 shift/delay units; a programmable switch network ("FLONET")
// routing streams among them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace nsc::arch {

using FuId = int;     // 0 .. numFus()-1, global across the node
using AlsId = int;    // 0 .. numAls()-1
using PlaneId = int;  // 0 .. numMemoryPlanes()-1
using CacheId = int;  // 0 .. numCaches()-1
using SdId = int;     // 0 .. numShiftDelay()-1

enum class AlsKind : std::uint8_t {
  kSinglet,  // 1 FU
  kDoublet,  // 2 FUs
  kTriplet,  // 3 FUs
};

int alsFuCount(AlsKind kind);
const char* alsKindName(AlsKind kind);

// Capability bits of a functional unit.  Every FU does floating point;
// within each ALS exactly one unit also has integer/logical circuitry and
// (in doublets/triplets) another has min/max circuitry (paper, Section 3).
enum FuCapability : std::uint8_t {
  kCapFp = 1u << 0,
  kCapIntLogic = 1u << 1,
  kCapMinMax = 1u << 2,
};
using CapMask = std::uint8_t;

std::string capMaskName(CapMask caps);

// Where an FU input draws its operand from.  These select among the
// microword-controlled paths of Figure 1.
enum class InputSelect : std::uint8_t {
  kNone = 0,      // operand unused (unary ops / disabled unit)
  kSwitch,        // stream routed through the switch network
  kRegisterFile,  // constant or delayed value from the FU's register file
  kFeedback,      // the FU's own output fed back (through its register file)
  kChain,         // hardwired internal path from the previous FU in the ALS
};

const char* inputSelectName(InputSelect sel);

// Register-file operating mode for one instruction.
enum class RfMode : std::uint8_t {
  kOff = 0,
  kConstant,  // supply a preloaded constant every cycle
  kDelay,     // circular queue: output = input delayed by rf_delay cycles
  kAccum,     // feedback accumulator seed/hold (for reductions)
};

const char* rfModeName(RfMode mode);

// One endpoint of a switch-routed stream.
enum class EndpointKind : std::uint8_t {
  kNone = 0,
  kFuOutput,    // unit = FuId
  kFuInput,     // unit = FuId, port = 0 (A) or 1 (B)
  kPlaneRead,   // unit = PlaneId
  kPlaneWrite,  // unit = PlaneId
  kCacheRead,   // unit = CacheId
  kCacheWrite,  // unit = CacheId
  kSdOutput,    // unit = SdId, port = tap index
  kSdInput,     // unit = SdId
};

const char* endpointKindName(EndpointKind kind);
bool endpointIsSource(EndpointKind kind);
bool endpointIsDestination(EndpointKind kind);

struct Endpoint {
  EndpointKind kind = EndpointKind::kNone;
  int unit = 0;
  int port = 0;

  auto operator<=>(const Endpoint&) const = default;

  static Endpoint none() { return {}; }
  static Endpoint fuOutput(FuId fu) { return {EndpointKind::kFuOutput, fu, 0}; }
  static Endpoint fuInput(FuId fu, int port) {
    return {EndpointKind::kFuInput, fu, port};
  }
  static Endpoint planeRead(PlaneId p) { return {EndpointKind::kPlaneRead, p, 0}; }
  static Endpoint planeWrite(PlaneId p) { return {EndpointKind::kPlaneWrite, p, 0}; }
  static Endpoint cacheRead(CacheId c) { return {EndpointKind::kCacheRead, c, 0}; }
  static Endpoint cacheWrite(CacheId c) { return {EndpointKind::kCacheWrite, c, 0}; }
  static Endpoint sdOutput(SdId s, int tap) { return {EndpointKind::kSdOutput, s, tap}; }
  static Endpoint sdInput(SdId s) { return {EndpointKind::kSdInput, s, 0}; }

  bool isNone() const { return kind == EndpointKind::kNone; }
  std::string toString() const;
};

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<int>()(static_cast<int>(e.kind) * 1048576 + e.unit * 16 +
                            e.port);
  }
};

}  // namespace nsc::arch
