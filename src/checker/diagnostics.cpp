#include "checker/diagnostics.h"

#include "common/strings.h"

namespace nsc::check {

const char* ruleName(Rule rule) {
  switch (rule) {
    case Rule::kEndpointRole: return "endpoint-role";
    case Rule::kEndpointRange: return "endpoint-range";
    case Rule::kInputAlreadyDriven: return "input-already-driven";
    case Rule::kSelfLoop: return "self-loop";
    case Rule::kPlaneContention: return "plane-contention";
    case Rule::kFanoutLimit: return "fanout-limit";
    case Rule::kCapability: return "capability";
    case Rule::kArity: return "arity";
    case Rule::kBypass: return "bypass";
    case Rule::kAlsDuplicate: return "als-duplicate";
    case Rule::kDmaMissing: return "dma-missing";
    case Rule::kDmaRange: return "dma-range";
    case Rule::kStreamLength: return "stream-length";
    case Rule::kCacheBuffer: return "cache-buffer";
    case Rule::kSdConfig: return "sd-config";
    case Rule::kRfDelayRange: return "rf-delay-range";
    case Rule::kFeedbackMode: return "feedback-mode";
    case Rule::kCycle: return "cycle";
    case Rule::kTimingAlignment: return "timing-alignment";
    case Rule::kCondSource: return "cond-source";
    case Rule::kSeqTarget: return "seq-target";
    case Rule::kDanglingOutput: return "dangling-output";
    case Rule::kUnusedAls: return "unused-als";
    case Rule::kMissingDriver: return "missing-driver";
  }
  return "?";
}

const char* ruleProse(Rule rule) {
  switch (rule) {
    case Rule::kEndpointRole:
      return "Streams must run from an output pad to an input pad.";
    case Rule::kEndpointRange:
      return "That component does not exist on this machine.";
    case Rule::kInputAlreadyDriven:
      return "This input pad is already wired to another source.";
    case Rule::kSelfLoop:
      return "A unit cannot feed its own input through the switch; use the register-file feedback path.";
    case Rule::kPlaneContention:
      return "Only one vector stream may use a memory plane during an instruction.";
    case Rule::kFanoutLimit:
      return "The switch network cannot fan one stream out this widely.";
    case Rule::kCapability:
      return "This functional unit lacks the circuitry for that operation.";
    case Rule::kArity:
      return "The operation's operand count does not match the wired inputs.";
    case Rule::kBypass:
      return "A bypassed functional unit cannot be programmed.";
    case Rule::kAlsDuplicate:
      return "That ALS is already placed in this pipeline.";
    case Rule::kDmaMissing:
      return "Memory and cache connections need plane, offset, stride, and count.";
    case Rule::kDmaRange:
      return "The DMA transfer runs outside the plane or cache.";
    case Rule::kStreamLength:
      return "All vector streams in one pipeline must have the same length.";
    case Rule::kCacheBuffer:
      return "A cache cannot read and fill the same half of its double buffer.";
    case Rule::kSdConfig:
      return "Shift/delay taps exceed what the unit provides.";
    case Rule::kRfDelayRange:
      return "The register file cannot buffer a delay that long.";
    case Rule::kFeedbackMode:
      return "Feedback inputs require the register file's accumulator mode.";
    case Rule::kCycle:
      return "The wiring forms a combinational loop.";
    case Rule::kTimingAlignment:
      return "Operand streams reach this unit out of step; insert a delay.";
    case Rule::kCondSource:
      return "The condition must be latched from an enabled functional unit.";
    case Rule::kSeqTarget:
      return "The branch target is not a pipeline in this program.";
    case Rule::kDanglingOutput:
      return "This unit's result is not used anywhere.";
    case Rule::kUnusedAls:
      return "This ALS is placed but none of its units are programmed.";
    case Rule::kMissingDriver:
      return "An operand input is not wired to anything.";
  }
  return "?";
}

CheckPhase rulePhase(Rule rule) {
  switch (rule) {
    // Rules the graphical editor enforces as the user works: connection
    // attempts, menu contents, popup field validation.
    case Rule::kEndpointRole:
    case Rule::kEndpointRange:
    case Rule::kInputAlreadyDriven:
    case Rule::kSelfLoop:
    case Rule::kPlaneContention:
    case Rule::kFanoutLimit:
    case Rule::kCapability:
    case Rule::kBypass:
    case Rule::kAlsDuplicate:
    case Rule::kDmaRange:
    case Rule::kCacheBuffer:
    case Rule::kSdConfig:
    case Rule::kRfDelayRange:
    case Rule::kCycle:
      return CheckPhase::kEditTime;
    // Whole-diagram / whole-program conditions checked at generate time.
    case Rule::kArity:
    case Rule::kDmaMissing:
    case Rule::kStreamLength:
    case Rule::kFeedbackMode:
    case Rule::kTimingAlignment:
    case Rule::kCondSource:
    case Rule::kSeqTarget:
    case Rule::kDanglingOutput:
    case Rule::kUnusedAls:
    case Rule::kMissingDriver:
      return CheckPhase::kGenerateTime;
  }
  return CheckPhase::kGenerateTime;
}

std::string Diagnostic::format() const {
  std::string out = severity == Severity::kError ? "error" : "warning";
  out += common::strFormat(" [%s]", ruleName(rule));
  if (pipeline >= 0) out += common::strFormat(" (pipeline %d)", pipeline);
  out += ": ";
  out += message;
  return out;
}

void DiagnosticList::add(Rule rule, Severity severity, std::string message,
                         int pipeline) {
  items_.push_back({rule, severity, std::move(message), pipeline});
}

bool DiagnosticList::hasErrors() const { return errorCount() > 0; }

std::size_t DiagnosticList::errorCount() const {
  std::size_t n = 0;
  for (const Diagnostic& d : items_) n += d.severity == Severity::kError;
  return n;
}

std::size_t DiagnosticList::warningCount() const {
  return items_.size() - errorCount();
}

void DiagnosticList::append(const DiagnosticList& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

std::string DiagnosticList::format() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += d.format();
    out += '\n';
  }
  return out;
}

}  // namespace nsc::check
