// Diagnostics and the architectural rule catalogue.
//
// "The checker contains, in a knowledge base or other suitable
// representation, detailed information about the architecture of the NSC
// ... the checker also knows all of the rules about conflicts, constraints,
// asymmetries and other restrictions."  (paper, Section 4.)
//
// Each rule has a stable id, a short name, and prose shown to the user in
// the editor's message strip.  The usability bench classifies injected
// errors by which rule catches them and in which phase (edit time vs
// generate time), reproducing the paper's claim that "errors are caught
// sooner when they do occur".
#pragma once

#include <string>
#include <vector>

namespace nsc::check {

enum class Severity { kWarning, kError };

enum class Rule {
  kEndpointRole,        // stream must run source -> destination
  kEndpointRange,       // unit/port index outside the machine
  kInputAlreadyDriven,  // destination already has a driver
  kSelfLoop,            // FU output wired to its own input via the switch
  kPlaneContention,     // more than one DMA stream on a memory plane
  kFanoutLimit,         // switch source fanned out too widely
  kCapability,          // op requires circuitry this FU lacks
  kArity,               // operand count does not match the op
  kBypass,              // bypassed doublet slot is enabled
  kAlsDuplicate,        // same ALS placed twice in one diagram
  kDmaMissing,          // plane/cache stream without DMA parameters
  kDmaRange,            // DMA base/stride/count leaves the plane/cache
  kStreamLength,        // vector lengths disagree across the pipeline
  kCacheBuffer,         // double-buffer misuse
  kSdConfig,            // shift/delay tap misuse
  kRfDelayRange,        // register-file queue deeper than the hardware
  kFeedbackMode,        // feedback input without accumulator mode
  kCycle,               // combinational cycle in the dataflow
  kTimingAlignment,     // operand streams arrive skewed at an FU
  kCondSource,          // condition latch names a disabled FU
  kSeqTarget,           // sequencer branch target outside the program
  kDanglingOutput,      // warning: enabled FU output feeds nothing
  kUnusedAls,           // warning: ALS placed but entirely disabled
  kMissingDriver,       // enabled FU input never connected
};

const char* ruleName(Rule rule);
// One-sentence prose for the editor's message strip.
const char* ruleProse(Rule rule);

// Phase in which the environment can catch a given rule's violations:
// edit-time rules are enforced interactively by the graphical editor; the
// rest are caught by the thorough check when microcode is generated
// (paper, Section 4: "More extensive checking could be done when the
// visual representations are translated to microcode").
enum class CheckPhase { kEditTime, kGenerateTime };
CheckPhase rulePhase(Rule rule);

struct Diagnostic {
  Rule rule = Rule::kEndpointRole;
  Severity severity = Severity::kError;
  std::string message;
  int pipeline = -1;  // instruction index, -1 when not applicable

  std::string format() const;
};

class DiagnosticList {
 public:
  void add(Rule rule, Severity severity, std::string message,
           int pipeline = -1);
  void error(Rule rule, std::string message, int pipeline = -1) {
    add(rule, Severity::kError, std::move(message), pipeline);
  }
  void warning(Rule rule, std::string message, int pipeline = -1) {
    add(rule, Severity::kWarning, std::move(message), pipeline);
  }

  const std::vector<Diagnostic>& all() const { return items_; }
  bool hasErrors() const;
  std::size_t errorCount() const;
  std::size_t warningCount() const;
  bool empty() const { return items_.empty(); }

  void append(const DiagnosticList& other);
  std::string format() const;

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace nsc::check
