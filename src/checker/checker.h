// The checker: interactive (edit-time) and thorough (generate-time)
// validation of pipeline diagrams against the NSC architecture.
//
// "The graphical editor calls on the checker at appropriate points during
// interaction with the user to validate the information being input.  Any
// errors are flagged as soon as they are detected.  In addition, the
// graphical editor uses the checker's knowledge of the architecture to
// reduce the possibilities for making errors."  (paper, Section 4.)
//
// The editor uses the incremental interface (checkConnection, legalTargets,
// legalOps, checkDma) to refuse bad actions and to populate popup menus;
// the microcode generator uses checkDiagram/checkProgram for the thorough
// global pass.
#pragma once

#include <optional>
#include <vector>

#include "arch/machine.h"
#include "checker/diagnostics.h"
#include "program/pipeline.h"
#include "program/program.h"

namespace nsc::check {

class Checker {
 public:
  explicit Checker(const arch::Machine& machine) : machine_(machine) {}

  const arch::Machine& machine() const { return machine_; }

  // ---- Incremental (edit-time) interface ----

  // Would wiring `from -> to` into `diagram` break an edit-time rule?
  // Returns the first violated rule, or nullopt if the connection is legal.
  std::optional<Diagnostic> checkConnection(const prog::PipelineDiagram& diagram,
                                            const arch::Endpoint& from,
                                            const arch::Endpoint& to) const;
  bool canConnect(const prog::PipelineDiagram& diagram,
                  const arch::Endpoint& from, const arch::Endpoint& to) const {
    return !checkConnection(diagram, from, to).has_value();
  }

  // Every destination endpoint to which a stream from `from` could legally
  // be wired right now (drives the editor's popup connection menus).
  std::vector<arch::Endpoint> legalTargets(const prog::PipelineDiagram& diagram,
                                           const arch::Endpoint& from) const;

  // Operations this functional unit's circuitry supports (drives the
  // editor's function-unit popup menu, Figure 10).
  std::vector<arch::OpCode> legalOps(arch::FuId fu) const;

  // Validates the Figure-9 popup subwindow fields before they are
  // committed.  `diagram` supplies context for cache buffer conflicts.
  std::optional<Diagnostic> checkDma(const prog::PipelineDiagram& diagram,
                                     const arch::Endpoint& endpoint,
                                     const prog::DmaSpec& spec) const;

  std::optional<Diagnostic> checkRfDelay(int delay) const;

  // ---- Thorough (generate-time) interface ----

  DiagnosticList checkDiagram(const prog::PipelineDiagram& diagram,
                              int pipeline_index = -1) const;
  DiagnosticList checkProgram(const prog::Program& program) const;

 private:
  bool endpointInRange(const arch::Endpoint& e) const;
  // Number of distinct DMA stream endpoints active on memory plane `p`.
  int planeStreamCount(const prog::PipelineDiagram& diagram, arch::PlaneId p,
                       const arch::Endpoint& extra) const;
  bool wouldCreateCycle(const prog::PipelineDiagram& diagram,
                        const arch::Endpoint& from,
                        const arch::Endpoint& to) const;

  void checkConnectionsThorough(const prog::PipelineDiagram& diagram,
                                int index, DiagnosticList& out) const;
  void checkFuUses(const prog::PipelineDiagram& diagram, int index,
                   DiagnosticList& out) const;
  void checkDmaThorough(const prog::PipelineDiagram& diagram, int index,
                        DiagnosticList& out) const;
  void checkStreamLengths(const prog::PipelineDiagram& diagram, int index,
                          DiagnosticList& out) const;
  void checkShiftDelay(const prog::PipelineDiagram& diagram, int index,
                       DiagnosticList& out) const;
  void checkTiming(const prog::PipelineDiagram& diagram, int index,
                   DiagnosticList& out) const;

  const arch::Machine& machine_;
};

}  // namespace nsc::check
