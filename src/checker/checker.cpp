#include "checker/checker.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "program/timing.h"

namespace nsc::check {

using arch::Endpoint;
using arch::EndpointKind;
using common::strFormat;

namespace {

// Dataflow-node key for cycle detection: FUs and shift/delay units are the
// only components a stream can pass *through* within one instruction.
struct FlowNode {
  enum class Kind { kNone, kFu, kSd } kind = Kind::kNone;
  int unit = 0;
  auto operator<=>(const FlowNode&) const = default;
};

FlowNode nodeOf(const Endpoint& e) {
  switch (e.kind) {
    case EndpointKind::kFuInput:
    case EndpointKind::kFuOutput:
      return {FlowNode::Kind::kFu, e.unit};
    case EndpointKind::kSdInput:
    case EndpointKind::kSdOutput:
      return {FlowNode::Kind::kSd, e.unit};
    default:
      return {};
  }
}

}  // namespace

bool Checker::endpointInRange(const Endpoint& e) const {
  const arch::MachineConfig& cfg = machine_.config();
  switch (e.kind) {
    case EndpointKind::kFuOutput:
      return e.unit >= 0 && e.unit < cfg.numFus() && e.port == 0;
    case EndpointKind::kFuInput:
      return e.unit >= 0 && e.unit < cfg.numFus() && (e.port == 0 || e.port == 1);
    case EndpointKind::kPlaneRead:
    case EndpointKind::kPlaneWrite:
      return e.unit >= 0 && e.unit < cfg.num_memory_planes && e.port == 0;
    case EndpointKind::kCacheRead:
    case EndpointKind::kCacheWrite:
      return e.unit >= 0 && e.unit < cfg.num_caches && e.port == 0;
    case EndpointKind::kSdOutput:
      return e.unit >= 0 && e.unit < cfg.num_shift_delay && e.port >= 0 &&
             e.port < cfg.sd_taps;
    case EndpointKind::kSdInput:
      return e.unit >= 0 && e.unit < cfg.num_shift_delay && e.port == 0;
    case EndpointKind::kNone:
      return false;
  }
  return false;
}

int Checker::planeStreamCount(const prog::PipelineDiagram& diagram,
                              arch::PlaneId p, const Endpoint& extra) const {
  std::set<Endpoint> streams;
  auto consider = [&](const Endpoint& e) {
    if ((e.kind == EndpointKind::kPlaneRead ||
         e.kind == EndpointKind::kPlaneWrite) &&
        e.unit == p) {
      streams.insert(e);
    }
  };
  for (const prog::Connection& c : diagram.connections) {
    consider(c.from);
    consider(c.to);
  }
  consider(extra);
  return static_cast<int>(streams.size());
}

bool Checker::wouldCreateCycle(const prog::PipelineDiagram& diagram,
                               const Endpoint& from, const Endpoint& to) const {
  // Build adjacency over flow nodes including the candidate edge, then DFS.
  std::map<FlowNode, std::vector<FlowNode>> adj;
  auto addEdge = [&](const Endpoint& a, const Endpoint& b) {
    const FlowNode na = nodeOf(a);
    const FlowNode nb = nodeOf(b);
    if (na.kind != FlowNode::Kind::kNone && nb.kind != FlowNode::Kind::kNone) {
      adj[na].push_back(nb);
    }
  };
  for (const prog::Connection& c : diagram.connections) addEdge(c.from, c.to);
  addEdge(from, to);

  std::map<FlowNode, int> state;  // 0 unvisited, 1 in progress, 2 done
  std::vector<std::pair<FlowNode, std::size_t>> stack;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (state[start] != 0) continue;
    stack.push_back({start, 0});
    state[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& edges = adj[node];
      if (next < edges.size()) {
        const FlowNode child = edges[next++];
        if (state[child] == 1) return true;
        if (state[child] == 0) {
          state[child] = 1;
          stack.push_back({child, 0});
        }
      } else {
        state[node] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::optional<Diagnostic> Checker::checkConnection(
    const prog::PipelineDiagram& diagram, const Endpoint& from,
    const Endpoint& to) const {
  auto reject = [](Rule rule, std::string message) {
    return Diagnostic{rule, Severity::kError, std::move(message), -1};
  };

  if (!endpointIsSource(from.kind)) {
    return reject(Rule::kEndpointRole,
                  from.toString() + " cannot source a stream");
  }
  if (!endpointIsDestination(to.kind)) {
    return reject(Rule::kEndpointRole,
                  to.toString() + " cannot receive a stream");
  }
  if (!endpointInRange(from)) {
    return reject(Rule::kEndpointRange, "no such component: " + from.toString());
  }
  if (!endpointInRange(to)) {
    return reject(Rule::kEndpointRange, "no such component: " + to.toString());
  }
  if (from.kind == EndpointKind::kFuOutput &&
      to.kind == EndpointKind::kFuInput && from.unit == to.unit) {
    return reject(Rule::kSelfLoop,
                  strFormat("fu%d cannot feed itself through the switch; "
                            "use register-file feedback",
                            from.unit));
  }
  if (diagram.connectionTo(to).has_value()) {
    return reject(Rule::kInputAlreadyDriven,
                  to.toString() + " is already driven");
  }

  // Plane contention: "if the user has routed the output from one function
  // unit to a particular memory plane, the graphical editor will not let
  // him send the output of a second unit to the same plane."
  for (const Endpoint* e : {&from, &to}) {
    if (e->kind == EndpointKind::kPlaneRead ||
        e->kind == EndpointKind::kPlaneWrite) {
      const int streams = planeStreamCount(diagram, e->unit, *e);
      if (streams > machine_.config().plane_streams_per_instruction) {
        return reject(Rule::kPlaneContention,
                      strFormat("memory plane %d already carries a stream "
                                "this instruction",
                                e->unit));
      }
    }
  }

  const int fanout =
      static_cast<int>(diagram.connectionsFrom(from).size()) + 1;
  if (fanout > machine_.config().max_switch_fanout) {
    return reject(Rule::kFanoutLimit,
                  strFormat("%s already fans out %d ways",
                            from.toString().c_str(), fanout - 1));
  }

  if (wouldCreateCycle(diagram, from, to)) {
    return reject(Rule::kCycle, "connection would close a combinational loop");
  }
  return std::nullopt;
}

std::vector<Endpoint> Checker::legalTargets(const prog::PipelineDiagram& diagram,
                                            const Endpoint& from) const {
  std::vector<Endpoint> out;
  for (const Endpoint& dst : machine_.destinations()) {
    if (canConnect(diagram, from, dst)) out.push_back(dst);
  }
  return out;
}

std::vector<arch::OpCode> Checker::legalOps(arch::FuId fu) const {
  return arch::opsForCaps(machine_.fu(fu).caps);
}

std::optional<Diagnostic> Checker::checkDma(const prog::PipelineDiagram& diagram,
                                            const Endpoint& endpoint,
                                            const prog::DmaSpec& spec) const {
  auto reject = [](Rule rule, std::string message) {
    return Diagnostic{rule, Severity::kError, std::move(message), -1};
  };
  const arch::MachineConfig& cfg = machine_.config();

  const bool is_plane = endpoint.kind == EndpointKind::kPlaneRead ||
                        endpoint.kind == EndpointKind::kPlaneWrite;
  const bool is_cache = endpoint.kind == EndpointKind::kCacheRead ||
                        endpoint.kind == EndpointKind::kCacheWrite;
  if (!is_plane && !is_cache) {
    return reject(Rule::kDmaMissing,
                  "DMA parameters only apply to planes and caches");
  }
  if (!endpointInRange(endpoint)) {
    return reject(Rule::kEndpointRange,
                  "no such component: " + endpoint.toString());
  }
  if (spec.count == 0) {
    return reject(Rule::kDmaMissing, "vector length (count) must be at least 1");
  }

  if (is_cache && (spec.count2 != 1 || spec.stride2 != 0)) {
    return reject(Rule::kDmaRange,
                  "two-level transfers are a plane DMA feature; caches take "
                  "simple vectors");
  }
  if (spec.count2 == 0) {
    return reject(Rule::kDmaMissing, "row count (count2) must be at least 1");
  }

  const std::uint64_t words = is_plane ? cfg.planeWords() : cfg.cacheWords();
  // Extremes of base + r*stride2 + e*stride lie at the four corners.
  const std::int64_t row_span =
      spec.stride * static_cast<std::int64_t>(spec.count - 1);
  const std::int64_t col_span =
      spec.stride2 * static_cast<std::int64_t>(spec.count2 - 1);
  const std::int64_t origin = static_cast<std::int64_t>(spec.base);
  std::int64_t lo = origin, hi = origin;
  for (const std::int64_t corner :
       {origin + row_span, origin + col_span, origin + row_span + col_span}) {
    lo = std::min(lo, corner);
    hi = std::max(hi, corner);
  }
  if (lo < 0 || hi >= static_cast<std::int64_t>(words)) {
    return reject(Rule::kDmaRange,
                  strFormat("transfer spans words %lld..%lld outside [0, %llu)",
                            static_cast<long long>(lo),
                            static_cast<long long>(hi),
                            static_cast<unsigned long long>(words)));
  }

  if (is_cache) {
    if (spec.read_buffer < 0 || spec.read_buffer >= cfg.cache_buffers) {
      return reject(Rule::kCacheBuffer,
                    strFormat("cache buffer %d does not exist", spec.read_buffer));
    }
    // Read and fill sides of one cache must agree on which buffer the
    // pipeline reads (writes always land in the other half).
    const Endpoint other =
        endpoint.kind == EndpointKind::kCacheRead
            ? Endpoint::cacheWrite(endpoint.unit)
            : Endpoint::cacheRead(endpoint.unit);
    const auto it = diagram.dma.find(other);
    if (it != diagram.dma.end() && it->second.read_buffer != spec.read_buffer) {
      return reject(Rule::kCacheBuffer,
                    strFormat("cache %d read/fill sides disagree on the "
                              "active buffer",
                              endpoint.unit));
    }
  }
  return std::nullopt;
}

std::optional<Diagnostic> Checker::checkRfDelay(int delay) const {
  if (delay < 0 || delay > machine_.config().rf_max_delay) {
    return Diagnostic{Rule::kRfDelayRange, Severity::kError,
                      strFormat("register-file delay %d outside [0, %d]", delay,
                                machine_.config().rf_max_delay),
                      -1};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Thorough checks
// ---------------------------------------------------------------------------

void Checker::checkConnectionsThorough(const prog::PipelineDiagram& diagram,
                                       int index, DiagnosticList& out) const {
  // Re-validate every connection as if it were being added to the diagram
  // formed by its predecessors; catches hand-built or file-loaded diagrams
  // that never went through the editor.
  prog::PipelineDiagram partial;
  partial.als_uses = diagram.als_uses;
  partial.sd_uses = diagram.sd_uses;
  partial.dma = diagram.dma;
  for (const prog::Connection& c : diagram.connections) {
    if (auto d = checkConnection(partial, c.from, c.to)) {
      d->pipeline = index;
      out.add(d->rule, d->severity, d->message + " (" + c.toString() + ")",
              index);
    }
    partial.connections.push_back(c);
  }
}

void Checker::checkFuUses(const prog::PipelineDiagram& diagram, int index,
                          DiagnosticList& out) const {
  std::set<arch::AlsId> seen;
  for (const prog::AlsUse& use : diagram.als_uses) {
    if (use.als < 0 || use.als >= machine_.config().numAls()) {
      out.error(Rule::kEndpointRange, strFormat("no such ALS: %d", use.als),
                index);
      continue;
    }
    if (!seen.insert(use.als).second) {
      out.error(Rule::kAlsDuplicate,
                strFormat("ALS %d placed more than once", use.als), index);
      continue;
    }
    const arch::AlsInfo& info = machine_.als(use.als);
    if (use.bypass && info.kind != arch::AlsKind::kDoublet) {
      out.error(Rule::kBypass,
                strFormat("ALS %d is a %s; only doublets have a bypass",
                          use.als, alsKindName(info.kind)),
                index);
    }
    if (use.fu.size() != info.fus.size()) {
      out.error(Rule::kEndpointRange,
                strFormat("ALS %d has %zu units, diagram configures %zu",
                          use.als, info.fus.size(), use.fu.size()),
                index);
      continue;
    }

    bool any_enabled = false;
    for (std::size_t slot = 0; slot < use.fu.size(); ++slot) {
      const prog::FuUse& fu = use.fu[slot];
      const arch::FuId fu_id = info.fus[slot];
      if (!fu.enabled) {
        if (fu.in_a != arch::InputSelect::kNone ||
            fu.in_b != arch::InputSelect::kNone) {
          out.error(Rule::kArity,
                    strFormat("fu%d has wired inputs but is not programmed",
                              fu_id),
                    index);
        }
        continue;
      }
      any_enabled = true;
      if (use.bypass && slot == 1) {
        out.error(Rule::kBypass,
                  strFormat("fu%d is bypassed but programmed", fu_id), index);
      }
      if (!machine_.fuCanExecute(fu_id, fu.op)) {
        out.error(Rule::kCapability,
                  strFormat("fu%d (%s) cannot execute '%s'", fu_id,
                            arch::capMaskName(machine_.fu(fu_id).caps).c_str(),
                            arch::opInfo(fu.op).name),
                  index);
      }
      const arch::OpInfo& op = arch::opInfo(fu.op);
      const int wired = (fu.in_a != arch::InputSelect::kNone ? 1 : 0) +
                        (fu.in_b != arch::InputSelect::kNone ? 1 : 0);
      if (op.arity != wired) {
        out.error(Rule::kArity,
                  strFormat("fu%d op '%s' takes %d operand(s), %d wired", fu_id,
                            op.name, op.arity, wired),
                  index);
      }
      auto checkInput = [&](int port, arch::InputSelect sel) {
        if ((sel == arch::InputSelect::kSwitch ||
             sel == arch::InputSelect::kChain) &&
            !diagram.connectionTo(Endpoint::fuInput(fu_id, port)).has_value()) {
          out.error(Rule::kMissingDriver,
                    strFormat("fu%d input %c expects a stream but nothing is "
                              "wired to it",
                              fu_id, port == 0 ? 'a' : 'b'),
                    index);
        }
        if (sel == arch::InputSelect::kFeedback &&
            fu.rf_mode != arch::RfMode::kAccum) {
          out.error(Rule::kFeedbackMode,
                    strFormat("fu%d uses feedback without accumulator mode",
                              fu_id),
                    index);
        }
      };
      checkInput(0, fu.in_a);
      checkInput(1, fu.in_b);
      if (fu.rf_delay < 0 || fu.rf_delay > machine_.config().rf_max_delay) {
        out.error(Rule::kRfDelayRange,
                  strFormat("fu%d register-file delay %d outside [0, %d]",
                            fu_id, fu.rf_delay,
                            machine_.config().rf_max_delay),
                  index);
      }
      const bool output_used =
          !diagram.connectionsFrom(Endpoint::fuOutput(fu_id)).empty() ||
          (diagram.cond.has_value() && diagram.cond->src_fu == fu_id);
      if (!output_used) {
        out.warning(Rule::kDanglingOutput,
                    strFormat("fu%d result is unused", fu_id), index);
      }
    }
    if (!any_enabled) {
      out.warning(Rule::kUnusedAls,
                  strFormat("ALS %d is placed but not programmed", use.als),
                  index);
    }
  }

  if (diagram.cond.has_value()) {
    const prog::FuUse* fu = diagram.findFu(machine_, diagram.cond->src_fu);
    if (fu == nullptr || !fu->enabled) {
      out.error(Rule::kCondSource,
                strFormat("condition latched from fu%d which is not active",
                          diagram.cond->src_fu),
                index);
    }
    if (diagram.cond->cond_reg < 0 || diagram.cond->cond_reg > 3) {
      out.error(Rule::kCondSource,
                strFormat("condition register %d does not exist",
                          diagram.cond->cond_reg),
                index);
    }
  }
}

void Checker::checkDmaThorough(const prog::PipelineDiagram& diagram, int index,
                               DiagnosticList& out) const {
  // Every plane/cache endpoint used by a connection needs DMA parameters.
  std::set<Endpoint> used;
  for (const prog::Connection& c : diagram.connections) {
    for (const Endpoint* e : {&c.from, &c.to}) {
      switch (e->kind) {
        case EndpointKind::kPlaneRead:
        case EndpointKind::kPlaneWrite:
        case EndpointKind::kCacheRead:
        case EndpointKind::kCacheWrite:
          used.insert(*e);
          break;
        default:
          break;
      }
    }
  }
  for (const Endpoint& e : used) {
    const auto it = diagram.dma.find(e);
    if (it == diagram.dma.end()) {
      out.error(Rule::kDmaMissing,
                e.toString() + " carries a stream but has no DMA parameters",
                index);
      continue;
    }
    if (auto d = checkDma(diagram, e, it->second)) {
      out.add(d->rule, d->severity, d->message + " (" + e.toString() + ")",
              index);
    }
  }
}

void Checker::checkStreamLengths(const prog::PipelineDiagram& diagram,
                                 int index, DiagnosticList& out) const {
  std::uint64_t read_len = 0;
  bool have_read = false;
  for (const auto& [endpoint, spec] : diagram.dma) {
    const bool is_read = endpoint.kind == EndpointKind::kPlaneRead ||
                         endpoint.kind == EndpointKind::kCacheRead;
    if (!is_read || spec.count == 0) continue;
    if (!have_read) {
      read_len = spec.totalElements();
      have_read = true;
    } else if (spec.totalElements() != read_len) {
      out.error(Rule::kStreamLength,
                strFormat("%s streams %llu elements where other reads stream "
                          "%llu",
                          endpoint.toString().c_str(),
                          static_cast<unsigned long long>(spec.totalElements()),
                          static_cast<unsigned long long>(read_len)),
                index);
    }
  }
  for (const auto& [endpoint, spec] : diagram.dma) {
    const bool is_write = endpoint.kind == EndpointKind::kPlaneWrite ||
                          endpoint.kind == EndpointKind::kCacheWrite;
    if (!is_write || !have_read || spec.count == 0) continue;
    // A write may capture at most as many elements as the reads supply:
    // exactly read_len for elementwise pipelines, fewer when shift/delay
    // element shifts shorten the valid window, 1 for a reduction result.
    if (spec.totalElements() > read_len) {
      out.error(Rule::kStreamLength,
                strFormat("%s writes %llu elements but the pipeline streams "
                          "only %llu",
                          endpoint.toString().c_str(),
                          static_cast<unsigned long long>(spec.totalElements()),
                          static_cast<unsigned long long>(read_len)),
                index);
    }
  }
}

void Checker::checkShiftDelay(const prog::PipelineDiagram& diagram, int index,
                              DiagnosticList& out) const {
  const arch::MachineConfig& cfg = machine_.config();
  std::set<arch::SdId> configured;
  for (const prog::ShiftDelayUse& use : diagram.sd_uses) {
    if (use.sd < 0 || use.sd >= cfg.num_shift_delay) {
      out.error(Rule::kSdConfig,
                strFormat("no such shift/delay unit: %d", use.sd), index);
      continue;
    }
    configured.insert(use.sd);
    if (static_cast<int>(use.tap_delays.size()) > cfg.sd_taps) {
      out.error(Rule::kSdConfig,
                strFormat("sd%d provides %d taps, %zu configured", use.sd,
                          cfg.sd_taps, use.tap_delays.size()),
                index);
    }
    for (int delay : use.tap_delays) {
      if (delay < 0 || delay > cfg.sd_max_delay) {
        out.error(Rule::kSdConfig,
                  strFormat("sd%d tap delay %d outside [0, %d]", use.sd, delay,
                            cfg.sd_max_delay),
                  index);
      }
    }
    if (!use.tap_delays.empty() &&
        !diagram.connectionTo(Endpoint::sdInput(use.sd)).has_value()) {
      out.error(Rule::kMissingDriver,
                strFormat("sd%d has taps configured but no input stream",
                          use.sd),
                index);
    }
  }
  for (const prog::Connection& c : diagram.connections) {
    if (c.from.kind == EndpointKind::kSdOutput &&
        configured.count(c.from.unit) == 0) {
      out.error(Rule::kSdConfig,
                strFormat("sd%d taps are wired but the unit is not configured",
                          c.from.unit),
                index);
    }
  }
}

void Checker::checkTiming(const prog::PipelineDiagram& diagram, int index,
                          DiagnosticList& out) const {
  const prog::TimingResult timing = prog::analyzeTiming(machine_, diagram);
  if (!timing.ok) return;  // structural problems already reported above
  for (const prog::FuSkew& skew : timing.misaligned) {
    out.error(Rule::kTimingAlignment,
              strFormat("fu%d operands arrive at cycles %d and %d; insert a "
                        "register-file delay of %d",
                        skew.fu, skew.arrival_a, skew.arrival_b,
                        std::abs(skew.arrival_a - skew.arrival_b)),
              index);
  }
}

DiagnosticList Checker::checkDiagram(const prog::PipelineDiagram& diagram,
                                     int pipeline_index) const {
  DiagnosticList out;
  checkFuUses(diagram, pipeline_index, out);
  checkConnectionsThorough(diagram, pipeline_index, out);
  checkDmaThorough(diagram, pipeline_index, out);
  checkStreamLengths(diagram, pipeline_index, out);
  checkShiftDelay(diagram, pipeline_index, out);
  if (!out.hasErrors()) checkTiming(diagram, pipeline_index, out);
  return out;
}

DiagnosticList Checker::checkProgram(const prog::Program& program) const {
  DiagnosticList out;
  for (std::size_t i = 0; i < program.size(); ++i) {
    out.append(checkDiagram(program[i], static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < program.size(); ++i) {
    const prog::SeqControl& seq = program[i].seq;
    const bool branches = seq.op == arch::SeqOp::kJump ||
                          seq.op == arch::SeqOp::kBranchIf ||
                          seq.op == arch::SeqOp::kBranchNot ||
                          seq.op == arch::SeqOp::kLoop;
    if (branches &&
        (seq.target < 0 || seq.target >= static_cast<int>(program.size()))) {
      out.error(Rule::kSeqTarget,
                strFormat("branch target %d outside program of %zu pipelines",
                          seq.target, program.size()),
                static_cast<int>(i));
    }
  }
  if (!program.empty()) {
    const prog::SeqControl& last = program.pipelines.back().seq;
    if (last.op == arch::SeqOp::kNext || last.op == arch::SeqOp::kBranchIf ||
        last.op == arch::SeqOp::kBranchNot || last.op == arch::SeqOp::kLoop) {
      out.warning(Rule::kSeqTarget,
                  "control can run off the end of the program; end with halt "
                  "or jump",
                  static_cast<int>(program.size() - 1));
    }
  }
  return out;
}

}  // namespace nsc::check
