#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <type_traits>

#include "common/strings.h"
#include "sim/verify.h"

namespace nsc::svc {

namespace {

std::int64_t nowUs() { return monotonicNowUs(); }

std::future<ServiceReply> readyError(std::string message) {
  std::promise<ServiceReply> promise;
  ServiceReply reply;
  reply.status = common::Status::error(std::move(message));
  promise.set_value(std::move(reply));
  return promise.get_future();
}

// The class a request is admitted at when the caller does not say:
// interactive editor/session traffic ahead of deferrable batch work.
Priority defaultPriority(const Request& request) {
  if (std::holds_alternative<RunEnsemble>(request) ||
      std::holds_alternative<RunSystemPhases>(request)) {
    return Priority::kBatch;
  }
  return Priority::kInteractive;
}

}  // namespace

WorkbenchService::WorkbenchService(ServiceOptions options)
    : options_(std::move(options)),
      context_(options_.machine, options_.pool, options_.cache),
      injector_(options_.injector != nullptr ? options_.injector
                                             : &exec::FaultInjector::global()),
      store_(options_.durability.checkpoint_dir.empty()
                 ? nullptr
                 : std::make_unique<CheckpointStore>(
                       options_.durability.checkpoint_dir, injector_)),
      sessions_(context_, std::max(options_.shards, 1), store_.get(),
                options_.durability.recover),
      queue_(options_.queue_capacity, options_.admission, injector_) {
  const int shard_count = std::max(options_.shards, 1);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(context_));
  }
  if (options_.start) start();
}

WorkbenchService::~WorkbenchService() { stop(); }

void WorkbenchService::start() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_ || stopped_.load(std::memory_order_relaxed)) return;
  started_ = true;
  // Cores exist before any thread starts, so shardLoop never races the
  // shards_ vector itself.
  for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
    shards_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { shardLoop(i); });
  }
}

void WorkbenchService::stop() {
  stopped_.store(true, std::memory_order_relaxed);
  queue_.close();
  // Serialize the join phase: stop() racing the destructor (or another
  // stop()) must not double-join a shard thread.
  std::lock_guard<std::mutex> lock(start_mu_);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Settle-all-promises: the shards are gone (or never ran — pop(-1)
  // honours affinity pins, so a service stopped before start() leaves
  // pinned session jobs queued).  Every remaining job resolves with an
  // error reply; no caller is ever left holding an unsatisfiable future.
  while (std::optional<Job> job = queue_.tryPopAny()) {
    if (std::holds_alternative<OpenSession>(job->request)) {
      // Drop the core the admission path reserved — the id never reached
      // the caller.
      sessions_.close(job->session);
      job->session = 0;
    }
    ServiceReply reply;
    reply.status = common::Status::error("service stopped before dispatch");
    reply.stats.session = job->session;
    job->promise.set_value(std::move(reply));
  }
  // Graceful durability: flush every open session to its checkpoint file
  // so the next service incarnation pointed at the same directory adopts
  // it (SessionTable's constructor scan).
  if (store_ != nullptr) sessions_.flushAll();
}

std::future<ServiceReply> WorkbenchService::readyReject(Reject reason,
                                                        std::string message,
                                                        std::uint64_t session) {
  std::promise<ServiceReply> promise;
  ServiceReply reply;
  reply.status = common::Status::error(std::move(message));
  reply.stats.rejected = reason;
  reply.stats.session = session;
  promise.set_value(std::move(reply));
  return promise.get_future();
}

std::future<ServiceReply> WorkbenchService::submit(Request request,
                                                   Admission admission) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_relaxed)) {
    return readyError("service stopped");
  }

  Job job;
  job.priority = admission.priority.value_or(defaultPriority(request));
  job.deadline_us = admission.deadline_us;

  // Stateful requests resolve their shard affinity here, at admission:
  // OpenSession reserves a core on the least-loaded shard; commands and
  // closes follow the session to the shard that owns it.  Session ids
  // start at 1, so a default-constructed id (0) is itself unknown — it
  // must not fall through to the stateless path.
  int affinity = -1;
  bool stateful = false;
  if (std::holds_alternative<OpenSession>(request)) {
    const auto opened = sessions_.open(options_.max_sessions, nowUs());
    if (!opened.has_value()) {
      rejected_session_.fetch_add(1, std::memory_order_relaxed);
      return readyReject(Reject::kSessionLimit,
                         common::strFormat("session limit (%zu) reached",
                                           options_.max_sessions));
    }
    stateful = true;
    affinity = opened->shard;
    job.session = opened->id;
  } else if (const auto* command = std::get_if<SessionCommand>(&request)) {
    stateful = true;
    affinity = sessions_.shardOf(command->session);
    job.session = command->session;
  } else if (const auto* close = std::get_if<CloseSession>(&request)) {
    stateful = true;
    affinity = sessions_.shardOf(close->session);
    job.session = close->session;
  }
  if (stateful && affinity < 0) {
    rejected_session_.fetch_add(1, std::memory_order_relaxed);
    return readyReject(
        Reject::kUnknownSession,
        common::strFormat("unknown session %llu",
                          static_cast<unsigned long long>(job.session)),
        job.session);
  }

  job.request = std::move(request);
  job.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  job.admitted_us = nowUs();
  std::future<ServiceReply> future = job.promise.get_future();

  Ticket ticket;
  ticket.priority = job.priority;
  ticket.affinity = affinity;
  const std::uint64_t session = job.session;
  // A refused OpenSession must drop the core it just reserved; a refused
  // command/close must NOT touch the (still live) session it names.
  const bool reserved_here = std::holds_alternative<OpenSession>(job.request);
  switch (queue_.push(job, ticket)) {
    case PushResult::kAdmitted:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return future;
    case PushResult::kShed:
      // Overload watermark: batch work is refused instead of blocked.  An
      // OpenSession is never batch by default, but a caller can mark one.
      shed_overload_.fetch_add(1, std::memory_order_relaxed);
      if (reserved_here) sessions_.close(session);
      return readyReject(Reject::kOverload, "shed: queue over watermark",
                         session);
    case PushResult::kClosed:
      // Closed while we were blocked on admission.
      if (reserved_here) sessions_.close(session);
      return readyError("service stopped");
  }
  return readyError("unreachable");
}

ShardStats WorkbenchService::shardStats(int shard) const {
  const Shard& s = *shards_.at(static_cast<std::size_t>(shard));
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stats;
}

AdmissionStats WorkbenchService::admissionStats() const {
  AdmissionStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  stats.rejected_session = rejected_session_.load(std::memory_order_relaxed);
  stats.rejected_program = rejected_program_.load(std::memory_order_relaxed);
  return stats;
}

bool WorkbenchService::admitCompiled(
    const std::shared_ptr<const sim::CompiledProgram>& program,
    ServiceReply& reply) {
  if (program == nullptr || program->verify == nullptr ||
      program->verify->clean()) {
    return true;
  }
  rejected_program_.fetch_add(1, std::memory_order_relaxed);
  reply.stats.rejected = Reject::kInvalidProgram;
  reply.status = common::Status::error(
      "program rejected by static verification: " +
      program->verify->firstError());
  return false;
}

bool WorkbenchService::withinDeadline(const Job& job, std::int64_t now_us) {
  if (job.deadline_us == 0) return true;
  if (job.deadline_us < 0) return false;  // admitted already expired
  return now_us - job.admitted_us <= job.deadline_us;
}

void WorkbenchService::shardLoop(int shard_index) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  while (std::optional<Job> job = queue_.pop(shard_index)) {
    const std::int64_t start_us = nowUs();
    ServiceReply reply;
    if (!withinDeadline(*job, start_us)) {
      // Shed before dispatch: the deadline passed while the request sat in
      // the queue, so executing it would waste shard time on an answer the
      // caller has given up on.  A shed OpenSession drops the core it
      // reserved at admission — the caller never learns the id.
      reply.status = common::Status::error("deadline expired before dispatch");
      reply.stats.rejected = Reject::kDeadline;
      reply.stats.session = job->session;
      if (std::holds_alternative<OpenSession>(job->request)) {
        sessions_.close(job->session);
        reply.stats.session = 0;  // the id was never handed out
      }
    } else {
      reply = serveWithRecovery(shard, shard_index, *job);
    }
    const std::int64_t end_us = nowUs();
    reply.stats.shard = shard_index;
    reply.stats.sequence = job->sequence;
    reply.stats.priority = job->priority;
    reply.stats.queue_us = start_us - job->admitted_us;
    reply.stats.run_us = end_us - start_us;

    // Idle-session sweep: only the owning shard evicts (spills, with a
    // checkpoint store), so a sweep can never race a claim — both run on
    // this thread, between requests.  The injector's forced eviction rides
    // the same sweep point.
    SessionTable::SweepResult swept;
    if (options_.session_ttl_us > 0) {
      swept = sessions_.sweepIdle(shard_index, nowUs(),
                                  options_.session_ttl_us);
    }
    if (store_ != nullptr && injector_->shouldForceEvict()) {
      const SessionTable::SweepResult forced =
          sessions_.forceSpill(shard_index);
      swept.spilled += forced.spilled;
      swept.destroyed += forced.destroyed;
      swept.write_failures += forced.write_failures;
    }

    {
      std::lock_guard<std::mutex> lock(shard.mu);
      reply.stats.shard_sequence = shard.stats.requests;
      ++shard.stats.requests;
      if (!reply.ok()) ++shard.stats.failures;
      if (reply.stats.program_cache_hit) ++shard.stats.cache_hits;
      shard.stats.busy_us += end_us - start_us;
      if (reply.stats.rejected == Reject::kDeadline) {
        ++shard.stats.shed_deadline;
      }
      if (!reply.rejected()) {
        if (std::holds_alternative<OpenSession>(job->request)) {
          ++shard.stats.sessions_opened;
        } else if (std::holds_alternative<CloseSession>(job->request)) {
          ++shard.stats.sessions_closed;
        } else if (job->session != 0) {
          ++shard.stats.session_commands;
        }
      }
      shard.stats.checker_session_hits += reply.stats.checker_session_hits;
      shard.stats.sessions_evicted += swept.spilled + swept.destroyed;
      shard.stats.sessions_spilled += swept.spilled;
      shard.stats.spill_failures += swept.write_failures;
      if (reply.stats.restored_from_disk) ++shard.stats.sessions_restored;
    }
    job->promise.set_value(std::move(reply));
  }
}

ServiceReply WorkbenchService::serveWithRecovery(Shard& shard,
                                                 int shard_index, Job& job) {
  const DurabilityOptions& durability = options_.durability;
  const int max_retries =
      durability.recover ? std::max(durability.max_retries, 0) : 0;
  for (int attempt = 0;; ++attempt) {
    std::string what;
    try {
      if (attempt == 0) return serve(shard, shard_index, job);
      // Retry: run suppressed so an *injected* fault fires at most once
      // per request — real faults still propagate and exhaust the budget.
      exec::FaultInjector::Suppress suppress;
      ServiceReply reply = serve(shard, shard_index, job);
      reply.stats.retries = attempt;
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.faults_recovered;
      return reply;
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
      // Anything escaping the shard thread would terminate the process and
      // abandon every pending future; everything becomes a reply instead.
      what = "unknown error";
    }
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.dispatch_faults;
    }
    bool can_retry = attempt < max_retries;
    bool quarantined = false;
    if (job.session != 0) {
      // The session's core may be half-mutated by the failed attempt; it
      // must not serve anything again as-is.  Either rebuild it from the
      // last-good snapshot and retry, or destroy it — an honest
      // kUnknownSession later beats silently corrupt state.
      const int consecutive = sessions_.noteFault(job.session, shard_index);
      const bool over_threshold =
          consecutive >= std::max(durability.quarantine_after, 1);
      if (!can_retry || over_threshold) {
        sessions_.close(job.session);
        quarantined = true;
        can_retry = false;
      } else if (sessions_.rebuild(job.session, shard_index)) {
        std::lock_guard<std::mutex> lock(shard.mu);
        ++shard.stats.cores_rebuilt;
      } else {
        // No usable snapshot; rebuild() destroyed the session.
        quarantined = true;
        can_retry = false;
      }
    }
    if (quarantined) {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.sessions_quarantined;
    }
    if (can_retry) continue;
    ServiceReply reply;
    reply.stats.session = job.session;
    reply.stats.retries = attempt;
    reply.stats.rejected = Reject::kInternal;
    reply.status = common::Status::error(
        common::strFormat("internal error during dispatch: %s", what.c_str()));
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.stats.internal_rejects;
    return reply;
  }
}

ServiceReply WorkbenchService::serve(Shard& shard, int shard_index, Job& job) {
  // Chaos hook: an injected dispatch fault at the very top models a shard
  // blowing up before any request work — the recovery loop around serve()
  // must absorb it.
  injector_->maybeThrow(exec::FaultSite::kDispatch);
  ServiceReply reply;
  reply.stats.pool_queue_depth = context_.pool().queueDepth();
  reply.stats.session = job.session;

  if (const auto* close = std::get_if<CloseSession>(&job.request)) {
    if (sessions_.close(close->session)) {
      reply.complete_ = true;
    } else {
      reply.status = common::Status::error("unknown session");
      reply.stats.rejected = Reject::kUnknownSession;
    }
    return reply;
  }

  WorkbenchCore* core = nullptr;
  if (job.session != 0) {
    // A session core is only ever touched by its affine shard, one request
    // at a time.  The claim transparently restores a spilled session from
    // its checkpoint (possibly migrated here from another shard); it fails
    // only when the session was closed, idle-evicted without a store, or
    // its checkpoint proved unusable.
    SessionTable::ClaimInfo info;
    core = sessions_.claim(job.session, shard_index, nowUs(), &info);
    if (core == nullptr) {
      if (info.restore_error != CheckpointError::kNone) {
        {
          std::lock_guard<std::mutex> lock(shard.mu);
          ++shard.stats.restore_failures;
        }
        reply.status = common::Status::error(common::strFormat(
            "session %llu checkpoint unusable (%s): %s",
            static_cast<unsigned long long>(job.session),
            checkpointErrorName(info.restore_error), info.message.c_str()));
      } else {
        reply.status = common::Status::error("session expired");
      }
      reply.stats.rejected = Reject::kUnknownSession;
      return reply;
    }
    reply.stats.restored_from_disk = info.restored;
  } else {
    // Stateless requests replay against freshly-constructed state: replies
    // are bit-identical to a fresh single-user Workbench serving the same
    // request, independent of what this shard served before.
    core = &shard.core;
    core->reset();
  }

  const WorkbenchCore::Checkpoint before = core->checkpoint();
  std::visit(
      [&](const auto& typed) {
        using Tp = std::decay_t<decltype(typed)>;
        if constexpr (!std::is_same_v<Tp, CloseSession>) {
          serveOne(*core, typed, reply);
        }
      },
      job.request);
  reply.stats.checker_session_hits =
      core->checkpoint().editor.checker_session_hits -
      before.editor.checker_session_hits;
  if (job.session != 0) {
    // Record the post-request state as the session's last-good snapshot:
    // if the *next* request faults mid-flight, the core is rebuilt from
    // exactly this state and the retry replays against what a fault-free
    // run would have seen.
    if (options_.durability.recover) {
      sessions_.recordGood(job.session, shard_index,
                           core->serializeState().dump());
    }
    // Re-stamp after serving: a session's idle clock starts when its last
    // request *finished*, so a long-running command can't age it toward
    // the TTL while it is being served.
    sessions_.claim(job.session, shard_index, nowUs());
  }
  return reply;
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const SubmitSession& request,
                                ServiceReply& reply) {
  reply.session = core.runSession(request.script);
  reply.complete_ = reply.session.clean();
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const GenerateAndRun& request,
                                ServiceReply& reply) {
  reply.session = core.runSession(request.script);
  for (const PlaneImage& input : request.inputs) {
    core.node().writePlane(input.plane, input.base, input.values);
  }
  // Compile, pass the verification gate, and only then touch an engine: a
  // program the verifier proves faulty is refused here and never runs.
  CompileOutcome compiled = core.compileProgram(core.editor().program());
  reply.generation = std::move(compiled.generation);
  reply.program = compiled.program;
  reply.verify = compiled.program != nullptr ? compiled.program->verify
                                             : nullptr;
  reply.stats.program_cache_hit = compiled.cache_hit;
  bool ran_ok = reply.generation.ok;
  if (reply.generation.ok && admitCompiled(compiled.program, reply)) {
    core.node().load(compiled.program);
    reply.run = core.node().run();
    ran_ok = !reply.run.error;
  }
  // Read-backs stay unconditional, exactly like the pre-gate behaviour:
  // a refused request returns the (untouched) plane contents.
  reply.outputs.reserve(request.outputs.size());
  for (const PlaneRange& range : request.outputs) {
    reply.outputs.push_back(
        core.node().readPlane(range.plane, range.base, range.count));
  }
  reply.complete_ = reply.session.clean() && ran_ok && !reply.rejected();
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const RunEnsemble& request,
                                ServiceReply& reply) {
  if (request.replicas < 0) {
    reply.status = common::Status::error("RunEnsemble: negative replicas");
    return;
  }
  reply.session = core.runSession(request.script);
  CompileOutcome compiled = core.compileProgram(core.editor().program());
  reply.generation = std::move(compiled.generation);
  reply.program = compiled.program;
  reply.verify = compiled.program != nullptr ? compiled.program->verify
                                             : nullptr;
  reply.stats.program_cache_hit = compiled.cache_hit;
  bool runs_ok = reply.generation.ok;
  if (reply.generation.ok && admitCompiled(compiled.program, reply)) {
    EnsembleOptions options;
    options.lanes = request.lanes;
    WorkbenchCore::ReplicaRunOutcome ensemble =
        core.runReplicas(compiled.program, request.replicas, options);
    reply.ensemble = std::move(ensemble.runs);
    reply.stats.ensemble_lanes = ensemble.lanes_used;
    reply.stats.replicas_batched = ensemble.replicas_batched;
    reply.stats.replicas_scalar = ensemble.replicas_scalar;
    for (const sim::RunStats& run : reply.ensemble) {
      runs_ok = runs_ok && !run.error;
    }
  }
  reply.complete_ = reply.session.clean() && runs_ok && !reply.rejected();
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const RunSystemPhases& request,
                                ServiceReply& reply) {
  if (request.dimension < 0 || request.dimension > 12) {
    reply.status = common::Status::error(
        common::strFormat("RunSystemPhases: bad dimension %d",
                          request.dimension));
    return;
  }
  if (request.phases < 0) {
    reply.status = common::Status::error("RunSystemPhases: negative phases");
    return;
  }
  reply.session = core.runSession(request.script);
  CompileOutcome compiled = core.compileProgram(core.editor().program());
  reply.generation = std::move(compiled.generation);
  reply.program = compiled.program;
  reply.verify = compiled.program != nullptr ? compiled.program->verify
                                             : nullptr;
  reply.stats.program_cache_hit = compiled.cache_hit;
  if (reply.generation.ok && admitCompiled(compiled.program, reply)) {
    sim::HypercubeSystem system = core.makeSystem(
        request.dimension, sim::SystemOptions{.router = request.router,
                                              .node_lanes =
                                                  request.node_lanes});
    system.loadAll(reply.program);
    for (int phase = 0; phase < request.phases && !reply.system.error;
         ++phase) {
      // Phase-synchronous SPMD: every node re-runs its program to halt;
      // the makespan accumulates max-over-nodes per phase.
      if (phase > 0) system.restartAll();
      system.runPhase(reply.system);
    }
    reply.stats.node_lanes = system.nodeLanes();
    reply.stats.nodes_batched = system.nodesBatched();
    reply.stats.nodes_scalar = system.nodesScalar();
  }
  reply.complete_ = reply.session.clean() && reply.generation.ok &&
                    !reply.system.error && !reply.rejected();
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const OpenSession& request,
                                ServiceReply& reply) {
  // The core was constructed fresh at admission; an empty initial script
  // leaves it at the editor's initial state.
  if (!request.script.empty()) {
    reply.session = core.runSession(request.script);
  }
  reply.complete_ = reply.session.clean();
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const SessionCommand& request,
                                ServiceReply& reply) {
  // No reset: the script continues where the session's previous request
  // left off, against the same editor documents and warm checker session.
  if (!request.script.empty()) {
    reply.session = core.runSession(request.script);
  }
  // Chaos hook: a mid-request fault *after* the script replay has mutated
  // the session — recovery must roll the core back to the last-good
  // snapshot, not retry against the half-applied state.
  injector_->maybeThrow(exec::FaultSite::kSession);
  for (const PlaneImage& input : request.inputs) {
    core.node().writePlane(input.plane, input.base, input.values);
  }
  bool ran_ok = true;
  if (request.run) {
    // Same compile -> verify-gate -> run split as GenerateAndRun, against
    // the session's persistent node.
    CompileOutcome compiled = core.compileProgram(core.editor().program());
    reply.generation = std::move(compiled.generation);
    reply.program = compiled.program;
    reply.verify = compiled.program != nullptr ? compiled.program->verify
                                               : nullptr;
    reply.stats.program_cache_hit = compiled.cache_hit;
    ran_ok = reply.generation.ok;
    if (reply.generation.ok && admitCompiled(compiled.program, reply)) {
      core.node().load(compiled.program);
      reply.run = core.node().run();
      ran_ok = !reply.run.error;
    }
  }
  reply.outputs.reserve(request.outputs.size());
  for (const PlaneRange& range : request.outputs) {
    reply.outputs.push_back(
        core.node().readPlane(range.plane, range.base, range.count));
  }
  reply.complete_ = reply.session.clean() && ran_ok && !reply.rejected();
}

}  // namespace nsc::svc
