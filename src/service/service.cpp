#include "service/service.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"

namespace nsc::svc {

namespace {

std::int64_t nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::future<ServiceReply> readyError(std::string message) {
  std::promise<ServiceReply> promise;
  ServiceReply reply;
  reply.status = common::Status::error(std::move(message));
  promise.set_value(std::move(reply));
  return promise.get_future();
}

}  // namespace

WorkbenchService::WorkbenchService(ServiceOptions options)
    : context_(options.machine, options.pool, options.cache),
      queue_(options.queue_capacity) {
  const int shard_count = std::max(options.shards, 1);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(context_));
  }
  // Cores exist before any thread starts, so shardLoop never races the
  // shards_ vector itself.
  for (int i = 0; i < shard_count; ++i) {
    shards_[static_cast<std::size_t>(i)].get()->thread =
        std::thread([this, i] { shardLoop(i); });
  }
}

WorkbenchService::~WorkbenchService() { stop(); }

void WorkbenchService::stop() {
  stopped_.store(true, std::memory_order_relaxed);
  queue_.close();
  // Serialize the join phase: stop() racing the destructor (or another
  // stop()) must not double-join a shard thread.
  std::lock_guard<std::mutex> lock(stop_mu_);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

std::future<ServiceReply> WorkbenchService::submit(Request request) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return readyError("service stopped");
  }
  Job job;
  job.request = std::move(request);
  job.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  job.admitted_us = nowUs();
  std::future<ServiceReply> future = job.promise.get_future();
  if (!queue_.push(std::move(job))) {
    // Closed while we were blocked on admission.
    return readyError("service stopped");
  }
  return future;
}

ShardStats WorkbenchService::shardStats(int shard) const {
  const Shard& s = *shards_.at(static_cast<std::size_t>(shard));
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stats;
}

void WorkbenchService::shardLoop(int shard_index) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  while (std::optional<Job> job = queue_.pop()) {
    const std::int64_t start_us = nowUs();
    ServiceReply reply;
    try {
      reply = serve(shard.core, job->request);
    } catch (const std::exception& e) {
      reply.status = common::Status::error(
          common::strFormat("request failed: %s", e.what()));
    } catch (...) {
      // Anything escaping the shard thread would terminate the process and
      // abandon every pending future; map it to an error reply instead.
      reply.status = common::Status::error("request failed: unknown error");
    }
    const std::int64_t end_us = nowUs();
    reply.stats.shard = shard_index;
    reply.stats.sequence = job->sequence;
    reply.stats.queue_us = start_us - job->admitted_us;
    reply.stats.run_us = end_us - start_us;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.requests;
      if (!reply.ok()) ++shard.stats.failures;
      if (reply.stats.program_cache_hit) ++shard.stats.cache_hits;
      shard.stats.busy_us += end_us - start_us;
    }
    job->promise.set_value(std::move(reply));
  }
}

ServiceReply WorkbenchService::serve(WorkbenchCore& core, Request& request) {
  // Every request replays against freshly-constructed state: replies are
  // bit-identical to a fresh single-user Workbench serving the same
  // request, independent of what this shard served before.
  core.reset();
  ServiceReply reply;
  reply.stats.pool_queue_depth = context_.pool().queueDepth();
  std::visit([&](const auto& typed) { serveOne(core, typed, reply); },
             request);
  return reply;
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const SubmitSession& request,
                                ServiceReply& reply) {
  reply.session = core.runSession(request.script);
  reply.complete_ = reply.session.clean();
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const GenerateAndRun& request,
                                ServiceReply& reply) {
  reply.session = core.runSession(request.script);
  for (const PlaneImage& input : request.inputs) {
    core.node().writePlane(input.plane, input.base, input.values);
  }
  RunOutcome outcome = core.generateAndRun();
  reply.generation = std::move(outcome.generation);
  reply.run = std::move(outcome.run);
  reply.program = std::move(outcome.program);
  reply.stats.program_cache_hit = outcome.cache_hit;
  reply.outputs.reserve(request.outputs.size());
  for (const PlaneRange& range : request.outputs) {
    reply.outputs.push_back(
        core.node().readPlane(range.plane, range.base, range.count));
  }
  reply.complete_ =
      reply.session.clean() && reply.generation.ok && !reply.run.error;
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const RunEnsemble& request,
                                ServiceReply& reply) {
  if (request.replicas < 0) {
    reply.status = common::Status::error("RunEnsemble: negative replicas");
    return;
  }
  reply.session = core.runSession(request.script);
  EnsembleOutcome outcome =
      core.runEnsemble(core.editor().program(), request.replicas);
  const bool runs_ok = outcome.ok();
  reply.generation = std::move(outcome.generation);
  reply.ensemble = std::move(outcome.runs);
  reply.program = std::move(outcome.program);
  reply.stats.program_cache_hit = outcome.cache_hit;
  reply.complete_ = reply.session.clean() && runs_ok;
}

void WorkbenchService::serveOne(WorkbenchCore& core,
                                const RunSystemPhases& request,
                                ServiceReply& reply) {
  if (request.dimension < 0 || request.dimension > 12) {
    reply.status = common::Status::error(
        common::strFormat("RunSystemPhases: bad dimension %d",
                          request.dimension));
    return;
  }
  if (request.phases < 0) {
    reply.status = common::Status::error("RunSystemPhases: negative phases");
    return;
  }
  reply.session = core.runSession(request.script);
  CompileOutcome compiled = core.compileProgram(core.editor().program());
  reply.generation = std::move(compiled.generation);
  reply.program = std::move(compiled.program);
  reply.stats.program_cache_hit = compiled.cache_hit;
  if (reply.generation.ok) {
    sim::HypercubeSystem system = core.makeSystem(request.dimension,
                                                  request.router);
    system.loadAll(reply.program);
    for (int phase = 0; phase < request.phases && !reply.system.error;
         ++phase) {
      // Phase-synchronous SPMD: every node re-runs its program to halt;
      // the makespan accumulates max-over-nodes per phase.
      if (phase > 0) {
        for (int n = 0; n < system.numNodes(); ++n) system.node(n).restart();
      }
      system.runPhase(reply.system);
    }
  }
  reply.complete_ =
      reply.session.clean() && reply.generation.ok && !reply.system.error;
}

}  // namespace nsc::svc
