// SessionTable: the stateful half of the serving layer.
//
// The paper's workbench is an interactive environment: a user's editor
// session lives across many commands, not one request.  The table maps a
// session id to the shard that owns it (its *affinity*) and to a dedicated
// WorkbenchCore — editor documents, the persistent SessionRunner with its
// warm memoized checker session, and node memory — that survives between
// requests.  Every request for a session is routed to its affine shard, so
// exactly one thread ever touches a session's core:
//
//   open   — caller thread, under the table lock: picks the least-loaded
//            shard, constructs the core, returns {id, shard}.  Ids are
//            monotonic and never reused.
//   claim  — the affine shard, while serving: looks the core up and stamps
//            last-used.  Commands for one session serialize on its shard,
//            so the returned pointer is safe to use outside the lock until
//            the same shard closes or evicts the session.
//   close  — the affine shard (CloseSession is routed with the session's
//            affinity), destroying the core.
//   evictIdle — the affine shard, between requests: destroys *its own*
//            sessions idle past a TTL.  A shard never sweeps another
//            shard's sessions, so eviction can't race a concurrent claim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "nsc/workbench.h"

namespace nsc::svc {

class SessionTable {
 public:
  // `context` outlives the table; every session core is built on it.
  SessionTable(const WorkbenchContext& context, int shards);

  struct Opened {
    std::uint64_t id = 0;
    int shard = -1;
  };

  // Creates a session on the shard with the fewest live sessions (lowest
  // shard index breaks ties — deterministic placement).  Returns nullopt
  // when `max_sessions` sessions are already live.  The core is
  // constructed outside the table lock.
  std::optional<Opened> open(std::size_t max_sessions, std::int64_t now_us);

  // The shard owning `id`, or -1 when the session is unknown (never
  // opened, closed, or evicted).  This is the submit-time router.
  int shardOf(std::uint64_t id) const;

  // The session's core, if `id` is live and owned by `shard`; stamps the
  // session's last-used time.  Only the affine shard may claim.
  WorkbenchCore* claim(std::uint64_t id, int shard, std::int64_t now_us);

  // Destroys the session.  Returns false when `id` is not live.
  bool close(std::uint64_t id);

  // Destroys every session owned by `shard` whose idle time exceeds
  // `ttl_us`.  Returns the number evicted.  No-op when ttl_us <= 0.
  std::size_t evictIdle(int shard, std::int64_t now_us, std::int64_t ttl_us);

  std::size_t size() const;

 private:
  struct Session {
    int shard = -1;
    std::int64_t last_used_us = 0;
    std::unique_ptr<WorkbenchCore> core;
  };

  const WorkbenchContext& context_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::vector<std::size_t> per_shard_;  // live session count per shard
  std::map<std::uint64_t, Session> sessions_;
};

}  // namespace nsc::svc
