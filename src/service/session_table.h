// SessionTable: the stateful half of the serving layer.
//
// The paper's workbench is an interactive environment: a user's editor
// session lives across many commands, not one request.  The table maps a
// session id to the shard that owns it (its *affinity*) and to a dedicated
// WorkbenchCore — editor documents, the persistent SessionRunner with its
// warm memoized checker session, and node memory — that survives between
// requests.  Every request for a session is routed to its affine shard, so
// exactly one thread ever touches a session's core:
//
//   open   — caller thread, under the table lock: picks the least-loaded
//            shard, constructs the core, returns {id, shard}.  Ids are
//            monotonic and never reused.
//   claim  — the affine shard, while serving: looks the core up and stamps
//            last-used.  Commands for one session serialize on its shard,
//            so the returned pointer is safe to use outside the lock until
//            the same shard closes or evicts the session.
//   close  — the affine shard (CloseSession is routed with the session's
//            affinity), destroying the core and any on-disk checkpoint.
//   sweepIdle — the affine shard, between requests: handles *its own*
//            sessions idle past a TTL.  A shard never sweeps another
//            shard's sessions, so a sweep can't race a concurrent claim.
//
// Durability (optional, via a CheckpointStore): instead of destroying an
// idle session, the sweep *spills* it — serializes the core to a verified
// on-disk checkpoint and drops the core and the shard affinity.  A spilled
// session is a table entry with no core; the next command for it routes to
// the currently least-loaded shard (live migration) and claim() restores
// the core from disk transparently.  A spill whose write fails verification
// (torn/corrupted, injected or real) keeps the session in memory — replies
// never change because a checkpoint couldn't be taken.  On construction
// the table adopts any checkpoints already in the store, so sessions
// survive a full service restart; ids continue past the highest adopted id.
//
// Failure recovery (optional, `keep_last_good`): after every successful
// session request the owning shard records the core's serialized state
// in memory (recordGood).  When dispatch faults, the shard calls
// noteFault/rebuild: the suspect core is discarded and rebuilt from that
// last-good snapshot so the request can be retried against exactly the
// state a fault-free run would have seen.  Sessions that fault repeatedly
// (or have no good snapshot) are destroyed — honest kUnknownSession
// afterwards beats silently serving corrupt state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "nsc/workbench.h"
#include "service/checkpoint.h"

namespace nsc::svc {

class SessionTable {
 public:
  // `context` outlives the table; every session core is built on it.
  // `store` (optional, borrowed) enables spill-to-disk; `keep_last_good`
  // enables in-memory last-good snapshots for fault recovery.
  SessionTable(const WorkbenchContext& context, int shards,
               CheckpointStore* store = nullptr, bool keep_last_good = false);

  struct Opened {
    std::uint64_t id = 0;
    int shard = -1;
  };

  // Creates a session on the shard with the fewest live sessions (lowest
  // shard index breaks ties — deterministic placement).  Returns nullopt
  // when `max_sessions` cores are already resident (spilled sessions cost
  // no memory and don't count).  The core is constructed outside the lock.
  std::optional<Opened> open(std::size_t max_sessions, std::int64_t now_us);

  // The shard owning `id`, or -1 when the session is unknown.  For a
  // spilled session with no affinity this *assigns* the currently
  // least-loaded shard — migration happens here, at routing time.
  int shardOf(std::uint64_t id);

  struct ClaimInfo {
    bool restored = false;  // core was restored from disk by this claim
    CheckpointError restore_error = CheckpointError::kNone;
    std::string message;
  };

  // The session's core, if `id` is live on `shard`; stamps the session's
  // last-used time.  Only the affine shard may claim a live core.  A
  // *spilled* session is claimable by any shard — a command routed before
  // the spill cleared the affinity still arrives pinned to the old shard —
  // and the claiming shard adopts it (this is where a migration commits)
  // before restoring the core from the checkpoint store (outside the lock —
  // safe, because adoption makes this the affine shard first).  A restore
  // failure destroys the session and reports the typed error via `info`.
  WorkbenchCore* claim(std::uint64_t id, int shard, std::int64_t now_us,
                       ClaimInfo* info = nullptr);

  // Destroys the session and its on-disk checkpoint.  Returns false when
  // `id` is not known.
  bool close(std::uint64_t id);

  struct SweepResult {
    std::size_t spilled = 0;        // written to disk and dropped from RAM
    std::size_t destroyed = 0;      // no store configured: evicted outright
    std::size_t write_failures = 0; // spill aborted, session kept in RAM
  };

  // Handles every session owned by `shard` whose idle time exceeds
  // `ttl_us`: spills when a store is configured, destroys otherwise.
  // No-op when ttl_us <= 0.
  SweepResult sweepIdle(int shard, std::int64_t now_us, std::int64_t ttl_us);

  // Spills every live session owned by `shard` regardless of idle time
  // (fault-injection hook: forced eviction).  No-op without a store.
  SweepResult forceSpill(int shard);

  // Spills every live session on every shard — graceful-shutdown flush.
  // Must only be called once shard threads have stopped.
  SweepResult flushAll();

  // ---- Fault recovery (affine shard only) ----

  // Records `payload` (the core's serialized state) as the session's
  // last-good snapshot and clears its consecutive-fault count.  No-op
  // unless keep_last_good was set.
  void recordGood(std::uint64_t id, int shard, std::string payload);

  // Counts a dispatch fault against the session; returns the new
  // consecutive-fault count (0 when the session is unknown).
  int noteFault(std::uint64_t id, int shard);

  // Replaces the session's (suspect) core with one rebuilt from the
  // last-good snapshot.  Returns true when the session is ready to retry;
  // on false the session has been destroyed (no snapshot, or the snapshot
  // failed to restore) and the caller must fail the request.
  bool rebuild(std::uint64_t id, int shard);

  std::size_t size() const;          // all entries, spilled included
  std::size_t residentCount() const; // entries with a live core
  std::size_t spilledCount() const;

 private:
  struct Session {
    int shard = -1;                // -1: spilled, no affinity yet
    std::int64_t last_used_us = 0;
    std::unique_ptr<WorkbenchCore> core;  // null while spilled
    bool spilled = false;
    int consecutive_faults = 0;
    std::string last_good;         // serialized state; empty = none
  };

  // Shared by sweepIdle/forceSpill/flushAll.  shard < 0 sweeps all shards.
  SweepResult sweep(int shard, std::int64_t now_us, std::int64_t ttl_us,
                    bool force);
  // Under mu_: true when `shard` owns the entry.  A live entry is owned
  // only by its affine shard; a spilled entry is adopted by whichever
  // shard asks first (see claim()).
  bool ownsLocked(std::map<std::uint64_t, Session>::iterator it, int shard);
  // Erases the entry, fixes the routing/residency accounting, and hands
  // the core back so the caller can destroy it outside the lock.
  std::unique_ptr<WorkbenchCore> eraseLocked(
      std::map<std::uint64_t, Session>::iterator it);

  const WorkbenchContext& context_;
  CheckpointStore* store_;
  const bool keep_last_good_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::size_t resident_ = 0;
  std::vector<std::size_t> per_shard_;  // routed session count per shard
  std::map<std::uint64_t, Session> sessions_;
  // Fresh cores all serialize identically; memoized for cheap open().
  std::string fresh_payload_;
};

}  // namespace nsc::svc
