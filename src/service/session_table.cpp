#include "service/session_table.h"

#include <algorithm>
#include <utility>

namespace nsc::svc {

SessionTable::SessionTable(const WorkbenchContext& context, int shards,
                           CheckpointStore* store, bool keep_last_good)
    : context_(context),
      store_(store),
      keep_last_good_(keep_last_good),
      per_shard_(static_cast<std::size_t>(std::max(shards, 1)), 0) {
  if (store_ == nullptr) return;
  // Adopt checkpoints left by a previous incarnation: each becomes a
  // spilled session with no affinity, restored lazily on first command.
  // Ids continue past the highest adopted id so they are never reused.
  for (const std::uint64_t id : store_->listSessions()) {
    Session session;
    session.spilled = true;
    sessions_.emplace(id, std::move(session));
    next_id_ = std::max(next_id_, id + 1);
  }
}

std::optional<SessionTable::Opened> SessionTable::open(
    std::size_t max_sessions, std::int64_t now_us) {
  // Construct the core before taking the lock: it allocates an editor, a
  // runner, and node memory, and must not serialize every shard's claim()
  // behind it.  An over-limit race just discards the speculative core.
  auto core = std::make_unique<WorkbenchCore>(context_);
  std::string last_good;
  if (keep_last_good_) {
    // A brand-new session's last-good state is the fresh-core state; with
    // it recorded, even a fault on the session's *first* command can be
    // rebuilt and retried.  All fresh cores serialize identically, so the
    // payload is computed once (outside the lock, like the core itself).
    std::unique_lock<std::mutex> lock(mu_);
    if (fresh_payload_.empty()) {
      lock.unlock();
      std::string payload = core->serializeState().dump();
      lock.lock();
      if (fresh_payload_.empty()) fresh_payload_ = std::move(payload);
    }
    last_good = fresh_payload_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (resident_ >= max_sessions) return std::nullopt;
  const auto least = std::min_element(per_shard_.begin(), per_shard_.end());
  const int shard = static_cast<int>(least - per_shard_.begin());
  Opened opened;
  opened.id = next_id_++;
  opened.shard = shard;
  Session session;
  session.shard = shard;
  session.last_used_us = now_us;
  session.core = std::move(core);
  session.last_good = std::move(last_good);
  sessions_.emplace(opened.id, std::move(session));
  ++per_shard_[static_cast<std::size_t>(shard)];
  ++resident_;
  return opened;
}

int SessionTable::shardOf(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return -1;
  if (it->second.shard < 0) {
    // Spilled with no affinity: this is the migration point.  The session
    // comes back on whatever shard is least loaded *now*, which need not
    // be the shard it lived on before the spill.
    const auto least = std::min_element(per_shard_.begin(), per_shard_.end());
    it->second.shard = static_cast<int>(least - per_shard_.begin());
    ++per_shard_[static_cast<std::size_t>(it->second.shard)];
  }
  return it->second.shard;
}

WorkbenchCore* SessionTable::claim(std::uint64_t id, int shard,
                                   std::int64_t now_us, ClaimInfo* info) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !ownsLocked(it, shard)) return nullptr;
  if (!it->second.spilled) {
    it->second.last_used_us = now_us;
    return it->second.core.get();
  }
  // Restore from disk, outside the lock: the adoption above made this the
  // affine shard, so no other shard claims or sweeps the entry meanwhile.
  lock.unlock();
  CheckpointStore::ReadResult loaded = store_->read(id);
  auto core = std::make_unique<WorkbenchCore>(context_);
  if (loaded.ok()) {
    const common::Status status = core->restoreState(loaded.payload);
    if (!status.isOk()) {
      loaded.error = CheckpointError::kBadState;
      loaded.message = status.message();
    }
  }
  if (!loaded.ok()) {
    if (info != nullptr) {
      info->restore_error = loaded.error;
      info->message = std::move(loaded.message);
    }
    // The checkpoint is unusable; the session is gone.  Remove both the
    // entry and the file so later commands get an honest kUnknownSession
    // instead of re-failing the same restore forever.
    store_->remove(id);
    lock.lock();
    it = sessions_.find(id);
    if (it != sessions_.end()) eraseLocked(it);
    return nullptr;
  }
  std::string payload;
  if (keep_last_good_) payload = loaded.payload.dump();
  lock.lock();
  it = sessions_.find(id);
  if (it == sessions_.end() || it->second.shard != shard) return nullptr;
  it->second.core = std::move(core);
  it->second.spilled = false;
  it->second.last_used_us = now_us;
  if (keep_last_good_) it->second.last_good = std::move(payload);
  ++resident_;
  if (info != nullptr) info->restored = true;
  return it->second.core.get();
}

bool SessionTable::ownsLocked(std::map<std::uint64_t, Session>::iterator it,
                              int shard) {
  if (!it->second.spilled) return it->second.shard == shard;
  // Spilled: any shard may take ownership.  A request can legitimately
  // arrive pinned to a shard the entry no longer names — it was routed
  // while the session was live, then a sweep spilled the session and
  // cleared the affinity — and its checkpoint must still serve it
  // transparently.  Adopting here is where a migration actually commits.
  if (it->second.shard != shard) {
    if (it->second.shard >= 0) {
      --per_shard_[static_cast<std::size_t>(it->second.shard)];
    }
    it->second.shard = shard;
    ++per_shard_[static_cast<std::size_t>(shard)];
  }
  return true;
}

std::unique_ptr<WorkbenchCore> SessionTable::eraseLocked(
    std::map<std::uint64_t, Session>::iterator it) {
  if (it->second.shard >= 0) {
    --per_shard_[static_cast<std::size_t>(it->second.shard)];
  }
  if (it->second.core != nullptr) --resident_;
  std::unique_ptr<WorkbenchCore> core = std::move(it->second.core);
  sessions_.erase(it);
  return core;  // destroyed by the caller, outside the lock
}

bool SessionTable::close(std::uint64_t id) {
  std::unique_ptr<WorkbenchCore> doomed;  // destroyed outside the lock
  bool spilled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    spilled = it->second.spilled;
    doomed = eraseLocked(it);
  }
  // Whether live or spilled, any on-disk checkpoint is now garbage.
  if (store_ != nullptr && (spilled || store_->exists(id))) store_->remove(id);
  return true;
}

SessionTable::SweepResult SessionTable::sweep(int shard, std::int64_t now_us,
                                              std::int64_t ttl_us,
                                              bool force) {
  SweepResult result;
  // Candidates are collected under the lock, then serialized and written
  // outside it.  Only the affine shard mutates its sessions, so the core
  // pointers stay valid across the unlock (flushAll runs post-join, where
  // the same single-thread guarantee holds for every shard).
  std::vector<std::pair<std::uint64_t, WorkbenchCore*>> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      if (session.spilled || session.core == nullptr) continue;
      if (shard >= 0 && session.shard != shard) continue;
      if (!force && now_us - session.last_used_us <= ttl_us) continue;
      candidates.emplace_back(id, session.core.get());
    }
  }
  std::vector<std::unique_ptr<WorkbenchCore>> doomed;  // freed outside lock
  for (const auto& [id, core] : candidates) {
    if (store_ == nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      doomed.push_back(eraseLocked(it));
      ++result.destroyed;
      continue;
    }
    const common::Status wrote = store_->write(id, core->serializeState());
    if (!wrote.isOk()) {
      // The write failed verification (torn/corrupt, injected or real) or
      // the directory is sick.  Keep the session resident — a failed spill
      // must never cost state.
      ++result.write_failures;
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    doomed.push_back(std::move(it->second.core));
    it->second.core = nullptr;
    it->second.spilled = true;
    if (it->second.shard >= 0) {
      --per_shard_[static_cast<std::size_t>(it->second.shard)];
      it->second.shard = -1;
    }
    --resident_;
    ++result.spilled;
  }
  return result;
}

SessionTable::SweepResult SessionTable::sweepIdle(int shard,
                                                  std::int64_t now_us,
                                                  std::int64_t ttl_us) {
  if (ttl_us <= 0) return {};
  return sweep(shard, now_us, ttl_us, /*force=*/false);
}

SessionTable::SweepResult SessionTable::forceSpill(int shard) {
  if (store_ == nullptr) return {};
  return sweep(shard, 0, 0, /*force=*/true);
}

SessionTable::SweepResult SessionTable::flushAll() {
  if (store_ == nullptr) return {};
  return sweep(-1, 0, 0, /*force=*/true);
}

void SessionTable::recordGood(std::uint64_t id, int shard,
                              std::string payload) {
  if (!keep_last_good_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.shard != shard) return;
  it->second.last_good = std::move(payload);
  it->second.consecutive_faults = 0;
}

int SessionTable::noteFault(std::uint64_t id, int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || !ownsLocked(it, shard)) return 0;
  return ++it->second.consecutive_faults;
}

bool SessionTable::rebuild(std::uint64_t id, int shard) {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    // A fault can land on a request whose session was spilled between
    // routing and dispatch; the rebuild adopts it exactly like claim()
    // would have (its in-memory last-good equals the spill checkpoint —
    // both record the state after the last successful request).
    if (it == sessions_.end() || !ownsLocked(it, shard)) return false;
    payload = it->second.last_good;
  }
  std::unique_ptr<WorkbenchCore> rebuilt;
  if (!payload.empty()) {
    const common::Result<common::Json> parsed = common::Json::parse(payload);
    if (parsed.isOk()) {
      rebuilt = std::make_unique<WorkbenchCore>(context_);
      if (!rebuilt->restoreState(parsed.value()).isOk()) rebuilt = nullptr;
    }
  }
  const bool recovered = rebuilt != nullptr;
  std::unique_ptr<WorkbenchCore> doomed;  // the suspect core, freed unlocked
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second.shard != shard) return false;
    if (recovered) {
      // Swap the rebuilt core in; the entry keeps its affinity, fault
      // count, and last-good snapshot.
      std::swap(it->second.core, rebuilt);
      doomed = std::move(rebuilt);
      it->second.spilled = false;
      if (doomed == nullptr) ++resident_;  // entry was core-less before
    } else {
      // No usable snapshot: the session cannot be made trustworthy again.
      doomed = eraseLocked(it);
    }
  }
  if (!recovered && store_ != nullptr) store_->remove(id);
  return recovered;
}

std::size_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::size_t SessionTable::residentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

std::size_t SessionTable::spilledCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size() - resident_;
}

}  // namespace nsc::svc
