#include "service/session_table.h"

#include <algorithm>

namespace nsc::svc {

SessionTable::SessionTable(const WorkbenchContext& context, int shards)
    : context_(context),
      per_shard_(static_cast<std::size_t>(std::max(shards, 1)), 0) {}

std::optional<SessionTable::Opened> SessionTable::open(
    std::size_t max_sessions, std::int64_t now_us) {
  // Construct the core before taking the lock: it allocates an editor, a
  // runner, and node memory, and must not serialize every shard's claim()
  // behind it.  An over-limit race just discards the speculative core.
  auto core = std::make_unique<WorkbenchCore>(context_);
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= max_sessions) return std::nullopt;
  const auto least = std::min_element(per_shard_.begin(), per_shard_.end());
  const int shard = static_cast<int>(least - per_shard_.begin());
  Opened opened;
  opened.id = next_id_++;
  opened.shard = shard;
  Session session;
  session.shard = shard;
  session.last_used_us = now_us;
  session.core = std::move(core);
  sessions_.emplace(opened.id, std::move(session));
  ++per_shard_[static_cast<std::size_t>(shard)];
  return opened;
}

int SessionTable::shardOf(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? -1 : it->second.shard;
}

WorkbenchCore* SessionTable::claim(std::uint64_t id, int shard,
                                   std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.shard != shard) return nullptr;
  it->second.last_used_us = now_us;
  return it->second.core.get();
}

bool SessionTable::close(std::uint64_t id) {
  std::unique_ptr<WorkbenchCore> doomed;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    --per_shard_[static_cast<std::size_t>(it->second.shard)];
    doomed = std::move(it->second.core);
    sessions_.erase(it);
  }
  return true;
}

std::size_t SessionTable::evictIdle(int shard, std::int64_t now_us,
                                    std::int64_t ttl_us) {
  if (ttl_us <= 0) return 0;
  std::vector<std::unique_ptr<WorkbenchCore>> doomed;  // freed outside lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second.shard == shard &&
          now_us - it->second.last_used_us > ttl_us) {
        --per_shard_[static_cast<std::size_t>(shard)];
        doomed.push_back(std::move(it->second.core));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return doomed.size();
}

std::size_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace nsc::svc
