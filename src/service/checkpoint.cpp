#include "service/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <fstream>
#include <optional>
#include <sstream>
#include <system_error>

#include "common/env.h"
#include "common/strings.h"
#include "nsc/workbench.h"

namespace nsc::svc {

namespace fs = std::filesystem;
using common::strFormat;

namespace {

constexpr const char* kMagic = "NSCKPT1";

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xfULL];
    value >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parseHex16(const std::string& text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(10 + (c - 'a'));
    } else {
      return std::nullopt;
    }
    value = (value << 4) | digit;
  }
  return value;
}

}  // namespace

const char* checkpointErrorName(CheckpointError error) {
  switch (error) {
    case CheckpointError::kNone: return "none";
    case CheckpointError::kIo: return "io";
    case CheckpointError::kTruncated: return "truncated";
    case CheckpointError::kBadMagic: return "bad-magic";
    case CheckpointError::kChecksum: return "checksum";
    case CheckpointError::kParse: return "parse";
    case CheckpointError::kBadVersion: return "bad-version";
    case CheckpointError::kBadState: return "bad-state";
  }
  return "unknown";
}

CheckpointStore::CheckpointStore(std::string dir, exec::FaultInjector* injector)
    : dir_(std::move(dir)), injector_(injector) {}

exec::FaultInjector& CheckpointStore::injector() const {
  return injector_ != nullptr ? *injector_ : exec::FaultInjector::global();
}

std::string CheckpointStore::pathFor(std::uint64_t session_id) const {
  return dir_ + "/session-" + std::to_string(session_id) + ".ckpt";
}

std::string CheckpointStore::frame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 48);
  out += kMagic;
  out += ' ';
  out += hex16(common::fnv1a64(payload));
  out += ' ';
  out += std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

common::Status CheckpointStore::write(std::uint64_t session_id,
                                      const common::Json& payload) {
  const std::string framed = frame(payload.dump());
  // The injector sees the exact bytes headed for disk; whatever it tears or
  // flips must be caught by the read-back below, never committed.
  std::string bytes = injector().mangleCheckpointBytes(framed);
  injector().maybeDelay(exec::FaultSite::kCheckpointWrite);

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return common::Status::error(strFormat(
        "checkpoint dir '%s' unavailable: %s", dir_.c_str(),
        ec.message().c_str()));
  }
  const std::string final_path = pathFor(session_id);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return common::Status::error(
          strFormat("cannot open '%s' for write", tmp_path.c_str()));
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return common::Status::error(
          strFormat("short write to '%s'", tmp_path.c_str()));
    }
  }
  // Read-back verification against the *intended* frame: a torn or
  // corrupted write (injected or real) fails here, the temp file is
  // discarded, and the previous good checkpoint — or the in-memory session —
  // survives untouched.
  const std::optional<std::string> readback = readFile(tmp_path);
  if (!readback.has_value() || *readback != framed) {
    std::remove(tmp_path.c_str());
    return common::Status::error(strFormat(
        "checkpoint write verification failed for session %llu",
        static_cast<unsigned long long>(session_id)));
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return common::Status::error(strFormat(
        "cannot commit '%s': %s", final_path.c_str(), ec.message().c_str()));
  }
  return common::Status::ok();
}

CheckpointStore::ReadResult CheckpointStore::read(
    std::uint64_t session_id) const {
  injector().maybeDelay(exec::FaultSite::kCheckpointRead);
  ReadResult result;
  const auto fail = [&result](CheckpointError error, std::string message) {
    result.error = error;
    result.message = std::move(message);
    return result;
  };
  const std::string path = pathFor(session_id);
  const std::optional<std::string> bytes = readFile(path);
  if (!bytes.has_value()) {
    return fail(CheckpointError::kIo,
                strFormat("cannot read '%s'", path.c_str()));
  }
  if (bytes->empty()) {
    return fail(CheckpointError::kTruncated, "empty checkpoint file");
  }
  const std::size_t newline = bytes->find('\n');
  if (newline == std::string::npos) {
    // No complete header line.  A tear mid-header still starts with the
    // magic; anything else is not one of our files.
    const std::string prefix = std::string(kMagic) + ' ';
    return bytes->compare(0, std::min(bytes->size(), prefix.size()), prefix, 0,
                          std::min(bytes->size(), prefix.size())) == 0
               ? fail(CheckpointError::kTruncated, "header torn mid-line")
               : fail(CheckpointError::kBadMagic, "not a checkpoint file");
  }
  const std::string header = bytes->substr(0, newline);
  const std::vector<std::string> fields = common::split(header, ' ');
  if (fields.size() != 3 || fields[0] != kMagic) {
    return fail(CheckpointError::kBadMagic,
                strFormat("bad header '%s'", header.c_str()));
  }
  const std::optional<std::uint64_t> checksum = parseHex16(fields[1]);
  const std::optional<long long> declared = common::parseInt(fields[2]);
  if (!checksum.has_value() || !declared.has_value() || *declared < 0) {
    return fail(CheckpointError::kBadMagic,
                strFormat("bad header '%s'", header.c_str()));
  }
  const std::string payload = bytes->substr(newline + 1);
  if (payload.size() != static_cast<std::size_t>(*declared)) {
    return fail(CheckpointError::kTruncated,
                strFormat("payload is %zu bytes, header declares %lld",
                          payload.size(), *declared));
  }
  if (common::fnv1a64(payload) != *checksum) {
    return fail(CheckpointError::kChecksum, "payload checksum mismatch");
  }
  common::Result<common::Json> parsed = common::Json::parse(payload);
  if (!parsed.isOk()) {
    return fail(CheckpointError::kParse, parsed.message());
  }
  common::Json& doc = parsed.value();
  if (!doc.isObject() ||
      doc.getString("format") != nsc::WorkbenchCore::kStateFormat ||
      doc.getInt("version", -1) != nsc::WorkbenchCore::kStateVersion) {
    return fail(CheckpointError::kBadVersion,
                strFormat("unsupported payload format '%s' version %lld",
                          doc.isObject() ? doc.getString("format").c_str() : "",
                          doc.isObject()
                              ? static_cast<long long>(doc.getInt("version", -1))
                              : -1LL));
  }
  result.payload = std::move(doc);
  return result;
}

void CheckpointStore::remove(std::uint64_t session_id) const {
  std::error_code ec;
  fs::remove(pathFor(session_id), ec);
}

bool CheckpointStore::exists(std::uint64_t session_id) const {
  std::error_code ec;
  return fs::exists(pathFor(session_id), ec);
}

std::vector<std::uint64_t> CheckpointStore::listSessions() const {
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return ids;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "session-";
    constexpr std::string_view kSuffix = ".ckpt";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    const std::optional<long long> id = common::parseInt(digits);
    if (id.has_value() && *id > 0) {
      ids.push_back(static_cast<std::uint64_t>(*id));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace nsc::svc
