// CheckpointStore: durable on-disk home for evicted session state.
//
// Each session checkpoint is one file, `session-<id>.ckpt`, framed as
//
//   NSCKPT1 <16-hex fnv1a64(payload)> <payload-bytes>\n<payload>
//
// where the payload is the compact dump of WorkbenchCore::serializeState()
// (itself versioned; see nsc/workbench.h).  The frame gives three
// independent integrity checks — magic+frame-version, declared length, and
// an FNV-1a checksum (the same hash mc::Executable::fingerprint() uses) —
// so every way a file can be damaged maps to a *typed* restore error:
//
//   kIo         file missing / unreadable / unwritable directory
//   kTruncated  empty file, or payload shorter than the header declares
//   kBadMagic   header is not "NSCKPT1 ..." (wrong frame version included)
//   kChecksum   payload bytes present but hash mismatch (bit rot)
//   kParse      checksum fine but the payload is not JSON
//   kBadVersion payload parses but format/version keys are unsupported
//   kBadState   (reserved for the caller) payload valid, restore refused it
//
// Writes are torn-write-safe: bytes go to a temp file in the same
// directory, are read back and re-verified end to end, and only then
// renamed over the final name.  A write that comes back damaged (including
// damage injected by exec::FaultInjector at FaultSite::kCheckpointWrite)
// returns an error and leaves no file behind — the caller keeps the
// session in memory instead of committing a bad spill.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "exec/fault_injection.h"

namespace nsc::svc {

enum class CheckpointError {
  kNone,
  kIo,
  kTruncated,
  kBadMagic,
  kChecksum,
  kParse,
  kBadVersion,
  kBadState,
};

// Human-readable tag for logs/tests ("io", "truncated", ...).
const char* checkpointErrorName(CheckpointError error);

class CheckpointStore {
 public:
  // `dir` is created on first write; a missing directory lists as empty.
  // `injector` hooks checkpoint I/O for the chaos harness (null = the
  // process-wide exec::FaultInjector::global()).
  explicit CheckpointStore(std::string dir,
                           exec::FaultInjector* injector = nullptr);

  const std::string& dir() const { return dir_; }

  // Serializes `payload`, frames it, and commits it under `session-<id>.ckpt`
  // via temp-write -> read-back verify -> rename.  On any failure the final
  // file is untouched (a previous good checkpoint, if any, survives).
  common::Status write(std::uint64_t session_id, const common::Json& payload);

  struct ReadResult {
    CheckpointError error = CheckpointError::kNone;
    std::string message;       // empty when ok
    common::Json payload;      // valid when error == kNone
    bool ok() const { return error == CheckpointError::kNone; }
  };
  // Reads and fully verifies `session-<id>.ckpt` (frame, checksum, JSON,
  // payload format/version).
  ReadResult read(std::uint64_t session_id) const;

  // Removes a session's checkpoint file if present (idempotent).
  void remove(std::uint64_t session_id) const;

  bool exists(std::uint64_t session_id) const;

  // Session ids with a checkpoint file on disk, ascending — what a
  // restarted service adopts as its spilled-session inventory.
  std::vector<std::uint64_t> listSessions() const;

  // Exposed for tests that hand-craft damaged files.
  std::string pathFor(std::uint64_t session_id) const;
  static std::string frame(const std::string& payload);

 private:
  exec::FaultInjector& injector() const;

  std::string dir_;
  exec::FaultInjector* injector_;
};

}  // namespace nsc::svc
