// WorkbenchService: the request-oriented serving layer over the workbench.
//
// The paper's environment is one user at a Sun-3 driving one editor and one
// simulated NSC.  This layer serves that workflow to many concurrent
// callers: sessions arrive as typed requests through a bounded MPMC queue
// and are dispatched across N workbench *shards*.  Each shard owns the
// cheap mutable half of a workbench (WorkbenchCore: editor + persistent
// SessionRunner + NodeSim) and processes one request at a time; all shards
// reference one shared immutable WorkbenchContext (machine model, the
// process execution pool, the compiled-program cache), so the expensive
// state — worker threads and lowered SPMD images — exists once no matter
// how many shards serve.
//
// Determinism contract: every request is *independent* — a shard resets
// its core before serving, so a reply is bit-identical to running the same
// request on a fresh single-user Workbench, regardless of shard count,
// submission order, queue capacity, or NSC_THREADS (tests/test_service.cpp
// asserts this).  Only the ReplyStats timing fields are nondeterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "nsc/workbench.h"
#include "service/request_queue.h"

namespace nsc::svc {

// ---------------------------------------------------------------------------
// Typed requests.
// ---------------------------------------------------------------------------

// Replay a session script through a shard's editor and return the replay
// record (commands, refusals, message log) without executing anything.
struct SubmitSession {
  std::string script;
};

// A host-side write into a node memory plane before execution (problem
// data), and a read-back range after execution (result vectors).
struct PlaneImage {
  arch::PlaneId plane = 0;
  std::uint64_t base = 0;
  std::vector<double> values;
};
struct PlaneRange {
  arch::PlaneId plane = 0;
  std::uint64_t base = 0;
  std::uint64_t count = 0;
};

// Replay a script, deposit `inputs`, generate microcode, run to halt on the
// shard's node, and read back `outputs`.
struct GenerateAndRun {
  std::string script;
  std::vector<PlaneImage> inputs;
  std::vector<PlaneRange> outputs;
};

// Replay a script, generate once, and run `replicas` independent copies of
// the program on the shared pool (one compiled image, per-replica memory).
struct RunEnsemble {
  std::string script;
  int replicas = 1;
};

// Replay a script, load the generated executable SPMD on a 2^dimension-node
// hypercube bound to the shared pool, and run `phases` compute phases.
struct RunSystemPhases {
  std::string script;
  int dimension = 2;
  int phases = 1;
  sim::RouterOptions router{};
};

using Request =
    std::variant<SubmitSession, GenerateAndRun, RunEnsemble, RunSystemPhases>;

// ---------------------------------------------------------------------------
// Replies and stats.
// ---------------------------------------------------------------------------

struct ReplyStats {
  int shard = -1;               // shard that served the request
  std::uint64_t sequence = 0;   // admission order (0-based)
  std::int64_t queue_us = 0;    // admission -> dispatch wait
  std::int64_t run_us = 0;      // dispatch -> reply
  bool program_cache_hit = false;  // compiled image reused from the cache
  std::size_t pool_queue_depth = 0;  // exec pool backlog at dispatch
};

struct ServiceReply {
  // Service-level failure (service stopped before admission).  Script- and
  // program-level problems surface through `session` / `generation` /
  // the run stats instead, exactly as on a single-user Workbench.
  common::Status status = common::Status::ok();
  ed::SessionResult session;     // every request type replays a script
  mc::GenerateResult generation; // GenerateAndRun / RunEnsemble / SystemPhases
  sim::RunStats run;             // GenerateAndRun
  std::vector<sim::RunStats> ensemble;  // RunEnsemble, one per replica
  sim::SystemStats system;       // RunSystemPhases
  std::vector<std::vector<double>> outputs;  // GenerateAndRun read-backs
  // The compiled image the request executed (empty for SubmitSession and
  // failed generations).  Pointer-equal across requests that ran the same
  // program on the same machine config — the cache-sharing witness.
  std::shared_ptr<const sim::CompiledProgram> program;
  ReplyStats stats;

  // True when the request did everything it was asked without refusals,
  // generation diagnostics, or run errors.
  bool ok() const { return status.isOk() && complete_; }

 private:
  friend class WorkbenchService;
  bool complete_ = false;
};

// Per-shard serving counters (monotonic over the service lifetime).
struct ShardStats {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;       // replies with ok() == false
  std::uint64_t cache_hits = 0;     // compiled-program cache hits
  std::int64_t busy_us = 0;         // total time spent serving
};

struct ServiceOptions {
  int shards = 4;
  std::size_t queue_capacity = 64;  // bounded admission (backpressure)
  arch::MachineConfig machine{};
  exec::ThreadPool* pool = nullptr;           // null -> process shared pool
  sim::CompiledProgramCache* cache = nullptr; // null -> process shared cache
};

// ---------------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------------

class WorkbenchService {
 public:
  explicit WorkbenchService(ServiceOptions options = {});
  ~WorkbenchService();  // stop(): drains admitted requests, joins shards
  WorkbenchService(const WorkbenchService&) = delete;
  WorkbenchService& operator=(const WorkbenchService&) = delete;

  // Admits a request; blocks while the queue is full (backpressure).  The
  // future resolves when a shard has served the request.  After stop(),
  // returns an already-ready reply whose status is an error.
  std::future<ServiceReply> submit(Request request);

  // Closes admission, serves everything already admitted, joins the shard
  // threads.  Idempotent; the destructor calls it.
  void stop();

  int shards() const { return static_cast<int>(shards_.size()); }
  const WorkbenchContext& context() const { return context_; }

  // Queue saturation: current depth and lifetime high-water mark.
  std::size_t queueDepth() const { return queue_.depth(); }
  std::size_t peakQueueDepth() const { return queue_.peakDepth(); }

  ShardStats shardStats(int shard) const;

 private:
  struct Job {
    Request request;
    std::promise<ServiceReply> promise;
    std::uint64_t sequence = 0;
    std::int64_t admitted_us = 0;  // steady-clock stamp at admission
  };

  void shardLoop(int shard_index);
  ServiceReply serve(WorkbenchCore& core, Request& request);
  void serveOne(WorkbenchCore& core, const SubmitSession& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const GenerateAndRun& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const RunEnsemble& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const RunSystemPhases& request,
                ServiceReply& reply);

  WorkbenchContext context_;
  BoundedQueue<Job> queue_;
  std::atomic<std::uint64_t> next_sequence_{0};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;  // serializes the join phase of stop()

  struct Shard {
    explicit Shard(const WorkbenchContext& context) : core(context) {}
    WorkbenchCore core;
    std::thread thread;
    mutable std::mutex mu;
    ShardStats stats;
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nsc::svc
