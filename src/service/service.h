// WorkbenchService: the request-oriented serving layer over the workbench.
//
// The paper's environment is one user at a Sun-3 driving one editor and one
// simulated NSC.  This layer serves that workflow to many concurrent
// callers: requests arrive through a bounded admission queue and are
// dispatched across N workbench *shards*.  Each shard owns the cheap
// mutable half of a workbench (WorkbenchCore: editor + persistent
// SessionRunner + NodeSim) and processes one request at a time; all shards
// reference one shared immutable WorkbenchContext (machine model, the
// process execution pool, the compiled-program cache), so the expensive
// state — worker threads and lowered SPMD images — exists once no matter
// how many shards serve.
//
// Two request families ride the same queue:
//
//   Stateless (SubmitSession, GenerateAndRun, RunEnsemble,
//   RunSystemPhases): a shard resets its core before serving, so a reply
//   is bit-identical to running the same request on a fresh single-user
//   Workbench, regardless of shard count, submission order, queue
//   capacity, or NSC_THREADS (tests/test_service.cpp asserts this).  Only
//   the RequestStats timing fields are nondeterministic.
//
//   Stateful (OpenSession, SessionCommand, CloseSession): OpenSession
//   allocates a per-session WorkbenchCore in the SessionTable, pinned to
//   the least-loaded shard; every subsequent request for that session is
//   routed to the same shard (affinity), so the session's diagram state,
//   warm memoized checker session, and compiled-program handles survive
//   across requests.  A script split across N SessionCommands produces
//   bit-identical editor/run results to the same script submitted whole.
//   Idle sessions are evicted after ServiceOptions::session_ttl_us.
//
// Admission control (AdmissionPolicy, request_queue.h): per-request
// deadlines shed expired work before dispatch with a Rejected reply;
// priority classes serve interactive traffic ahead of batch (aging keeps
// batch starvation-free); shed-on-overload mode refuses batch work past a
// queue-depth watermark instead of blocking the producer.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "exec/fault_injection.h"
#include "nsc/workbench.h"
#include "service/checkpoint.h"
#include "service/request_queue.h"
#include "service/session_table.h"

namespace nsc::net {
// Wire codec (net/wire.h): needs to serialize ServiceReply::complete_ so a
// reply decoded client-side answers ok() exactly like the in-process one.
struct ReplyAccess;
}  // namespace nsc::net

namespace nsc::svc {

// ---------------------------------------------------------------------------
// Typed requests.
// ---------------------------------------------------------------------------

// Replay a session script through a shard's editor and return the replay
// record (commands, refusals, message log) without executing anything.
struct SubmitSession {
  std::string script;
};

// A host-side write into a node memory plane before execution (problem
// data), and a read-back range after execution (result vectors).
struct PlaneImage {
  arch::PlaneId plane = 0;
  std::uint64_t base = 0;
  std::vector<double> values;
};
struct PlaneRange {
  arch::PlaneId plane = 0;
  std::uint64_t base = 0;
  std::uint64_t count = 0;
};

// Replay a script, deposit `inputs`, generate microcode, run to halt on the
// shard's node, and read back `outputs`.
struct GenerateAndRun {
  std::string script;
  std::vector<PlaneImage> inputs;
  std::vector<PlaneRange> outputs;
};

// Replay a script, generate once, and run `replicas` independent copies of
// the program on the shared pool (one compiled image, per-replica memory).
struct RunEnsemble {
  std::string script;
  int replicas = 1;
  // SoA lane width for the batched ensemble engine: 0 = auto
  // (NSC_ENSEMBLE_LANES, else the built-in default), 1 = scalar
  // per-replica path (see EnsembleOptions::lanes).
  int lanes = 0;
};

// Replay a script, load the generated executable SPMD on a 2^dimension-node
// hypercube bound to the shared pool, and run `phases` compute phases.
struct RunSystemPhases {
  std::string script;
  int dimension = 2;
  int phases = 1;
  sim::RouterOptions router{};
  // SPMD lane width for the system's compute phases (see
  // sim::SystemOptions::node_lanes): 0 resolves via NSC_NODE_LANES, 1
  // forces the scalar per-node engine.  Replies are bit-identical across
  // widths; only RequestStats engine counters differ.
  int node_lanes = 0;
};

// Open a stateful session: allocates a dedicated WorkbenchCore pinned to a
// shard and optionally replays an initial script into it.  The reply's
// stats.session carries the new session id.
struct OpenSession {
  std::string script;  // initial script; empty is fine
};

// One command batch against a live session: replays `script` against the
// session's *persistent* editor (no reset — state accumulates), then
// optionally deposits inputs, generates + runs to halt, and reads back
// outputs, exactly like GenerateAndRun but on the session's node.
struct SessionCommand {
  std::uint64_t session = 0;
  std::string script;
  bool run = false;
  std::vector<PlaneImage> inputs;
  std::vector<PlaneRange> outputs;
};

// Close a stateful session, destroying its core.
struct CloseSession {
  std::uint64_t session = 0;
};

using Request =
    std::variant<SubmitSession, GenerateAndRun, RunEnsemble, RunSystemPhases,
                 OpenSession, SessionCommand, CloseSession>;

// Per-request admission parameters.
struct Admission {
  // nullopt = by request type: session/editor traffic (SubmitSession,
  // GenerateAndRun, Open/SessionCommand/CloseSession) is interactive,
  // RunEnsemble / RunSystemPhases are batch.
  std::optional<Priority> priority;
  // Dispatch deadline relative to admission, in microseconds.  0 = none.
  // A request still queued past its deadline is shed with a Rejected reply
  // instead of executing; a negative value is already expired (rejected at
  // dispatch without running — the admission-control contract tests use
  // this).
  std::int64_t deadline_us = 0;
};

// ---------------------------------------------------------------------------
// Replies and stats.
// ---------------------------------------------------------------------------

// Why a request was refused without executing.
enum class Reject {
  kNone = 0,
  kDeadline,        // still queued past its deadline; shed before dispatch
  kOverload,        // shed at admission by the overload watermark
  kUnknownSession,  // no live session with that id (never opened / closed /
                    // idle-evicted)
  kSessionLimit,    // ServiceOptions::max_sessions live sessions already
  kInvalidProgram,  // static verification proved the compiled program
                    // faults or is hardware-infeasible; never dispatched to
                    // an engine (reply.verify carries the diagnostics)
  kInternal,        // dispatch raised an exception and recovery (if
                    // configured) could not produce a trustworthy reply;
                    // the promise is still settled — exceptions never kill
                    // a shard thread or abandon a future
};

struct RequestStats {
  int shard = -1;               // shard that served the request
  std::uint64_t sequence = 0;   // admission order (0-based)
  std::uint64_t shard_sequence = 0;  // dispatch order on that shard (0-based)
  Priority priority = Priority::kInteractive;  // class it was admitted at
  std::int64_t queue_us = 0;    // admission -> dispatch wait
  std::int64_t run_us = 0;      // dispatch -> reply
  bool program_cache_hit = false;  // compiled image reused from the cache
  std::size_t pool_queue_depth = 0;  // exec pool backlog at dispatch
  std::uint64_t session = 0;    // session id (stateful requests only)
  // Checker queries this request answered from the editor's still-warm
  // memoized checker session — the witness that a SessionCommand reused
  // state a previous request built, instead of re-running the checker.
  std::uint64_t checker_session_hits = 0;
  // RunEnsemble only: the resolved SoA lane width, and how the replicas
  // split between batched (lockstep inside a ReplicaBatch) and scalar
  // execution (lane-width-1 remainders + divergence drains).
  int ensemble_lanes = 0;
  int replicas_batched = 0;
  int replicas_scalar = 0;
  // RunSystemPhases only: the resolved SPMD node-lane width, and how many
  // node-phase executions ran batched (SoA lane groups) vs scalar (width-1
  // systems, or batched-mode nodes that diverged / retired mid-phase),
  // summed over the request's compute phases.
  int node_lanes = 0;
  std::uint64_t nodes_batched = 0;
  std::uint64_t nodes_scalar = 0;
  // Durability: how many dispatch attempts faulted and were retried from
  // the session's last-good snapshot before this reply, and whether the
  // session's core was restored from an on-disk checkpoint to serve it.
  int retries = 0;
  bool restored_from_disk = false;
  Reject rejected = Reject::kNone;
};

struct ServiceReply {
  // Service-level failure (service stopped before admission, or the
  // request was shed/rejected — see stats.rejected).  Script- and
  // program-level problems surface through `session` / `generation` /
  // the run stats instead, exactly as on a single-user Workbench.
  common::Status status = common::Status::ok();
  ed::SessionResult session;     // every script-carrying request replays one
  mc::GenerateResult generation; // GenerateAndRun / RunEnsemble / SystemPhases
  sim::RunStats run;             // GenerateAndRun / SessionCommand{run}
  std::vector<sim::RunStats> ensemble;  // RunEnsemble, one per replica
  sim::SystemStats system;       // RunSystemPhases
  std::vector<std::vector<double>> outputs;  // plane read-backs
  // The compiled image the request executed (empty for SubmitSession and
  // failed generations).  Pointer-equal across requests that ran the same
  // program on the same machine config — the cache-sharing witness.
  std::shared_ptr<const sim::CompiledProgram> program;
  // The image's static-verification report (pointer-equal to
  // program->verify, and across shards serving the same program).  Set
  // whenever a program compiled — including rejections, where it carries
  // the diagnostics that justified Reject::kInvalidProgram.
  std::shared_ptr<const sim::VerifyReport> verify;
  RequestStats stats;

  // True when the request was refused by admission control (deadline,
  // overload shed, unknown session, session limit) without executing.
  bool rejected() const { return stats.rejected != Reject::kNone; }

  // True when the request did everything it was asked without refusals,
  // generation diagnostics, or run errors.
  bool ok() const { return status.isOk() && complete_; }

 private:
  friend class WorkbenchService;
  friend struct nsc::net::ReplyAccess;
  bool complete_ = false;
};

// Per-shard serving counters (monotonic over the service lifetime).
struct ShardStats {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;       // replies with ok() == false
  std::uint64_t cache_hits = 0;     // compiled-program cache hits
  std::int64_t busy_us = 0;         // total time spent serving
  std::uint64_t shed_deadline = 0;  // popped jobs rejected: expired deadline
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_evicted = 0;   // idle past session_ttl_us (spilled
                                        // or destroyed)
  std::uint64_t session_commands = 0;   // requests served on a live session
  std::uint64_t checker_session_hits = 0;  // warm checker reuse, summed
  // ---- Durability & failure isolation ----
  std::uint64_t dispatch_faults = 0;     // exceptions caught during dispatch
  std::uint64_t faults_recovered = 0;    // requests retried to success
  std::uint64_t internal_rejects = 0;    // Reject::kInternal replies
  std::uint64_t cores_rebuilt = 0;       // suspect cores quarantined and
                                         // rebuilt from a last-good snapshot
  std::uint64_t sessions_quarantined = 0;  // destroyed: repeated faults or
                                           // no usable snapshot
  std::uint64_t sessions_spilled = 0;    // checkpointed to disk and dropped
  std::uint64_t spill_failures = 0;      // spill aborted (torn/corrupt/io),
                                         // session kept resident
  std::uint64_t sessions_restored = 0;   // restored from disk on claim
  std::uint64_t restore_failures = 0;    // checkpoint unusable at claim
};

// Service-wide admission counters (what never reached a shard).
struct AdmissionStats {
  std::uint64_t submitted = 0;       // submit() calls
  std::uint64_t admitted = 0;        // entered the queue
  std::uint64_t shed_overload = 0;   // batch work refused at the watermark
  std::uint64_t rejected_session = 0;  // unknown session / session limit
  // Programs refused by the static-verification gate (Reject::kInvalidProgram)
  // after compiling but before any engine dispatch.
  std::uint64_t rejected_program = 0;
};

// Durable-session and failure-recovery knobs.  Both default off: with the
// defaults the service behaves exactly as before (idle sessions are
// destroyed, dispatch exceptions become error replies) and the hot path
// pays nothing.
struct DurabilityOptions {
  // Non-empty enables evict-to-disk: the idle sweep (and graceful stop())
  // *spills* sessions to verified checkpoint files in this directory
  // instead of destroying them; the next command transparently restores
  // the session — possibly onto a different, less-loaded shard — and a
  // restarted service adopts the directory's checkpoints wholesale.
  std::string checkpoint_dir;
  // Enables last-good snapshots + rebuild/retry: a dispatch exception on a
  // session request quarantines the suspect core, rebuilds it from the
  // snapshot taken after the session's last successful request, and
  // retries; the retried reply is bit-identical to a fault-free run.
  bool recover = false;
  // Faulted-request retry budget (attempts beyond the first).
  int max_retries = 1;
  // Consecutive faults on one session before it is destroyed outright.
  int quarantine_after = 3;
};

struct ServiceOptions {
  int shards = 4;
  std::size_t queue_capacity = 64;  // bounded admission (backpressure)
  AdmissionPolicy admission{};      // overload mode, watermark, aging
  // Stateful sessions: idle eviction TTL (0 = never evict; sweeps run on
  // the owning shard between requests) and the live-session cap.
  std::int64_t session_ttl_us = 0;
  std::size_t max_sessions = 256;
  DurabilityOptions durability{};
  // Fault-injection hooks for the chaos harness (tests/test_chaos.cpp);
  // null uses the process-wide injector, which is inert unless the
  // NSC_FAULTS environment variable configured it.
  exec::FaultInjector* injector = nullptr;
  // When false, the constructor admits but does not serve until start() —
  // lets tests and warm-up code stage a queue deterministically.
  bool start = true;
  arch::MachineConfig machine{};
  exec::ThreadPool* pool = nullptr;           // null -> process shared pool
  sim::CompiledProgramCache* cache = nullptr; // null -> process shared cache
};

// ---------------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------------

class WorkbenchService {
 public:
  explicit WorkbenchService(ServiceOptions options = {});
  ~WorkbenchService();  // stop(): drains admitted requests, joins shards
  WorkbenchService(const WorkbenchService&) = delete;
  WorkbenchService& operator=(const WorkbenchService&) = delete;

  // Launches the shard threads.  Idempotent; the constructor calls it
  // unless ServiceOptions::start is false.
  void start();

  // Admits a request; blocks while the queue is full (backpressure),
  // except batch-class work past the shed watermark in kShed mode, which
  // resolves immediately with a Rejected reply.  The future resolves when
  // a shard has served (or shed) the request.  After stop(), returns an
  // already-ready reply whose status is an error.
  std::future<ServiceReply> submit(Request request, Admission admission = {});

  // Closes admission, serves everything already admitted, joins the shard
  // threads, settles any job the shards never popped (a never-start()ed
  // service leaves affinity-pinned jobs in the queue) with an error reply
  // — no future is ever abandoned — and, when evict-to-disk is on, flushes
  // every open session to its checkpoint file.  Idempotent; the destructor
  // calls it.
  void stop();

  int shards() const { return static_cast<int>(shards_.size()); }
  const WorkbenchContext& context() const { return context_; }

  // Queue saturation: current depth and lifetime high-water mark.
  std::size_t queueDepth() const { return queue_.depth(); }
  std::size_t peakQueueDepth() const { return queue_.peakDepth(); }

  ShardStats shardStats(int shard) const;
  AdmissionStats admissionStats() const;
  std::size_t sessionCount() const { return sessions_.size(); }

 private:
  struct Job {
    Request request;
    std::promise<ServiceReply> promise;
    std::uint64_t sequence = 0;
    Priority priority = Priority::kInteractive;
    std::int64_t admitted_us = 0;  // steady-clock stamp at admission
    std::int64_t deadline_us = 0;  // relative to admitted_us; 0 = none
    std::uint64_t session = 0;     // stateful requests only
  };

  struct Shard {
    explicit Shard(const WorkbenchContext& context) : core(context) {}
    WorkbenchCore core;
    std::thread thread;
    mutable std::mutex mu;
    ShardStats stats;
  };

  void shardLoop(int shard_index);
  // serve() wrapped in the failure-isolation loop: an exception during
  // dispatch is caught, counted, and — when DurabilityOptions::recover is
  // on — the session core is rebuilt from its last-good snapshot and the
  // request retried under FaultInjector::Suppress.  When recovery is off
  // or exhausted, the reply is a structured Reject::kInternal; the shard
  // thread and the caller's future always survive.
  ServiceReply serveWithRecovery(Shard& shard, int shard_index, Job& job);
  // True when `job` is still within its dispatch deadline.
  static bool withinDeadline(const Job& job, std::int64_t now_us);
  // The verification gate every execute path passes after compiling:
  // returns true when the program's report is clean (admit), else stamps
  // the reply with Reject::kInvalidProgram + the report and returns false.
  bool admitCompiled(const std::shared_ptr<const sim::CompiledProgram>& program,
                     ServiceReply& reply);
  std::future<ServiceReply> readyReject(Reject reason, std::string message,
                                        std::uint64_t session = 0);
  ServiceReply serve(Shard& shard, int shard_index, Job& job);
  void serveOne(WorkbenchCore& core, const SubmitSession& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const GenerateAndRun& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const RunEnsemble& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const RunSystemPhases& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const OpenSession& request,
                ServiceReply& reply);
  void serveOne(WorkbenchCore& core, const SessionCommand& request,
                ServiceReply& reply);

  const ServiceOptions options_;
  WorkbenchContext context_;
  exec::FaultInjector* injector_;          // never null (global() fallback)
  std::unique_ptr<CheckpointStore> store_; // null unless checkpoint_dir set
  SessionTable sessions_;
  BoundedQueue<Job> queue_;
  std::atomic<std::uint64_t> next_sequence_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_overload_{0};
  std::atomic<std::uint64_t> rejected_session_{0};
  std::atomic<std::uint64_t> rejected_program_{0};
  std::mutex start_mu_;  // serializes start() and the join phase of stop()
  bool started_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nsc::svc
