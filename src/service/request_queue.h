// BoundedQueue: the service front door — a bounded MPMC queue with an
// admission policy in front of the workbench shards.
//
// Producers are caller threads submitting requests; consumers are the
// workbench shards.  Three admission-control knobs stack on the bound:
//
//   Backpressure (always): when the queue is full, push() blocks the
//     caller instead of letting an unbounded backlog hide saturation.
//   Shedding (AdmissionPolicy::Overload::kShed): batch-class work is
//     refused outright — kShed, never blocked — once the depth reaches a
//     watermark, so an overloaded service degrades by dropping deferrable
//     work instead of stalling every producer.  Interactive-class work is
//     never shed here; it keeps the blocking backpressure contract.
//   Priority with aging: pop() serves interactive-class items before
//     batch-class items, but a batch item's effective priority rises one
//     class per `aging_us` it has waited, so a saturated interactive
//     stream cannot starve batch work forever.
//
// Items can carry a consumer *affinity* (a shard index): pop(consumer)
// only returns items whose affinity is unset or matches, which is how a
// stateful session's requests all land on the shard that owns its state.
//
// close() drains gracefully: already-admitted items are still popped, then
// every pop returns nullopt — so a stopping service finishes the work it
// accepted and never abandons a caller's future.  tryPopAny() is the
// companion for the ungraceful case: after close(), an owner with no
// consumers left drains remaining items — *ignoring* affinity pins — so
// each one's promise can still be settled.
//
// Chaos harness: an optional exec::FaultInjector adds seeded scheduling
// delays around push/pop (FaultSite::kQueuePush / kQueuePop), perturbing
// admission order and consumer wakeups without changing any contract.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "exec/fault_injection.h"

namespace nsc::svc {

// Priority classes for admission: interactive editor/session traffic is
// served ahead of deferrable batch work (ensembles, system sweeps).
enum class Priority { kInteractive = 0, kBatch = 1 };

struct AdmissionPolicy {
  enum class Overload {
    kBlock,  // full queue blocks every producer (pure backpressure)
    kShed,   // full-past-watermark sheds batch work instead of blocking it
  };
  Overload overload = Overload::kBlock;
  // Depth at which batch-class pushes are shed in kShed mode; 0 means the
  // queue capacity (shed only when completely full).  Clamped to capacity.
  std::size_t shed_watermark = 0;
  // Wait that promotes a queued item by one priority class (starvation
  // freedom for batch work).  <= 0 disables aging.
  std::int64_t aging_us = 20'000;
};

// Admission metadata travelling with a queued item.  `admitted_us` and
// `order` are stamped by the queue at push.
struct Ticket {
  Priority priority = Priority::kInteractive;
  int affinity = -1;  // consumer index this item is pinned to; -1 = any
  std::int64_t admitted_us = 0;
  std::uint64_t order = 0;
};

enum class PushResult {
  kAdmitted,  // queued; a consumer will pop it
  kShed,      // refused by the overload policy (caller must reply Rejected)
  kClosed,    // queue closed before space freed up
};

// The one steady-clock-in-microseconds helper the serving layer stamps
// admission, dispatch, and idle times with.
inline std::int64_t monotonicNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, AdmissionPolicy policy = {},
                        exec::FaultInjector* injector = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        policy_(policy),
        injector_(injector) {}

  // Admits `item` under the policy.  Blocks while the queue is full,
  // except that batch-class items in kShed mode return kShed immediately
  // once the depth has reached the watermark.  `item` is consumed
  // (moved-from) only on kAdmitted; on kShed / kClosed the caller keeps it
  // — the service needs the refused request's promise to reply Rejected.
  PushResult push(T& item, Ticket ticket = {}) {
    if (injector_ != nullptr) {
      injector_->maybeDelay(exec::FaultSite::kQueuePush);
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_.overload == AdmissionPolicy::Overload::kShed &&
        ticket.priority == Priority::kBatch &&
        items_.size() >= shedWatermark()) {
      return PushResult::kShed;
    }
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return PushResult::kClosed;
    ticket.admitted_us = monotonicNowUs();
    ticket.order = next_order_++;
    items_.push_back(Slot{std::move(item), ticket});
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    lock.unlock();
    // Affinity-filtered consumers wait on the same condition variable, so
    // every consumer must get a chance to re-evaluate eligibility.
    not_empty_.notify_all();
    return PushResult::kAdmitted;
  }

  // Pops the best eligible item for `consumer`: lowest effective priority
  // class first (priority minus wait-time aging), FIFO within a class.
  // Items pinned to another consumer are skipped (they stay queued for
  // their shard).  Blocks while nothing is eligible.  Returns nullopt once
  // the queue is closed *and* this consumer's eligible items are drained.
  std::optional<T> pop(int consumer = -1) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      not_empty_.wait(lock,
                      [&] { return closed_ || bestFor(consumer) != kNone; });
      const std::size_t index = bestFor(consumer);
      if (index == kNone) {
        if (closed_) return std::nullopt;
        continue;  // an ineligible push woke us; wait again
      }
      Slot& slot = items_[index];
      T item = std::move(slot.item);
      items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(index));
      lock.unlock();
      not_full_.notify_all();
      if (injector_ != nullptr) {
        injector_->maybeDelay(exec::FaultSite::kQueuePop);
      }
      return item;
    }
  }

  // Non-blocking pop of the oldest item regardless of affinity.  For the
  // owner's post-close settle-drain: pop(-1) honours affinity pins, so a
  // service stopped before its shards ever ran would leave pinned items —
  // and their promises — stranded without this.
  std::optional<T> tryPopAny() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front().item);
    items_.pop_front();
    lock.unlock();
    not_full_.notify_all();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // High-water mark of depth() over the queue's lifetime.
  std::size_t peakDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

 private:
  struct Slot {
    T item;
    Ticket ticket;
  };

  std::size_t shedWatermark() const {
    const std::size_t watermark =
        policy_.shed_watermark == 0 ? capacity_ : policy_.shed_watermark;
    return watermark < capacity_ ? watermark : capacity_;
  }

  // Effective priority class after aging: one class per aging_us waited.
  // Interactive work ages too, which preserves FIFO fairness between two
  // aged classes instead of inverting it.
  std::int64_t effectivePriority(const Ticket& ticket,
                                 std::int64_t now_us) const {
    std::int64_t priority = static_cast<std::int64_t>(ticket.priority);
    if (policy_.aging_us > 0) {
      priority -= (now_us - ticket.admitted_us) / policy_.aging_us;
    }
    return priority;
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Index of the best eligible slot for `consumer`, or kNone.  Called
  // under mu_.
  std::size_t bestFor(int consumer) const {
    std::size_t best = kNone;
    std::int64_t best_priority = 0;
    const std::int64_t now_us = monotonicNowUs();
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const Slot& slot = items_[i];
      if (slot.ticket.affinity >= 0 && slot.ticket.affinity != consumer) {
        continue;
      }
      const std::int64_t priority = effectivePriority(slot.ticket, now_us);
      if (best == kNone || priority < best_priority ||
          (priority == best_priority &&
           slot.ticket.order < items_[best].ticket.order)) {
        best = i;
        best_priority = priority;
      }
    }
    return best;
  }

  const std::size_t capacity_;
  const AdmissionPolicy policy_;
  exec::FaultInjector* injector_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Slot> items_;
  std::size_t peak_depth_ = 0;
  std::uint64_t next_order_ = 0;
  bool closed_ = false;
};

}  // namespace nsc::svc
