// BoundedQueue: the service front door — a bounded, blocking MPMC queue.
//
// Producers are caller threads submitting requests; consumers are the
// workbench shards.  The bound is the admission-control knob: when every
// shard is busy and the queue is full, push() blocks the caller
// (backpressure) instead of letting an unbounded backlog hide saturation.
// close() drains gracefully: already-admitted items are still popped, then
// every pop returns nullopt — so a stopping service finishes the work it
// accepted and never abandons a caller's future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace nsc::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks while the queue is full.  Returns false (dropping `item`) if
  // the queue is closed before space frees up.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty.  Returns nullopt once the queue is
  // closed *and* drained — items admitted before close() are still
  // delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // High-water mark of depth() over the queue's lifetime.
  std::size_t peakDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace nsc::svc
