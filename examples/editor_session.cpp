// A scripted editor session walking the paper's Figures 5-11: open the
// display window, drag icons from the palette, wire pads with checker
// feedback, fill DMA subwindows, program function units, and generate
// microcode — printing the display after each stage.
#include <cstdio>

#include "nsc/nsc.h"

namespace {

void show(const char* stage, nsc::Workbench& bench) {
  std::printf("\n########## %s ##########\n%s\n", stage,
              renderWindowAscii(bench.editor()).c_str());
}

}  // namespace

int main() {
  using namespace nsc;
  Workbench bench;

  show("Figure 5: empty display window", bench);

  // Figure 6: drag a triplet out of the palette with the mouse.
  ed::Editor& editor = bench.editor();
  editor.renamePipeline("sweep");
  editor.beginPaletteDrag(ed::IconKind::kTriplet);
  const ed::Rect draw = editor.layout().drawing;
  editor.mouseMove({draw.x + 100, draw.y + 60});
  editor.mouseUp({draw.x + 260, draw.y + 80});
  show("Figure 6: one icon selected and positioned", bench);

  // Figure 7: the rest of the units.
  bench.runSession(R"(
place doublet als 4 at 200,500
place triplet als 13 at 620,80
)");
  show("Figure 7: all ALSs positioned", bench);

  // Figure 8: connections — one legal rubber-band, one refused attempt.
  bench.runSession(R"(
setop fu20 add
setop fu21 add
setop fu23 mul
connect plane0.read sd0.in
sd 0 taps=0,1,2
connect sd0.tap0 fu20.a
connect sd0.tap2 fu20.b
connect fu20.out fu21.a
connect sd0.tap1 fu21.b
)");
  editor.connect(arch::Endpoint::planeRead(1),
                 arch::Endpoint::fuInput(20, 0));  // already driven: refused
  show("Figure 8: wiring with a refusal in the message strip", bench);

  // Figure 9: DMA subwindows.
  bench.runSession(R"(
dma plane0.read base=16 stride=1 count=66 var=u
)");
  editor.setDma(arch::Endpoint::planeRead(2),
                {"bad", 1ull << 60, 1, 64, 1, 0, 0, false});  // refused
  show("Figure 9: DMA parameters committed (one bad form refused)", bench);

  // Figure 10: function-unit menus.
  const auto menu = editor.opMenu(23);
  std::printf("op menu for fu23:");
  for (const arch::OpCode op : menu) std::printf(" %s", arch::opInfo(op).name);
  std::printf("\n");
  bench.runSession(R"(
connect fu21.out fu23.a
const fu23 b 0.25
connect fu23.out plane3.write
dma plane3.write base=16 stride=1 count=64 var=smoothed
seq halt
)");
  show("Figure 10/11: completed diagram", bench);

  // Generate and execute.
  std::vector<double> u(96);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = static_cast<double>(i % 7);
  bench.node().writePlane(0, 0, u);
  const RunOutcome outcome = bench.generateAndRun();
  std::printf("generate+run: ok=%d, %llu cycles, editor stats: %llu actions, "
              "%llu refused, %llu checker queries\n",
              outcome.ok(),
              static_cast<unsigned long long>(outcome.run.total_cycles),
              static_cast<unsigned long long>(editor.stats().actions_attempted),
              static_cast<unsigned long long>(editor.stats().actions_refused),
              static_cast<unsigned long long>(editor.stats().checker_queries));
  return outcome.ok() ? 0 : 1;
}
