// Future-work demo (paper, Section 6): compile a textual stencil program
// onto the NSC — capability-aware unit mapping, shift/delay inference,
// plane allocation, and delay balancing are all automatic — then run it
// and compare with host evaluation.
#include <cmath>
#include <cstdio>

#include "nsc/nsc.h"

int main() {
  using namespace nsc;

  const std::string source = R"(
# one damped-Jacobi-like smoothing pass over a 1-D slice
param a = 0.25;
smooth = a * u[-1] + (1 - 2 * a) * u[0] + a * u[1];
change = smooth - u[0];
reduce peak = max(abs(change));
)";
  std::printf("source:\n%s\n", source.c_str());

  const auto parsed = xc::StencilProgram::parse(source);
  if (!parsed.isOk()) {
    std::printf("parse error: %s\n", parsed.message().c_str());
    return 1;
  }

  arch::Machine machine;
  xc::CompileOptions options;
  options.vector_length = 64;
  options.center_base = 32;
  const auto compiled = parsed.value().compile(machine, options);
  if (!compiled.isOk()) {
    std::printf("compile error: %s\n", compiled.message().c_str());
    return 1;
  }
  const xc::CompileResult& r = compiled.value();

  std::printf("mapping: %d functional units, %zu streams, pre-roll %d "
              "elements\n",
              r.fus_used, r.streams.size(), r.pre_roll);
  for (const xc::StreamPlacement& s : r.streams) {
    std::printf("  %-8s -> plane %2d base %llu %s\n", s.array.c_str(), s.plane,
                static_cast<unsigned long long>(s.base),
                s.is_output ? "(output)" : "");
  }

  // Show the compiled diagram the way the editor would.
  prog::Program program;
  program.pipelines.push_back(r.diagram);
  ed::Editor editor = editorForProgram(machine, program);
  std::printf("\n%s\n", renderDiagramAscii(editor).c_str());

  // Run on the simulated NSC.
  mc::Generator generator(machine);
  const auto gen = generator.generate(program);
  if (!gen.ok) {
    std::printf("generation failed:\n%s", gen.diagnostics.format().c_str());
    return 1;
  }
  sim::NodeSim node(machine);
  node.load(gen.exe);
  std::map<std::string, std::vector<double>> inputs;
  std::vector<double> u(options.center_base + options.vector_length + 8);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = std::sin(0.2 * static_cast<double>(i));
  }
  inputs["u"] = u;
  for (const xc::StreamPlacement& s : r.streams) {
    if (!s.is_output) node.writePlane(s.plane, 0, inputs.at(s.array));
  }
  const sim::RunStats run = node.run();

  // Verify against host evaluation (same operation order: exact match).
  const auto host = parsed.value().evaluate(inputs, options);
  double max_delta = 0.0;
  for (const auto& [name, plane] : r.output_planes) {
    const auto got =
        node.readPlane(plane, options.center_base, options.vector_length);
    const auto& want = host.value().outputs.at(name);
    for (std::size_t i = 0; i < want.size(); ++i) {
      max_delta = std::max(max_delta, std::abs(got[i] - want[i]));
    }
  }
  std::printf("ran in %llu cycles; outputs vs host max|delta| = %.3e\n",
              static_cast<unsigned long long>(run.total_cycles), max_delta);
  for (const auto& [name, where] : r.reductions) {
    std::printf("reduction %s = %.12f (host %.12f)\n", name.c_str(),
                node.readPlaneWord(where.first, where.second),
                host.value().reductions.at(name));
  }
  return 0;
}
