// Stateful sessions + admission control: the interactive half of the
// serving layer.
//
// Part 1 — sessions with shard affinity: 16 users each open a session and
// build the Figure-11 Jacobi pipeline across 4 incremental command
// batches (the paper's one-user-at-a-Sun-3 workflow, but concurrent and
// stateful).  Every batch of a session lands on the shard that owns its
// editor state; batches re-validate on entry, so the warm memoized
// checker session answers queries a previous request already paid for.
// The demo exits non-zero unless every session's final sweep is
// bit-identical to every other's and all invariants (affinity, warm
// reuse, one shared compiled image) hold.
//
// Part 2 — admission control under overload: a deferred-start service is
// loaded past its shed watermark, so batch ensembles are refused with
// Rejected replies while interactive sessions are still admitted, and an
// already-expired deadline is shed before dispatch.  Deterministic: the
// shards only start serving after the burst is staged.
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "nsc/nsc.h"
#include "service/service.h"

namespace {

// The Figure-11 script cut into `chunks` line-balanced batches, each
// bracketed by `check` so consecutive batches share warm checker state.
std::vector<std::string> scriptChunks(int chunks) {
  const std::string script = nsc::figure11SessionScript();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < script.size()) {
    std::size_t end = script.find('\n', start);
    if (end == std::string::npos) end = script.size() - 1;
    lines.push_back(script.substr(start, end - start + 1));
    start = end + 1;
  }
  std::vector<std::string> batches(static_cast<std::size_t>(chunks));
  const std::size_t n = lines.size();
  for (int c = 0; c < chunks; ++c) {
    std::string& batch = batches[static_cast<std::size_t>(c)];
    if (c > 0) batch += "check\n";
    const std::size_t lo = n * static_cast<std::size_t>(c) /
                           static_cast<std::size_t>(chunks);
    const std::size_t hi = n * static_cast<std::size_t>(c + 1) /
                           static_cast<std::size_t>(chunks);
    for (std::size_t i = lo; i < hi; ++i) batch += lines[i];
    batch += "check\n";
  }
  return batches;
}

}  // namespace

int main() {
  using namespace nsc;
  constexpr int kSessions = 16;
  constexpr int kChunks = 4;

  // ---- Part 1: stateful sessions with shard affinity ----
  svc::ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 32;
  svc::WorkbenchService service(options);
  const std::vector<std::string> chunks = scriptChunks(kChunks);

  std::vector<std::uint64_t> ids(kSessions);
  std::vector<int> shards(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    const svc::ServiceReply opened = service.submit(svc::OpenSession{}).get();
    if (!opened.ok()) {
      std::fprintf(stderr, "open %d failed: %s\n", s,
                   opened.status.message().c_str());
      return 1;
    }
    ids[static_cast<std::size_t>(s)] = opened.stats.session;
    shards[static_cast<std::size_t>(s)] = opened.stats.shard;
  }

  // Drive every session's batches concurrently; per-session order is
  // preserved by shard affinity + FIFO within the interactive class.
  std::vector<std::future<svc::ServiceReply>> futures;
  for (int c = 0; c < kChunks; ++c) {
    for (int s = 0; s < kSessions; ++s) {
      svc::SessionCommand command;
      command.session = ids[static_cast<std::size_t>(s)];
      command.script = chunks[static_cast<std::size_t>(c)];
      command.run = (c == kChunks - 1);
      command.outputs = {svc::PlaneRange{4, 161, 366}};
      futures.push_back(service.submit(std::move(command)));
    }
  }
  std::vector<svc::ServiceReply> replies;
  replies.reserve(futures.size());
  for (auto& future : futures) replies.push_back(future.get());

  std::uint64_t warm_hits = 0;
  const svc::ServiceReply* final0 = nullptr;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const svc::ServiceReply& reply = replies[i];
    const int s = static_cast<int>(i) % kSessions;
    if (reply.stats.shard != shards[static_cast<std::size_t>(s)]) {
      std::fprintf(stderr, "session %d batch served on shard %d, not %d\n",
                   s, reply.stats.shard, shards[static_cast<std::size_t>(s)]);
      return 1;
    }
    warm_hits += reply.stats.checker_session_hits;
    if (i >= replies.size() - kSessions) {  // the run batches
      if (reply.run.error) {
        std::fprintf(stderr, "session %d final run failed\n", s);
        return 1;
      }
      if (final0 == nullptr) final0 = &reply;
      if (reply.run.total_cycles != final0->run.total_cycles ||
          reply.outputs != final0->outputs ||
          reply.program.get() != final0->program.get()) {
        std::fprintf(stderr, "session %d diverged from session 0\n", s);
        return 1;
      }
    }
  }
  if (warm_hits == 0) {
    std::fprintf(stderr, "no warm checker reuse across session requests\n");
    return 1;
  }

  std::printf("session_demo: %d stateful sessions x %d batches, %d shards\n",
              kSessions, kChunks, service.shards());
  std::printf("  affinity held for all %zu requests; %llu checker queries "
              "answered from warm sessions\n",
              replies.size(), static_cast<unsigned long long>(warm_hits));
  std::printf("  all %d final sweeps bit-identical, one shared compiled "
              "image (%llu cycles each)\n",
              kSessions,
              static_cast<unsigned long long>(final0->run.total_cycles));
  for (int s = 0; s < kSessions; ++s) {
    service.submit(svc::CloseSession{ids[static_cast<std::size_t>(s)]}).get();
  }
  if (service.sessionCount() != 0) {
    std::fprintf(stderr, "sessions leaked after close\n");
    return 1;
  }

  // ---- Part 2: admission control under deterministic overload ----
  svc::ServiceOptions overload;
  overload.shards = 2;
  overload.queue_capacity = 8;
  overload.admission.overload = svc::AdmissionPolicy::Overload::kShed;
  overload.admission.shed_watermark = 3;
  overload.start = false;  // stage the burst before anything serves
  svc::WorkbenchService loaded(overload);

  const std::string script = figure11SessionScript();
  std::vector<std::future<svc::ServiceReply>> burst;
  int shed_now = 0;
  for (int i = 0; i < 6; ++i) {  // batch ensembles past the watermark
    burst.push_back(loaded.submit(svc::RunEnsemble{script, 2}));
    if (burst.back().wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++shed_now;  // resolved at admission: shed
    }
  }
  svc::Admission expired;
  expired.deadline_us = -1;
  burst.push_back(loaded.submit(svc::SubmitSession{script}, expired));
  burst.push_back(loaded.submit(svc::SubmitSession{script}));  // interactive
  loaded.start();

  int completed = 0, shed_overload = 0, shed_deadline = 0, interactive_ok = 0;
  for (auto& future : burst) {
    const svc::ServiceReply reply = future.get();
    switch (reply.stats.rejected) {
      case svc::Reject::kOverload:
        ++shed_overload;
        break;
      case svc::Reject::kDeadline:
        ++shed_deadline;
        break;
      default:
        if (reply.ok()) ++completed;
        if (reply.ok() && reply.stats.priority == svc::Priority::kInteractive) {
          ++interactive_ok;
        }
    }
  }
  const svc::AdmissionStats admission = loaded.admissionStats();
  std::uint64_t shard_deadline_sheds = 0;
  for (int s = 0; s < loaded.shards(); ++s) {
    shard_deadline_sheds += loaded.shardStats(s).shed_deadline;
  }
  std::printf("  overload burst: %d completed, %d shed at the watermark, "
              "%d shed on expired deadline\n",
              completed, shed_overload, shed_deadline);
  std::printf("  admission counters: %llu submitted, %llu admitted, "
              "%llu overload sheds; shard deadline sheds: %llu\n",
              static_cast<unsigned long long>(admission.submitted),
              static_cast<unsigned long long>(admission.admitted),
              static_cast<unsigned long long>(admission.shed_overload),
              static_cast<unsigned long long>(shard_deadline_sheds));
  if (shed_overload != 3 || shed_now != 3 || shed_deadline != 1 ||
      interactive_ok != 1 || admission.shed_overload != 3 ||
      shard_deadline_sheds != 1) {
    std::fprintf(stderr, "admission accounting diverged\n");
    return 1;
  }
  return 0;
}
