// Quickstart: draw a two-unit SAXPY pipeline in the (headless) editor,
// check it, generate NSC microcode, and run it on the simulated machine.
//
//   y[i] = 2.5 * x[i] + y[i]
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "nsc/nsc.h"

int main() {
  using namespace nsc;

  // A Workbench bundles the Figure-3 system: editor + checker + microcode
  // generator + the simulated NSC node.
  Workbench bench;

  // Program the machine the way the paper's user would — by editing a
  // pipeline diagram.  (Each call is a mouse action in the real editor;
  // sessions can also be scripted, see examples/editor_session.cpp.)
  ed::Editor& editor = bench.editor();
  editor.renamePipeline("saxpy");
  const ed::Rect draw = editor.layout().drawing;
  editor.placeIcon(ed::IconKind::kDoublet, {draw.x + 120, draw.y + 120});

  const arch::Machine& machine = bench.machine();
  const arch::AlsId als = machine.config().num_singlets;  // first doublet
  const arch::FuId mul = machine.als(als).fus[0];
  const arch::FuId add = machine.als(als).fus[1];

  editor.setFuOp(mul, arch::OpCode::kMul);
  editor.connect(arch::Endpoint::planeRead(0), arch::Endpoint::fuInput(mul, 0));
  editor.setConstInput(mul, 1, 2.5);  // register-file constant
  editor.setFuOp(add, arch::OpCode::kAdd);
  editor.connect(arch::Endpoint::fuOutput(mul), arch::Endpoint::fuInput(add, 0));
  editor.connect(arch::Endpoint::planeRead(1), arch::Endpoint::fuInput(add, 1));
  editor.connect(arch::Endpoint::fuOutput(add), arch::Endpoint::planeWrite(2));

  const int n = 12;
  for (const arch::Endpoint e :
       {arch::Endpoint::planeRead(0), arch::Endpoint::planeRead(1),
        arch::Endpoint::planeWrite(2)}) {
    prog::DmaSpec dma;
    dma.base = 0;
    dma.stride = 1;
    dma.count = n;
    editor.setDma(e, dma);
  }
  editor.setSeq({arch::SeqOp::kHalt, 0, 0, 0});

  // The diagram, as the display would show it.
  std::printf("%s\n", renderDiagramAscii(editor).c_str());

  // The checker demonstrates its interactive refusals:
  if (!editor.connect(arch::Endpoint::planeRead(3),
                      arch::Endpoint::fuInput(add, 1))) {
    std::printf("checker refused a second driver: %s\n\n",
                editor.message().c_str());
  }

  // Load data and run.
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = i;
    y[static_cast<std::size_t>(i)] = 100 - i;
  }
  bench.node().writePlane(0, 0, x);
  bench.node().writePlane(1, 0, y);

  const RunOutcome outcome = bench.generateAndRun();
  if (!outcome.ok()) {
    std::printf("failed:\n%s%s\n", outcome.generation.diagnostics.format().c_str(),
                outcome.run.error_message.c_str());
    return 1;
  }

  // The microcode the generator produced (what a textual microassembler
  // programmer would have written by hand).
  mc::Generator generator(machine);
  std::printf("generated microcode (%zu bits/instruction):\n%s\n",
              generator.spec().widthBits(),
              mc::listing(machine, generator.spec(), outcome.generation.exe)
                  .c_str());

  // Copy-free extraction: read the result plane into a caller-owned span.
  std::vector<double> result(static_cast<std::size_t>(n));
  bench.node().readPlaneInto(2, 0, result);
  std::printf("results (%llu machine cycles):\n",
              static_cast<unsigned long long>(outcome.run.total_cycles));
  for (int i = 0; i < n; ++i) {
    std::printf("  2.5 * %4.1f + %5.1f = %6.1f\n", x[static_cast<std::size_t>(i)],
                y[static_cast<std::size_t>(i)], result[static_cast<std::size_t>(i)]);
  }
  return 0;
}
