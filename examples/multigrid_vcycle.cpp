// The workload of the paper's reference [6] (Nosenchuck, Krist, Zang, "On
// Multigrid Methods for the Navier-Stokes Computer"): multigrid V-cycles
// for the 3-D Poisson equation, with the fine-grid smoother executed on
// the simulated NSC (damped Jacobi pipelines) and the coarse-grid
// correction on the host.
#include <cstdio>

#include "nsc/nsc.h"

int main() {
  using namespace nsc;

  const int n = 17;  // 2^4 + 1 per side
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(n, n, n);

  // NSC smoother: two damped sweeps per application, fixed count.
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = problem.grid;
  options.h = problem.h;
  options.omega = 6.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 2;
  const cfd::JacobiProgram smoother(machine, options);
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(smoother.program());
  if (!gen.ok) {
    std::printf("%s", gen.diagnostics.format().c_str());
    return 1;
  }
  sim::NodeSim node(machine);

  // Hybrid V-cycle: NSC pre/post smoothing at the fine level, host
  // correction below.
  auto nscSmooth = [&](std::vector<double>& u) -> std::uint64_t {
    cfd::PoissonProblem level = problem;
    level.u0 = u;
    node.load(gen.exe);
    smoother.load(node, level);
    const sim::RunStats run = node.run();
    u = smoother.extract(node, cfd::JacobiProgram::sweepsDone(run));
    return run.total_cycles;
  };

  std::printf("hybrid V(2,2) cycles on a %d^3 grid (fine-level smoothing on "
              "the simulated NSC):\n", n);
  std::printf("cycle  residual Linf   NSC cycles   convergence factor\n");
  std::vector<double> u = problem.u0;
  double prev = cfd::residualLinf(problem, u);
  std::printf("    0  %.6e\n", prev);
  std::uint64_t total_machine_cycles = 0;
  for (int cycle = 1; cycle <= 6; ++cycle) {
    std::uint64_t machine_cycles = nscSmooth(u);  // pre-smooth on NSC

    // Coarse-grid correction on the host (standard multigrid machinery).
    cfd::MultigridOptions mg;
    mg.pre_smooth = 0;  // already smoothed on the NSC
    mg.post_smooth = 0;
    std::vector<double> r(u.size(), 0.0);
    const cfd::Grid3& g = problem.grid;
    const double inv_h2 = 1.0 / (problem.h * problem.h);
    for (int k = 1; k < g.nz - 1; ++k) {
      for (int j = 1; j < g.ny - 1; ++j) {
        for (int i = 1; i < g.nx - 1; ++i) {
          const auto c = static_cast<std::size_t>(g.idx(i, j, k));
          const double lap =
              (u[c - 1] + u[c + 1] + u[c - static_cast<std::size_t>(g.nx)] +
               u[c + static_cast<std::size_t>(g.nx)] +
               u[c - static_cast<std::size_t>(g.W())] +
               u[c + static_cast<std::size_t>(g.W())] - 6.0 * u[c]) *
              inv_h2;
          r[c] = problem.f[c] - lap;
        }
      }
    }
    cfd::PoissonProblem coarse;
    coarse.grid = {(g.nx + 1) / 2, (g.ny + 1) / 2, (g.nz + 1) / 2};
    coarse.h = problem.h * 2;
    coarse.f = cfd::restrictFullWeighting(g, r);
    std::vector<double> e(static_cast<std::size_t>(coarse.grid.N()), 0.0);
    cfd::vcycle(coarse, e);
    const std::vector<double> corr = cfd::prolongTrilinear(coarse.grid, e);
    for (int c = 0; c < g.N(); ++c) {
      if (g.isInterior(c)) u[static_cast<std::size_t>(c)] += corr[static_cast<std::size_t>(c)];
    }

    machine_cycles += nscSmooth(u);  // post-smooth on NSC
    total_machine_cycles += machine_cycles;

    const double res = cfd::residualLinf(problem, u);
    std::printf("%5d  %.6e   %10llu   %.3f\n", cycle, res,
                static_cast<unsigned long long>(machine_cycles), res / prev);
    prev = res;
  }

  // Compare against plain NSC Jacobi given the same machine-cycle budget.
  cfd::JacobiBuildOptions plain = options;
  plain.omega = 1.0;
  plain.fixed_sweeps = 64;
  const cfd::JacobiProgram jacobi(machine, plain);
  const mc::GenerateResult gen2 = generator.generate(jacobi.program());
  node.load(gen2.exe);
  jacobi.load(node, problem);
  const sim::RunStats run = node.run();
  const std::vector<double> u_j =
      jacobi.extract(node, cfd::JacobiProgram::sweepsDone(run));
  std::printf("\nplain NSC Jacobi, 64 sweeps (%llu machine cycles): residual "
              "%.6e\n",
              static_cast<unsigned long long>(run.total_cycles),
              cfd::residualLinf(problem, u_j));
  std::printf("hybrid multigrid used %llu machine cycles and reached %.6e — "
              "the multigrid shape of reference [6]\n",
              static_cast<unsigned long long>(total_machine_cycles), prev);
  return 0;
}
