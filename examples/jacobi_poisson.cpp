// The paper's example, end to end: a point Jacobi update for the 3-D
// Poisson equation on a uniform grid with a residual convergence check
// (paper Section 4, Figures 2 and 11), executed on the simulated NSC and
// verified against the bit-exact host mirror.  Writes figure11.svg and
// figure11.txt next to the working directory.
#include <cstdio>
#include <fstream>

#include "nsc/nsc.h"

int main() {
  using namespace nsc;

  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {10, 10, 10};
  options.h = 1.0 / 9.0;
  options.tol = 1e-8;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem =
      cfd::PoissonProblem::manufactured(10, 10, 10);

  std::printf("program: %zu pipeline instructions (2 sweeps + 12 face "
              "restores + halt)\n",
              jacobi.program().size());
  for (std::size_t i = 0; i < jacobi.program().size(); ++i) {
    std::printf("  %2zu  %s\n", i, jacobi.program()[i].name.c_str());
  }

  // Render the completed sweep diagram (Figure 11).
  prog::Program sweep_only;
  sweep_only.pipelines.push_back(jacobi.program()[0]);
  ed::Editor editor = editorForProgram(machine, sweep_only);
  const std::string ascii = renderDiagramAscii(editor);
  std::printf("\n%s\n", ascii.c_str());
  std::ofstream("figure11.txt") << ascii;
  std::ofstream("figure11.svg") << renderDiagramSvg(editor);
  std::printf("wrote figure11.txt and figure11.svg\n\n");

  // Generate and run to convergence.
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  if (!gen.ok) {
    std::printf("generation failed:\n%s", gen.diagnostics.format().c_str());
    return 1;
  }
  sim::NodeSim node(machine);
  node.load(gen.exe);
  jacobi.load(node, problem);
  const sim::RunStats run = node.run();
  if (run.error) {
    std::printf("simulation failed: %s\n", run.error_message.c_str());
    return 1;
  }
  const std::uint64_t sweeps = cfd::JacobiProgram::sweepsDone(run);

  // Host mirror for verification + the residual trace.
  std::vector<double> u = problem.u0, next;
  std::printf("sweep  masked residual\n");
  for (std::uint64_t s = 0; s < sweeps; ++s) {
    const double res = cfd::linearJacobiSweep(problem, u, next, 1.0);
    u.swap(next);
    if (s < 5 || s % 50 == 0 || s + 1 == sweeps) {
      std::printf("%5llu  %.6e\n", static_cast<unsigned long long>(s + 1), res);
    }
  }

  const std::vector<double> sim_u = jacobi.extract(node, sweeps);
  std::printf("\nconverged in %llu sweeps (residual <= %g)\n",
              static_cast<unsigned long long>(sweeps), options.tol);
  std::printf("simulated NSC vs host mirror:  max|delta| = %.3e (exact "
              "agreement expected)\n",
              cfd::errorLinf(sim_u, u));
  std::printf("error vs manufactured solution: %.3e (O(h^2) discretization)\n",
              cfd::errorLinf(sim_u, problem.exactSolution()));
  std::printf("machine cycles %llu, %.1f MFLOPS achieved of %.0f peak\n",
              static_cast<unsigned long long>(run.total_cycles),
              run.mflops(machine.config().clock_mhz),
              machine.config().peakMflopsPerNode());
  return 0;
}
