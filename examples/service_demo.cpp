// The serving-layer scenario: 64 concurrent Figure-11 Jacobi sessions
// dispatched through a 4-shard WorkbenchService.
//
// Each request is the full single-user workflow — replay the Figure-11
// editor session, deposit problem data, generate microcode, execute one
// sweep on a simulated NSC node, read the smoothed iterate back — but 64 of
// them run at once: 8 producer threads push requests through the bounded
// admission queue, 4 shards serve them, and every shard shares one
// compiled-program cache, so the sweep pipeline is lowered exactly once no
// matter how the requests race.  The demo prints aggregate throughput and
// per-shard stats, and exits non-zero unless all 64 replies are
// bit-identical (the determinism the service tests pin down).
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "nsc/nsc.h"
#include "service/service.h"

int main() {
  using namespace nsc;
  constexpr int kRequests = 64;
  constexpr int kProducers = 8;

  // One request template: the Figure-11 sweep with synthetic problem data
  // (u copies in planes 0-3, f in plane 8, interior mask in plane 10), the
  // smoothed iterate and residual read back after the run.
  svc::GenerateAndRun request;
  request.script = figure11SessionScript();
  std::vector<double> u(640), f(640);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = 0.25 * static_cast<double>((i * 37) % 11);
    f[i] = 0.125 * static_cast<double>((i * 13) % 7);
  }
  for (arch::PlaneId plane = 0; plane < 4; ++plane) {
    request.inputs.push_back(svc::PlaneImage{plane, 0, u});
  }
  request.inputs.push_back(svc::PlaneImage{8, 0, f});
  request.inputs.push_back(svc::PlaneImage{10, 0, std::vector<double>(640, 1.0)});
  request.outputs.push_back(svc::PlaneRange{4, 161, 366});  // u_next
  request.outputs.push_back(svc::PlaneRange{9, 0, 1});      // residual max

  svc::ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 16;  // < kRequests: producers feel backpressure
  svc::WorkbenchService service(options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<svc::ServiceReply>> futures(kRequests);
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = p; i < kRequests; i += kProducers) {
          futures[static_cast<std::size_t>(i)] = service.submit(request);
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }

  std::vector<svc::ServiceReply> replies;
  replies.reserve(kRequests);
  for (auto& future : futures) replies.push_back(future.get());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Every reply succeeded and is bit-identical to the first.
  int cache_hits = 0;
  std::uint64_t total_cycles = 0;
  for (int i = 0; i < kRequests; ++i) {
    const svc::ServiceReply& reply = replies[static_cast<std::size_t>(i)];
    if (!reply.ok()) {
      std::fprintf(stderr, "request %d failed: %s\n", i,
                   reply.generation.diagnostics.format().c_str());
      return 1;
    }
    if (reply.outputs != replies[0].outputs ||
        reply.run.total_cycles != replies[0].run.total_cycles) {
      std::fprintf(stderr, "request %d diverged from request 0\n", i);
      return 1;
    }
    if (reply.stats.program_cache_hit) ++cache_hits;
    total_cycles += reply.run.total_cycles;
  }
  // All shards executed the same compiled image instance.
  for (const svc::ServiceReply& reply : replies) {
    if (reply.program.get() != replies[0].program.get()) {
      std::fprintf(stderr, "compiled image was duplicated across shards\n");
      return 1;
    }
  }

  std::printf("service_demo: %d Figure-11 Jacobi sessions, %d shards, "
              "%d producers\n",
              kRequests, service.shards(), kProducers);
  std::printf("  aggregate: %.2f requests/s (%.1f ms wall), "
              "%llu simulated cycles, residual %.6e\n",
              kRequests / wall_s, wall_s * 1e3,
              static_cast<unsigned long long>(total_cycles),
              replies[0].outputs[1][0]);
  std::printf("  compiled-program cache: 1 miss, %d hits "
              "(one lowered image served every shard)\n",
              cache_hits);
  std::printf("  peak admission queue depth: %zu of %zu\n",
              service.peakQueueDepth(), options.queue_capacity);
  for (int s = 0; s < service.shards(); ++s) {
    const svc::ShardStats stats = service.shardStats(s);
    std::printf("  shard %d: %llu requests, %llu failures, %.1f ms busy\n", s,
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.failures),
                static_cast<double>(stats.busy_us) / 1e3);
  }
  return 0;
}
