// Durable sessions end to end: a session survives a full service restart
// and replies exactly as if nothing had happened.
//
// Part 1 — restart survival: a user builds the first half of the Figure-11
// Jacobi pipeline in a durable service, the service stops (graceful stop
// flushes every open session to a verified checkpoint file), and a *new*
// service over the same directory adopts the checkpoint.  The user's next
// command transparently restores the session and finishes the pipeline;
// the demo exits non-zero unless the final sweep is bit-identical to a
// control session that never restarted.
//
// Part 2 — failure isolation: a service with recovery enabled is driven
// through a fault injector that throws on every first dispatch attempt.
// Each request is retried from the session's last-good snapshot and still
// returns the control reply; the shard counters record the recoveries.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "nsc/nsc.h"
#include "service/service.h"

namespace {

// The Figure-11 script cut in two at a command boundary.
std::vector<std::string> scriptHalves() {
  const std::string script = nsc::figure11SessionScript();
  std::size_t cut = script.find('\n', script.size() / 2);
  cut = (cut == std::string::npos) ? script.size() : cut + 1;
  return {script.substr(0, cut), script.substr(cut)};
}

std::string freshDir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

constexpr nsc::svc::PlaneRange kSweepOutput{4, 161, 366};

}  // namespace

int main() {
  using namespace nsc;
  const std::vector<std::string> halves = scriptHalves();

  // Control: the same two command batches against one uninterrupted
  // service — the reply every durable variant must reproduce.
  svc::ServiceReply control;
  {
    svc::WorkbenchService service{svc::ServiceOptions{}};
    const std::uint64_t id =
        service.submit(svc::OpenSession{halves[0]}).get().stats.session;
    svc::SessionCommand finish;
    finish.session = id;
    finish.script = halves[1];
    finish.run = true;
    finish.outputs = {kSweepOutput};
    control = service.submit(finish).get();
  }
  if (!control.ok()) {
    std::fprintf(stderr, "control session failed\n");
    return 1;
  }

  // ---- Part 1: stop, restart, resume ----
  const std::string dir = freshDir("nsc_durable_demo");
  std::uint64_t id = 0;
  int shard_before = -1;
  {
    svc::ServiceOptions options;
    options.durability.checkpoint_dir = dir;
    svc::WorkbenchService first(options);
    const svc::ServiceReply opened =
        first.submit(svc::OpenSession{halves[0]}).get();
    id = opened.stats.session;
    shard_before = opened.stats.shard;
  }  // destructor = graceful stop: the session is flushed to disk

  svc::ServiceOptions options;
  options.durability.checkpoint_dir = dir;
  svc::WorkbenchService revived(options);
  if (revived.sessionCount() != 1) {
    std::fprintf(stderr, "restart adopted %zu checkpoints, expected 1\n",
                 revived.sessionCount());
    return 1;
  }
  svc::SessionCommand finish;
  finish.session = id;
  finish.script = halves[1];
  finish.run = true;
  finish.outputs = {kSweepOutput};
  const svc::ServiceReply resumed = revived.submit(finish).get();
  if (!resumed.ok() || !resumed.stats.restored_from_disk) {
    std::fprintf(stderr, "resume after restart failed (%s)\n",
                 resumed.status.isOk() ? "not restored from disk"
                                       : resumed.status.message().c_str());
    return 1;
  }
  if (resumed.run.total_cycles != control.run.total_cycles ||
      resumed.outputs != control.outputs ||
      resumed.session.commands != control.session.commands) {
    std::fprintf(stderr, "restarted session diverged from control\n");
    return 1;
  }
  std::printf("durable_demo: session %llu flushed on stop, adopted on "
              "restart (shard %d -> %d)\n",
              static_cast<unsigned long long>(id), shard_before,
              resumed.stats.shard);
  std::printf("  resumed sweep bit-identical to the uninterrupted control "
              "(%llu cycles, %zu outputs)\n",
              static_cast<unsigned long long>(resumed.run.total_cycles),
              resumed.outputs.front().size());
  revived.submit(svc::CloseSession{id}).get();

  // ---- Part 2: every first dispatch attempt faults; recovery retries ----
  exec::FaultInjector injector;
  exec::FaultPlan plan;
  plan.seed = 7;
  plan.dispatch_throw = 1.0;  // throw on every unsuppressed dispatch
  injector.configure(plan);
  svc::ServiceOptions faulty;
  faulty.shards = 2;
  faulty.durability.checkpoint_dir = freshDir("nsc_durable_demo_faults");
  faulty.durability.recover = true;
  faulty.injector = &injector;
  svc::WorkbenchService recovering(faulty);
  const svc::ServiceReply opened =
      recovering.submit(svc::OpenSession{halves[0]}).get();
  svc::SessionCommand faulted;
  faulted.session = opened.stats.session;
  faulted.script = halves[1];
  faulted.run = true;
  faulted.outputs = {kSweepOutput};
  const svc::ServiceReply recovered = recovering.submit(faulted).get();
  if (!recovered.ok() || recovered.stats.retries < 1 ||
      recovered.run.total_cycles != control.run.total_cycles ||
      recovered.outputs != control.outputs) {
    std::fprintf(stderr, "fault recovery diverged from control\n");
    return 1;
  }
  std::uint64_t faults = 0, recoveries = 0, rebuilt = 0;
  for (int s = 0; s < recovering.shards(); ++s) {
    const svc::ShardStats stats = recovering.shardStats(s);
    faults += stats.dispatch_faults;
    recoveries += stats.faults_recovered;
    rebuilt += stats.cores_rebuilt;
  }
  std::printf("  fault injection: %llu dispatch faults, %llu recovered, "
              "%llu cores rebuilt from last-good snapshots; replies "
              "bit-identical throughout\n",
              static_cast<unsigned long long>(faults),
              static_cast<unsigned long long>(recoveries),
              static_cast<unsigned long long>(rebuilt));
  if (faults == 0 || recoveries == 0) {
    std::fprintf(stderr, "expected injected faults to be counted\n");
    return 1;
  }
  return 0;
}
