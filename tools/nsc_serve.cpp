// nsc_serve — the workbench daemon: a WorkbenchService behind the framed
// wire protocol (net/server.h).  docs/OPERATIONS.md is the operator manual;
// every flag below has an NSC_SERVE_* environment fallback (flag wins), and
// the engine knobs (NSC_THREADS, NSC_ENSEMBLE_LANES, NSC_NODE_LANES,
// NSC_FAULTS) are read by the layers underneath exactly as in-process.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/env.h"
#include "net/server.h"
#include "service/service.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7411;
  std::string port_file;  // write the bound port here once listening
  int shards = 4;
  int queue_capacity = 64;
  long long session_ttl_us = 0;
  int max_sessions = 256;
  std::string checkpoint_dir;
  bool recover = false;
  bool shed_overload = false;
  int shed_watermark = 0;
  bool help = false;
  bool bad = false;
};

void usage() {
  std::printf(
      "nsc_serve — NSC workbench daemon (wire protocol on TCP)\n"
      "\n"
      "  --host ADDR            bind address            [127.0.0.1]\n"
      "  --port N               TCP port, 0 = ephemeral [7411]\n"
      "  --port-file PATH       write the bound port to PATH when listening\n"
      "  --shards N             workbench shards        [4]\n"
      "  --queue-capacity N     admission queue bound   [64]\n"
      "  --session-ttl-us N     idle-session eviction TTL, 0 = never [0]\n"
      "  --max-sessions N       live-session cap        [256]\n"
      "  --checkpoint-dir DIR   enable durable sessions (spill/restore/adopt)\n"
      "  --recover              enable last-good-snapshot fault recovery\n"
      "  --shed-overload        shed batch work past the watermark instead of\n"
      "                         blocking admission\n"
      "  --shed-watermark N     shed depth, 0 = queue capacity [0]\n"
      "\n"
      "Environment: NSC_SERVE_PORT / NSC_SERVE_SHARDS mirror the flags;\n"
      "NSC_THREADS, NSC_ENSEMBLE_LANES, NSC_NODE_LANES, NSC_FAULTS configure\n"
      "the engines underneath (see docs/OPERATIONS.md).\n");
}

Flags parseFlags(int argc, char** argv) {
  Flags flags;
  if (auto port = nsc::common::envInt("NSC_SERVE_PORT", 0, 65535)) {
    flags.port = static_cast<int>(*port);
  }
  if (auto shards = nsc::common::envInt("NSC_SERVE_SHARDS", 1, 256)) {
    flags.shards = static_cast<int>(*shards);
  }
  auto intArg = [&](int& i, long long lo, long long hi, long long& out) {
    if (i + 1 >= argc) return false;
    const auto parsed = nsc::common::parseInt(argv[++i]);
    if (!parsed || *parsed < lo || *parsed > hi) return false;
    out = *parsed;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long v = 0;
    if (arg == "--help" || arg == "-h") {
      flags.help = true;
    } else if (arg == "--host" && i + 1 < argc) {
      flags.host = argv[++i];
    } else if (arg == "--port" && intArg(i, 0, 65535, v)) {
      flags.port = static_cast<int>(v);
    } else if (arg == "--port-file" && i + 1 < argc) {
      flags.port_file = argv[++i];
    } else if (arg == "--shards" && intArg(i, 1, 256, v)) {
      flags.shards = static_cast<int>(v);
    } else if (arg == "--queue-capacity" && intArg(i, 1, 1 << 20, v)) {
      flags.queue_capacity = static_cast<int>(v);
    } else if (arg == "--session-ttl-us" && intArg(i, 0, 1LL << 60, v)) {
      flags.session_ttl_us = v;
    } else if (arg == "--max-sessions" && intArg(i, 1, 1 << 20, v)) {
      flags.max_sessions = static_cast<int>(v);
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      flags.checkpoint_dir = argv[++i];
    } else if (arg == "--recover") {
      flags.recover = true;
    } else if (arg == "--shed-overload") {
      flags.shed_overload = true;
    } else if (arg == "--shed-watermark" && intArg(i, 0, 1 << 20, v)) {
      flags.shed_watermark = static_cast<int>(v);
    } else {
      std::fprintf(stderr, "nsc_serve: bad or incomplete flag: %s\n",
                   arg.c_str());
      flags.bad = true;
      break;
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parseFlags(argc, argv);
  if (flags.help || flags.bad) {
    usage();
    return flags.bad ? 2 : 0;
  }

  nsc::svc::ServiceOptions service_options;
  service_options.shards = flags.shards;
  service_options.queue_capacity =
      static_cast<std::size_t>(flags.queue_capacity);
  service_options.session_ttl_us = flags.session_ttl_us;
  service_options.max_sessions = static_cast<std::size_t>(flags.max_sessions);
  if (flags.shed_overload) {
    service_options.admission.overload =
        nsc::svc::AdmissionPolicy::Overload::kShed;
    service_options.admission.shed_watermark =
        static_cast<std::size_t>(flags.shed_watermark);
  }
  service_options.durability.checkpoint_dir = flags.checkpoint_dir;
  service_options.durability.recover = flags.recover;
  nsc::svc::WorkbenchService service(service_options);

  nsc::net::ServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<std::uint16_t>(flags.port);
  nsc::net::Server server(service, server_options);
  const nsc::common::Status status = server.start();
  if (!status.isOk()) {
    std::fprintf(stderr, "nsc_serve: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("nsc_serve: listening on %s:%u (%d shards, queue %d%s%s)\n",
              flags.host.c_str(), static_cast<unsigned>(server.port()),
              flags.shards, flags.queue_capacity,
              flags.checkpoint_dir.empty() ? "" : ", durable sessions",
              flags.recover ? ", fault recovery" : "");
  std::fflush(stdout);
  if (!flags.port_file.empty()) {
    std::FILE* f = std::fopen(flags.port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "nsc_serve: cannot write %s\n",
                   flags.port_file.c_str());
    }
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const nsc::net::ServerStats stats = server.stats();
  std::printf("nsc_serve: draining (%llu connections served, %llu frames, "
              "%llu replies, %llu protocol errors)\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.replies_sent),
              static_cast<unsigned long long>(stats.protocol_errors));
  server.stop();
  service.stop();
  return 0;
}
