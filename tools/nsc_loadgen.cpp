// nsc_loadgen — drives a running nsc_serve with N connections × M stateful
// sessions, each replaying the paper's Figure-11 Jacobi script split into
// framed SessionCommand batches (the last one deposits inputs, runs to
// halt, and reads the swept plane back).  Reports throughput and latency
// percentiles; with --verify, every session's final reply must be
// bit-identical (under net::deterministicReplyJson, further stripping the
// per-server session id and cache-hit flag) to the same script driven
// through an in-process WorkbenchService — the end-to-end transport-
// fidelity gate the CI serve-smoke lane exits nonzero on.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/env.h"
#include "net/wire.h"
#include "nsc/scripts.h"
#include "service/service.h"

namespace {

using namespace nsc;

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7411;
  int connections = 4;
  int sessions = 2;  // per connection
  int chunks = 8;    // SessionCommand batches per session
  long long timeout_ms = 60000;
  bool verify = false;
  bool help = false;
  bool bad = false;
};

void usage() {
  std::printf(
      "nsc_loadgen — Figure-11 session load for nsc_serve\n"
      "\n"
      "  --host ADDR        server address               [127.0.0.1]\n"
      "  --port N           server port                  [7411]\n"
      "  --connections N    concurrent client connections [4]\n"
      "  --sessions M       sessions per connection       [2]\n"
      "  --chunks K         command batches per session   [8]\n"
      "  --timeout-ms N     per-call socket timeout       [60000]\n"
      "  --verify           gate: final replies must be bit-identical to an\n"
      "                     in-process WorkbenchService (exit 1 on mismatch)\n");
}

Flags parseFlags(int argc, char** argv) {
  Flags flags;
  auto intArg = [&](int& i, long long lo, long long hi, long long& out) {
    if (i + 1 >= argc) return false;
    const auto parsed = common::parseInt(argv[++i]);
    if (!parsed || *parsed < lo || *parsed > hi) return false;
    out = *parsed;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long v = 0;
    if (arg == "--help" || arg == "-h") {
      flags.help = true;
    } else if (arg == "--host" && i + 1 < argc) {
      flags.host = argv[++i];
    } else if (arg == "--port" && intArg(i, 1, 65535, v)) {
      flags.port = static_cast<int>(v);
    } else if (arg == "--connections" && intArg(i, 1, 1024, v)) {
      flags.connections = static_cast<int>(v);
    } else if (arg == "--sessions" && intArg(i, 1, 1 << 16, v)) {
      flags.sessions = static_cast<int>(v);
    } else if (arg == "--chunks" && intArg(i, 1, 256, v)) {
      flags.chunks = static_cast<int>(v);
    } else if (arg == "--timeout-ms" && intArg(i, 1, 1LL << 40, v)) {
      flags.timeout_ms = v;
    } else if (arg == "--verify") {
      flags.verify = true;
    } else {
      std::fprintf(stderr, "nsc_loadgen: bad or incomplete flag: %s\n",
                   arg.c_str());
      flags.bad = true;
      break;
    }
  }
  return flags;
}

// The Figure-11 problem data (mirrors the tier-1 service tests).
std::vector<svc::PlaneImage> figure11Inputs() {
  std::vector<svc::PlaneImage> inputs;
  std::vector<double> u(640);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = 0.25 * static_cast<double>((i * 37) % 11);
  }
  for (arch::PlaneId plane = 0; plane < 4; ++plane) {
    inputs.push_back(svc::PlaneImage{plane, 0, u});
  }
  std::vector<double> f(640);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = 0.125 * static_cast<double>((i * 13) % 7);
  }
  inputs.push_back(svc::PlaneImage{8, 0, f});
  inputs.push_back(svc::PlaneImage{10, 0, std::vector<double>(640, 1.0)});
  return inputs;
}

std::vector<svc::PlaneRange> figure11Outputs() {
  return {svc::PlaneRange{4, 161, 366}, svc::PlaneRange{9, 0, 1}};
}

// Figure-11 script cut into `chunks` line-balanced batches.
std::vector<std::string> figure11Chunks(int chunks) {
  const std::string script = figure11SessionScript();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < script.size()) {
    std::size_t end = script.find('\n', start);
    if (end == std::string::npos) end = script.size() - 1;
    lines.push_back(script.substr(start, end - start + 1));
    start = end + 1;
  }
  std::vector<std::string> out(static_cast<std::size_t>(chunks));
  const std::size_t n = lines.size();
  for (int c = 0; c < chunks; ++c) {
    const std::size_t lo = n * static_cast<std::size_t>(c) /
                           static_cast<std::size_t>(chunks);
    const std::size_t hi = n * static_cast<std::size_t>(c + 1) /
                           static_cast<std::size_t>(chunks);
    for (std::size_t i = lo; i < hi; ++i) {
      out[static_cast<std::size_t>(c)] += lines[i];
    }
  }
  return out;
}

svc::SessionCommand chunkCommand(std::uint64_t session,
                                 const std::vector<std::string>& chunks,
                                 int c) {
  svc::SessionCommand command;
  command.session = session;
  command.script = chunks[static_cast<std::size_t>(c)];
  if (c == static_cast<int>(chunks.size()) - 1) {
    command.run = true;
    command.inputs = figure11Inputs();
    command.outputs = figure11Outputs();
  }
  return command;
}

// Replies compared across transports: deterministicReplyJson minus the
// fields a shared multi-session server legitimately changes (its own
// session ids; cache hits once the first session has compiled the image).
std::string comparableReply(const svc::ServiceReply& reply) {
  common::Json json = net::deterministicReplyJson(reply);
  common::JsonObject& stats = json["stats"].asObject();
  stats.erase("session");
  stats.erase("program_cache_hit");
  stats.erase("checker_session_hits");
  return json.dump();
}

// The same session driven through an in-process service — the reference
// the wire replies must be bit-identical to.
std::string inProcessReference(const std::vector<std::string>& chunks) {
  svc::ServiceOptions options;
  options.shards = 1;
  svc::WorkbenchService service(options);
  const svc::ServiceReply opened = service.submit(svc::OpenSession{}).get();
  svc::ServiceReply last;
  for (int c = 0; c < static_cast<int>(chunks.size()); ++c) {
    last = service
               .submit(chunkCommand(opened.stats.session, chunks, c))
               .get();
  }
  return comparableReply(last);
}

struct WorkerResult {
  std::vector<std::int64_t> latencies_us;
  int sessions_ok = 0;
  int sessions_failed = 0;
  int mismatches = 0;
  std::string first_error;
};

void runWorker(const Flags& flags, const std::vector<std::string>& chunks,
               const std::string& reference, WorkerResult& result) {
  ClientOptions options;
  options.host = flags.host;
  options.port = static_cast<std::uint16_t>(flags.port);
  options.timeout_ms = flags.timeout_ms;
  Client client(options);

  auto timedCall = [&](svc::Request request)
      -> common::Result<svc::ServiceReply> {
    const auto t0 = std::chrono::steady_clock::now();
    auto reply = client.call(std::move(request));
    const auto t1 = std::chrono::steady_clock::now();
    result.latencies_us.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    return reply;
  };

  for (int s = 0; s < flags.sessions; ++s) {
    bool ok = true;
    auto opened = timedCall(svc::OpenSession{});
    if (!opened.isOk() || !opened.value().ok()) {
      ok = false;
      if (result.first_error.empty()) {
        result.first_error = opened.isOk() ? "OpenSession reply not ok"
                                           : opened.message();
      }
    }
    svc::ServiceReply last;
    if (ok) {
      const std::uint64_t session = opened.value().stats.session;
      for (int c = 0; c < static_cast<int>(chunks.size()); ++c) {
        auto reply = timedCall(chunkCommand(session, chunks, c));
        if (!reply.isOk()) {
          ok = false;
          if (result.first_error.empty()) {
            result.first_error = reply.message();
          }
          break;
        }
        last = std::move(reply).value();
      }
      auto closed = timedCall(svc::CloseSession{session});
      if (!closed.isOk() && result.first_error.empty()) {
        result.first_error = closed.message();
      }
    }
    if (ok && flags.verify && comparableReply(last) != reference) {
      ++result.mismatches;
      ok = false;
      if (result.first_error.empty()) {
        result.first_error = "wire reply differs from in-process reference";
      }
    }
    ++(ok ? result.sessions_ok : result.sessions_failed);
  }
}

std::int64_t percentile(std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parseFlags(argc, argv);
  if (flags.help || flags.bad) {
    usage();
    return flags.bad ? 2 : 0;
  }

  const std::vector<std::string> chunks = figure11Chunks(flags.chunks);
  std::string reference;
  if (flags.verify) reference = inProcessReference(chunks);

  std::vector<WorkerResult> results(
      static_cast<std::size_t>(flags.connections));
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(results.size());
    for (auto& result : results) {
      workers.emplace_back(runWorker, std::cref(flags), std::cref(chunks),
                           std::cref(reference), std::ref(result));
    }
    for (auto& worker : workers) worker.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<std::int64_t> latencies;
  int sessions_ok = 0, sessions_failed = 0, mismatches = 0;
  std::string first_error;
  for (WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    sessions_ok += result.sessions_ok;
    sessions_failed += result.sessions_failed;
    mismatches += result.mismatches;
    if (first_error.empty()) first_error = result.first_error;
  }
  std::sort(latencies.begin(), latencies.end());

  const std::size_t requests = latencies.size();
  std::printf(
      "nsc_loadgen: %d connections x %d sessions (%d chunks): "
      "%d ok, %d failed, %zu requests in %.2fs (%.1f req/s)\n",
      flags.connections, flags.sessions, flags.chunks, sessions_ok,
      sessions_failed, requests, wall_s,
      wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0);
  std::printf(
      "latency us: p50=%lld p90=%lld p99=%lld max=%lld\n",
      static_cast<long long>(percentile(latencies, 0.50)),
      static_cast<long long>(percentile(latencies, 0.90)),
      static_cast<long long>(percentile(latencies, 0.99)),
      static_cast<long long>(latencies.empty() ? 0 : latencies.back()));
  if (flags.verify) {
    std::printf("verify: %s (%d mismatches)\n",
                mismatches == 0 && sessions_failed == 0 ? "bit-identical"
                                                        : "FAILED",
                mismatches);
  }
  if (!first_error.empty()) {
    std::printf("first error: %s\n", first_error.c_str());
  }
  return (sessions_failed == 0 && mismatches == 0) ? 0 : 1;
}
