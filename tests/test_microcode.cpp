// Microcode generator and disassembler tests.
#include <gtest/gtest.h>

#include "microcode/disasm.h"
#include "microcode/generator.h"
#include "test_helpers.h"

namespace nsc::mc {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::MicrowordSpec;
using arch::OpCode;

prog::Program saxpyProgram(const Machine& m, int n = 16) {
  prog::Program p;
  p.name = "saxpy";
  prog::PipelineDiagram& d = p.append("saxpy");
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  const arch::FuId add = m.als(als).fus[1];
  d.setFuOp(m, mul, OpCode::kMul);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(m, mul, 1, 2.0);
  d.setFuOp(m, add, OpCode::kAdd);
  d.connect(m, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d.connect(m, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d.connect(m, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  for (const Endpoint e :
       {Endpoint::planeRead(0), Endpoint::planeRead(1), Endpoint::planeWrite(2)}) {
    d.dmaAt(e) = {"", 0, 1, static_cast<std::uint64_t>(n), 1, 0, 0, false};
  }
  d.seq.op = arch::SeqOp::kHalt;
  return p;
}

TEST(GeneratorTest, ProducesOneWordPerPipeline) {
  Machine m;
  Generator g(m);
  const GenerateResult result = g.generate(saxpyProgram(m));
  ASSERT_TRUE(result.ok) << result.diagnostics.format();
  EXPECT_EQ(result.exe.words.size(), 1u);
  EXPECT_EQ(result.exe.names[0], "saxpy");
  EXPECT_EQ(result.exe.words[0].width(), g.spec().widthBits());
}

TEST(GeneratorTest, SwitchSettingsDerivedFromConnections) {
  Machine m;
  Generator g(m);
  const GenerateResult result = g.generate(saxpyProgram(m));
  ASSERT_TRUE(result.ok);
  const common::BitVector& w = result.exe.words[0];
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  const arch::FuId add = m.als(als).fus[1];

  // plane0.read routed to mul input a.
  const int dst_mul_a = m.destinationIndex(Endpoint::fuInput(mul, 0));
  EXPECT_EQ(g.spec().get(w, MicrowordSpec::switchField(dst_mul_a)),
            static_cast<std::uint64_t>(m.sourceIndex(Endpoint::planeRead(0)) + 1));
  // The chained mul->add path uses the internal ALS wire, not the switch.
  const int dst_add_a = m.destinationIndex(Endpoint::fuInput(add, 0));
  EXPECT_EQ(g.spec().get(w, MicrowordSpec::switchField(dst_add_a)), 0u);
  // add output routed to plane2 write.
  const int dst_w = m.destinationIndex(Endpoint::planeWrite(2));
  EXPECT_EQ(g.spec().get(w, MicrowordSpec::switchField(dst_w)),
            static_cast<std::uint64_t>(m.sourceIndex(Endpoint::fuOutput(add)) + 1));
}

TEST(GeneratorTest, RegisterFileImagesHoldConstants) {
  Machine m;
  Generator g(m);
  const GenerateResult result = g.generate(saxpyProgram(m));
  ASSERT_TRUE(result.ok);
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  const auto it = result.exe.rf_images.find(mul);
  ASSERT_NE(it, result.exe.rf_images.end());
  const auto addr = g.spec().get(result.exe.words[0],
                                 MicrowordSpec::fuField(mul, "rf_addr"));
  ASSERT_LT(addr, it->second.size());
  EXPECT_EQ(it->second[addr], 2.0);
}

TEST(GeneratorTest, ConstantsDeduplicatedAcrossInstructions) {
  Machine m;
  prog::Program p = saxpyProgram(m);
  // Second instruction uses the same constant on the same FU.
  p.pipelines[0].seq.op = arch::SeqOp::kNext;
  prog::PipelineDiagram second = p.pipelines[0];
  second.name = "saxpy2";
  second.seq.op = arch::SeqOp::kHalt;
  // Swap planes to avoid contention questions between instructions (it's a
  // different instruction anyway, but keep it identical for the test).
  p.pipelines.push_back(second);

  Generator g(m);
  const GenerateResult result = g.generate(p);
  ASSERT_TRUE(result.ok) << result.diagnostics.format();
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  EXPECT_EQ(result.exe.rf_images.at(mul).size(), 1u);
}

TEST(GeneratorTest, CheckerBlocksBadPrograms) {
  Machine m;
  prog::Program p = saxpyProgram(m);
  // Sabotage: claim a bogus vector length.
  p.pipelines[0].dmaAt(Endpoint::planeWrite(2)).count = 9999;
  Generator g(m);
  const GenerateResult result = g.generate(p);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.diagnostics.hasErrors());
  EXPECT_TRUE(result.exe.words.empty());
}

TEST(GeneratorTest, CheckerCanBeBypassedForExperiments) {
  Machine m;
  prog::Program p = saxpyProgram(m);
  p.pipelines[0].dmaAt(Endpoint::planeWrite(2)).count = 9999;
  Generator g(m);
  GenerateOptions options;
  options.run_checker = false;
  const GenerateResult result = g.generate(p, options);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.exe.words.size(), 1u);
}

TEST(GeneratorTest, BalancedProgramReturnedAlongsideWords) {
  Machine m;
  Generator g(m);
  const GenerateResult result = g.generate(saxpyProgram(m));
  ASSERT_TRUE(result.ok);
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId add = m.als(als).fus[1];
  const prog::FuUse* use = result.balanced[0].findFu(m, add);
  ASSERT_NE(use, nullptr);
  EXPECT_EQ(use->rf_mode, arch::RfMode::kDelay);
}

TEST(DisasmTest, ListsActiveComponents) {
  Machine m;
  Generator g(m);
  const GenerateResult result = g.generate(saxpyProgram(m));
  ASSERT_TRUE(result.ok);
  const std::string text = disassemble(m, g.spec(), result.exe.words[0]);
  EXPECT_NE(text.find("mul"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("plane00 read"), std::string::npos);
  EXPECT_NE(text.find("plane02 write"), std::string::npos);
  EXPECT_NE(text.find("route"), std::string::npos);
  EXPECT_NE(text.find("seq: halt"), std::string::npos);
}

TEST(DisasmTest, FieldDumpAndCountConsistent) {
  Machine m;
  Generator g(m);
  const GenerateResult result = g.generate(saxpyProgram(m));
  ASSERT_TRUE(result.ok);
  const std::string dump = fieldDump(g.spec(), result.exe.words[0]);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(dump.begin(), dump.end(), '\n'));
  EXPECT_EQ(lines, nonZeroFieldCount(g.spec(), result.exe.words[0]));
  EXPECT_GT(lines, 10u);  // a real instruction sets dozens of fields
}

TEST(DisasmTest, ListingCoversAllInstructionsAndRfImages) {
  Machine m;
  prog::Program p = saxpyProgram(m);
  p.pipelines[0].seq.op = arch::SeqOp::kNext;
  prog::PipelineDiagram halt;
  halt.name = "halt";
  halt.seq.op = arch::SeqOp::kHalt;
  p.pipelines.push_back(halt);
  Generator g(m);
  const GenerateResult result = g.generate(p);
  ASSERT_TRUE(result.ok);
  const std::string text = listing(m, g.spec(), result.exe);
  EXPECT_NE(text.find("000: saxpy"), std::string::npos);
  EXPECT_NE(text.find("001: halt"), std::string::npos);
  EXPECT_NE(text.find("register-file images"), std::string::npos);
}

TEST(GeneratorTest, EncodedWordDecodesToSameSemantics) {
  // Encode, then read every meaningful field back and compare.
  Machine m;
  Generator g(m);
  prog::Program p = saxpyProgram(m, 33);
  const GenerateResult result = g.generate(p);
  ASSERT_TRUE(result.ok);
  const common::BitVector& w = result.exe.words[0];
  const MicrowordSpec& spec = g.spec();
  EXPECT_EQ(spec.get(w, "plane00.mode"), 1u);
  EXPECT_EQ(spec.get(w, "plane00.count"), 33u);
  EXPECT_EQ(spec.get(w, "plane02.mode"), 2u);
  EXPECT_EQ(spec.getSigned(w, "plane00.stride"), 1);
  EXPECT_EQ(spec.get(w, "seq.op"),
            static_cast<std::uint64_t>(arch::SeqOp::kHalt));
  // irq mask covers planes 0, 1, 2.
  EXPECT_EQ(spec.get(w, "irq.mask"), 0b111u);
}

}  // namespace
}  // namespace nsc::mc
