// Execution-layer tests: pool sizing, parallelFor coverage and determinism,
// task groups, exception propagation, and the thread-creation counting hook
// the simulator's zero-spawn guarantee is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"

namespace nsc::exec {
namespace {

TEST(ExecTest, ResolveThreadCountHonorsExplicitRequest) {
  EXPECT_EQ(resolveThreadCount(1), 1);
  EXPECT_EQ(resolveThreadCount(7), 7);
  EXPECT_GE(resolveThreadCount(0), 1);  // env / hardware fallback
}

TEST(ExecTest, PoolSpawnsWorkersOnceUpFront) {
  ThreadPool pool(ExecOptions{4});
  EXPECT_EQ(pool.threadCount(), 4);
  // The caller is one of the 4; only 3 OS threads are ever created.
  EXPECT_EQ(pool.threadsCreated(), 3u);
}

TEST(ExecTest, SingleThreadPoolRunsInlineWithoutWorkers) {
  ThreadPool pool(ExecOptions{1});
  EXPECT_EQ(pool.threadsCreated(), 0u);
  int calls = 0;
  pool.parallelFor(0, 100, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);  // whole range, one inline call
}

TEST(ExecTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(ExecOptions{4});
  for (const std::size_t grain : {1u, 3u, 16u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallelFor(0, hits.size(), grain,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ExecTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(ExecOptions{3});
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallelFor(16, 48, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 16 && i < 48) ? 1 : 0) << "index " << i;
  }
}

TEST(ExecTest, RepeatedJobsCreateNoNewThreads) {
  ThreadPool pool(ExecOptions{4});
  const std::uint64_t created = pool.threadsCreated();
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallelFor(0, 32, 1, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
  }
  EXPECT_EQ(total.load(), 50 * 32);
  EXPECT_EQ(pool.threadsCreated(), created);
}

TEST(ExecTest, NestedParallelForRunsInline) {
  ThreadPool pool(ExecOptions{4});
  std::atomic<int> inner_total{0};
  pool.parallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
    // A nested call on the same pool must not deadlock; it runs inline.
    pool.parallelFor(0, 4, 1, [&](std::size_t lo, std::size_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ExecTest, ParallelForPropagatesException) {
  ThreadPool pool(ExecOptions{4});
  EXPECT_THROW(
      pool.parallelFor(0, 64, 1,
                       [](std::size_t lo, std::size_t) {
                         if (lo == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives the failed job and can run another.
  std::atomic<int> total{0};
  pool.parallelFor(0, 16, 1, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ExecTest, TaskGroupRunsEveryTaskAndBlocks) {
  ThreadPool pool(ExecOptions{4});
  TaskGroup group(pool);
  std::vector<std::atomic<int>> done(23);
  for (auto& d : done) d.store(0);
  for (std::size_t i = 0; i < done.size(); ++i) {
    group.run([&done, i] { done[i].fetch_add(1); });
  }
  EXPECT_EQ(group.pending(), done.size());
  group.wait();
  EXPECT_EQ(group.pending(), 0u);
  for (std::size_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i].load(), 1) << "task " << i;
  }
  // wait() on an empty group is a no-op.
  group.wait();
}

TEST(ExecTest, DeterministicMaxReductionAcrossThreadCounts) {
  // The cfd sweeps rely on max reductions over indexed partials being
  // thread-count invariant; model that contract directly.
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 2654435761u) % 10007);
  }
  const auto run_with = [&](int threads) {
    ThreadPool pool(ExecOptions{threads});
    std::vector<double> partials(values.size(), 0.0);
    pool.parallelFor(0, values.size(), 7,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         partials[i] = values[i];
                       }
                     });
    double max = 0.0;
    for (const double v : partials) max = v > max ? v : max;
    return max;
  };
  EXPECT_EQ(run_with(1), run_with(4));
}

TEST(ExecTest, SharedPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.threadCount(), 1);
}

}  // namespace
}  // namespace nsc::exec
