// Execution-layer tests: pool sizing, parallelFor coverage and determinism,
// task groups, exception propagation, and the thread-creation counting hook
// the simulator's zero-spawn guarantee is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/env.h"
#include "exec/thread_pool.h"

namespace nsc::exec {
namespace {

TEST(ExecTest, ResolveThreadCountHonorsExplicitRequest) {
  EXPECT_EQ(resolveThreadCount(1), 1);
  EXPECT_EQ(resolveThreadCount(7), 7);
  EXPECT_GE(resolveThreadCount(0), 1);  // env / hardware fallback
}

TEST(ExecTest, ResolveThreadCountParsesEnvStrictly) {
  common::resetEnvWarnings();
  ::setenv("NSC_THREADS", "3", 1);
  EXPECT_EQ(resolveThreadCount(0), 3);
  EXPECT_EQ(common::envWarningCount(), 0u);
  // A malformed or out-of-range value warns once and falls back to the
  // hardware default — never std::atoi-style partial parses or zero.
  for (const char* bad : {"not-a-number", "8x", "0", "-2", "999999"}) {
    common::resetEnvWarnings();
    ::setenv("NSC_THREADS", bad, 1);
    EXPECT_GE(resolveThreadCount(0), 1) << bad;
    EXPECT_EQ(common::envWarningCount(), 1u) << bad;
  }
  ::unsetenv("NSC_THREADS");
  common::resetEnvWarnings();
  EXPECT_GE(resolveThreadCount(0), 1);
  EXPECT_EQ(common::envWarningCount(), 0u);
}

TEST(ExecTest, PoolSpawnsWorkersOnceUpFront) {
  ThreadPool pool(ExecOptions{4});
  EXPECT_EQ(pool.threadCount(), 4);
  // The caller is one of the 4; only 3 OS threads are ever created.
  EXPECT_EQ(pool.threadsCreated(), 3u);
}

TEST(ExecTest, SingleThreadPoolRunsInlineWithoutWorkers) {
  ThreadPool pool(ExecOptions{1});
  EXPECT_EQ(pool.threadsCreated(), 0u);
  int calls = 0;
  pool.parallelFor(0, 100, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);  // whole range, one inline call
}

TEST(ExecTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(ExecOptions{4});
  for (const std::size_t grain : {1u, 3u, 16u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallelFor(0, hits.size(), grain,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ExecTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(ExecOptions{3});
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallelFor(16, 48, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 16 && i < 48) ? 1 : 0) << "index " << i;
  }
}

TEST(ExecTest, RepeatedJobsCreateNoNewThreads) {
  ThreadPool pool(ExecOptions{4});
  const std::uint64_t created = pool.threadsCreated();
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallelFor(0, 32, 1, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
  }
  EXPECT_EQ(total.load(), 50 * 32);
  EXPECT_EQ(pool.threadsCreated(), created);
}

TEST(ExecTest, NestedParallelForRunsInline) {
  ThreadPool pool(ExecOptions{4});
  std::atomic<int> inner_total{0};
  pool.parallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
    // A nested call on the same pool must not deadlock; it runs inline.
    pool.parallelFor(0, 4, 1, [&](std::size_t lo, std::size_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ExecTest, ParallelForPropagatesException) {
  ThreadPool pool(ExecOptions{4});
  EXPECT_THROW(
      pool.parallelFor(0, 64, 1,
                       [](std::size_t lo, std::size_t) {
                         if (lo == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives the failed job and can run another.
  std::atomic<int> total{0};
  pool.parallelFor(0, 16, 1, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ExecTest, TaskGroupRunsEveryTaskAndBlocks) {
  ThreadPool pool(ExecOptions{4});
  TaskGroup group(pool);
  std::vector<std::atomic<int>> done(23);
  for (auto& d : done) d.store(0);
  for (std::size_t i = 0; i < done.size(); ++i) {
    group.run([&done, i] { done[i].fetch_add(1); });
  }
  EXPECT_EQ(group.pending(), done.size());
  group.wait();
  EXPECT_EQ(group.pending(), 0u);
  for (std::size_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i].load(), 1) << "task " << i;
  }
  // wait() on an empty group is a no-op.
  group.wait();
}

TEST(ExecTest, DeterministicMaxReductionAcrossThreadCounts) {
  // The cfd sweeps rely on max reductions over indexed partials being
  // thread-count invariant; model that contract directly.
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 2654435761u) % 10007);
  }
  const auto run_with = [&](int threads) {
    ThreadPool pool(ExecOptions{threads});
    std::vector<double> partials(values.size(), 0.0);
    pool.parallelFor(0, values.size(), 7,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         partials[i] = values[i];
                       }
                     });
    double max = 0.0;
    for (const double v : partials) max = v > max ? v : max;
    return max;
  };
  EXPECT_EQ(run_with(1), run_with(4));
}

TEST(ExecTest, SharedPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.threadCount(), 1);
}

// ---------------------------------------------------------------------------
// submit(): the future-returning task path the service layer uses.
// ---------------------------------------------------------------------------

TEST(ExecTest, SubmitReturnsFutureValue) {
  ThreadPool pool(ExecOptions{4});
  std::future<int> value = pool.submit([] { return 42; });
  EXPECT_EQ(value.get(), 42);
  std::atomic<bool> ran{false};
  std::future<void> side_effect = pool.submit([&] { ran.store(true); });
  side_effect.get();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(pool.tasksSubmitted(), 2u);
}

TEST(ExecTest, SubmitManyTasksAllRunExactlyOnce) {
  ThreadPool pool(ExecOptions{4});
  std::vector<std::atomic<int>> hits(128);
  for (auto& h : hits) h.store(0);
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    futures.push_back(pool.submit([&hits, i] { hits[i].fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.queueDepth(), 0u);
}

TEST(ExecTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(ExecOptions{4});
  std::future<int> doomed =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(doomed.get(), std::runtime_error);
  // The pool survives and keeps serving.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ExecTest, SubmitOnSingleThreadPoolRunsInline) {
  ThreadPool pool(ExecOptions{1});
  std::future<int> value = pool.submit([] { return 9; });
  // No workers: the task already ran on the submitting thread.
  EXPECT_EQ(value.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(value.get(), 9);
  EXPECT_EQ(pool.threadsCreated(), 0u);
  EXPECT_EQ(pool.queueDepth(), 0u);
}

TEST(ExecTest, SubmitFromInsidePoolTaskRunsInlineWithoutDeadlock) {
  ThreadPool pool(ExecOptions{2});  // one worker: queueing would deadlock
  std::future<int> outer = pool.submit([&pool] {
    std::future<int> inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ExecTest, QueueDepthStatsReportBacklog) {
  ThreadPool pool(ExecOptions{2});  // exactly one worker
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::future<void> blocker = pool.submit([open] { open.wait(); });
  // Wait until the worker has claimed the blocker, then pile up a backlog.
  while (pool.queueDepth() != 0) std::this_thread::yield();
  std::vector<std::future<void>> backlog;
  for (int i = 0; i < 3; ++i) backlog.push_back(pool.submit([] {}));
  EXPECT_EQ(pool.queueDepth(), 3u);
  EXPECT_GE(pool.peakQueueDepth(), 3u);
  gate.set_value();
  blocker.get();
  for (auto& f : backlog) f.get();
  EXPECT_EQ(pool.queueDepth(), 0u);
  EXPECT_EQ(pool.tasksSubmitted(), 4u);
}

TEST(ExecTest, ParallelForCompletesWhileWorkerBusyWithTask) {
  // A worker pinned by a long submitted task must not stall parallelFor:
  // the job is done when the range is exhausted by whoever joined it.
  ThreadPool pool(ExecOptions{3});
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::future<void> pinned = pool.submit([open] { open.wait(); });
  std::atomic<int> total{0};
  pool.parallelFor(0, 64, 1, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 64);  // completed with the worker still pinned
  gate.set_value();
  pinned.get();
}

TEST(ExecTest, TryRunOneTaskLetsTheCallerHelpDrainBacklog) {
  ThreadPool pool(ExecOptions{2});  // exactly one worker
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::future<void> blocker = pool.submit([open] { open.wait(); });
  while (pool.queueDepth() != 0) std::this_thread::yield();
  std::atomic<int> done{0};
  std::vector<std::future<void>> backlog;
  for (int i = 0; i < 3; ++i) {
    backlog.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  // The worker is pinned: the caller drains the whole backlog itself.
  while (pool.tryRunOneTask()) {
  }
  EXPECT_EQ(done.load(), 3);
  EXPECT_EQ(pool.queueDepth(), 0u);
  for (auto& f : backlog) f.get();
  EXPECT_FALSE(pool.tryRunOneTask());  // empty queue reports false
  gate.set_value();
  blocker.get();
}

TEST(ExecTest, DestructorDrainsQueuedTasks) {
  // Futures must never be abandoned: tasks still queued when the pool is
  // destroyed run on the destructing thread.
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(ExecOptions{2});
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    futures.push_back(pool.submit([open] {
      open.wait();
      return 1;
    }));
    for (int i = 0; i < 4; ++i) {
      futures.push_back(pool.submit([] { return 2; }));
    }
    gate.set_value();
  }  // pool destroyed here; queued tasks drained
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 1 + 4 * 2);
}

}  // namespace
}  // namespace nsc::exec
