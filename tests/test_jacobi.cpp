// End-to-end reproduction of the paper's example: the point Jacobi update
// for the 3-D Poisson equation with residual convergence check, built as
// pipeline diagrams, checked, compiled to microcode, and executed on the
// simulated NSC — compared against the exact host mirror.
#include <gtest/gtest.h>

#include "cfd/jacobi_program.h"
#include "cfd/poisson.h"
#include "checker/checker.h"
#include "microcode/generator.h"
#include "program/timing.h"
#include "sim/node.h"
#include "test_helpers.h"

namespace nsc {
namespace {

using cfd::JacobiBuildOptions;
using cfd::JacobiProgram;
using cfd::PoissonProblem;

struct HostRun {
  std::vector<double> u;
  double residual = 0.0;
  std::uint64_t sweeps = 0;
};

// Mirrors the NSC control program: sweeps in pairs, stopping after the
// sweep whose masked residual is <= tol (checked after each sweep, but the
// machine only exits after completing the restores of that half).
HostRun hostConvergenceRun(const PoissonProblem& problem, double tol,
                           double omega, std::uint64_t max_sweeps) {
  HostRun run;
  run.u = problem.u0;
  std::vector<double> next;
  while (run.sweeps < max_sweeps) {
    run.residual = cfd::linearJacobiSweep(problem, run.u, next, omega);
    run.u.swap(next);
    ++run.sweeps;
    const bool odd = run.sweeps % 2 == 1;
    if (odd && run.residual <= tol) break;        // exit after A->B sweep
    if (!odd && run.residual <= tol) break;       // exit after B->A sweep
  }
  return run;
}

HostRun hostFixedRun(const PoissonProblem& problem, int sweeps, double omega) {
  HostRun run;
  run.u = problem.u0;
  std::vector<double> next;
  for (int s = 0; s < sweeps; ++s) {
    run.residual = cfd::linearJacobiSweep(problem, run.u, next, omega);
    run.u.swap(next);
    ++run.sweeps;
  }
  return run;
}

TEST(JacobiProgramTest, PassesTheCheckerCleanly) {
  arch::Machine machine;
  JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  JacobiProgram jacobi(machine, options);
  check::Checker checker(machine);
  // Balance first (the builder leaves delay insertion to the generator).
  prog::Program balanced = jacobi.program();
  for (auto& d : balanced.pipelines) {
    EXPECT_GE(prog::balanceDelays(machine, d), 0) << d.name;
  }
  const check::DiagnosticList diags = checker.checkProgram(balanced);
  EXPECT_FALSE(diags.hasErrors()) << diags.format();
}

TEST(JacobiProgramTest, ConvergenceModeMatchesHostMirrorExactly) {
  arch::Machine machine;
  JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = true;
  options.tol = 2e-3;
  const PoissonProblem problem =
      PoissonProblem::manufactured(8, 8, 8);
  JacobiProgram jacobi(machine, options);

  sim::NodeSim node(machine);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine, jacobi.program(), node, &err))
      << err;
  jacobi.load(node, problem);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  ASSERT_TRUE(stats.halted);

  const std::uint64_t sweeps = JacobiProgram::sweepsDone(stats);
  ASSERT_GT(sweeps, 0u);
  const HostRun host = hostConvergenceRun(problem, options.tol, 1.0, 10000);
  EXPECT_EQ(sweeps, host.sweeps);
  EXPECT_EQ(jacobi.residual(node), host.residual);

  const std::vector<double> u = jacobi.extract(node, sweeps);
  EXPECT_EQ(cfd::errorLinf(u, host.u), 0.0) << "simulated NSC diverged from "
                                               "the bit-exact host mirror";
}

TEST(JacobiProgramTest, FixedSweepsMatchesHostMirrorExactly) {
  arch::Machine machine;
  JacobiBuildOptions options;
  options.grid = {6, 7, 9};  // non-cubic grid
  options.h = 0.2;
  options.convergence_mode = false;
  options.fixed_sweeps = 8;
  const PoissonProblem problem = PoissonProblem::manufactured(6, 7, 9);
  JacobiProgram jacobi(machine, options);

  sim::NodeSim node(machine);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine, jacobi.program(), node, &err))
      << err;
  jacobi.load(node, problem);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;

  EXPECT_EQ(JacobiProgram::sweepsDone(stats), 8u);
  const HostRun host = hostFixedRun(problem, 8, 1.0);
  const std::vector<double> u = jacobi.extract(node, 8);
  EXPECT_EQ(cfd::errorLinf(u, host.u), 0.0);
}

TEST(JacobiProgramTest, DampedSweepMatchesHost) {
  arch::Machine machine;
  JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 6;
  options.omega = 2.0 / 3.0;
  const PoissonProblem problem = PoissonProblem::manufactured(8, 8, 8);
  JacobiProgram jacobi(machine, options);

  sim::NodeSim node(machine);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine, jacobi.program(), node, &err))
      << err;
  jacobi.load(node, problem);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;

  const HostRun host = hostFixedRun(problem, 6, options.omega);
  const std::vector<double> u = jacobi.extract(node, 6);
  EXPECT_EQ(cfd::errorLinf(u, host.u), 0.0);
}

TEST(JacobiProgramTest, RestrictedSubsetModelMatchesHost) {
  const arch::Machine machine(arch::MachineConfig::restrictedSubset());
  JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;  // forced anyway: no plane budget
  options.fixed_sweeps = 8;
  options.restricted = true;
  const PoissonProblem problem = PoissonProblem::manufactured(8, 8, 8);
  JacobiProgram jacobi(machine, options);

  sim::NodeSim node(machine);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine, jacobi.program(), node, &err))
      << err;
  jacobi.load(node, problem);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;

  const HostRun host = hostFixedRun(problem, 8, 1.0);
  const std::vector<double> u = jacobi.extract(node, 8);
  EXPECT_EQ(cfd::errorLinf(u, host.u), 0.0);
}

TEST(JacobiProgramTest, ConvergedSolutionApproachesManufacturedTruth) {
  arch::Machine machine;
  JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.tol = 1e-9;
  const PoissonProblem problem = PoissonProblem::manufactured(8, 8, 8);
  JacobiProgram jacobi(machine, options);

  sim::NodeSim node(machine);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine, jacobi.program(), node, &err))
      << err;
  jacobi.load(node, problem);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;

  const std::vector<double> u =
      jacobi.extract(node, JacobiProgram::sweepsDone(stats));
  // Discretization error on an 8^3 grid is O(h^2) ~ 2e-2; Jacobi converged
  // to 1e-9 so the discrete solve dominates.
  EXPECT_LT(cfd::errorLinf(u, problem.exactSolution()), 5e-2);
  // The true residual of the converged iterate is small.
  EXPECT_LT(cfd::residualLinf(problem, u), 1e-6);
}

TEST(JacobiProgramTest, UtilizationAndFlopsAreReported) {
  arch::Machine machine;
  JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 4;
  const PoissonProblem problem = PoissonProblem::manufactured(8, 8, 8);
  JacobiProgram jacobi(machine, options);

  sim::NodeSim node(machine);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine, jacobi.program(), node, &err))
      << err;
  jacobi.load(node, problem);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_GT(stats.total_flops, 0u);
  EXPECT_GT(stats.mflops(machine.config().clock_mhz), 0.0);
  EXPECT_GT(stats.fuUtilization(), 0.0);
  EXPECT_LT(stats.fuUtilization(), 1.0);
}

}  // namespace
}  // namespace nsc
