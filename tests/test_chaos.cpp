// Durability & failure-recovery tests: the chaos harness.
//
// The contract under test (service/service.h, DurabilityOptions): with
// checkpointing and recovery on, *no injected fault changes what a caller
// observes*.  Dispatch exceptions are retried from last-good snapshots,
// forced evictions round-trip sessions through verified disk checkpoints
// (possibly migrating them across shards), torn checkpoint writes abort the
// spill instead of committing damage — and every reply stays bit-identical
// to a fault-free run, every promise is settled, and no shard thread ever
// dies.  The seed sweep at the bottom asserts exactly that; the CI chaos
// lane replays this suite under ASan with NSC_THREADS=4.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/fault_injection.h"
#include "nsc/nsc.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "service/session_table.h"

namespace nsc::svc {
namespace {

namespace fs = std::filesystem;

// A tiny scale-by-k pipeline: y = k * x over 8 words (the same fixture the
// service suite uses).
std::string tripleScript(double k) {
  std::ostringstream script;
  script << R"(
pipeline "triple"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b )" << k << R"(
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=8 var=x
dma plane1.write base=0 stride=1 count=8 var=y
seq halt
)";
  return script.str();
}

// The same script split in two at a line boundary — the stateful-session
// form (PR 5 split-session parity makes the split replay bit-identical).
std::pair<std::string, std::string> tripleScriptSplit(double k) {
  const std::string whole = tripleScript(k);
  const std::size_t cut = whole.find("connect fu4.out");
  return {whole.substr(0, cut), whole.substr(cut)};
}

std::vector<double> rampInput() {
  std::vector<double> x(8);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * static_cast<double>(i) + 0.25;
  }
  return x;
}

// A per-test checkpoint directory under the gtest temp root, wiped clean at
// acquisition so reruns never see stale checkpoints.
std::string freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("nsc_chaos_" + name);
  fs::remove_all(dir);
  return dir.string();
}

void expectRunStatsEq(const sim::RunStats& got, const sim::RunStats& want,
                      const std::string& where) {
  EXPECT_EQ(got.total_cycles, want.total_cycles) << where;
  EXPECT_EQ(got.total_flops, want.total_flops) << where;
  EXPECT_EQ(got.total_hazards, want.total_hazards) << where;
  EXPECT_EQ(got.instructions_executed, want.instructions_executed) << where;
  EXPECT_EQ(got.halted, want.halted) << where;
  EXPECT_EQ(got.error, want.error) << where;
  EXPECT_EQ(got.fu_launches, want.fu_launches) << where;
}

// Behavioural reply equality: everything a caller can act on must match.
// Scheduling artifacts (timings, shard placement, retry and restore counts,
// cache/pool observations) are exactly what chaos is allowed to perturb.
void expectReplyEq(const ServiceReply& got, const ServiceReply& want,
                   const std::string& where) {
  EXPECT_EQ(got.status.isOk(), want.status.isOk()) << where;
  EXPECT_EQ(got.status.message(), want.status.message()) << where;
  EXPECT_EQ(got.ok(), want.ok()) << where;
  EXPECT_EQ(got.stats.rejected, want.stats.rejected) << where;
  EXPECT_EQ(got.stats.session, want.stats.session) << where;
  EXPECT_EQ(got.session.commands, want.session.commands) << where;
  EXPECT_EQ(got.session.failures, want.session.failures) << where;
  EXPECT_EQ(got.session.log, want.session.log) << where;
  EXPECT_EQ(got.generation.ok, want.generation.ok) << where;
  expectRunStatsEq(got.run, want.run, where);
  ASSERT_EQ(got.ensemble.size(), want.ensemble.size()) << where;
  for (std::size_t i = 0; i < got.ensemble.size(); ++i) {
    expectRunStatsEq(got.ensemble[i], want.ensemble[i],
                     where + " replica " + std::to_string(i));
  }
  EXPECT_EQ(got.outputs, want.outputs) << where;
}

// ---------------------------------------------------------------------------
// WorkbenchCore checkpoint round trip
// ---------------------------------------------------------------------------

TEST(CheckpointStateTest, SerializeRestoreIsBitIdentical) {
  WorkbenchContext context;
  WorkbenchCore original(context);

  const auto [part1, part2] = tripleScriptSplit(3.0);
  original.runSession(part1);
  original.runSession(part2);
  original.node().writePlane(0, 0, rampInput());
  ASSERT_TRUE(original.generateAndRun().ok());

  const common::Json state = original.serializeState();
  WorkbenchCore restored(context);
  const common::Status status = restored.restoreState(state);
  ASSERT_TRUE(status.isOk()) << status.message();

  // Same serialized state (round-trip idempotence, counters included) ...
  EXPECT_EQ(restored.serializeState().dump(), state.dump());
  EXPECT_EQ(restored.checkpoint().resets, original.checkpoint().resets);
  EXPECT_EQ(restored.checkpoint().scripts_run,
            original.checkpoint().scripts_run);
  // ... same memory images ...
  EXPECT_EQ(restored.node().readPlane(1, 0, 8),
            original.node().readPlane(1, 0, 8));
  // ... and the same future: the restored core and a control core that
  // never moved must serve the next request identically (warm replayed
  // editor + node memory, not just equal dumps).
  WorkbenchCore control(context);
  control.runSession(part1);
  control.runSession(part2);
  control.node().writePlane(0, 0, rampInput());
  ASSERT_TRUE(control.generateAndRun().ok());
  ASSERT_TRUE(restored.generateAndRun().ok());
  ASSERT_TRUE(control.generateAndRun().ok());
  EXPECT_EQ(restored.node().readPlane(1, 0, 8),
            control.node().readPlane(1, 0, 8));
  EXPECT_EQ(restored.serializeState().dump(), control.serializeState().dump());
}

TEST(CheckpointStateTest, RestoreRejectsBadPayloadsAndStaysUsable) {
  WorkbenchContext context;
  WorkbenchCore core(context);
  core.runSession(tripleScript(2.0));

  common::Json wrong_format = core.serializeState();
  wrong_format["format"] = common::Json("not-a-checkpoint");
  EXPECT_FALSE(core.restoreState(wrong_format).isOk());

  // Envelope validation happens before any mutation, so the failed restore
  // above left the script state intact for this serialize.
  common::Json wrong_version = core.serializeState();
  wrong_version["version"] = common::Json(99);
  const common::Status version_status = core.restoreState(wrong_version);
  ASSERT_FALSE(version_status.isOk());
  EXPECT_NE(version_status.message().find("version"), std::string::npos);

  common::Json bad_words = core.serializeState();
  bad_words["node"]["planes"].asArray().clear();
  common::JsonObject entry;
  entry["plane"] = common::Json(0);
  entry["words"] = common::Json("zz");  // not hex, not 16-char aligned
  bad_words["node"]["planes"].asArray().emplace_back(std::move(entry));
  EXPECT_FALSE(core.restoreState(bad_words).isOk());

  // After every rejection the core still serves like a fresh one.
  const ed::SessionResult replay = core.runSession(tripleScript(2.0));
  EXPECT_EQ(replay.failures, 0);
  core.node().writePlane(0, 0, rampInput());
  EXPECT_TRUE(core.generateAndRun().ok());
}

// ---------------------------------------------------------------------------
// CheckpointStore: framing, verification, typed errors
// ---------------------------------------------------------------------------

class CheckpointStoreTest : public ::testing::Test {
 protected:
  std::string dir_ = freshDir("store");
  exec::FaultInjector inert_;
  CheckpointStore store_{dir_, &inert_};
  WorkbenchContext context_;

  common::Json sampleState() {
    WorkbenchCore core(context_);
    core.runSession(tripleScript(4.0));
    return core.serializeState();
  }

  void writeRaw(std::uint64_t id, const std::string& bytes) {
    fs::create_directories(dir_);
    std::ofstream out(store_.pathFor(id), std::ios::binary | std::ios::trunc);
    out << bytes;
  }
};

TEST_F(CheckpointStoreTest, WriteReadRoundTrip) {
  const common::Json state = sampleState();
  ASSERT_TRUE(store_.write(7, state).isOk());
  EXPECT_TRUE(store_.exists(7));
  const CheckpointStore::ReadResult result = store_.read(7);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.payload.dump(), state.dump());
  EXPECT_EQ(store_.listSessions(), std::vector<std::uint64_t>{7});
  store_.remove(7);
  EXPECT_FALSE(store_.exists(7));
  EXPECT_TRUE(store_.listSessions().empty());
}

TEST_F(CheckpointStoreTest, TypedErrorsForEveryKindOfDamage) {
  const std::string framed = CheckpointStore::frame(sampleState().dump());

  EXPECT_EQ(store_.read(1).error, CheckpointError::kIo);  // missing file

  writeRaw(2, "");
  EXPECT_EQ(store_.read(2).error, CheckpointError::kTruncated);  // empty

  writeRaw(3, "some other file format entirely\n{}");
  EXPECT_EQ(store_.read(3).error, CheckpointError::kBadMagic);

  // Torn mid-payload: header intact, payload short of the declared size.
  writeRaw(4, framed.substr(0, framed.size() - 10));
  EXPECT_EQ(store_.read(4).error, CheckpointError::kTruncated);

  // Bit rot: one payload byte flipped under an intact header + checksum.
  std::string rotted = framed;
  rotted[rotted.size() - 3] =
      static_cast<char>(rotted[rotted.size() - 3] ^ 0x20);
  writeRaw(5, rotted);
  EXPECT_EQ(store_.read(5).error, CheckpointError::kChecksum);

  // Frame verifies but the payload is not JSON.
  writeRaw(6, CheckpointStore::frame("{not json"));
  EXPECT_EQ(store_.read(6).error, CheckpointError::kParse);

  // Valid JSON from a future payload version.
  writeRaw(7, CheckpointStore::frame(
                  R"({"format":"nsc-session-checkpoint","version":99})"));
  EXPECT_EQ(store_.read(7).error, CheckpointError::kBadVersion);

  // A future *frame* version is simply not our magic.
  writeRaw(8, "NSCKPT2 0123456789abcdef 2\n{}");
  EXPECT_EQ(store_.read(8).error, CheckpointError::kBadMagic);
}

TEST_F(CheckpointStoreTest, InjectedTornWriteIsCaughtAndLeavesNoFile) {
  exec::FaultInjector torn;
  exec::FaultPlan plan;
  plan.seed = 11;
  plan.torn_write = 1.0;
  torn.configure(plan);
  CheckpointStore store(dir_, &torn);
  EXPECT_FALSE(store.write(9, sampleState()).isOk());
  EXPECT_FALSE(store.exists(9));
  EXPECT_GE(torn.counters().writes_torn, 1u);
  // No temp debris either: the failed spill leaves the directory empty.
  std::size_t files = 0;
  for (const auto& file : fs::directory_iterator(dir_)) {
    (void)file;
    ++files;
  }
  EXPECT_EQ(files, 0u);
}

// ---------------------------------------------------------------------------
// SessionTable: spill, migration, restart inventory
// ---------------------------------------------------------------------------

TEST(SessionTableDurabilityTest, SpillRestoreMigratesAcrossShards) {
  const std::string dir = freshDir("migrate");
  exec::FaultInjector inert;
  CheckpointStore store(dir, &inert);
  WorkbenchContext context;
  SessionTable table(context, 2, &store, /*keep_last_good=*/true);

  const auto a = table.open(16, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->shard, 0);
  WorkbenchCore* core = table.claim(a->id, a->shard, 0);
  ASSERT_NE(core, nullptr);
  core->runSession(tripleScript(5.0));
  core->node().writePlane(0, 0, rampInput());
  const std::string before = core->serializeState().dump();

  const SessionTable::SweepResult swept = table.forceSpill(0);
  EXPECT_EQ(swept.spilled, 1u);
  EXPECT_EQ(swept.write_failures, 0u);
  EXPECT_EQ(table.spilledCount(), 1u);
  EXPECT_EQ(table.residentCount(), 0u);
  EXPECT_TRUE(store.exists(a->id));

  // Load shard 0 so the spilled session's next route picks shard 1 —
  // migration away from its original home.
  ASSERT_EQ(table.open(16, 0)->shard, 0);
  ASSERT_EQ(table.open(16, 0)->shard, 1);
  ASSERT_EQ(table.open(16, 0)->shard, 0);
  const int routed = table.shardOf(a->id);
  EXPECT_EQ(routed, 1);

  SessionTable::ClaimInfo info;
  WorkbenchCore* restored = table.claim(a->id, routed, 1, &info);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(info.restored);
  EXPECT_EQ(restored->serializeState().dump(), before);
  EXPECT_EQ(restored->node().readPlane(0, 0, 8), rampInput());
}

TEST(SessionTableDurabilityTest, StaleShardPinAdoptsSpilledSession) {
  // A command routed while the session was live arrives pinned to the old
  // shard after a spill cleared the affinity; the claim must adopt and
  // restore, not fail — this races in production whenever a sweep lands
  // between routing and dispatch.
  const std::string dir = freshDir("stale_pin");
  exec::FaultInjector inert;
  CheckpointStore store(dir, &inert);
  WorkbenchContext context;
  SessionTable table(context, 2, &store, true);
  const auto a = table.open(16, 0);
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(table.forceSpill(a->shard).spilled, 1u);
  SessionTable::ClaimInfo info;
  WorkbenchCore* restored = table.claim(a->id, a->shard, 0, &info);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(info.restored);
  EXPECT_EQ(table.shardOf(a->id), a->shard);
}

TEST(SessionTableDurabilityTest, RestartAdoptsCheckpointsAndContinuesIds) {
  const std::string dir = freshDir("restart");
  exec::FaultInjector inert;
  WorkbenchContext context;
  std::uint64_t id1 = 0;
  std::uint64_t id2 = 0;
  std::string state1;
  {
    CheckpointStore store(dir, &inert);
    SessionTable table(context, 2, &store, true);
    id1 = table.open(16, 0)->id;
    id2 = table.open(16, 0)->id;
    WorkbenchCore* core = table.claim(id1, table.shardOf(id1), 0);
    ASSERT_NE(core, nullptr);
    core->runSession(tripleScript(6.0));
    state1 = core->serializeState().dump();
    const SessionTable::SweepResult flushed = table.flushAll();
    EXPECT_EQ(flushed.spilled, 2u);
  }
  CheckpointStore store(dir, &inert);
  SessionTable adopted(context, 2, &store, true);
  EXPECT_EQ(adopted.size(), 2u);
  EXPECT_EQ(adopted.residentCount(), 0u);
  // Ids never restart over adopted inventory.
  EXPECT_EQ(adopted.open(16, 0)->id, id2 + 1);
  const int shard = adopted.shardOf(id1);
  ASSERT_GE(shard, 0);
  WorkbenchCore* core = adopted.claim(id1, shard, 0);
  ASSERT_NE(core, nullptr);
  EXPECT_EQ(core->serializeState().dump(), state1);
}

// ---------------------------------------------------------------------------
// Service-level durability
// ---------------------------------------------------------------------------

ServiceOptions durableOptions(const std::string& dir,
                              exec::FaultInjector* injector, int shards = 1) {
  ServiceOptions options;
  options.shards = shards;
  options.durability.checkpoint_dir = dir;
  options.durability.recover = true;
  options.injector = injector;
  return options;
}

TEST(ServiceDurabilityTest, SessionSurvivesServiceRestartBitIdentically) {
  const std::string dir = freshDir("service_restart");
  exec::FaultInjector inert;
  const auto [part1, part2] = tripleScriptSplit(3.0);
  SessionCommand finish;
  finish.script = part2;
  finish.run = true;
  finish.inputs = {PlaneImage{0, 0, rampInput()}};
  finish.outputs = {PlaneRange{1, 0, 8}};

  // Control: one service serves the whole session, no restart.
  ServiceReply control;
  {
    WorkbenchService service(
        durableOptions(freshDir("service_restart_ctl"), &inert));
    const ServiceReply opened =
        service.submit(Request{OpenSession{part1}}).get();
    ASSERT_TRUE(opened.ok());
    finish.session = opened.stats.session;
    control = service.submit(Request{finish}).get();
    ASSERT_TRUE(control.ok());
  }

  // Durable: open + first half, stop (graceful flush), then a new service
  // on the same directory finishes the script.  The finishing reply must
  // match the control bit for bit.
  {
    WorkbenchService service(durableOptions(dir, &inert));
    const ServiceReply opened =
        service.submit(Request{OpenSession{part1}}).get();
    ASSERT_TRUE(opened.ok());
    finish.session = opened.stats.session;
  }  // ~WorkbenchService -> stop() -> flushAll
  WorkbenchService revived(durableOptions(dir, &inert));
  EXPECT_EQ(revived.sessionCount(), 1u);
  const ServiceReply reply = revived.submit(Request{finish}).get();
  EXPECT_TRUE(reply.stats.restored_from_disk);
  expectReplyEq(reply, control, "restart");
  EXPECT_GE(revived.shardStats(reply.stats.shard).sessions_restored, 1u);
}

TEST(ServiceDurabilityTest, CorruptCheckpointYieldsTypedRejectAndServiceLives) {
  const std::string dir = freshDir("service_corrupt");
  exec::FaultInjector inert;
  std::uint64_t session_id = 0;
  {
    WorkbenchService service(durableOptions(dir, &inert));
    const ServiceReply opened =
        service.submit(Request{OpenSession{tripleScript(2.0)}}).get();
    ASSERT_TRUE(opened.ok());
    session_id = opened.stats.session;
  }
  // Damage the flushed checkpoint on disk (checksum cannot match).
  CheckpointStore store(dir, &inert);
  {
    std::ofstream out(store.pathFor(session_id),
                      std::ios::binary | std::ios::trunc);
    out << "NSCKPT1 0000000000000000 4\ngarb";
  }
  WorkbenchService revived(durableOptions(dir, &inert));
  SessionCommand command;
  command.session = session_id;
  command.script = "status";
  const ServiceReply reply = revived.submit(Request{command}).get();
  EXPECT_EQ(reply.stats.rejected, Reject::kUnknownSession);
  EXPECT_NE(reply.status.message().find("checkpoint unusable"),
            std::string::npos);
  EXPECT_GE(revived.shardStats(reply.stats.shard).restore_failures, 1u);
  // The session and its dead checkpoint are gone — honestly unknown now,
  // not endlessly re-failing — and the service still serves fresh work.
  EXPECT_FALSE(store.exists(session_id));
  const ServiceReply again = revived.submit(Request{command}).get();
  EXPECT_EQ(again.stats.rejected, Reject::kUnknownSession);
  EXPECT_TRUE(
      revived.submit(Request{OpenSession{tripleScript(2.0)}}).get().ok());
}

TEST(ServiceDurabilityTest, DispatchFaultsRecoverBitIdentically) {
  exec::FaultInjector inert;
  const auto [part1, part2] = tripleScriptSplit(3.0);
  const auto runArm = [&](exec::FaultInjector* injector,
                          const std::string& dir) {
    WorkbenchService service(durableOptions(dir, injector));
    std::vector<ServiceReply> replies;
    replies.push_back(service.submit(Request{OpenSession{part1}}).get());
    SessionCommand finish;
    finish.session = replies.back().stats.session;
    finish.script = part2;
    finish.run = true;
    finish.inputs = {PlaneImage{0, 0, rampInput()}};
    finish.outputs = {PlaneRange{1, 0, 8}};
    const std::uint64_t id = finish.session;
    replies.push_back(service.submit(Request{finish}).get());
    replies.push_back(
        service.submit(Request{GenerateAndRun{tripleScript(7.0),
                                              {PlaneImage{0, 0, rampInput()}},
                                              {PlaneRange{1, 0, 8}}}})
            .get());
    replies.push_back(service.submit(Request{CloseSession{id}}).get());
    return replies;
  };

  const std::vector<ServiceReply> baseline =
      runArm(&inert, freshDir("recover_base"));

  exec::FaultInjector chaotic;
  exec::FaultPlan plan;
  plan.seed = 3;
  plan.dispatch_throw = 1.0;  // every first attempt faults
  chaotic.configure(plan);
  const std::vector<ServiceReply> faulted =
      runArm(&chaotic, freshDir("recover_chaos"));

  ASSERT_EQ(faulted.size(), baseline.size());
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    const std::string where = "request " + std::to_string(i);
    expectReplyEq(faulted[i], baseline[i], where);
    EXPECT_TRUE(faulted[i].ok()) << where;
    EXPECT_EQ(faulted[i].stats.retries, 1) << where;
  }
  EXPECT_GE(chaotic.counters().throws_injected, faulted.size());
}

TEST(ServiceDurabilityTest, WithoutRecoveryFaultIsStructuredInternalReject) {
  exec::FaultInjector chaotic;
  exec::FaultPlan plan;
  plan.seed = 5;
  plan.dispatch_throw = 1.0;
  chaotic.configure(plan);
  ServiceOptions options;
  options.shards = 1;
  options.injector = &chaotic;  // durability stays off
  WorkbenchService service(options);
  const ServiceReply reply =
      service.submit(Request{SubmitSession{tripleScript(2.0)}}).get();
  EXPECT_EQ(reply.stats.rejected, Reject::kInternal);
  EXPECT_FALSE(reply.status.isOk());
  EXPECT_NE(reply.status.message().find("internal error"), std::string::npos);
  const ShardStats stats = service.shardStats(0);
  EXPECT_GE(stats.dispatch_faults, 1u);
  EXPECT_GE(stats.internal_rejects, 1u);
  // The shard thread survived: the next request still settles its promise.
  const ServiceReply next =
      service.submit(Request{SubmitSession{tripleScript(2.0)}}).get();
  EXPECT_EQ(next.stats.rejected, Reject::kInternal);
}

TEST(ServiceDurabilityTest, RepeatedlyFaultingSessionIsQuarantined) {
  exec::FaultInjector chaotic;
  exec::FaultPlan plan;
  plan.seed = 9;
  plan.session_throw = 1.0;  // every session command faults mid-request
  chaotic.configure(plan);
  ServiceOptions options = durableOptions(freshDir("quarantine"), &chaotic);
  options.durability.quarantine_after = 1;  // the first fault is the last
  WorkbenchService service(options);
  // kSession only fires inside a SessionCommand, so the open succeeds.
  const ServiceReply opened = service.submit(Request{OpenSession{""}}).get();
  ASSERT_TRUE(opened.ok());
  SessionCommand command;
  command.session = opened.stats.session;
  command.script = tripleScript(2.0);
  const ServiceReply reply = service.submit(Request{command}).get();
  EXPECT_EQ(reply.stats.rejected, Reject::kInternal);
  EXPECT_EQ(service.shardStats(reply.stats.shard).sessions_quarantined, 1u);
  // The quarantined session is gone — honestly unknown from here on.
  const ServiceReply after = service.submit(Request{command}).get();
  EXPECT_EQ(after.stats.rejected, Reject::kUnknownSession);
}

// ---------------------------------------------------------------------------
// Settle-all-promises audit
// ---------------------------------------------------------------------------

TEST(ServiceShutdownTest, AbruptStopSettlesEveryAdmittedPromise) {
  ServiceOptions options;
  options.shards = 2;
  options.queue_capacity = 32;
  options.start = false;  // admit, never serve
  WorkbenchService service(options);

  // Stateless, session-opening (reserves a core + pins affinity — the jobs
  // pop(-1) would leave stranded), and batch work: every admission path
  // that could strand a promise.
  std::vector<std::future<ServiceReply>> futures;
  futures.push_back(service.submit(Request{SubmitSession{tripleScript(2.0)}}));
  futures.push_back(service.submit(Request{OpenSession{tripleScript(3.0)}}));
  futures.push_back(service.submit(Request{OpenSession{""}}));
  futures.push_back(service.submit(Request{RunEnsemble{tripleScript(4.0), 2}}));
  EXPECT_EQ(service.queueDepth(), futures.size());

  service.stop();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "future " << i << " left unsettled by stop()";
    const ServiceReply reply = futures[i].get();
    EXPECT_FALSE(reply.status.isOk()) << i;
    EXPECT_NE(reply.status.message().find("stopped"), std::string::npos) << i;
  }
  // The cores the OpenSession admissions reserved were dropped with their
  // jobs — the ids were never handed out.
  EXPECT_EQ(service.sessionCount(), 0u);
  // Post-stop submission resolves immediately with an error, never hangs.
  EXPECT_FALSE(service.submit(Request{SubmitSession{"x"}}).get().ok());
}

// ---------------------------------------------------------------------------
// NSC_FAULTS plan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesFullSpec) {
  std::string error;
  const exec::FaultPlan plan = exec::parseFaultPlan(
      "seed=7,dispatch=0.2,session=0.1,evict=0.3,torn=0.5,corrupt=0.25,"
      "delay=0.1,delay_us=200",
      &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.dispatch_throw, 0.2);
  EXPECT_DOUBLE_EQ(plan.session_throw, 0.1);
  EXPECT_DOUBLE_EQ(plan.force_evict, 0.3);
  EXPECT_DOUBLE_EQ(plan.torn_write, 0.5);
  EXPECT_DOUBLE_EQ(plan.corrupt_write, 0.25);
  EXPECT_DOUBLE_EQ(plan.delay, 0.1);
  EXPECT_EQ(plan.delay_us, 200);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanTest, MalformedSpecsDisableThePlan) {
  for (const char* spec : {"dispatch=1.5", "dispatch=x", "unknown=0.5",
                           "seed=-1", "seed", "delay_us=9999999"}) {
    std::string error;
    const exec::FaultPlan plan = exec::parseFaultPlan(spec, &error);
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_FALSE(plan.enabled()) << spec;
  }
}

// ---------------------------------------------------------------------------
// The chaos sweep
// ---------------------------------------------------------------------------

// One serving scenario: three split-script sessions with runs, interleaved
// stateless runs and a batch ensemble, then an explicit close and a
// post-migration read-back; the remaining sessions are left open for the
// shutdown flush.  Returns every reply in submission order.
std::vector<ServiceReply> runScenario(const std::string& dir,
                                      exec::FaultInjector* injector) {
  WorkbenchService service(durableOptions(dir, injector, /*shards=*/3));
  const std::vector<double> ks = {2.0, 3.0, 5.0};
  std::vector<ServiceReply> replies;
  std::vector<std::uint64_t> ids;
  // Opens first: their replies carry the ids the commands need.
  for (const double k : ks) {
    const ServiceReply opened =
        service.submit(Request{OpenSession{tripleScriptSplit(k).first}}).get();
    ids.push_back(opened.stats.session);
    replies.push_back(opened);
  }
  // Then a concurrent wave: each session's finishing command plus stateless
  // traffic, all in flight at once across the shards.
  std::vector<std::future<ServiceReply>> wave;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    SessionCommand finish;
    finish.session = ids[i];
    finish.script = tripleScriptSplit(ks[i]).second;
    finish.run = true;
    finish.inputs = {PlaneImage{0, 0, rampInput()}};
    finish.outputs = {PlaneRange{1, 0, 8}};
    wave.push_back(service.submit(Request{finish}));
    wave.push_back(
        service.submit(Request{GenerateAndRun{tripleScript(ks[i] + 0.5),
                                              {PlaneImage{0, 0, rampInput()}},
                                              {PlaneRange{1, 0, 8}}}}));
  }
  wave.push_back(service.submit(Request{RunEnsemble{tripleScript(4.0), 4}}));
  for (std::future<ServiceReply>& pending : wave) {
    replies.push_back(pending.get());
  }
  // After the wave settles: close one session, then read back another that
  // may have been force-evicted and migrated in the meantime.
  replies.push_back(service.submit(Request{CloseSession{ids[0]}}).get());
  SessionCommand readback;
  readback.session = ids[1];
  readback.outputs = {PlaneRange{1, 0, 8}};
  replies.push_back(service.submit(Request{readback}).get());
  service.stop();
  return replies;
}

TEST(ChaosSweepTest, SeededFaultsNeverChangeReplies) {
  exec::FaultInjector inert;
  const std::vector<ServiceReply> baseline =
      runScenario(freshDir("sweep_baseline"), &inert);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_NE(baseline[i].stats.rejected, Reject::kInternal) << i;
  }

  exec::FaultInjector::Counters total;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    exec::FaultInjector chaotic;
    exec::FaultPlan plan;
    plan.seed = seed;
    plan.dispatch_throw = 0.15;
    plan.session_throw = 0.15;
    plan.force_evict = 0.30;
    plan.torn_write = 0.30;
    plan.corrupt_write = 0.20;
    plan.delay = 0.20;
    plan.delay_us = 200;
    chaotic.configure(plan);

    const std::vector<ServiceReply> replies =
        runScenario(freshDir("sweep_" + std::to_string(seed)), &chaotic);
    ASSERT_EQ(replies.size(), baseline.size()) << "seed " << seed;
    for (std::size_t i = 0; i < replies.size(); ++i) {
      expectReplyEq(replies[i], baseline[i],
                    "seed " + std::to_string(seed) + " request " +
                        std::to_string(i));
    }
    const exec::FaultInjector::Counters counters = chaotic.counters();
    total.throws_injected += counters.throws_injected;
    total.delays_injected += counters.delays_injected;
    total.evictions_forced += counters.evictions_forced;
    total.writes_torn += counters.writes_torn;
    total.writes_corrupted += counters.writes_corrupted;
  }
  // The sweep must have actually exercised the machinery — a vacuous pass
  // with an inert injector proves nothing.
  EXPECT_GT(total.throws_injected, 0u);
  EXPECT_GT(total.evictions_forced, 0u);
  EXPECT_GT(total.delays_injected, 0u);
}

}  // namespace
}  // namespace nsc::svc
