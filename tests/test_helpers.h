// Shared helpers for assembling small NSC programs in tests.
#pragma once

#include <string>
#include <vector>

#include "arch/machine.h"
#include "microcode/generator.h"
#include "program/program.h"
#include "sim/node.h"

namespace nsc::test {

// Generates microcode for `program`, asserting success, and loads it into a
// fresh NodeSim.  Aborts the test (via ADD_FAILURE) on generator errors.
inline bool generateAndLoad(const arch::Machine& machine,
                            const prog::Program& program, sim::NodeSim& node,
                            std::string* error = nullptr) {
  mc::Generator generator(machine);
  mc::GenerateResult result = generator.generate(program);
  if (!result.ok) {
    if (error != nullptr) *error = result.diagnostics.format();
    return false;
  }
  node.load(result.exe);
  return true;
}

inline std::vector<double> iota(std::size_t n, double start = 0.0,
                                double step = 1.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = start + step * static_cast<double>(i);
  return out;
}

}  // namespace nsc::test
