// Service-layer tests: the sharded workbench service over the shared pool
// and compiled-program cache.
//
// The load-bearing property is the determinism contract: a set of session
// scripts submitted *concurrently* to an N-shard service yields per-request
// results bit-identical to running each request on a fresh single-user
// Workbench, for any shard count, queue capacity, producer interleaving,
// and NSC_THREADS (the CI TSan job replays this suite with NSC_THREADS=4).
#include <gtest/gtest.h>

#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nsc/nsc.h"
#include "service/service.h"
#include "sim/verify.h"

namespace nsc::svc {
namespace {

// A tiny scale-by-k pipeline: y = k * x over 8 words.
std::string tripleScript(double k) {
  std::ostringstream script;
  script << R"(
pipeline "triple"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b )" << k << R"(
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=8 var=x
dma plane1.write base=0 stride=1 count=8 var=y
seq halt
)";
  return script.str();
}

// A script the editor partially refuses (still replayable, failures > 0).
const char* kRefusedScript = R"(
pipeline "bad"
place doublet at 300,200
setop fu4 max
connect plane0.read fu4.a
connect plane1.read fu4.a
)";

// Host-side problem data for the Figure-11 sweep: u copies, f, and mask.
std::vector<PlaneImage> figure11Inputs() {
  std::vector<PlaneImage> inputs;
  std::vector<double> u(640);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = 0.25 * static_cast<double>((i * 37) % 11);
  }
  for (arch::PlaneId plane = 0; plane < 4; ++plane) {
    inputs.push_back(PlaneImage{plane, 0, u});
  }
  std::vector<double> f(640);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = 0.125 * static_cast<double>((i * 13) % 7);
  }
  inputs.push_back(PlaneImage{8, 0, f});
  inputs.push_back(PlaneImage{10, 0, std::vector<double>(640, 1.0)});
  return inputs;
}

std::vector<PlaneRange> figure11Outputs() {
  return {PlaneRange{4, 161, 366}, PlaneRange{9, 0, 1}};
}

void expectRunStatsEq(const sim::RunStats& got, const sim::RunStats& want,
                      const std::string& where) {
  EXPECT_EQ(got.total_cycles, want.total_cycles) << where;
  EXPECT_EQ(got.total_flops, want.total_flops) << where;
  EXPECT_EQ(got.total_hazards, want.total_hazards) << where;
  EXPECT_EQ(got.instructions_executed, want.instructions_executed) << where;
  EXPECT_EQ(got.halted, want.halted) << where;
  EXPECT_EQ(got.error, want.error) << where;
  EXPECT_EQ(got.fu_launches, want.fu_launches) << where;
  ASSERT_EQ(got.trace.size(), want.trace.size()) << where;
  for (std::size_t i = 0; i < got.trace.size(); ++i) {
    EXPECT_EQ(got.trace[i].cycles, want.trace[i].cycles) << where << " #" << i;
    EXPECT_EQ(got.trace[i].flops, want.trace[i].flops) << where << " #" << i;
    EXPECT_EQ(got.trace[i].name, want.trace[i].name) << where << " #" << i;
  }
}

void expectSessionEq(const ed::SessionResult& got,
                     const ed::SessionResult& want, const std::string& where) {
  EXPECT_EQ(got.commands, want.commands) << where;
  EXPECT_EQ(got.failures, want.failures) << where;
  EXPECT_EQ(got.log, want.log) << where;
  EXPECT_EQ(got.status.isOk(), want.status.isOk()) << where;
  EXPECT_EQ(got.status.message(), want.status.message()) << where;
}

// The sequential single-user reference for one GenerateAndRun request.
struct Reference {
  ed::SessionResult session;
  bool generated = false;
  sim::RunStats run;
  std::vector<std::vector<double>> outputs;
};

Reference referenceFor(const GenerateAndRun& request) {
  Reference ref;
  Workbench wb;
  ref.session = wb.runSession(request.script);
  for (const PlaneImage& input : request.inputs) {
    wb.node().writePlane(input.plane, input.base, input.values);
  }
  const RunOutcome outcome = wb.generateAndRun();
  ref.generated = outcome.generation.ok;
  ref.run = outcome.run;
  for (const PlaneRange& range : request.outputs) {
    ref.outputs.push_back(
        wb.node().readPlane(range.plane, range.base, range.count));
  }
  return ref;
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

PushResult pushValue(BoundedQueue<int>& queue, int value, Ticket ticket = {}) {
  return queue.push(value, ticket);
}

TEST(BoundedQueueTest, FifoOrderAndPeakDepth) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pushValue(queue, i), PushResult::kAdmitted);
  }
  EXPECT_EQ(queue.depth(), 5u);
  EXPECT_EQ(queue.peakDepth(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.peakDepth(), 5u);
}

TEST(BoundedQueueTest, CloseDeliversAdmittedItemsThenNullopt) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(pushValue(queue, 1), PushResult::kAdmitted);
  EXPECT_EQ(pushValue(queue, 2), PushResult::kAdmitted);
  queue.close();
  EXPECT_EQ(pushValue(queue, 3), PushResult::kClosed);  // refused after close
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // stays drained
}

TEST(BoundedQueueTest, FullQueueBlocksProducerUntilPop) {
  BoundedQueue<int> queue(1);
  EXPECT_EQ(pushValue(queue, 0), PushResult::kAdmitted);
  std::thread producer([&] {
    EXPECT_EQ(pushValue(queue, 1), PushResult::kAdmitted);  // blocks for pop
    EXPECT_EQ(pushValue(queue, 2), PushResult::kAdmitted);
  });
  for (int expected = 0; expected <= 2; ++expected) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, expected);
  }
  producer.join();
  EXPECT_EQ(queue.peakDepth(), 1u);  // the bound held throughout
}

TEST(BoundedQueueTest, InteractiveClassServedBeforeBatch) {
  AdmissionPolicy policy;
  policy.aging_us = 0;  // pure class ordering, no clock dependence
  BoundedQueue<int> queue(8, policy);
  Ticket batch;
  batch.priority = Priority::kBatch;
  Ticket interactive;
  interactive.priority = Priority::kInteractive;
  EXPECT_EQ(pushValue(queue, 1, batch), PushResult::kAdmitted);
  EXPECT_EQ(pushValue(queue, 2, batch), PushResult::kAdmitted);
  EXPECT_EQ(pushValue(queue, 3, interactive), PushResult::kAdmitted);
  EXPECT_EQ(pushValue(queue, 4, interactive), PushResult::kAdmitted);
  // Interactive items jump the earlier batch items; FIFO within a class.
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::optional<int>(4));
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
}

TEST(BoundedQueueTest, AgingPromotesBatchPastFreshInteractive) {
  AdmissionPolicy policy;
  policy.aging_us = 1'000;  // one class per millisecond waited
  BoundedQueue<int> queue(8, policy);
  Ticket batch;
  batch.priority = Priority::kBatch;
  EXPECT_EQ(pushValue(queue, 1, batch), PushResult::kAdmitted);
  // After > 1ms the batch item has aged at least one full class below a
  // fresh interactive item, so it can no longer be starved by one.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_EQ(pushValue(queue, 2, Ticket{}), PushResult::kAdmitted);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
}

TEST(BoundedQueueTest, AffinityPinsItemsToTheirConsumer) {
  AdmissionPolicy policy;
  policy.aging_us = 0;
  BoundedQueue<int> queue(8, policy);
  Ticket pinned;
  pinned.affinity = 1;
  EXPECT_EQ(pushValue(queue, 10, pinned), PushResult::kAdmitted);
  EXPECT_EQ(pushValue(queue, 20, Ticket{}), PushResult::kAdmitted);
  // Consumer 0 skips the pinned item even though it is first in line.
  EXPECT_EQ(queue.pop(0), std::optional<int>(20));
  EXPECT_EQ(queue.depth(), 1u);
  // Consumer 1 gets it.
  EXPECT_EQ(queue.pop(1), std::optional<int>(10));
}

TEST(BoundedQueueTest, ShedModeRefusesBatchAtWatermarkKeepsInteractive) {
  AdmissionPolicy policy;
  policy.overload = AdmissionPolicy::Overload::kShed;
  policy.shed_watermark = 2;
  BoundedQueue<int> queue(4, policy);
  Ticket batch;
  batch.priority = Priority::kBatch;
  EXPECT_EQ(pushValue(queue, 1, batch), PushResult::kAdmitted);
  EXPECT_EQ(pushValue(queue, 2, batch), PushResult::kAdmitted);
  // Depth reached the watermark: batch is shed without blocking, and the
  // refused value is NOT consumed (the service replies Rejected with it).
  int shed_item = 3;
  EXPECT_EQ(queue.push(shed_item, batch), PushResult::kShed);
  EXPECT_EQ(shed_item, 3);
  EXPECT_EQ(queue.depth(), 2u);
  // Interactive work keeps the blocking contract up to full capacity.
  EXPECT_EQ(pushValue(queue, 4, Ticket{}), PushResult::kAdmitted);
  EXPECT_EQ(pushValue(queue, 5, Ticket{}), PushResult::kAdmitted);
  EXPECT_EQ(queue.depth(), 4u);
}

// ---------------------------------------------------------------------------
// CompiledProgramCache
// ---------------------------------------------------------------------------

mc::GenerateResult generateFor(const arch::Machine& machine,
                               const std::string& script) {
  ed::Editor editor(machine);
  ed::runSession(editor, script);
  mc::Generator generator(machine);
  return generator.generate(editor.program());
}

TEST(ProgramCacheTest, HitReturnsPointerEqualInstance) {
  arch::Machine machine;
  const mc::GenerateResult gen = generateFor(machine, tripleScript(3.0));
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  sim::CompiledProgramCache cache;
  bool hit = true;
  const auto first = cache.get(machine, gen.exe, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get(machine, gen.exe, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // one immutable image, shared

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ProgramCacheTest, MachineConfigIsPartOfTheKey) {
  // Same executable bits, different machine config: lowered indices could
  // differ, so the cache must not alias the images.
  arch::MachineConfig small;
  small.sim_plane_words = 1u << 16;
  arch::Machine machine_a;
  arch::Machine machine_b(small);
  const mc::GenerateResult gen = generateFor(machine_a, tripleScript(2.0));
  ASSERT_TRUE(gen.ok);

  sim::CompiledProgramCache cache;
  const auto a = cache.get(machine_a, gen.exe);
  const auto b = cache.get(machine_b, gen.exe);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ProgramCacheTest, EvictsLeastRecentlyUsedPastCapacity) {
  arch::Machine machine;
  const mc::GenerateResult gen_a = generateFor(machine, tripleScript(2.0));
  const mc::GenerateResult gen_b = generateFor(machine, tripleScript(5.0));
  ASSERT_TRUE(gen_a.ok);
  ASSERT_TRUE(gen_b.ok);
  ASSERT_NE(gen_a.exe.fingerprint(), gen_b.exe.fingerprint());

  sim::CompiledProgramCache cache(1);
  cache.get(machine, gen_a.exe);
  cache.get(machine, gen_b.exe);  // evicts A
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  bool hit = true;
  cache.get(machine, gen_a.exe, &hit);  // A was evicted: recompiled
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ProgramCacheTest, ConcurrentHitsChurnLruWithoutBreakingInFlightHolders) {
  // A capacity-1 cache thrashed by four threads alternating four distinct
  // programs: every get() must return a usable image even while other
  // threads force evictions, and a shared_ptr held across an arbitrary
  // number of evictions must stay valid (eviction drops the cache's
  // reference, never the holder's).  ASan/TSan make this a memory-safety
  // proof, not just a liveness one.
  arch::Machine machine;
  std::vector<mc::GenerateResult> gens;
  for (int k = 2; k <= 5; ++k) {
    gens.push_back(generateFor(machine, tripleScript(static_cast<double>(k))));
    ASSERT_TRUE(gens.back().ok);
  }

  sim::CompiledProgramCache cache(1);
  // The in-flight holder: acquired before the churn, used after it.
  const auto held = cache.get(machine, gens[0].exe);
  ASSERT_NE(held, nullptr);

  constexpr int kThreads = 4;
  constexpr int kIterations = 32;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const auto& gen = gens[static_cast<std::size_t>((t + i) % 4)];
        const auto program = cache.get(machine, gen.exe);
        // Every image carries its verification report, however the LRU
        // churns: compiled-at-insert, never detached by eviction.
        if (program->verify == nullptr || !program->verify->clean()) {
          ++failures[static_cast<std::size_t>(t)];
        }
        // Use the image immediately: a freed or aliased image would trip
        // the sanitizers or produce a failed run.
        sim::NodeSim node(machine);
        node.load(program);
        if (node.run().error) ++failures[static_cast<std::size_t>(t)];
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);  // the bound held through the churn
  EXPECT_GT(stats.evictions, 0u);

  // The held image survived every eviction: running it now is bit-identical
  // to running a freshly compiled copy of the same program.
  sim::NodeSim from_held(machine);
  from_held.load(held);
  const sim::RunStats held_run = from_held.run();
  sim::NodeSim fresh(machine);
  sim::CompiledProgramCache fresh_cache;
  fresh.load(fresh_cache.get(machine, gens[0].exe));
  const sim::RunStats fresh_run = fresh.run();
  EXPECT_FALSE(held_run.error);
  EXPECT_EQ(held_run.total_cycles, fresh_run.total_cycles);
  EXPECT_EQ(held_run.total_flops, fresh_run.total_flops);
  EXPECT_EQ(held_run.instructions_executed, fresh_run.instructions_executed);
}

// ---------------------------------------------------------------------------
// WorkbenchService: determinism against the single-user reference
// ---------------------------------------------------------------------------

TEST(ServiceTest, ConcurrentSubmissionsMatchSequentialWorkbench) {
  // A mixed batch: distinct programs, the full Figure-11 sweep with problem
  // data and read-backs, a script with refusals, and an empty session.
  std::vector<GenerateAndRun> requests;
  for (int k = 1; k <= 6; ++k) {
    requests.push_back(GenerateAndRun{tripleScript(1.0 + 0.5 * k), {}, {}});
  }
  requests.push_back(GenerateAndRun{figure11SessionScript(),
                                    figure11Inputs(), figure11Outputs()});
  requests.push_back(GenerateAndRun{kRefusedScript, {}, {}});
  requests.push_back(GenerateAndRun{"# nothing but a comment\n\n", {}, {}});

  // Sequential single-user reference, one fresh Workbench per request.
  std::vector<Reference> references;
  references.reserve(requests.size());
  for (const GenerateAndRun& request : requests) {
    references.push_back(referenceFor(request));
  }

  // Serve the same batch concurrently: 4 shards, 3 producer threads, a
  // queue small enough to exercise backpressure.
  ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 4;
  WorkbenchService service(options);
  std::vector<std::future<ServiceReply>> futures(requests.size());
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < requests.size();
             i += 3) {
          futures[i] = service.submit(requests[i]);
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string where = "request " + std::to_string(i);
    ServiceReply reply = futures[i].get();
    const Reference& ref = references[i];
    EXPECT_TRUE(reply.status.isOk()) << where << ": " << reply.status.message();
    expectSessionEq(reply.session, ref.session, where);
    EXPECT_EQ(reply.generation.ok, ref.generated) << where;
    expectRunStatsEq(reply.run, ref.run, where);
    ASSERT_EQ(reply.outputs.size(), ref.outputs.size()) << where;
    for (std::size_t o = 0; o < reply.outputs.size(); ++o) {
      EXPECT_EQ(reply.outputs[o], ref.outputs[o]) << where << " output " << o;
    }
  }
}

TEST(ServiceTest, CacheSharedAcrossShardsPointerEqual) {
  sim::CompiledProgramCache cache;
  ServiceOptions options;
  options.shards = 4;
  options.cache = &cache;
  WorkbenchService service(options);

  std::vector<std::future<ServiceReply>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(
        GenerateAndRun{figure11SessionScript(), {}, {}}));
  }
  const sim::CompiledProgram* image = nullptr;
  int hits = 0;
  for (auto& future : futures) {
    ServiceReply reply = future.get();
    ASSERT_TRUE(reply.ok()) << reply.status.message()
                            << reply.generation.diagnostics.format();
    ASSERT_NE(reply.program, nullptr);
    if (image == nullptr) image = reply.program.get();
    // Every shard observes the *same* compiled instance, never a copy.
    EXPECT_EQ(reply.program.get(), image);
    if (reply.stats.program_cache_hit) ++hits;
  }
  // Exactly one compilation happened, no matter how the 8 requests raced.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(hits, 7);
}

TEST(ServiceTest, EnsembleMatchesWorkbenchEnsemble) {
  const std::string script = tripleScript(3.0);
  Workbench reference;
  ASSERT_TRUE(reference.runSession(script).clean());
  const EnsembleOutcome want =
      reference.runEnsemble(reference.editor().program(), 6);
  ASSERT_TRUE(want.ok()) << want.generation.diagnostics.format();

  WorkbenchService service(ServiceOptions{});
  ServiceReply reply = service.submit(RunEnsemble{script, 6}).get();
  ASSERT_TRUE(reply.ok()) << reply.status.message();
  ASSERT_EQ(reply.ensemble.size(), want.runs.size());
  for (std::size_t i = 0; i < want.runs.size(); ++i) {
    expectRunStatsEq(reply.ensemble[i], want.runs[i],
                     "replica " + std::to_string(i));
  }
}

// The RunEnsemble lane knob reaches the batched engine and the execution
// split is surfaced in RequestStats; batched replies stay bit-identical to
// the scalar path.
TEST(ServiceTest, EnsembleLanesSurfaceInStatsAndMatchScalar) {
  const std::string script = tripleScript(3.0);
  WorkbenchService service(ServiceOptions{});

  RunEnsemble scalar_request{script, 13};
  scalar_request.lanes = 1;
  ServiceReply scalar = service.submit(scalar_request).get();
  ASSERT_TRUE(scalar.ok()) << scalar.status.message();
  EXPECT_EQ(scalar.stats.ensemble_lanes, 1);
  EXPECT_EQ(scalar.stats.replicas_scalar, 13);
  EXPECT_EQ(scalar.stats.replicas_batched, 0);

  RunEnsemble batched_request{script, 13};
  batched_request.lanes = 4;
  ServiceReply batched = service.submit(batched_request).get();
  ASSERT_TRUE(batched.ok()) << batched.status.message();
  EXPECT_EQ(batched.stats.ensemble_lanes, 4);
  // 13 = 3 batches of 4 + a width-1 remainder on the scalar engine.
  EXPECT_EQ(batched.stats.replicas_batched, 12);
  EXPECT_EQ(batched.stats.replicas_scalar, 1);
  ASSERT_EQ(batched.ensemble.size(), scalar.ensemble.size());
  for (std::size_t i = 0; i < scalar.ensemble.size(); ++i) {
    expectRunStatsEq(batched.ensemble[i], scalar.ensemble[i],
                     "replica " + std::to_string(i));
  }
}

TEST(ServiceTest, SystemPhasesMatchesDirectSystem) {
  const std::string script = tripleScript(2.0);
  Workbench reference;
  ASSERT_TRUE(reference.runSession(script).clean());
  mc::Generator generator(reference.machine());
  const mc::GenerateResult gen =
      generator.generate(reference.editor().program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  sim::HypercubeSystem system = reference.makeSystem(2);
  system.loadAll(gen.exe);
  sim::SystemStats want;
  for (int phase = 0; phase < 3; ++phase) {
    if (phase > 0) system.restartAll();
    system.runPhase(want);
  }

  WorkbenchService service(ServiceOptions{});
  RunSystemPhases request;
  request.script = script;
  request.dimension = 2;
  request.phases = 3;
  ServiceReply reply = service.submit(request).get();
  ASSERT_TRUE(reply.ok()) << reply.status.message();
  EXPECT_EQ(reply.system.compute_makespan_cycles, want.compute_makespan_cycles);
  EXPECT_EQ(reply.system.comm_cycles, want.comm_cycles);
  EXPECT_EQ(reply.system.total_flops, want.total_flops);
  ASSERT_EQ(reply.system.node_stats.size(), want.node_stats.size());
  for (std::size_t i = 0; i < want.node_stats.size(); ++i) {
    EXPECT_EQ(reply.system.node_stats[i].total_cycles,
              want.node_stats[i].total_cycles) << "node " << i;
  }
  // Engine accounting: the default lane width batches the 4-node system
  // (lanes clamp to numNodes), and every node-phase ran on the SoA engine.
  EXPECT_EQ(reply.stats.node_lanes, 4);
  EXPECT_EQ(reply.stats.nodes_batched, 12u);
  EXPECT_EQ(reply.stats.nodes_scalar, 0u);

  // An explicit scalar request answers bit-identically — the lane width is
  // an engine choice, not an observable.
  RunSystemPhases scalar_request = request;
  scalar_request.node_lanes = 1;
  ServiceReply scalar = service.submit(scalar_request).get();
  ASSERT_TRUE(scalar.ok()) << scalar.status.message();
  EXPECT_EQ(scalar.stats.node_lanes, 1);
  EXPECT_EQ(scalar.stats.nodes_batched, 0u);
  EXPECT_EQ(scalar.stats.nodes_scalar, 12u);
  EXPECT_EQ(scalar.system.compute_makespan_cycles,
            reply.system.compute_makespan_cycles);
  EXPECT_EQ(scalar.system.total_flops, reply.system.total_flops);
}

// ---------------------------------------------------------------------------
// WorkbenchService: admission, stats, lifecycle
// ---------------------------------------------------------------------------

TEST(ServiceTest, BackpressureQueueBoundHoldsUnderLoad) {
  ServiceOptions options;
  options.shards = 2;
  options.queue_capacity = 2;
  WorkbenchService service(options);

  constexpr int kRequests = 24;
  std::vector<std::future<ServiceReply>> futures(kRequests);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = p; i < kRequests; i += 4) {
        futures[static_cast<std::size_t>(i)] =
            service.submit(SubmitSession{tripleScript(2.0)});
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_LE(service.peakQueueDepth(), 2u);  // admission control held
}

TEST(ServiceTest, StatsAccountRequestsShardsAndSequence) {
  ServiceOptions options;
  options.shards = 2;
  WorkbenchService service(options);
  constexpr int kRequests = 10;
  std::vector<std::future<ServiceReply>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service.submit(SubmitSession{"pipeline \"p\"\n"}));
  }
  std::set<std::uint64_t> sequences;
  for (auto& future : futures) {
    const ServiceReply reply = future.get();
    EXPECT_TRUE(reply.ok());
    EXPECT_GE(reply.stats.shard, 0);
    EXPECT_LT(reply.stats.shard, 2);
    sequences.insert(reply.stats.sequence);
    EXPECT_GE(reply.stats.queue_us, 0);
    EXPECT_GE(reply.stats.run_us, 0);
  }
  EXPECT_EQ(sequences.size(), static_cast<std::size_t>(kRequests));
  std::uint64_t served = 0;
  for (int s = 0; s < service.shards(); ++s) {
    served += service.shardStats(s).requests;
  }
  EXPECT_EQ(served, static_cast<std::uint64_t>(kRequests));
}

TEST(ServiceTest, ShardStateDoesNotLeakBetweenRequests) {
  // Request 1 builds a diagram on some shard; request 2 replays a script
  // whose pipeline name collides — on a dirty editor it would select the
  // old pipeline instead of renaming the initial empty one.  With one
  // shard the pair is guaranteed to share a core.
  ServiceOptions options;
  options.shards = 1;
  WorkbenchService service(options);
  const std::string script = tripleScript(4.0);
  const ServiceReply first = service.submit(SubmitSession{script}).get();
  const ServiceReply second = service.submit(SubmitSession{script}).get();
  expectSessionEq(second.session, first.session, "reset parity");
}

TEST(ServiceTest, SubmitAfterStopReturnsError) {
  WorkbenchService service(ServiceOptions{});
  service.stop();
  ServiceReply reply = service.submit(SubmitSession{"pipeline \"p\"\n"}).get();
  EXPECT_FALSE(reply.status.isOk());
  EXPECT_FALSE(reply.ok());
  service.stop();  // idempotent
}

TEST(ServiceTest, BadRequestParametersSurfaceAsStatusErrors) {
  WorkbenchService service(ServiceOptions{});
  ServiceReply ensemble =
      service.submit(RunEnsemble{tripleScript(2.0), -1}).get();
  EXPECT_FALSE(ensemble.status.isOk());
  RunSystemPhases bad_dim;
  bad_dim.script = tripleScript(2.0);
  bad_dim.dimension = -1;
  ServiceReply system = service.submit(bad_dim).get();
  EXPECT_FALSE(system.status.isOk());
}

// ---------------------------------------------------------------------------
// Static-verification admission gate
// ---------------------------------------------------------------------------

// A pipeline the editor and generator accept — the DMA pattern fits the
// architected 16M-word planes — but whose transfer provably walks past the
// *simulated* plane capacity, so static verification must refuse it at
// admission before it ever reaches a node.
std::string oobDmaScript() {
  const std::uint64_t count = arch::MachineConfig{}.sim_plane_words + 1;
  std::ostringstream script;
  script << R"(
pipeline "oob"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b 2
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=)" << count << R"(
dma plane1.write base=0 stride=1 count=)" << count << R"(
seq halt
)";
  return script.str();
}

TEST(ServiceTest, HazardousProgramRejectedAtAdmissionNeverDispatched) {
  WorkbenchService service(ServiceOptions{});
  ServiceReply reply =
      service.submit(GenerateAndRun{oobDmaScript(), {}, {}}).get();

  // The script replayed and generated fine; the verifier is what refused.
  EXPECT_TRUE(reply.session.clean()) << reply.session.status.message();
  EXPECT_TRUE(reply.generation.ok);
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.rejected());
  EXPECT_EQ(reply.stats.rejected, Reject::kInvalidProgram);
  EXPECT_FALSE(reply.status.isOk());
  EXPECT_NE(reply.status.message().find("static verification"),
            std::string::npos);
  EXPECT_EQ(service.admissionStats().rejected_program, 1u);

  // The typed diagnostics ride the reply, pointer-shared with the cached
  // image's own report.
  ASSERT_NE(reply.verify, nullptr);
  EXPECT_FALSE(reply.verify->clean());
  EXPECT_GE(reply.verify->errorCount(), 1u);
  ASSERT_NE(reply.program, nullptr);
  EXPECT_EQ(reply.verify.get(), reply.program->verify.get());

  // Nothing dispatched: no cycles were simulated.
  EXPECT_TRUE(reply.run.trace.empty());
  EXPECT_EQ(reply.run.total_cycles, 0u);

  // The verifier's findings also surface in the generation diagnostics
  // (the editor's message strip), without flipping generation.ok.
  EXPECT_TRUE(reply.generation.diagnostics.hasErrors());
}

TEST(ServiceTest, RejectionSharesOneReportAcrossShards) {
  sim::CompiledProgramCache cache;
  ServiceOptions options;
  options.shards = 4;
  options.cache = &cache;
  WorkbenchService service(options);
  std::vector<std::future<ServiceReply>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(GenerateAndRun{oobDmaScript(), {}, {}}));
  }
  const sim::VerifyReport* report = nullptr;
  for (auto& future : futures) {
    ServiceReply reply = future.get();
    EXPECT_EQ(reply.stats.rejected, Reject::kInvalidProgram);
    ASSERT_NE(reply.verify, nullptr);
    if (report == nullptr) report = reply.verify.get();
    // One verification, shared by every shard that saw the image.
    EXPECT_EQ(reply.verify.get(), report);
  }
  EXPECT_EQ(service.admissionStats().rejected_program, 8u);
  EXPECT_EQ(cache.stats().misses, 1u);  // verified once, at cache insert
}

TEST(ServiceTest, EnsembleAndSystemRequestsAreGatedToo) {
  WorkbenchService service(ServiceOptions{});
  ServiceReply ensemble =
      service.submit(RunEnsemble{oobDmaScript(), 4}).get();
  EXPECT_EQ(ensemble.stats.rejected, Reject::kInvalidProgram);
  EXPECT_TRUE(ensemble.ensemble.empty());  // no replica ever ran

  RunSystemPhases request;
  request.script = oobDmaScript();
  request.dimension = 2;
  request.phases = 2;
  ServiceReply system = service.submit(request).get();
  EXPECT_EQ(system.stats.rejected, Reject::kInvalidProgram);
  EXPECT_TRUE(system.system.node_stats.empty());  // no node ever loaded it
  EXPECT_EQ(service.admissionStats().rejected_program, 2u);
}

TEST(ServiceTest, SessionRunIsGatedAndSessionStaysUsable) {
  ServiceOptions options;
  options.shards = 2;
  WorkbenchService service(options);
  ServiceReply opened = service.submit(OpenSession{}).get();
  ASSERT_TRUE(opened.ok());
  const std::uint64_t id = opened.stats.session;

  SessionCommand bad;
  bad.session = id;
  bad.script = oobDmaScript();
  bad.run = true;
  ServiceReply rejected = service.submit(bad).get();
  EXPECT_EQ(rejected.stats.rejected, Reject::kInvalidProgram);
  EXPECT_TRUE(rejected.run.trace.empty());

  // The session survived the refusal: shrinking the offending DMA on the
  // same (persistent) editor makes the next run admissible — the
  // interactive fix-and-resubmit loop.
  SessionCommand good;
  good.session = id;
  good.script =
      "pipeline \"oob\"\n"
      "dma plane0.read base=0 stride=1 count=8\n"
      "dma plane1.write base=0 stride=1 count=8\n";
  good.run = true;
  ServiceReply served = service.submit(good).get();
  EXPECT_TRUE(served.ok()) << served.status.message()
                           << served.generation.diagnostics.format();
  EXPECT_EQ(served.stats.rejected, Reject::kNone);
  ASSERT_NE(served.verify, nullptr);
  EXPECT_TRUE(served.verify->clean());
  EXPECT_TRUE(service.submit(CloseSession{id}).get().ok());
}

TEST(ServiceTest, CleanRepliesCarryTheSharedCleanReport) {
  WorkbenchService service(ServiceOptions{});
  ServiceReply reply =
      service.submit(GenerateAndRun{figure11SessionScript(), {}, {}}).get();
  ASSERT_TRUE(reply.ok()) << reply.status.message();
  ASSERT_NE(reply.verify, nullptr);
  EXPECT_TRUE(reply.verify->clean());
  ASSERT_NE(reply.program, nullptr);
  EXPECT_EQ(reply.verify.get(), reply.program->verify.get());
}

// ---------------------------------------------------------------------------
// Stateful sessions: affinity, warm state, lifecycle
// ---------------------------------------------------------------------------

// The Figure-11 script cut at the "# step 3" marker, with a `check` on each
// side of the cut.  The reference script carries both checks in sequence,
// so the second is answered from the still-warm memoized checker session —
// in the split variant that only happens if the session's editor state
// survived across two separate requests.
struct SplitScript {
  std::string full;
  std::string first;
  std::string second;
};

SplitScript splitFigure11() {
  const std::string script = figure11SessionScript();
  const std::size_t cut = script.find("# step 3");
  EXPECT_NE(cut, std::string::npos);
  SplitScript split;
  split.first = script.substr(0, cut) + "check\n";
  split.second = "check\n" + script.substr(cut);
  split.full = split.first + split.second;
  return split;
}

TEST(ServiceTest, SessionSplitAcrossRequestsMatchesSingleScriptSubmit) {
  const SplitScript split = splitFigure11();

  // Single-script reference: the whole session as one stateless request.
  GenerateAndRun whole;
  whole.script = split.full;
  whole.inputs = figure11Inputs();
  whole.outputs = figure11Outputs();
  const Reference ref = referenceFor(whole);
  ASSERT_TRUE(ref.generated);

  ServiceOptions options;
  options.shards = 4;
  WorkbenchService service(options);

  // Open, two command batches, close — four requests against one session.
  ServiceReply opened = service.submit(OpenSession{}).get();
  ASSERT_TRUE(opened.ok()) << opened.status.message();
  const std::uint64_t id = opened.stats.session;
  ASSERT_NE(id, 0u);
  EXPECT_EQ(service.sessionCount(), 1u);

  SessionCommand part1;
  part1.session = id;
  part1.script = split.first;
  ServiceReply first = service.submit(part1).get();
  ASSERT_TRUE(first.ok()) << first.status.message();

  SessionCommand part2;
  part2.session = id;
  part2.script = split.second;
  part2.run = true;
  part2.inputs = whole.inputs;
  part2.outputs = whole.outputs;
  ServiceReply second = service.submit(part2).get();
  ASSERT_TRUE(second.ok()) << second.status.message()
                           << second.generation.diagnostics.format();

  // (1) Affinity: every request for the session landed on the same shard.
  EXPECT_GE(opened.stats.shard, 0);
  EXPECT_EQ(first.stats.shard, opened.stats.shard);
  EXPECT_EQ(second.stats.shard, opened.stats.shard);
  EXPECT_EQ(first.stats.session, id);
  EXPECT_EQ(second.stats.session, id);

  // (2) Warm state: the second request's leading `check` was answered from
  // the checker session the first request left warm — a per-request
  // cache-hit counter the reply carries.
  EXPECT_GE(second.stats.checker_session_hits, 1u);

  // (3) Bit-identical editor results: the two batches concatenate to
  // exactly the single-script replay record.
  EXPECT_EQ(first.session.commands + second.session.commands,
            ref.session.commands);
  EXPECT_EQ(first.session.failures + second.session.failures,
            ref.session.failures);
  std::vector<std::string> combined_log = first.session.log;
  combined_log.insert(combined_log.end(), second.session.log.begin(),
                      second.session.log.end());
  EXPECT_EQ(combined_log, ref.session.log);

  // (4) Bit-identical run results and read-backs.
  expectRunStatsEq(second.run, ref.run, "split session run");
  ASSERT_EQ(second.outputs.size(), ref.outputs.size());
  for (std::size_t o = 0; o < second.outputs.size(); ++o) {
    EXPECT_EQ(second.outputs[o], ref.outputs[o]) << "output " << o;
  }

  ServiceReply closed = service.submit(CloseSession{id}).get();
  EXPECT_TRUE(closed.ok()) << closed.status.message();
  EXPECT_EQ(service.sessionCount(), 0u);
  const ShardStats stats =
      service.shardStats(opened.stats.shard);
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.session_commands, 2u);
  EXPECT_GE(stats.checker_session_hits, 1u);
}

TEST(ServiceTest, SessionsSpreadAcrossShardsLeastLoadedFirst) {
  ServiceOptions options;
  options.shards = 4;
  WorkbenchService service(options);
  std::set<int> shards;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ServiceReply opened = service.submit(OpenSession{}).get();
    ASSERT_TRUE(opened.ok());
    shards.insert(opened.stats.shard);
    ids.push_back(opened.stats.session);
  }
  // Least-loaded placement: four sessions on four distinct shards.
  EXPECT_EQ(shards.size(), 4u);
  EXPECT_EQ(service.sessionCount(), 4u);
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(service.submit(CloseSession{id}).get().ok());
  }
  EXPECT_EQ(service.sessionCount(), 0u);
}

TEST(ServiceTest, UnknownSessionIsRejectedAtAdmission) {
  WorkbenchService service(ServiceOptions{});
  SessionCommand command;
  command.session = 12345;
  command.script = "check\n";
  ServiceReply reply = service.submit(command).get();
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.rejected());
  EXPECT_EQ(reply.stats.rejected, Reject::kUnknownSession);
  EXPECT_EQ(service.admissionStats().rejected_session, 1u);
  // Closing an unknown session is rejected the same way.
  ServiceReply closed = service.submit(CloseSession{12345}).get();
  EXPECT_EQ(closed.stats.rejected, Reject::kUnknownSession);
  // A default-constructed id (0) is unknown too — it must not fall through
  // to the stateless path and silently execute on a scratch core.
  ServiceReply zero = service.submit(SessionCommand{}).get();
  EXPECT_EQ(zero.stats.rejected, Reject::kUnknownSession);
  EXPECT_EQ(zero.session.commands, 0);
}

TEST(ServiceTest, ShedOpenSessionDoesNotLeakItsReservedCore) {
  ServiceOptions options;
  options.shards = 1;
  WorkbenchService service(options);
  Admission expired;
  expired.deadline_us = -1;
  ServiceReply reply = service.submit(OpenSession{}, expired).get();
  EXPECT_EQ(reply.stats.rejected, Reject::kDeadline);
  EXPECT_EQ(reply.stats.session, 0u);  // the id was never handed out
  // The core reserved at admission was dropped with the shed.
  EXPECT_EQ(service.sessionCount(), 0u);
}

TEST(ServiceTest, SessionLimitRejectsFurtherOpens) {
  ServiceOptions options;
  options.shards = 1;
  options.max_sessions = 2;
  WorkbenchService service(options);
  const std::uint64_t a = service.submit(OpenSession{}).get().stats.session;
  const std::uint64_t b = service.submit(OpenSession{}).get().stats.session;
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  ServiceReply third = service.submit(OpenSession{}).get();
  EXPECT_EQ(third.stats.rejected, Reject::kSessionLimit);
  // Closing one frees a slot.
  ASSERT_TRUE(service.submit(CloseSession{a}).get().ok());
  EXPECT_NE(service.submit(OpenSession{}).get().stats.session, 0u);
}

TEST(ServiceTest, IdleSessionsAreEvictedAfterTtl) {
  ServiceOptions options;
  options.shards = 1;
  // Wide margins so sanitizer slowdown can't evict early or sweep late:
  // the idle clock starts when the open's serve *finishes*.
  options.session_ttl_us = 50'000;  // 50ms idle TTL
  WorkbenchService service(options);
  ServiceReply opened = service.submit(OpenSession{tripleScript(2.0)}).get();
  ASSERT_TRUE(opened.ok());
  const std::uint64_t id = opened.stats.session;
  EXPECT_EQ(service.sessionCount(), 1u);

  // Let the session go idle past the TTL, then serve any request on the
  // owning shard — sweeps run between requests on the owner.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(service.submit(SubmitSession{"pipeline \"p\"\n"}).get().ok());
  EXPECT_EQ(service.sessionCount(), 0u);
  EXPECT_EQ(service.shardStats(0).sessions_evicted, 1u);

  // A command for the evicted session is rejected, not served on a ghost.
  SessionCommand command;
  command.session = id;
  command.script = "check\n";
  ServiceReply reply = service.submit(command).get();
  EXPECT_EQ(reply.stats.rejected, Reject::kUnknownSession);
}

// ---------------------------------------------------------------------------
// Admission control: deadlines, priorities, load shedding
// ---------------------------------------------------------------------------

TEST(ServiceTest, ExpiredDeadlineIsShedBeforeDispatch) {
  ServiceOptions options;
  options.shards = 1;
  WorkbenchService service(options);

  Admission expired;
  expired.deadline_us = -1;  // already expired at admission
  GenerateAndRun request{tripleScript(3.0), {}, {}};
  ServiceReply reply = service.submit(request, expired).get();
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.rejected());
  EXPECT_EQ(reply.stats.rejected, Reject::kDeadline);
  // Nothing executed: no replay, no generation, no run.
  EXPECT_EQ(reply.session.commands, 0);
  EXPECT_FALSE(reply.generation.ok);
  EXPECT_EQ(reply.run.total_cycles, 0u);
  EXPECT_EQ(service.shardStats(0).shed_deadline, 1u);

  // A generous deadline executes normally.
  Admission generous;
  generous.deadline_us = 60'000'000;
  ServiceReply served = service.submit(request, generous).get();
  EXPECT_TRUE(served.ok()) << served.status.message();
  EXPECT_EQ(served.stats.rejected, Reject::kNone);
}

TEST(ServiceTest, OverloadShedsBatchWhileInteractiveCompletes) {
  // Deterministic staging: the service admits but does not serve until
  // start(), so the queue can be filled past the watermark with no race
  // against the shards draining it.
  ServiceOptions options;
  options.shards = 1;
  options.queue_capacity = 8;
  options.admission.overload = AdmissionPolicy::Overload::kShed;
  options.admission.shed_watermark = 2;
  options.admission.aging_us = 1'000'000;  // no promotion inside this test
  options.start = false;
  WorkbenchService service(options);

  const std::string script = tripleScript(2.0);
  // Two batch requests fill to the watermark — the first carries a
  // deadline that expired at admission (it is admitted here, and shed at
  // dispatch).  The third batch push hits the watermark and is shed
  // immediately with a Rejected reply (the producer never blocks).
  Admission expired;
  expired.deadline_us = -1;
  auto dead = service.submit(RunEnsemble{script, 2}, expired);
  auto batch1 = service.submit(RunEnsemble{script, 2});
  auto shed = service.submit(RunEnsemble{script, 2});
  ServiceReply shed_reply = shed.get();  // already ready: nothing serves yet
  EXPECT_TRUE(shed_reply.rejected());
  EXPECT_EQ(shed_reply.stats.rejected, Reject::kOverload);
  EXPECT_EQ(service.admissionStats().shed_overload, 1u);

  // Interactive work is still admitted above the watermark.
  auto inter1 = service.submit(SubmitSession{script});
  auto inter2 = service.submit(SubmitSession{script});
  EXPECT_EQ(service.queueDepth(), 4u);

  service.start();
  ServiceReply i1 = inter1.get();
  ServiceReply i2 = inter2.get();
  EXPECT_TRUE(i1.ok()) << i1.status.message();
  EXPECT_TRUE(i2.ok()) << i2.status.message();
  ServiceReply b1 = batch1.get();
  EXPECT_TRUE(b1.ok());
  ServiceReply dead_reply = dead.get();
  EXPECT_EQ(dead_reply.stats.rejected, Reject::kDeadline);
  // Nothing of the expired request executed.
  EXPECT_EQ(dead_reply.session.commands, 0);
  EXPECT_TRUE(dead_reply.ensemble.empty());

  // Interactive outranked the earlier-admitted batch work at dispatch:
  // pop order is i1, i2, then the batch class in FIFO order.
  EXPECT_EQ(i1.stats.shard_sequence, 0u);
  EXPECT_EQ(i2.stats.shard_sequence, 1u);
  EXPECT_EQ(dead_reply.stats.shard_sequence, 2u);
  EXPECT_EQ(b1.stats.shard_sequence, 3u);
  // Shed replies are accounted: the deadline shed on the shard that popped
  // it, the overload shed at admission.
  const ShardStats shard = service.shardStats(0);
  EXPECT_EQ(shard.shed_deadline, 1u);
  EXPECT_EQ(shard.requests, 4u);  // 1 batch + 2 interactive + 1 deadline shed
  const AdmissionStats admission = service.admissionStats();
  EXPECT_EQ(admission.shed_overload, 1u);
  EXPECT_EQ(admission.admitted, 4u);
  EXPECT_EQ(admission.submitted, 5u);
}

TEST(ServiceTest, CallerPriorityOverridesTypeDefault) {
  ServiceOptions options;
  options.shards = 1;
  WorkbenchService service(options);
  Admission batch;
  batch.priority = Priority::kBatch;
  ServiceReply demoted =
      service.submit(SubmitSession{"pipeline \"p\"\n"}, batch).get();
  EXPECT_TRUE(demoted.ok());
  EXPECT_EQ(demoted.stats.priority, Priority::kBatch);
  ServiceReply defaulted =
      service.submit(RunEnsemble{tripleScript(2.0), 1}).get();
  EXPECT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted.stats.priority, Priority::kBatch);
  ServiceReply interactive =
      service.submit(SubmitSession{"pipeline \"p\"\n"}).get();
  EXPECT_EQ(interactive.stats.priority, Priority::kInteractive);
}

}  // namespace
}  // namespace nsc::svc
