// Service-layer tests: the sharded workbench service over the shared pool
// and compiled-program cache.
//
// The load-bearing property is the determinism contract: a set of session
// scripts submitted *concurrently* to an N-shard service yields per-request
// results bit-identical to running each request on a fresh single-user
// Workbench, for any shard count, queue capacity, producer interleaving,
// and NSC_THREADS (the CI TSan job replays this suite with NSC_THREADS=4).
#include <gtest/gtest.h>

#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nsc/nsc.h"
#include "service/service.h"

namespace nsc::svc {
namespace {

// A tiny scale-by-k pipeline: y = k * x over 8 words.
std::string tripleScript(double k) {
  std::ostringstream script;
  script << R"(
pipeline "triple"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b )" << k << R"(
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=8 var=x
dma plane1.write base=0 stride=1 count=8 var=y
seq halt
)";
  return script.str();
}

// A script the editor partially refuses (still replayable, failures > 0).
const char* kRefusedScript = R"(
pipeline "bad"
place doublet at 300,200
setop fu4 max
connect plane0.read fu4.a
connect plane1.read fu4.a
)";

// Host-side problem data for the Figure-11 sweep: u copies, f, and mask.
std::vector<PlaneImage> figure11Inputs() {
  std::vector<PlaneImage> inputs;
  std::vector<double> u(640);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = 0.25 * static_cast<double>((i * 37) % 11);
  }
  for (arch::PlaneId plane = 0; plane < 4; ++plane) {
    inputs.push_back(PlaneImage{plane, 0, u});
  }
  std::vector<double> f(640);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = 0.125 * static_cast<double>((i * 13) % 7);
  }
  inputs.push_back(PlaneImage{8, 0, f});
  inputs.push_back(PlaneImage{10, 0, std::vector<double>(640, 1.0)});
  return inputs;
}

std::vector<PlaneRange> figure11Outputs() {
  return {PlaneRange{4, 161, 366}, PlaneRange{9, 0, 1}};
}

void expectRunStatsEq(const sim::RunStats& got, const sim::RunStats& want,
                      const std::string& where) {
  EXPECT_EQ(got.total_cycles, want.total_cycles) << where;
  EXPECT_EQ(got.total_flops, want.total_flops) << where;
  EXPECT_EQ(got.total_hazards, want.total_hazards) << where;
  EXPECT_EQ(got.instructions_executed, want.instructions_executed) << where;
  EXPECT_EQ(got.halted, want.halted) << where;
  EXPECT_EQ(got.error, want.error) << where;
  EXPECT_EQ(got.fu_launches, want.fu_launches) << where;
  ASSERT_EQ(got.trace.size(), want.trace.size()) << where;
  for (std::size_t i = 0; i < got.trace.size(); ++i) {
    EXPECT_EQ(got.trace[i].cycles, want.trace[i].cycles) << where << " #" << i;
    EXPECT_EQ(got.trace[i].flops, want.trace[i].flops) << where << " #" << i;
    EXPECT_EQ(got.trace[i].name, want.trace[i].name) << where << " #" << i;
  }
}

void expectSessionEq(const ed::SessionResult& got,
                     const ed::SessionResult& want, const std::string& where) {
  EXPECT_EQ(got.commands, want.commands) << where;
  EXPECT_EQ(got.failures, want.failures) << where;
  EXPECT_EQ(got.log, want.log) << where;
  EXPECT_EQ(got.status.isOk(), want.status.isOk()) << where;
  EXPECT_EQ(got.status.message(), want.status.message()) << where;
}

// The sequential single-user reference for one GenerateAndRun request.
struct Reference {
  ed::SessionResult session;
  bool generated = false;
  sim::RunStats run;
  std::vector<std::vector<double>> outputs;
};

Reference referenceFor(const GenerateAndRun& request) {
  Reference ref;
  Workbench wb;
  ref.session = wb.runSession(request.script);
  for (const PlaneImage& input : request.inputs) {
    wb.node().writePlane(input.plane, input.base, input.values);
  }
  const RunOutcome outcome = wb.generateAndRun();
  ref.generated = outcome.generation.ok;
  ref.run = outcome.run;
  for (const PlaneRange& range : request.outputs) {
    ref.outputs.push_back(
        wb.node().readPlane(range.plane, range.base, range.count));
  }
  return ref;
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrderAndPeakDepth) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.depth(), 5u);
  EXPECT_EQ(queue.peakDepth(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.peakDepth(), 5u);
}

TEST(BoundedQueueTest, CloseDeliversAdmittedItemsThenNullopt) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // admission refused after close
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // stays drained
}

TEST(BoundedQueueTest, FullQueueBlocksProducerUntilPop) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(0));
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(1));  // blocks until the consumer pops
    EXPECT_TRUE(queue.push(2));
  });
  for (int expected = 0; expected <= 2; ++expected) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, expected);
  }
  producer.join();
  EXPECT_EQ(queue.peakDepth(), 1u);  // the bound held throughout
}

// ---------------------------------------------------------------------------
// CompiledProgramCache
// ---------------------------------------------------------------------------

mc::GenerateResult generateFor(const arch::Machine& machine,
                               const std::string& script) {
  ed::Editor editor(machine);
  ed::runSession(editor, script);
  mc::Generator generator(machine);
  return generator.generate(editor.program());
}

TEST(ProgramCacheTest, HitReturnsPointerEqualInstance) {
  arch::Machine machine;
  const mc::GenerateResult gen = generateFor(machine, tripleScript(3.0));
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  sim::CompiledProgramCache cache;
  bool hit = true;
  const auto first = cache.get(machine, gen.exe, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get(machine, gen.exe, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // one immutable image, shared

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ProgramCacheTest, MachineConfigIsPartOfTheKey) {
  // Same executable bits, different machine config: lowered indices could
  // differ, so the cache must not alias the images.
  arch::MachineConfig small;
  small.sim_plane_words = 1u << 16;
  arch::Machine machine_a;
  arch::Machine machine_b(small);
  const mc::GenerateResult gen = generateFor(machine_a, tripleScript(2.0));
  ASSERT_TRUE(gen.ok);

  sim::CompiledProgramCache cache;
  const auto a = cache.get(machine_a, gen.exe);
  const auto b = cache.get(machine_b, gen.exe);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ProgramCacheTest, EvictsLeastRecentlyUsedPastCapacity) {
  arch::Machine machine;
  const mc::GenerateResult gen_a = generateFor(machine, tripleScript(2.0));
  const mc::GenerateResult gen_b = generateFor(machine, tripleScript(5.0));
  ASSERT_TRUE(gen_a.ok);
  ASSERT_TRUE(gen_b.ok);
  ASSERT_NE(gen_a.exe.fingerprint(), gen_b.exe.fingerprint());

  sim::CompiledProgramCache cache(1);
  cache.get(machine, gen_a.exe);
  cache.get(machine, gen_b.exe);  // evicts A
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  bool hit = true;
  cache.get(machine, gen_a.exe, &hit);  // A was evicted: recompiled
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

// ---------------------------------------------------------------------------
// WorkbenchService: determinism against the single-user reference
// ---------------------------------------------------------------------------

TEST(ServiceTest, ConcurrentSubmissionsMatchSequentialWorkbench) {
  // A mixed batch: distinct programs, the full Figure-11 sweep with problem
  // data and read-backs, a script with refusals, and an empty session.
  std::vector<GenerateAndRun> requests;
  for (int k = 1; k <= 6; ++k) {
    requests.push_back(GenerateAndRun{tripleScript(1.0 + 0.5 * k), {}, {}});
  }
  requests.push_back(GenerateAndRun{figure11SessionScript(),
                                    figure11Inputs(), figure11Outputs()});
  requests.push_back(GenerateAndRun{kRefusedScript, {}, {}});
  requests.push_back(GenerateAndRun{"# nothing but a comment\n\n", {}, {}});

  // Sequential single-user reference, one fresh Workbench per request.
  std::vector<Reference> references;
  references.reserve(requests.size());
  for (const GenerateAndRun& request : requests) {
    references.push_back(referenceFor(request));
  }

  // Serve the same batch concurrently: 4 shards, 3 producer threads, a
  // queue small enough to exercise backpressure.
  ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 4;
  WorkbenchService service(options);
  std::vector<std::future<ServiceReply>> futures(requests.size());
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < requests.size();
             i += 3) {
          futures[i] = service.submit(requests[i]);
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string where = "request " + std::to_string(i);
    ServiceReply reply = futures[i].get();
    const Reference& ref = references[i];
    EXPECT_TRUE(reply.status.isOk()) << where << ": " << reply.status.message();
    expectSessionEq(reply.session, ref.session, where);
    EXPECT_EQ(reply.generation.ok, ref.generated) << where;
    expectRunStatsEq(reply.run, ref.run, where);
    ASSERT_EQ(reply.outputs.size(), ref.outputs.size()) << where;
    for (std::size_t o = 0; o < reply.outputs.size(); ++o) {
      EXPECT_EQ(reply.outputs[o], ref.outputs[o]) << where << " output " << o;
    }
  }
}

TEST(ServiceTest, CacheSharedAcrossShardsPointerEqual) {
  sim::CompiledProgramCache cache;
  ServiceOptions options;
  options.shards = 4;
  options.cache = &cache;
  WorkbenchService service(options);

  std::vector<std::future<ServiceReply>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(
        GenerateAndRun{figure11SessionScript(), {}, {}}));
  }
  const sim::CompiledProgram* image = nullptr;
  int hits = 0;
  for (auto& future : futures) {
    ServiceReply reply = future.get();
    ASSERT_TRUE(reply.ok()) << reply.status.message()
                            << reply.generation.diagnostics.format();
    ASSERT_NE(reply.program, nullptr);
    if (image == nullptr) image = reply.program.get();
    // Every shard observes the *same* compiled instance, never a copy.
    EXPECT_EQ(reply.program.get(), image);
    if (reply.stats.program_cache_hit) ++hits;
  }
  // Exactly one compilation happened, no matter how the 8 requests raced.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(hits, 7);
}

TEST(ServiceTest, EnsembleMatchesWorkbenchEnsemble) {
  const std::string script = tripleScript(3.0);
  Workbench reference;
  ASSERT_TRUE(reference.runSession(script).clean());
  const EnsembleOutcome want =
      reference.runEnsemble(reference.editor().program(), 6);
  ASSERT_TRUE(want.ok()) << want.generation.diagnostics.format();

  WorkbenchService service(ServiceOptions{});
  ServiceReply reply = service.submit(RunEnsemble{script, 6}).get();
  ASSERT_TRUE(reply.ok()) << reply.status.message();
  ASSERT_EQ(reply.ensemble.size(), want.runs.size());
  for (std::size_t i = 0; i < want.runs.size(); ++i) {
    expectRunStatsEq(reply.ensemble[i], want.runs[i],
                     "replica " + std::to_string(i));
  }
}

TEST(ServiceTest, SystemPhasesMatchesDirectSystem) {
  const std::string script = tripleScript(2.0);
  Workbench reference;
  ASSERT_TRUE(reference.runSession(script).clean());
  mc::Generator generator(reference.machine());
  const mc::GenerateResult gen =
      generator.generate(reference.editor().program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  sim::HypercubeSystem system = reference.makeSystem(2);
  system.loadAll(gen.exe);
  sim::SystemStats want;
  for (int phase = 0; phase < 3; ++phase) {
    if (phase > 0) {
      for (int n = 0; n < system.numNodes(); ++n) system.node(n).restart();
    }
    system.runPhase(want);
  }

  WorkbenchService service(ServiceOptions{});
  RunSystemPhases request;
  request.script = script;
  request.dimension = 2;
  request.phases = 3;
  ServiceReply reply = service.submit(request).get();
  ASSERT_TRUE(reply.ok()) << reply.status.message();
  EXPECT_EQ(reply.system.compute_makespan_cycles, want.compute_makespan_cycles);
  EXPECT_EQ(reply.system.comm_cycles, want.comm_cycles);
  EXPECT_EQ(reply.system.total_flops, want.total_flops);
  ASSERT_EQ(reply.system.node_stats.size(), want.node_stats.size());
  for (std::size_t i = 0; i < want.node_stats.size(); ++i) {
    EXPECT_EQ(reply.system.node_stats[i].total_cycles,
              want.node_stats[i].total_cycles) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// WorkbenchService: admission, stats, lifecycle
// ---------------------------------------------------------------------------

TEST(ServiceTest, BackpressureQueueBoundHoldsUnderLoad) {
  ServiceOptions options;
  options.shards = 2;
  options.queue_capacity = 2;
  WorkbenchService service(options);

  constexpr int kRequests = 24;
  std::vector<std::future<ServiceReply>> futures(kRequests);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = p; i < kRequests; i += 4) {
        futures[static_cast<std::size_t>(i)] =
            service.submit(SubmitSession{tripleScript(2.0)});
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_LE(service.peakQueueDepth(), 2u);  // admission control held
}

TEST(ServiceTest, StatsAccountRequestsShardsAndSequence) {
  ServiceOptions options;
  options.shards = 2;
  WorkbenchService service(options);
  constexpr int kRequests = 10;
  std::vector<std::future<ServiceReply>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service.submit(SubmitSession{"pipeline \"p\"\n"}));
  }
  std::set<std::uint64_t> sequences;
  for (auto& future : futures) {
    const ServiceReply reply = future.get();
    EXPECT_TRUE(reply.ok());
    EXPECT_GE(reply.stats.shard, 0);
    EXPECT_LT(reply.stats.shard, 2);
    sequences.insert(reply.stats.sequence);
    EXPECT_GE(reply.stats.queue_us, 0);
    EXPECT_GE(reply.stats.run_us, 0);
  }
  EXPECT_EQ(sequences.size(), static_cast<std::size_t>(kRequests));
  std::uint64_t served = 0;
  for (int s = 0; s < service.shards(); ++s) {
    served += service.shardStats(s).requests;
  }
  EXPECT_EQ(served, static_cast<std::uint64_t>(kRequests));
}

TEST(ServiceTest, ShardStateDoesNotLeakBetweenRequests) {
  // Request 1 builds a diagram on some shard; request 2 replays a script
  // whose pipeline name collides — on a dirty editor it would select the
  // old pipeline instead of renaming the initial empty one.  With one
  // shard the pair is guaranteed to share a core.
  ServiceOptions options;
  options.shards = 1;
  WorkbenchService service(options);
  const std::string script = tripleScript(4.0);
  const ServiceReply first = service.submit(SubmitSession{script}).get();
  const ServiceReply second = service.submit(SubmitSession{script}).get();
  expectSessionEq(second.session, first.session, "reset parity");
}

TEST(ServiceTest, SubmitAfterStopReturnsError) {
  WorkbenchService service(ServiceOptions{});
  service.stop();
  ServiceReply reply = service.submit(SubmitSession{"pipeline \"p\"\n"}).get();
  EXPECT_FALSE(reply.status.isOk());
  EXPECT_FALSE(reply.ok());
  service.stop();  // idempotent
}

TEST(ServiceTest, BadRequestParametersSurfaceAsStatusErrors) {
  WorkbenchService service(ServiceOptions{});
  ServiceReply ensemble =
      service.submit(RunEnsemble{tripleScript(2.0), -1}).get();
  EXPECT_FALSE(ensemble.status.isOk());
  RunSystemPhases bad_dim;
  bad_dim.script = tripleScript(2.0);
  bad_dim.dimension = -1;
  ServiceReply system = service.submit(bad_dim).get();
  EXPECT_FALSE(system.status.isOk());
}

}  // namespace
}  // namespace nsc::svc
